"""Bit-true functional model of a multi-channel memory with ECC Parity.

The machine owns real byte arrays for every data line, its detection bits,
the ECC parity region, and any materialized ECC lines.  It executes the
complete protocol of the paper:

* reads with bank-health lookup (step A1), ECC-line reads for faulty banks
  (step B), and parity-based reconstruction of correction bits (step C);
* writes with health lookup (A2), ECC-line updates (D) and parity
  read-modify-writes per Equation 1 (E);
* periodic scrubbing, per-bank-pair error counting, page retirement, and
  materialization of actual correction bits for faulty bank pairs with
  parity recalculation (Section III-B/III-C).

Faults are injected by :mod:`repro.faults.injector`, which corrupts the
stored arrays exactly as a failing DRAM device would; nothing in the read
path peeks at ground truth, so measured coverage is real.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from repro.core.health import BankHealthTable
from repro.core.layout import Geometry, MaterializedLayout, ParityLayout
from repro.ecc.base import ECCScheme
from repro.util.rng import make_rng


class Address(NamedTuple):
    """Physical location of one cache line."""

    channel: int
    bank: int
    row: int
    line: int


@dataclass
class MachineStats:
    """Event counters exposed for tests and experiments."""

    app_reads: int = 0
    app_writes: int = 0
    mem_reads: int = 0  # includes overhead accesses (parity, ECC lines, members)
    mem_writes: int = 0
    detected_errors: int = 0
    corrected: int = 0
    uncorrectable: int = 0
    parity_reconstructions: int = 0  # step C events
    ecc_line_reads: int = 0  # step B events
    ecc_line_writes: int = 0  # step D events
    parity_updates: int = 0  # step E events
    scrubs: int = 0
    scrub_lines_checked: int = 0


@dataclass
class ReadResult:
    """What a read returns: corrected data (or None) plus event flags."""

    data: "np.ndarray | None"
    detected: bool = False
    corrected: bool = False
    uncorrectable: bool = False
    used_parity_reconstruction: bool = False
    used_ecc_line: bool = False


@dataclass
class BatchReadResult:
    """Per-line outcome arrays of a batched read (see :meth:`read_lines`)."""

    data: np.ndarray  #: (T, line_size) corrected data; zeros where not ``ok``
    ok: np.ndarray  #: (T,) bool - data row is valid
    detected: np.ndarray  #: (T,) bool - an error was detected
    corrected: np.ndarray  #: (T,) bool - the error was corrected
    uncorrectable: np.ndarray  #: (T,) bool - correction failed


@dataclass
class PermanentFault:
    """A device fault that keeps corrupting its region until it is excluded.

    ``chip`` is the failing data-chip index; the corruption pattern is a
    deterministic XOR mask derived from *seed*, re-applied after any repair
    (that is what makes it "permanent").
    """

    channel: int
    bank: int
    rows: "tuple[int, int]"  # [start, stop) row range
    lines: "tuple[int, int]"  # [start, stop) line range within each row
    chip: int
    seed: int = 0


class ECCParityMachine:
    """A functional N-channel memory protected by ECC Parity over *scheme*."""

    def __init__(
        self,
        scheme: ECCScheme,
        geometry: Geometry,
        seed: "int | None" = 0,
        threshold: int = 4,
    ):
        self.scheme = scheme
        self.geom = geometry
        self.layout = ParityLayout(geometry)
        self.health = BankHealthTable(geometry, threshold=threshold)
        self.stats = MachineStats()
        rng = make_rng(seed)

        c, b, r, l = geometry.channels, geometry.banks, geometry.rows_per_bank, geometry.lines_per_row
        self.data = rng.integers(0, 256, (c, b, r, l, scheme.line_size), dtype=np.uint8)
        self.detection = scheme.compute_detection(self.data)
        #: Pristine copy for test verification only - never read by the protocol.
        self.golden = self.data.copy()

        corr_bytes = scheme.correction_bytes_per_line
        self.parity = np.zeros((c, b, self.layout.blocks_per_bank, l, corr_bytes), dtype=np.uint8)
        #: (channel, bank) pairs whose content is excluded from parity groups.
        self.excluded: "set[tuple[int, int]]" = set()
        #: Materialized ECC lines per faulty bank: (channel, bank) -> (rows, lines, corr).
        self.materialized: "dict[tuple[int, int], np.ndarray]" = {}
        self.permanent_faults: "list[PermanentFault]" = []
        self._rebuild_all_parity()

    # -- parity construction -----------------------------------------------------------

    def _member_rows(self, parity_channel: int, channel: int) -> slice:
        """Rows of *channel* whose parity lives in *parity_channel* (fixed stride)."""
        n = self.geom.channels
        rel = (channel - parity_channel - 1) % n
        return slice(rel, self.geom.rows_per_bank, n - 1)

    def _rebuild_parity_bank(self, bank: int) -> None:
        """Recompute every parity group of *bank* (all parity channels).

        One batched correction pass over the bank's data in every channel,
        then pure XOR folds: after reshaping the rows axis to ``(blocks,
        n-1)``, slot ``(c - p - 1) % n`` of the ``n-1`` axis holds exactly
        the member rows of channel *c* whose parity lives in channel *p*
        (the stride :meth:`_member_rows` walks), so no per-(parity, channel)
        re-encoding is needed.
        """
        n = self.geom.channels
        corr = self.scheme.compute_correction(self.data[:, bank])
        corr = corr.reshape(n, self.layout.blocks_per_bank, n - 1, *corr.shape[2:])
        for p in range(n):
            acc = np.zeros_like(self.parity[p, bank])
            for c in range(n):
                if c == p or (c, bank) in self.excluded:
                    continue
                acc ^= corr[c, :, (c - p - 1) % n]
            self.parity[p, bank] = acc

    def _rebuild_all_parity(self) -> None:
        """Recompute every parity group of the machine.

        With no excluded banks (the common case - initialization and any
        point before the first materialization) this is a single correction
        pass over the *entire* data array plus XOR folds; otherwise fall
        back to the per-bank rebuild, which honours per-bank exclusions.
        """
        if self.excluded:
            for bank in range(self.geom.banks):
                self._rebuild_parity_bank(bank)
            return
        n, banks = self.geom.channels, self.geom.banks
        corr = self.scheme.compute_correction(self.data)
        corr = corr.reshape(n, banks, self.layout.blocks_per_bank, n - 1, *corr.shape[3:])
        for p in range(n):
            acc = np.zeros_like(self.parity[p])
            for c in range(n):
                if c != p:
                    acc ^= corr[c, :, :, (c - p - 1) % n]
            self.parity[p] = acc

    # -- fault application ---------------------------------------------------------------

    def _validate_fault(self, fault: PermanentFault) -> None:
        g = self.geom
        if not (0 <= fault.channel < g.channels):
            raise ValueError(f"fault channel {fault.channel} out of range")
        if not (0 <= fault.bank < g.banks):
            raise ValueError(f"fault bank {fault.bank} out of range")
        r0, r1 = fault.rows
        l0, l1 = fault.lines
        if not (0 <= r0 < r1 <= g.rows_per_bank):
            raise ValueError(f"fault rows {fault.rows} invalid for {g.rows_per_bank} rows")
        if not (0 <= l0 < l1 <= g.lines_per_row):
            raise ValueError(f"fault lines {fault.lines} invalid for {g.lines_per_row} lines")
        if not (0 <= fault.chip < self.scheme.data_chips):
            raise ValueError(f"fault chip {fault.chip} out of range for {self.scheme.name}")

    def add_permanent_fault(self, fault: PermanentFault) -> None:
        """Register a device fault and corrupt the affected region."""
        self._validate_fault(fault)
        self.permanent_faults.append(fault)
        self._apply_fault(fault)

    def _fault_mask(self, fault: PermanentFault, n_lines: int) -> np.ndarray:
        """Deterministic nonzero XOR masks for the faulty chip's bytes."""
        rng = make_rng(hash((fault.seed, fault.channel, fault.bank, fault.chip)) & 0x7FFFFFFF)
        mask = rng.integers(1, 256, (n_lines, self.scheme.chip_bytes), dtype=np.uint8)
        return mask

    def _apply_fault(self, fault: PermanentFault) -> None:
        r0, r1 = fault.rows
        l0, l1 = fault.lines
        region = self.data[fault.channel, fault.bank, r0:r1, l0:l1]
        lead = region.shape[:2]
        chips = self.scheme.split_to_chips(region.reshape(-1, self.scheme.line_size))
        mask = self._fault_mask(fault, chips.shape[0])
        chips[:, fault.chip, :] ^= mask
        self.data[fault.channel, fault.bank, r0:r1, l0:l1] = self.scheme.merge_from_chips(
            chips
        ).reshape(*lead, self.scheme.line_size)

    def add_transient_fault(self, fault: PermanentFault) -> None:
        """Corrupt a region once, without registering it for re-application.

        Models transient upsets (the majority of field bit faults): a
        scrub-with-repair pass heals them permanently.
        """
        self._validate_fault(fault)
        self._apply_fault(fault)

    def reapply_permanent_faults(self) -> None:
        """Re-corrupt every registered fault region (after a repair attempt)."""
        for fault in self.permanent_faults:
            self._apply_fault(fault)

    # -- read path (Figure 6, left) ----------------------------------------------------------

    def read(self, addr: Address) -> ReadResult:
        """Application read: detect on the fly, correct if needed."""
        self.stats.app_reads += 1
        return self._read_internal(addr)

    def _read_internal(self, addr: Address, count_errors: bool = True) -> ReadResult:
        c, b, r, l = addr
        self.stats.mem_reads += 1
        faulty = self.health.is_faulty(c, b)  # step A1 (on-chip SRAM lookup)
        if faulty:
            self.stats.mem_reads += 1  # step B: ECC line read in parallel
            self.stats.ecc_line_reads += 1

        line = self.data[c, b, r, l]
        det = self.detection[c, b, r, l]
        chips = self.scheme.split_to_chips(line)
        if not self.scheme.detect_line(chips, det).error:
            return ReadResult(data=line.copy())

        self.stats.detected_errors += 1
        known = self._known_bad_chips(c, b)
        if faulty:
            corr = self.materialized[(c, b)][r, l]
            used_parity = False
        else:
            corr = self._reconstruct_correction(addr)  # step C
            used_parity = True
            if corr is None:
                self.stats.uncorrectable += 1
                return ReadResult(data=None, detected=True, uncorrectable=True)

        res = self.scheme.correct_line(chips, det, corr, erasures=known or None)
        if count_errors:
            self._account_error(c, b, r)
        if res.data is None:
            self.stats.uncorrectable += 1
            return ReadResult(
                data=None,
                detected=True,
                uncorrectable=True,
                used_parity_reconstruction=used_parity,
                used_ecc_line=faulty,
            )
        self.stats.corrected += 1
        return ReadResult(
            data=res.data,
            detected=True,
            corrected=True,
            used_parity_reconstruction=used_parity,
            used_ecc_line=faulty,
        )

    def _known_bad_chips(self, channel: int, bank: int) -> "set[int]":
        """Data chips with a registered permanent fault covering this bank."""
        return {
            f.chip
            for f in self.permanent_faults
            if f.channel == channel and f.bank == bank and f.chip < self.scheme.data_chips
        }

    def _reconstruct_correction(self, addr: Address) -> "np.ndarray | None":
        """Step C: rebuild a line's correction bits from its parity group.

        Costs ``N - 1`` extra memory accesses: the parity line plus the
        ``N - 2`` other member lines, whose correction bits are recomputed
        on the fly.  Fails if any other member also has a detected error
        (fault collision across channels) or if this bank was excluded.
        """
        c, b, r, l = addr
        if (c, b) in self.excluded:
            return None
        loc = self.layout.location_of(c, b, r)
        self.stats.parity_reconstructions += 1
        self.stats.mem_reads += 1  # the parity line
        acc = self.parity[loc.parity_channel, b, loc.group_slot, l].copy()
        for mc, mrow in loc.members:
            if mc == c and mrow == r:
                continue
            if (mc, b) in self.excluded:
                continue  # removed from parity construction at materialization
            self.stats.mem_reads += 1
            mline = self.data[mc, b, mrow, l]
            mdet = self.detection[mc, b, mrow, l]
            if self.scheme.detect_line(self.scheme.split_to_chips(mline), mdet).error:
                return None  # a second channel is faulty at the same location
            acc ^= self.scheme.compute_correction(mline)
        return acc

    # -- write path (Figure 6, right) ----------------------------------------------------------

    def write(self, addr: Address, new_data: np.ndarray) -> None:
        """Application write-back: update data, detection, and parity/ECC lines."""
        c, b, r, l = addr
        new_data = np.asarray(new_data, dtype=np.uint8)
        if new_data.shape != (self.scheme.line_size,):
            raise ValueError(f"expected a {self.scheme.line_size}-byte line")
        self.stats.app_writes += 1
        self.stats.mem_writes += 1
        faulty = self.health.is_faulty(c, b)  # step A2

        if faulty:
            # Step D: write the actual correction bits to the ECC line.
            self.materialized[(c, b)][r, l] = self.scheme.compute_correction(new_data)
            self.stats.mem_writes += 1
            self.stats.ecc_line_writes += 1
        elif (c, b) not in self.excluded:
            # Step E: ECCP_new = ECCP_old ^ ECC_old ^ ECC_new.  The old value
            # must be clean for the parity to stay consistent; correct it
            # first if the stored copy carries an error.
            old = self._clean_old_value(addr)
            if old is not None:
                loc = self.layout.location_of(c, b, r)
                self.stats.mem_reads += 1  # read parity line
                self.stats.mem_writes += 1  # write parity line
                self.stats.parity_updates += 1
                delta = self.scheme.compute_correction(old) ^ self.scheme.compute_correction(
                    new_data
                )
                self.parity[loc.parity_channel, b, loc.group_slot, l] ^= delta
            # If the old value was unrecoverable the group parity is stale for
            # this line; the subsequent health actions (retire/materialize)
            # are what bound the damage, as in the paper.

        self.data[c, b, r, l] = new_data
        self.detection[c, b, r, l] = self.scheme.compute_detection(new_data)
        self.golden[c, b, r, l] = new_data

    def write_raw(self, addr: Address, new_data: np.ndarray) -> None:
        """Write data + detection bits WITHOUT touching parity/ECC state.

        For use by an external controller (:mod:`repro.core.llc_controller`)
        that manages parity updates itself via compacted XOR deltas; calling
        this directly otherwise leaves the parity stale.
        """
        c, b, r, l = addr
        new_data = np.asarray(new_data, dtype=np.uint8)
        if new_data.shape != (self.scheme.line_size,):
            raise ValueError(f"expected a {self.scheme.line_size}-byte line")
        self.stats.mem_writes += 1
        self.data[c, b, r, l] = new_data
        self.detection[c, b, r, l] = self.scheme.compute_detection(new_data)
        self.golden[c, b, r, l] = new_data

    def apply_parity_delta(
        self, parity_channel: int, bank: int, block: int, line: int, delta: np.ndarray
    ) -> None:
        """Read-modify-write one parity line with an accumulated XOR delta.

        The memory-side half of the XOR-cacheline technique: Equation 1
        applied once for any number of compacted line updates.
        """
        self.stats.mem_reads += 1  # read the parity line
        self.stats.mem_writes += 1  # write it back
        self.stats.parity_updates += 1
        self.parity[parity_channel, bank, block, line] ^= np.asarray(delta, dtype=np.uint8)

    def _clean_old_value(self, addr: Address) -> "np.ndarray | None":
        """The stored old line, corrected if necessary (internal RMW read)."""
        c, b, r, l = addr
        line = self.data[c, b, r, l]
        det = self.detection[c, b, r, l]
        chips = self.scheme.split_to_chips(line)
        if not self.scheme.detect_line(chips, det).error:
            self.stats.mem_reads += 1  # step E's read of the old dirty-line value
            return line
        res = self._read_internal(addr)
        return res.data

    # -- error accounting / reactions (Section III-C) ------------------------------------------

    def _account_error(self, channel: int, bank: int, row: int) -> None:
        if self.health.is_retired(channel, bank, row):
            return
        action = self.health.record_error(channel, bank, row)
        if action == "counted":
            self._retire_with_parity_sharers(channel, bank, row)
        elif action == "materialize":
            self._materialize_pair(channel, bank)

    def _retire_with_parity_sharers(self, channel: int, bank: int, row: int) -> None:
        """Retire the faulty page and every page sharing its ECC parities."""
        loc = self.layout.location_of(channel, bank, row)
        self.health.retire_page(channel, bank, row)
        for mc, mrow in loc.members:
            self.health.retire_page(mc, bank, mrow)

    def _materialize_pair(self, channel: int, bank: int) -> None:
        """Store actual correction bits for both banks of a faulty pair.

        Order matters: ECC lines are computed *before* the parity groups are
        recalculated, because reconstructing the faulty lines' correction
        bits needs the old parities.  Clean lines are encoded in one batch;
        only lines with detected errors take the per-line reconstruction
        path.
        """
        pair_banks = (bank & ~1, (bank & ~1) | 1)
        for pb in pair_banks:
            if (channel, pb) in self.materialized:
                continue
            bank_data = self.data[channel, pb]  # (rows, lines, line_size)
            ecc = self.scheme.compute_correction(bank_data).copy()
            computed_det = self.scheme.compute_detection(bank_data)
            dirty = np.any(computed_det != self.detection[channel, pb], axis=-1)
            for r, l in np.argwhere(dirty):
                ecc[r, l] = self._true_correction_bits(Address(channel, pb, int(r), int(l)))
            self.materialized[(channel, pb)] = ecc
        # Remove the pair's content from parity construction and recompute.
        for pb in pair_banks:
            self.excluded.add((channel, pb))
            self._rebuild_parity_bank(pb)

    def _true_correction_bits(self, addr: Address) -> np.ndarray:
        """Correction bits of a line's *pre-fault* content.

        Clean lines: recompute directly.  Dirty lines: reconstruct from the
        parity group, falling back to the (possibly wrong) direct
        computation only when reconstruction fails - the same residual risk
        the paper accepts for multi-channel collisions.
        """
        c, b, r, l = addr
        line = self.data[c, b, r, l]
        det = self.detection[c, b, r, l]
        if not self.scheme.detect_line(self.scheme.split_to_chips(line), det).error:
            return self.scheme.compute_correction(line)
        rebuilt = self._reconstruct_correction(addr)
        if rebuilt is not None:
            return rebuilt
        return self.scheme.compute_correction(line)

    # -- batched reads -----------------------------------------------------------------------

    def _faulty_bank_grid(self) -> np.ndarray:
        """(channels, banks) bool grid of the health table's faulty pairs."""
        grid = np.zeros((self.geom.channels, self.geom.banks), dtype=bool)
        for channel, pair in self.health.faulty_pairs:
            grid[channel, 2 * pair] = grid[channel, 2 * pair + 1] = True
        return grid

    def read_lines(self, addrs, count_errors: bool = True) -> BatchReadResult:
        """Batched application read: equivalent to :meth:`read` per address.

        Detection runs as one array program over all requested lines; runs
        of clean lines are accounted in bulk (their reads have no side
        effects beyond counters), while each dirty line takes the normal
        :meth:`_read_internal` path *in address order*, so page retirement
        and materialization fire exactly as they would under sequential
        reads - including changing the step-B accounting of clean lines
        later in the batch.
        """
        size = self.scheme.line_size
        addrs = list(addrs)
        if not addrs:
            empty = np.zeros(0, dtype=bool)
            return BatchReadResult(
                np.zeros((0, size), np.uint8), empty, empty.copy(), empty.copy(), empty.copy()
            )
        idx = np.asarray([tuple(a) for a in addrs], dtype=np.intp)
        total = idx.shape[0]
        cs, bs, rs, ls = idx.T
        self.stats.app_reads += total
        lines = self.data[cs, bs, rs, ls]
        stored = self.detection[cs, bs, rs, ls]
        dirty = np.any(self.scheme.compute_detection(lines) != stored, axis=-1)

        data = np.zeros((total, size), dtype=np.uint8)
        data[~dirty] = lines[~dirty]  # reads don't mutate data, gather is safe
        ok = ~dirty
        detected = dirty.copy()
        corrected = np.zeros(total, dtype=bool)
        uncorrectable = np.zeros(total, dtype=bool)

        def account_clean(start: int, stop: int) -> None:
            # Health is constant across a clean run (only dirty-line error
            # accounting mutates it), so step A1/B counters vectorize.
            if stop <= start:
                return
            n_faulty = int(self._faulty_bank_grid()[cs[start:stop], bs[start:stop]].sum())
            self.stats.mem_reads += (stop - start) + n_faulty
            self.stats.ecc_line_reads += n_faulty

        seg_start = 0
        for p in np.flatnonzero(dirty):
            p = int(p)
            account_clean(seg_start, p)
            res = self._read_internal(
                Address(int(cs[p]), int(bs[p]), int(rs[p]), int(ls[p])), count_errors
            )
            if res.data is not None:
                data[p] = res.data
                ok[p] = True
            corrected[p] = res.corrected
            uncorrectable[p] = res.uncorrectable
            seg_start = p + 1
        account_clean(seg_start, total)
        return BatchReadResult(data, ok, detected, corrected, uncorrectable)

    # -- scrubbing --------------------------------------------------------------------------

    def scrub(self, repair: bool = False) -> int:
        """One full scrub pass; returns the number of lines with detected errors.

        Detection is vectorized over the whole memory (recompute detection
        bits, compare); each dirty line in a non-retired page then takes the
        normal correction path with error accounting, which drives page
        retirement and bank-pair materialization exactly as field faults
        would (Section III-C).

        The per-line work reuses the scrub's own detection pass as a *live
        mismatch map* instead of re-deriving detection state line by line:
        a line (or a parity-group member) is dirty iff its map entry is
        set, because reads never mutate data and the only mid-pass writes
        are repairs, which clear their entry.  This halves the per-dirty-
        line codec work versus :meth:`_scrub_reference` while producing
        identical stats, data, and health transitions (property-tested).

        With ``repair=True``, correctable lines are written back corrected -
        which permanently heals transient upsets; permanent faults re-assert
        themselves via :meth:`reapply_permanent_faults` at the end of the
        pass, as a failed device would.
        """
        self.stats.scrubs += 1
        computed = self.scheme.compute_detection(self.data)
        mismatch = np.any(computed != self.detection, axis=-1)
        self.stats.scrub_lines_checked += int(mismatch.size)
        dirty = 0
        coords = np.argwhere(mismatch)
        i = 0
        while i < len(coords):
            c, b, r, l = (int(v) for v in coords[i])
            if self.health.is_retired(c, b, r):
                i += 1
                continue
            if self.health.is_faulty(c, b):
                # Maximal run of dirty lines in this already-materialized
                # bank (argwhere is lexicographic, so they are consecutive).
                # Error accounting is a no-op for a faulty pair and repairs
                # inside an excluded bank cannot affect any other line, so
                # the whole run corrects as one batched codec call.
                j = i
                run = []
                while j < len(coords) and coords[j][0] == c and coords[j][1] == b:
                    if not self.health.is_retired(c, b, int(coords[j][2])):
                        run.append(j)
                    j += 1
                dirty += len(run)
                self._scrub_faulty_bank_run(c, b, coords[run], repair, mismatch)
                i = j
                continue
            i += 1
            dirty += 1
            addr = Address(c, b, r, l)
            res = self._correct_known_dirty(addr, mismatch)
            if repair and res.data is not None and res.corrected:
                # Restoring the pre-fault bytes keeps the parity groups
                # consistent (they were computed from exactly this data).
                self.stats.mem_writes += 1
                self.data[addr] = res.data
                self.detection[addr] = self.scheme.compute_detection(res.data)
                mismatch[addr] = False  # repaired: clean for later members
        if repair:
            self.reapply_permanent_faults()
        return dirty

    def _scrub_faulty_bank_run(
        self, channel: int, bank: int, coords: np.ndarray, repair: bool, mismatch: np.ndarray
    ) -> None:
        """Correct a run of dirty lines of one materialized bank in batch.

        Behaviourally identical to taking each line through
        :meth:`_correct_known_dirty`: the bank is faulty, so every line
        reads its materialized ECC line (steps A1/B), ``record_error``
        returns ``"faulty"`` without mutating anything, and correction uses
        the stored bits - all independent per line, hence batchable.
        """
        k = len(coords)
        rows, lns = coords[:, 2], coords[:, 3]
        self.stats.mem_reads += 2 * k
        self.stats.ecc_line_reads += k
        self.stats.detected_errors += k
        known = self._known_bad_chips(channel, bank)
        lines = self.data[channel, bank, rows, lns]
        chips = self.scheme.split_to_chips(lines)
        det = self.detection[channel, bank, rows, lns]
        corr = self.materialized[(channel, bank)][rows, lns]
        res = self.scheme.correct_lines(chips, det, corr, erasures=known or None)
        n_ok = int(res.ok.sum())
        self.stats.corrected += n_ok
        self.stats.uncorrectable += k - n_ok
        if repair and n_ok:
            good = res.ok
            self.stats.mem_writes += n_ok
            self.data[channel, bank, rows[good], lns[good]] = res.data[good]
            self.detection[channel, bank, rows[good], lns[good]] = self.scheme.compute_detection(
                res.data[good]
            )
            mismatch[channel, bank, rows[good], lns[good]] = False

    def _scrub_reference(self, repair: bool = False) -> int:
        """The original per-line scrub, retained as the property-test oracle.

        Must stay behaviourally identical to :meth:`scrub` (same return
        value, same stats, same data/health mutations); every dirty line
        re-derives its own and its parity members' detection state through
        :meth:`_read_internal`.
        """
        self.stats.scrubs += 1
        computed = self.scheme.compute_detection(self.data)
        mismatch = np.any(computed != self.detection, axis=-1)
        self.stats.scrub_lines_checked += int(mismatch.size)
        dirty = 0
        for c, b, r, l in np.argwhere(mismatch):
            addr = Address(int(c), int(b), int(r), int(l))
            if self.health.is_retired(addr.channel, addr.bank, addr.row):
                continue
            dirty += 1
            res = self._read_internal(addr)
            if repair and res.data is not None and res.corrected:
                # Restoring the pre-fault bytes keeps the parity groups
                # consistent (they were computed from exactly this data).
                self.stats.mem_writes += 1
                self.data[addr] = res.data
                self.detection[addr] = self.scheme.compute_detection(res.data)
        if repair:
            self.reapply_permanent_faults()
        return dirty

    def _correct_known_dirty(self, addr: Address, mismatch: np.ndarray) -> ReadResult:
        """:meth:`_read_internal` for a line the scrub already knows is dirty.

        *mismatch* is the scrub pass's live detection map; it stands in for
        every ``detect_line`` recomputation (the line's own and each parity
        member's), which is exact because ``detect_line(...).error`` is
        defined as stored-vs-recomputed detection inequality for every
        scheme.  Stats are counted in the same order as the reference path.
        """
        c, b, r, l = addr
        self.stats.mem_reads += 1
        faulty = self.health.is_faulty(c, b)  # step A1
        if faulty:
            self.stats.mem_reads += 1  # step B
            self.stats.ecc_line_reads += 1
        line = self.data[c, b, r, l]
        det = self.detection[c, b, r, l]
        chips = self.scheme.split_to_chips(line)

        self.stats.detected_errors += 1
        known = self._known_bad_chips(c, b)
        if faulty:
            corr = self.materialized[(c, b)][r, l]
            used_parity = False
        else:
            corr = self._reconstruct_correction_cached(addr, mismatch)  # step C
            used_parity = True
            if corr is None:
                self.stats.uncorrectable += 1
                return ReadResult(data=None, detected=True, uncorrectable=True)

        res = self.scheme.correct_line(chips, det, corr, erasures=known or None)
        self._account_error(c, b, r)
        if res.data is None:
            self.stats.uncorrectable += 1
            return ReadResult(
                data=None,
                detected=True,
                uncorrectable=True,
                used_parity_reconstruction=used_parity,
                used_ecc_line=faulty,
            )
        self.stats.corrected += 1
        return ReadResult(
            data=res.data,
            detected=True,
            corrected=True,
            used_parity_reconstruction=used_parity,
            used_ecc_line=faulty,
        )

    def _reconstruct_correction_cached(
        self, addr: Address, mismatch: np.ndarray
    ) -> "np.ndarray | None":
        """Step C with member dirtiness read from the live mismatch map."""
        c, b, r, l = addr
        if (c, b) in self.excluded:
            return None
        loc = self.layout.location_of(c, b, r)
        self.stats.parity_reconstructions += 1
        self.stats.mem_reads += 1  # the parity line
        acc = self.parity[loc.parity_channel, b, loc.group_slot, l].copy()
        for mc, mrow in loc.members:
            if mc == c and mrow == r:
                continue
            if (mc, b) in self.excluded:
                continue  # removed from parity construction at materialization
            self.stats.mem_reads += 1
            if mismatch[mc, b, mrow, l]:
                return None  # a second channel is faulty at the same location
            acc ^= self.scheme.compute_correction(self.data[mc, b, mrow, l])
        return acc

    # -- verification helpers (tests only) -----------------------------------------------------

    def audit_parity(self) -> int:
        """Count parity groups inconsistent with the stored data.

        For every (parity channel, bank, block), recompute the XOR of the
        member lines' correction bits (skipping excluded banks) and compare
        with the stored parity.  Zero on a healthy machine and after any
        sequence of writes; nonzero entries correspond to regions corrupted
        by injected faults (whose reconstruction is exactly what flags
        them).  This is the core invariant of the design.
        """
        bad = 0
        n = self.geom.channels
        for p in range(n):
            for b in range(self.geom.banks):
                acc = np.zeros_like(self.parity[p, b])
                for c in range(n):
                    if c == p or (c, b) in self.excluded:
                        continue
                    rows = self.data[c, b, self._member_rows(p, c)]
                    acc ^= self.scheme.compute_correction(rows)
                bad += int(np.any(acc != self.parity[p, b], axis=(-1, -2)).sum())
        return bad

    def readable_and_correct(self, addr: Address) -> bool:
        """Does a read return the golden value? (no stats side effects kept)"""
        res = self._read_internal(addr, count_errors=False)
        return res.data is not None and np.array_equal(res.data, self.golden[addr])

    @property
    def effective_capacity_loss_rows(self) -> int:
        """Rows consumed by materialized ECC lines (2R per faulty bank's rows)."""
        return sum(
            MaterializedLayout.ecc_rows_needed(self.geom.rows_per_bank, self.scheme.correction_ratio)
            for _ in self.materialized
        )
