"""Placement of ECC parities and materialized ECC correction bits.

Implements the layouts of Figures 4 and 5:

* **Parity layout** (healthy memory).  Data rows of each bank are grouped
  into *blocks* of ``N - 1`` consecutive rows.  Within a block, every
  (channel, relative-row) cell is assigned to exactly one of ``N`` parity
  groups by a Latin-square rule; group ``i`` contains one row from every
  channel except channel ``i`` and stores its parity *in* channel ``i``.
  Any single-channel fault therefore touches at most one element of any
  group (member or parity), which is precisely the fault model ECC parity
  must cover; and each channel stores ``R`` rows of parity per block, i.e.
  the paper's ``R/(N-1)`` overhead, with each full parity row protecting
  ``(N-1)/R`` rows of data.

* **Materialized-ECC layout** (after a bank pair is marked faulty).  Banks
  are paired ``(2k, 2k+1)`` within a channel; each bank of a faulty pair
  stores the actual correction bits for the *other* bank's data, sized at
  twice the parity budget (``2R`` per data line) so the correction bits
  carry their own ECC protection (Section III-B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Geometry:
    """Shape of the multi-channel memory the ECC Parity layer manages.

    ``rows_per_bank`` counts *data* rows; the parity region is reserved on
    top of them.  A row models a 4KB DRAM row / OS page holding
    ``lines_per_row`` cache lines.
    """

    channels: int
    banks: int
    rows_per_bank: int
    lines_per_row: int

    def __post_init__(self):
        if self.channels < 2:
            raise ValueError("ECC parity requires at least 2 channels")
        if self.banks % 2:
            raise ValueError("banks are managed in pairs; need an even count")

    @property
    def lines_per_bank(self) -> int:
        return self.rows_per_bank * self.lines_per_row

    @property
    def total_data_lines(self) -> int:
        return self.channels * self.banks * self.lines_per_bank

    @property
    def bank_pairs(self) -> int:
        return self.channels * self.banks // 2


@dataclass(frozen=True)
class ParityLocation:
    """Where the ECC parity of a data line lives and who shares it.

    ``members`` lists the (channel, row) of every group member (all distinct
    channels, excluding ``parity_channel``).  The parity payload for each
    line index ``l`` of the member rows is stored contiguously in the
    parity region of (``parity_channel``, same bank), at *slot*
    ``group_slot`` - an abstract index the machine maps to bytes.
    """

    parity_channel: int
    bank: int
    group_slot: int
    members: "tuple[tuple[int, int], ...]"  # ((channel, row), ...)


class ParityLayout:
    """Latin-square block layout for ECC parities (Figure 4)."""

    def __init__(self, geometry: Geometry):
        self.geometry = geometry
        n = geometry.channels
        if geometry.rows_per_bank % (n - 1):
            raise ValueError(
                f"rows_per_bank ({geometry.rows_per_bank}) must be a multiple of "
                f"channels-1 ({n - 1}) for a whole number of parity blocks"
            )
        self.blocks_per_bank = geometry.rows_per_bank // (n - 1)

    # -- forward mapping -----------------------------------------------------------

    def group_of(self, channel: int, row: int) -> "tuple[int, int]":
        """Parity (channel, block-local group id) covering (*channel*, *row*).

        Cell (c, rel) of a block belongs to group ``(c - rel - 1) mod N``,
        which is never ``c`` because ``rel <= N-2``.
        """
        n = self.geometry.channels
        block, rel = divmod(row, n - 1)
        parity_channel = (channel - rel - 1) % n
        return parity_channel, block

    def location_of(self, channel: int, bank: int, row: int) -> ParityLocation:
        """Full parity-group description for a data row."""
        n = self.geometry.channels
        parity_channel, block = self.group_of(channel, row)
        members = tuple(
            (c, block * (n - 1) + ((c - parity_channel - 1) % n))
            for c in range(n)
            if c != parity_channel
        )
        # Sanity: the Latin-square rule must place (channel, row) in the group.
        assert (channel, row) in members
        return ParityLocation(
            parity_channel=parity_channel,
            bank=bank,
            group_slot=block,
            members=members,
        )

    def members_of_group(self, parity_channel: int, block: int) -> "tuple[tuple[int, int], ...]":
        """The (channel, row) members whose parity lives at (parity_channel, block)."""
        n = self.geometry.channels
        return tuple(
            (c, block * (n - 1) + ((c - parity_channel - 1) % n))
            for c in range(n)
            if c != parity_channel
        )

    # -- capacity ---------------------------------------------------------------------

    def parity_rows_per_bank(self, correction_ratio: float) -> int:
        """Reserved parity rows per (channel, bank): ``ceil(blocks * R)``."""
        return math.ceil(self.blocks_per_bank * correction_ratio)

    def data_rows_per_parity_row(self, correction_ratio: float) -> float:
        """The paper's ``(N-1)/R`` rows of data protected per parity row."""
        return (self.geometry.channels - 1) / correction_ratio


class MaterializedLayout:
    """Cross-bank placement of actual correction bits (Figure 5).

    Bank ``2k`` stores the ECC lines for bank ``2k+1`` and vice versa, so a
    data request and its ECC-line request can overlap across banks.
    """

    @staticmethod
    def pair_of(bank: int) -> int:
        """The bank pair index a bank belongs to."""
        return bank // 2

    @staticmethod
    def partner(bank: int) -> int:
        """The other bank of *bank*'s pair - where its ECC lines live."""
        return bank ^ 1

    @staticmethod
    def ecc_rows_needed(rows_per_bank: int, correction_ratio: float) -> int:
        """Rows of a bank consumed by its partner's materialized ECC bits.

        Twice the parity budget: the correction bits themselves need ECC
        protection, and the paper simply doubles the allocation (§III-B).
        """
        return math.ceil(rows_per_bank * 2 * correction_ratio)
