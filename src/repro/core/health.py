"""Bank-pair error counters, the bank health table, and page retirement.

Section III-C: every detected error increments the counter of the bank pair
containing it.  Below the threshold (default 4, chosen to tell bit/row
faults apart from device-level faults) the OS retires the affected physical
page together with every page sharing its ECC parities.  When a counter
saturates, the pair is recorded as faulty: its actual ECC correction bits
are materialized in memory and all subsequent accesses consult this table
(steps A1/A2 of Figure 6).

The table is the small on-chip SRAM the paper budgets at 0.5 B per bank
pair (512 B for a 1024-bank system).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.layout import Geometry, MaterializedLayout


@dataclass
class HealthEvent:
    """One state transition recorded by the health table (for tests/telemetry)."""

    kind: str  # "count" | "retire" | "materialize"
    channel: int
    bank: int
    row: "int | None" = None


@dataclass
class BankHealthTable:
    """Per-bank-pair saturating error counters plus the faulty-pair set."""

    geometry: Geometry
    threshold: int = 4
    _counters: "dict[tuple[int, int], int]" = field(default_factory=dict)
    _faulty_pairs: "set[tuple[int, int]]" = field(default_factory=set)
    _retired_pages: "set[tuple[int, int, int]]" = field(default_factory=set)
    events: "list[HealthEvent]" = field(default_factory=list)

    # -- lookups (steps A1 / A2; modelled as a fast on-chip SRAM read) -------------

    def is_faulty(self, channel: int, bank: int) -> bool:
        """Bank health lookup: is this bank's pair recorded as faulty?"""
        return (channel, MaterializedLayout.pair_of(bank)) in self._faulty_pairs

    def is_retired(self, channel: int, bank: int, row: int) -> bool:
        return (channel, bank, row) in self._retired_pages

    # -- updates ---------------------------------------------------------------------

    def record_error(self, channel: int, bank: int, row: int) -> "str":
        """Count a detected error; returns the action taken.

        Returns ``"counted"`` while under threshold (caller should retire
        the page and its parity-sharers), ``"materialize"`` exactly when the
        counter saturates, and ``"faulty"`` when the pair was already
        recorded as faulty.
        """
        pair = (channel, MaterializedLayout.pair_of(bank))
        if pair in self._faulty_pairs:
            return "faulty"
        count = self._counters.get(pair, 0) + 1
        self._counters[pair] = count
        self.events.append(HealthEvent("count", channel, bank, row))
        if count >= self.threshold:
            self._faulty_pairs.add(pair)
            self.events.append(HealthEvent("materialize", channel, bank))
            return "materialize"
        return "counted"

    def retire_page(self, channel: int, bank: int, row: int) -> None:
        """Retire one physical page (the OS-visible reaction below threshold)."""
        if (channel, bank, row) not in self._retired_pages:
            self._retired_pages.add((channel, bank, row))
            self.events.append(HealthEvent("retire", channel, bank, row))

    # -- accounting ---------------------------------------------------------------------

    @property
    def retired_page_count(self) -> int:
        return len(self._retired_pages)

    @property
    def faulty_pairs(self) -> "frozenset[tuple[int, int]]":
        return frozenset(self._faulty_pairs)

    def counter(self, channel: int, bank: int) -> int:
        return self._counters.get((channel, MaterializedLayout.pair_of(bank)), 0)

    @property
    def sram_bytes(self) -> float:
        """On-chip storage: 0.5 B per bank pair (paper §III-E)."""
        return 0.5 * self.geometry.bank_pairs

    def max_retired_pages_bound(self) -> int:
        """Paper's bound: at most ``threshold * (N-1)`` retired pages per pair.

        Each sub-threshold error retires the faulty page plus the ``N-2``
        healthy pages sharing its parity groups; with the default threshold
        of 4 this is a negligible fraction of a bank pair.
        """
        return self.threshold * (self.geometry.channels - 1)
