"""ECC Parity as a scheme-level descriptor (capacity and traffic model).

Wraps any base :class:`~repro.ecc.base.ECCScheme` and exposes the overhead
arithmetic of Section III-E plus the geometry the timing/energy plane needs.
The functional protocol lives in :mod:`repro.core.machine`; this class is
pure bookkeeping, so Table III can be reproduced without simulating a byte.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ecc.base import ECCScheme, EccTraffic

#: Capacity overhead of the dedicated detection chips per DIMM (paper: the
#: standard ECC-DIMM arrangement of 1 ECC chip per 8 data chips).
DETECTION_OVERHEAD = 0.125


@dataclass
class ECCParityScheme:
    """ECC Parity applied over *base*, shared across *channels* channels.

    Parameters
    ----------
    base:
        The underlying ECC whose correction bits are replaced by their
        cross-channel parity (e.g. LOT-ECC5, RAIM-18).
    channels:
        ``N``: the number of logical channels sharing ECC parities.
    """

    base: ECCScheme
    channels: int

    def __post_init__(self):
        if self.channels < 2:
            raise ValueError("ECC Parity needs at least two channels")

    # -- identity -------------------------------------------------------------------

    @property
    def name(self) -> str:
        return f"{self.base.name} + ECC Parity"

    # -- capacity (Section III-E) ------------------------------------------------------

    @property
    def detection_overhead(self) -> float:
        """Detection bits stay per-channel in the dedicated ECC chips."""
        return self.base.detection_overhead

    @property
    def parity_overhead(self) -> float:
        """Static parity-line overhead: ``(1 + 12.5%) * R / (N - 1)``.

        The ``1 + 12.5%`` factor charges the detection bits that protect the
        parity lines themselves.
        """
        r = self.base.correction_ratio
        return (1 + DETECTION_OVERHEAD) * r / (self.channels - 1)

    @property
    def capacity_overhead(self) -> float:
        """Total static overhead (fault-free memory)."""
        return self.detection_overhead + self.parity_overhead

    def eol_capacity_overhead(self, faulty_fraction: float) -> float:
        """End-of-life overhead once *faulty_fraction* of memory is materialized.

        Materialized regions store actual correction bits at twice the
        parity budget (``2R``, §III-B) plus their detection bits, replacing
        their share of parity lines.
        """
        r = self.base.correction_ratio
        materialized = faulty_fraction * (1 + DETECTION_OVERHEAD) * 2 * r
        return self.capacity_overhead + materialized

    def retired_pages_bound(self, threshold: int = 4) -> int:
        """Maximum pages retired before one bank pair's counter saturates."""
        return threshold * (self.channels - 1)

    # -- traffic / geometry for the timing plane ------------------------------------------

    @property
    def traffic(self) -> EccTraffic:
        """Parity updates always use the XOR-cacheline path (Section III-D)."""
        return EccTraffic.XOR_LINE

    @property
    def ecc_line_coverage(self) -> int:
        """Data lines covered by one XOR cacheline.

        Section IV-C: the same group of logically adjacent lines in ``N-1``
        logically adjacent physical pages share one XOR cacheline.
        """
        per_page = self.base.ecc_line_coverage or 1
        return per_page * (self.channels - 1)

    # Geometry passthroughs used by the DRAM/energy plane.
    @property
    def line_size(self) -> int:
        return self.base.line_size

    @property
    def chips_per_rank(self) -> int:
        return self.base.chips_per_rank

    def chip_widths(self) -> "list[int]":
        return self.base.chip_widths()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ECCParityScheme({self.base.name}, N={self.channels})"
