"""Functional model of the Figure 7 LLC modifications.

Sits between an application and the :class:`ECCParityMachine` and executes
the optimized flows of Section III-D bit-true:

* data lines are cached write-back/write-allocate; each cached line
  remembers its *fill value* (the value memory holds), so the correction-bit
  delta ``ECC(fill) ^ ECC(current)`` is available at eviction with no extra
  memory read;
* deltas of all dirty lines protected by the same parity line compact into
  one **XOR cacheline**, keyed by the parity line's location;
* evicting a XOR cacheline applies the accumulated delta to the stored
  parity with a single read-modify-write (Equation 1, batched);
* write-backs to banks recorded as faulty update their materialized ECC
  line directly (step D) and bypass the XOR path.

The controller exists to *prove* the optimization preserves the design's
core invariant: after any access sequence plus a flush, every parity group
in memory is exactly the XOR of its members' correction bits
(:meth:`ECCParityMachine.audit_parity` returns 0).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.machine import Address, ECCParityMachine


@dataclass
class CachedLine:
    """One resident data line: current value plus the memory-side value."""

    data: np.ndarray
    fill: np.ndarray  #: the value memory currently holds (at fill/last wb)
    dirty: bool = False


@dataclass
class ControllerStats:
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    xor_merges: int = 0  #: deltas folded into an existing XOR cacheline
    xor_evictions: int = 0
    ecc_line_updates: int = 0  #: step-D updates for faulty banks


class XorCachingController:
    """Write-back LLC with XOR-cacheline compaction over an ECC Parity machine."""

    def __init__(self, machine: ECCParityMachine, capacity_lines: int = 64, xor_capacity: int = 16):
        self.machine = machine
        self.capacity = capacity_lines
        self.xor_capacity = xor_capacity
        self._lines: "OrderedDict[Address, CachedLine]" = OrderedDict()
        #: (parity_channel, bank, block, line) -> accumulated delta
        self._xor: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self.stats = ControllerStats()

    # -- application interface -------------------------------------------------------------

    def read(self, addr: Address) -> np.ndarray:
        """Cached read; misses fill from the machine (correcting if needed)."""
        line = self._lookup(addr)
        return line.data.copy()

    def write(self, addr: Address, data: np.ndarray) -> None:
        """Cached write (write-allocate)."""
        data = np.asarray(data, dtype=np.uint8)
        line = self._lookup(addr)
        line.data = data.copy()
        line.dirty = True

    def flush(self) -> None:
        """Write back everything; afterwards memory is fully consistent."""
        for addr in list(self._lines):
            self._evict_line(addr)
        for key in list(self._xor):
            self._evict_xor(key)

    # -- internals ---------------------------------------------------------------------------

    def _lookup(self, addr: Address) -> CachedLine:
        if addr in self._lines:
            self.stats.hits += 1
            self._lines.move_to_end(addr)
            return self._lines[addr]
        self.stats.misses += 1
        res = self.machine.read(addr)
        if res.data is None:
            raise RuntimeError(f"uncorrectable error filling {addr}")
        line = CachedLine(data=res.data.copy(), fill=res.data.copy())
        self._lines[addr] = line
        if len(self._lines) > self.capacity:
            victim = next(iter(self._lines))
            self._evict_line(victim)
        return line

    def _evict_line(self, addr: Address) -> None:
        line = self._lines.pop(addr)
        if not line.dirty:
            return
        self.stats.writebacks += 1
        m = self.machine
        c, b, r, l = addr
        if m.health.is_faulty(c, b):
            # Step D: recompute and store the actual correction bits.
            m.materialized[(c, b)][r, l] = m.scheme.compute_correction(line.data)
            m.stats.ecc_line_writes += 1
            m.stats.mem_writes += 1
            m.write_raw(addr, line.data)
            self.stats.ecc_line_updates += 1
            return
        # Healthy bank: fold ECC(fill) ^ ECC(new) into the XOR cacheline.
        delta = m.scheme.compute_correction(line.fill) ^ m.scheme.compute_correction(line.data)
        loc = m.layout.location_of(c, b, r)
        key = (loc.parity_channel, b, loc.group_slot, l)
        if key in self._xor:
            self._xor[key] ^= delta
            self._xor.move_to_end(key)
            self.stats.xor_merges += 1
        else:
            self._xor[key] = delta.copy()
            if len(self._xor) > self.xor_capacity:
                self._evict_xor(next(iter(self._xor)))
        m.write_raw(addr, line.data)

    def _evict_xor(self, key: tuple) -> None:
        delta = self._xor.pop(key)
        if not delta.any():
            return  # writes that restored the old value cancel out
        self.stats.xor_evictions += 1
        self.machine.apply_parity_delta(*key, delta)
