"""Two-stage ECC parity encoding (Section III-A of the paper).

Stage one computes the underlying ECC's correction bits for a data line;
stage two XORs the correction bits of lines in N-1 different channels into a
single *ECC parity* that is stored in place of all of them.

All functions are pure: they map line payloads to parity payloads and back,
independent of where anything is stored.  Address placement lives in
:mod:`repro.core.layout`; the storage protocol in :mod:`repro.core.machine`.
"""

from __future__ import annotations

import numpy as np

from repro.ecc.base import ECCScheme


def ecc_parity(scheme: ECCScheme, lines: "list[np.ndarray]") -> np.ndarray:
    """Stage-1 + stage-2 encode: parity of the correction bits of *lines*.

    *lines* are the data payloads of the group members (one per distinct
    channel, N-1 of them).  Returns the ECC parity payload
    (``scheme.correction_bytes_per_line`` bytes).
    """
    if not lines:
        raise ValueError("ECC parity of an empty group")
    acc = scheme.compute_correction(lines[0]).astype(np.uint8)
    for line in lines[1:]:
        acc = np.bitwise_xor(acc, scheme.compute_correction(line))
    return acc


def reconstruct_correction(
    scheme: ECCScheme,
    parity: np.ndarray,
    healthy_lines: "list[np.ndarray]",
) -> np.ndarray:
    """Recover the correction bits of the one missing group member.

    XORs the stored ECC parity with the correction bits recomputed from the
    group's remaining (healthy) data lines - the core trick of the paper:
    healthy channels' correction bits need not be stored because they can
    always be recomputed from the data.
    """
    acc = np.asarray(parity, dtype=np.uint8).copy()
    for line in healthy_lines:
        acc = np.bitwise_xor(acc, scheme.compute_correction(line))
    return acc


def updated_parity(
    scheme: ECCScheme,
    old_parity: np.ndarray,
    old_line: np.ndarray,
    new_line: np.ndarray,
) -> np.ndarray:
    """Equation 1: ``ECCP_new = ECCP_old ^ ECC_old ^ ECC_new``.

    Applied on every write-back to a healthy bank so the stored parity
    tracks the line's new contents without re-reading the whole group.
    """
    return np.bitwise_xor(
        np.asarray(old_parity, dtype=np.uint8),
        np.bitwise_xor(
            scheme.compute_correction(old_line), scheme.compute_correction(new_line)
        ),
    )


def correction_delta(scheme: ECCScheme, old_line: np.ndarray, new_line: np.ndarray) -> np.ndarray:
    """``ECC_old ^ ECC_new`` - the quantity a XOR cacheline accumulates.

    The LLC compacts the deltas of all dirty lines covered by one parity
    line into a single cacheline (Section III-D); applying the accumulated
    delta to the stored parity is then a single read-modify-write.
    """
    return np.bitwise_xor(
        scheme.compute_correction(old_line), scheme.compute_correction(new_line)
    )
