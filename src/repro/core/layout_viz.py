"""ASCII rendering of the parity and materialized-ECC layouts (Figs 4, 5).

Turns a :class:`~repro.core.layout.ParityLayout` (and optionally a machine's
faulty-bank state) into the kind of diagram the paper draws: one column per
channel, one cell per row, each data cell labeled with the channel that
stores its parity, and the reserved regions listed underneath.
"""

from __future__ import annotations

from repro.core.layout import Geometry, MaterializedLayout, ParityLayout


def render_parity_layout(layout: ParityLayout, bank: int = 0) -> str:
    """Figure 4-style map: which channel holds each (channel, row)'s parity."""
    g = layout.geometry
    header = "row | " + " | ".join(f"ch{c} data" for c in range(g.channels))
    sep = "-" * len(header)
    lines = [
        f"Bank {bank}: data rows and their parity channels "
        f"(cell 'Pk' = parity stored in channel k)",
        header,
        sep,
    ]
    for r in range(g.rows_per_bank):
        cells = []
        for c in range(g.channels):
            p, _ = layout.group_of(c, r)
            cells.append(f"P{p}".center(8))
        lines.append(f"{r:3d} | " + " | ".join(cells))
    lines.append(sep)
    lines.append(
        f"reserved parity rows per (channel, bank) at R=0.25: "
        f"{layout.parity_rows_per_bank(0.25)} "
        f"(each full parity row protects {layout.data_rows_per_parity_row(0.25):.0f} data rows)"
    )
    return "\n".join(lines)


def render_group(layout: ParityLayout, parity_channel: int, block: int) -> str:
    """One parity group spelled out: members and the parity location."""
    members = layout.members_of_group(parity_channel, block)
    parts = [f"group (parity ch{parity_channel}, block {block}):"]
    for c, r in members:
        parts.append(f"  member: channel {c}, row {r}")
    parts.append(f"  parity: channel {parity_channel}, reserved rows, slot {block}")
    return "\n".join(parts)


def render_materialized_state(machine) -> str:
    """Figure 5-style summary of a machine's faulty/materialized banks."""
    g = machine.geom
    lines = ["Bank state ('.' healthy, 'M' materialized pair, 'x' excluded):"]
    header = "      " + " ".join(f"b{b}" for b in range(g.banks))
    lines.append(header)
    for c in range(g.channels):
        cells = []
        for b in range(g.banks):
            if (c, b) in machine.materialized:
                cells.append("M ")
            elif (c, b) in machine.excluded:
                cells.append("x ")
            else:
                cells.append(". ")
        lines.append(f"ch{c:2d}  " + " ".join(cells))
    rows_lost = machine.effective_capacity_loss_rows
    lines.append(
        f"materialized ECC consumes {rows_lost} partner-bank rows "
        f"(2R per faulty bank's data, Section III-B)"
    )
    return "\n".join(lines)
