"""ECC Parity - the paper's contribution.

* :mod:`repro.core.parity` - two-stage encoding math (Fig. 3, Eq. 1).
* :mod:`repro.core.layout` - parity-line and materialized-ECC placement
  (Figs. 4 and 5).
* :mod:`repro.core.health` - bank-pair error counters, page retirement,
  the bank health table (Section III-C).
* :mod:`repro.core.machine` - bit-true functional machine executing the
  whole protocol (Fig. 6) against injectable device faults.
* :mod:`repro.core.scheme` - capacity/traffic descriptor used by the
  timing-energy plane and the Table III arithmetic (Section III-E).
"""

from repro.core.health import BankHealthTable, HealthEvent
from repro.core.layout import Geometry, MaterializedLayout, ParityLayout, ParityLocation
from repro.core.layout_viz import (
    render_group,
    render_materialized_state,
    render_parity_layout,
)
from repro.core.llc_controller import ControllerStats, XorCachingController
from repro.core.machine import (
    Address,
    ECCParityMachine,
    MachineStats,
    PermanentFault,
    ReadResult,
)
from repro.core.parity import (
    correction_delta,
    ecc_parity,
    reconstruct_correction,
    updated_parity,
)
from repro.core.scheme import DETECTION_OVERHEAD, ECCParityScheme

__all__ = [
    "BankHealthTable",
    "HealthEvent",
    "Geometry",
    "MaterializedLayout",
    "ParityLayout",
    "ParityLocation",
    "render_group",
    "render_materialized_state",
    "render_parity_layout",
    "ControllerStats",
    "XorCachingController",
    "Address",
    "ECCParityMachine",
    "MachineStats",
    "PermanentFault",
    "ReadResult",
    "correction_delta",
    "ecc_parity",
    "reconstruct_correction",
    "updated_parity",
    "DETECTION_OVERHEAD",
    "ECCParityScheme",
]
