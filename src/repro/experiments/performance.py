"""Performance normalized to baselines (Figures 14 and 15).

Performance is instructions per cycle of the measured phase; the figures
report the ECC-Parity systems' performance divided by each baseline's for
the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.energy import COMPARISONS
from repro.experiments.evaluation import bins, evaluation_matrix
from repro.experiments.report import geomean


@dataclass
class PerfReport:
    """Normalized performance per workload and comparison."""

    system_class: str
    per_workload: "dict[tuple[str, str, str], float]"  # (wl, prop, base) -> perf ratio
    bin1: "list[str]"
    bin2: "list[str]"

    def normalized(self, workload: str, proposal: str, baseline: str) -> float:
        return self.per_workload[(workload, proposal, baseline)]

    def average(self, proposal: str, baseline: str) -> float:
        vals = [
            v for (w, p, b), v in self.per_workload.items() if p == proposal and b == baseline
        ]
        return geomean(vals)


def perf_report(system_class: str = "quad", **matrix_kwargs) -> PerfReport:
    """Figure 14 (quad) / Figure 15 (dual)."""
    matrix = evaluation_matrix(system_class, **matrix_kwargs)
    bin1, bin2 = bins(matrix)
    per = {}
    for wl in bin1 + bin2:
        for prop, base in COMPARISONS:
            per[(wl, prop, base)] = matrix[(wl, prop)].ipc / matrix[(wl, base)].ipc
    return PerfReport(system_class, per, bin1, bin2)
