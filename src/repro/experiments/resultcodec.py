"""Compact binary transport for campaign worker results.

Pooled campaign results historically crossed the process boundary as
pickled object graphs.  For batched super-tasks that cost matters twice:
once per inner result on the worker side and once in the parent's decode
loop, and pickle's memo machinery dwarfs the handful of floats a matrix
cell or Monte Carlo histogram actually carries.  This codec flattens the
result shapes the drivers return — tuples/lists/dicts of primitives plus
NumPy arrays — into a tagged, length-prefixed byte stream decoded with
``struct`` and ``np.frombuffer`` (arrays come back zero-copy from the
received buffer).

The contract is *type-exact* round-tripping: ``decode(encode(x))`` equals
``x`` including container types, ``bool`` vs ``int``, and float bit
patterns — the serial == parallel bit-identity invariant rides on it.
Values the fast tags cannot represent exactly (arbitrary objects, huge
ints, type subclasses) fall back to an embedded pickle frame, so the
codec never rejects a result, it only stops being fast.

On top of the value codec sits the **framed-record layer** used by the
super-task spool (and salvaged by the campaign supervisor): fixed-header
records carrying per-task attribution — index, wall seconds, worker pid,
the emitting span id (:mod:`repro.obs.trace`; zero when tracing is off)
— plus a kind tag and a length-prefixed payload blob.  Each frame is
written with a single ``os.write`` on an O_APPEND descriptor, so a
reader never sees an interleaved frame, only a truncated tail.
"""

from __future__ import annotations

import pickle
import struct
from typing import NamedTuple

import numpy as np

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

#: Tag bytes (one per encodable shape).  ``PKL`` is the exact-but-slow
#: escape hatch for anything the fast tags cannot represent.
_NONE = b"N"
_TRUE = b"T"
_FALSE = b"F"
_INT = b"i"
_FLOAT = b"f"
_STR = b"s"
_BYTES = b"b"
_TUPLE = b"t"
_LIST = b"l"
_DICT = b"d"
_ARRAY = b"a"
_PKL = b"p"


def _encode_into(obj, out: "list[bytes]") -> None:
    kind = type(obj)
    if obj is None:
        out.append(_NONE)
    elif kind is bool:
        out.append(_TRUE if obj else _FALSE)
    elif kind is int:
        if _INT64_MIN <= obj <= _INT64_MAX:
            out.append(_INT)
            out.append(_I64.pack(obj))
        else:
            _encode_pickle(obj, out)
    elif kind is float:
        out.append(_FLOAT)
        out.append(_F64.pack(obj))
    elif kind is str:
        raw = obj.encode("utf-8")
        out.append(_STR)
        out.append(_U32.pack(len(raw)))
        out.append(raw)
    elif kind is bytes:
        out.append(_BYTES)
        out.append(_U32.pack(len(obj)))
        out.append(obj)
    elif kind is tuple or kind is list:
        out.append(_TUPLE if kind is tuple else _LIST)
        out.append(_U32.pack(len(obj)))
        for item in obj:
            _encode_into(item, out)
    elif kind is dict:
        out.append(_DICT)
        out.append(_U32.pack(len(obj)))
        for key, value in obj.items():
            _encode_into(key, out)
            _encode_into(value, out)
    elif kind is np.ndarray:
        if obj.dtype.hasobject:
            _encode_pickle(obj, out)
            return
        arr = np.ascontiguousarray(obj)
        dt = arr.dtype.str.encode("ascii")
        out.append(_ARRAY)
        out.append(_U32.pack(len(dt)))
        out.append(dt)
        out.append(_U32.pack(arr.ndim))
        for dim in arr.shape:
            out.append(_I64.pack(dim))
        raw = arr.tobytes()
        out.append(_U32.pack(len(raw)))
        out.append(raw)
    else:
        _encode_pickle(obj, out)


def _encode_pickle(obj, out: "list[bytes]") -> None:
    raw = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    out.append(_PKL)
    out.append(_U32.pack(len(raw)))
    out.append(raw)


def encode(obj) -> bytes:
    """Serialize *obj* into one compact, self-delimiting byte string."""
    out: "list[bytes]" = []
    _encode_into(obj, out)
    return b"".join(out)


def _decode_at(buf: "memoryview", pos: int) -> "tuple[object, int]":
    tag = bytes(buf[pos : pos + 1])
    pos += 1
    if tag == _NONE:
        return None, pos
    if tag == _TRUE:
        return True, pos
    if tag == _FALSE:
        return False, pos
    if tag == _INT:
        return _I64.unpack_from(buf, pos)[0], pos + 8
    if tag == _FLOAT:
        return _F64.unpack_from(buf, pos)[0], pos + 8
    if tag == _STR:
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        return bytes(buf[pos : pos + n]).decode("utf-8"), pos + n
    if tag == _BYTES:
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        return bytes(buf[pos : pos + n]), pos + n
    if tag in (_TUPLE, _LIST):
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        items = []
        for _ in range(n):
            item, pos = _decode_at(buf, pos)
            items.append(item)
        return (tuple(items) if tag == _TUPLE else items), pos
    if tag == _DICT:
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        d = {}
        for _ in range(n):
            key, pos = _decode_at(buf, pos)
            value, pos = _decode_at(buf, pos)
            d[key] = value
        return d, pos
    if tag == _ARRAY:
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        dt = np.dtype(bytes(buf[pos : pos + n]).decode("ascii"))
        pos += n
        (ndim,) = _U32.unpack_from(buf, pos)
        pos += 4
        shape = []
        for _ in range(ndim):
            shape.append(_I64.unpack_from(buf, pos)[0])
            pos += 8
        (nbytes,) = _U32.unpack_from(buf, pos)
        pos += 4
        # A zero-size array must not touch the buffer at all (frombuffer
        # rejects empty counts on some dtypes); build it directly.
        if nbytes == 0:
            return np.zeros(shape, dtype=dt), pos
        arr = np.frombuffer(buf[pos : pos + nbytes], dtype=dt).reshape(shape)
        return arr.copy(), pos + nbytes
    if tag == _PKL:
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        return pickle.loads(bytes(buf[pos : pos + n])), pos + n
    raise ValueError(f"resultcodec: unknown tag {tag!r} at offset {pos - 1}")


def decode(data: "bytes | memoryview") -> object:
    """Inverse of :func:`encode`; rejects empty and trailing-garbage input."""
    if len(data) == 0:
        raise ValueError("resultcodec: cannot decode an empty buffer")
    obj, pos = _decode_at(memoryview(data), 0)
    if pos != len(data):
        raise ValueError(f"resultcodec: {len(data) - pos} trailing byte(s) after value")
    return obj


# --------------------------------------------------------------------------
# Framed-record layer (super-task spools, supervisor salvage)

#: Frame kinds: a codec-encoded result, a pickled worker exception, or a
#: codec-encoded result that a ``corrupt`` chaos fault wrapped.
KIND_OK, KIND_EXC, KIND_CORRUPT = 0, 1, 2

#: ``(index, wall_s, pid, span, kind, blob_len)`` then ``blob_len`` bytes.
#: ``span`` is the emitting trace span id as a u64 (0 = tracing off).
_FRAME_HEADER = struct.Struct("<qdqQBI")

FRAME_HEADER_SIZE = _FRAME_HEADER.size


class Frame(NamedTuple):
    """One decoded framed record (payload still an encoded blob)."""

    index: int
    wall_s: float
    pid: int
    span: "str | None"  #: emitting span id (16 hex) or None when untraced
    kind: int
    blob: bytes


def span_to_u64(span_id: "str | None") -> int:
    """A 16-hex span id (:func:`repro.obs.trace.new_id`) as u64; None → 0."""
    return int(span_id, 16) if span_id else 0


def u64_to_span(value: int) -> "str | None":
    """Inverse of :func:`span_to_u64`; 0 → None."""
    return format(value, "016x") if value else None


def pack_frame(
    index: int,
    wall_s: float,
    pid: int,
    kind: int,
    blob: bytes,
    span_id: "str | None" = None,
) -> bytes:
    """One self-delimiting framed record, ready for a single append write."""
    return (
        _FRAME_HEADER.pack(index, wall_s, pid, span_to_u64(span_id), kind, len(blob))
        + blob
    )


def unpack_frames(data: "bytes | memoryview") -> "tuple[list[Frame], int]":
    """Parse complete frames from *data*; returns ``(frames, consumed)``.

    Stops at the first truncated frame: each frame is one append write,
    so a torn tail is a write still in flight — everything before it is
    trustworthy, and *consumed* is where the next read should resume.
    """
    frames: "list[Frame]" = []
    pos, end = 0, len(data)
    while pos + FRAME_HEADER_SIZE <= end:
        index, wall, pid, span, kind, blob_len = _FRAME_HEADER.unpack_from(data, pos)
        if pos + FRAME_HEADER_SIZE + blob_len > end:
            break
        pos += FRAME_HEADER_SIZE
        frames.append(
            Frame(index, wall, pid, u64_to_span(span), kind, bytes(data[pos : pos + blob_len]))
        )
        pos += blob_len
    return frames, pos
