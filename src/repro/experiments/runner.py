"""Glue that runs one (workload x system-configuration) timing simulation.

This is the reproduction's equivalent of a GEM5+DRAMsim run: it instantiates
the memory system from a Table II configuration, builds the scheme's
ECC-traffic model (wrapping it in ECC Parity where the configuration says
so), spins up the 8-core trace-driven system, and returns the measured-phase
:class:`~repro.cpu.system.SimResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.ecc_traffic import EccTrafficModel
from repro.cpu.llc import LLC
from repro.cpu.system import SimResult, SimSystem
from repro.dram.system import MemorySystem, MemorySystemConfig
from repro.ecc.catalog import SYSTEM_CLASSES, SystemConfig
from repro.workloads.generator import make_core_traces
from repro.workloads.profiles import WorkloadProfile

#: LLC references per phase (warm-up / measurement).  Sized for several
#: LLC turnovers at the default scale so ECC/XOR-line eviction traffic
#: reaches steady state; instruction budgets derive from this per workload.
DEFAULT_ACCESS_TARGET = 40_000

#: Default system-scaling factor: the 8 MB LLC and all workload footprints
#: shrink together by this factor, preserving miss rates while making the
#: warm-up (filling the LLC) tractable in pure Python.
DEFAULT_SCALE = 16


def adaptive_instructions(workload: WorkloadProfile, access_target: int = DEFAULT_ACCESS_TARGET) -> int:
    """Total instructions needed for ~*access_target* LLC references.

    Low-intensity workloads (sjeng at 2.5 accesses/kilo-instruction) need
    far more instructions than memory-bound ones to exercise the same
    amount of cache/memory behaviour; simulating a fixed instruction count
    would leave their ECC-line traffic un-warmed.
    """
    return int(access_target * 1000 / workload.apki)


@dataclass(frozen=True)
class RunSpec:
    """One cell of the evaluation matrix.

    ``warmup_instructions`` / ``measure_instructions`` of ``None`` select
    the adaptive per-workload budget (see :func:`adaptive_instructions`).
    """

    workload: WorkloadProfile
    config: SystemConfig
    warmup_instructions: "int | None" = None
    measure_instructions: "int | None" = None
    seed: int = 0
    scale: int = DEFAULT_SCALE

    @property
    def resolved_warmup(self) -> int:
        if self.warmup_instructions is not None:
            return self.warmup_instructions
        return adaptive_instructions(self.workload)

    @property
    def resolved_measure(self) -> int:
        if self.measure_instructions is not None:
            return self.measure_instructions
        return adaptive_instructions(self.workload)


#: Per-process LLC pool keyed by (size_bytes, line_size): an evaluation
#: matrix runs one cell at a time per worker, so consecutive cells with the
#: same cache geometry recycle one LLC via :meth:`LLC.reset` (slice-assign
#: over the cached flat arrays) instead of reallocating ~0.5M slot entries
#: per config.  Address-mapping decode tables are likewise shared across
#: ``SimSystem`` instances (see ``repro.dram.mapping._SHARED_TABLES``).
_LLC_POOL: "dict[tuple[int, int], LLC]" = {}


def llc_size_bytes(scale: int) -> int:
    """LLC capacity at a system-scaling factor (the paper's 8 MB, scaled)."""
    return (8 << 20) // scale


def _pooled_llc(size_bytes: int, line_size: int) -> LLC:
    key = (size_bytes, line_size)
    llc = _LLC_POOL.get(key)
    if llc is None:
        llc = _LLC_POOL[key] = LLC(size_bytes=size_bytes, line_size=line_size)
    else:
        llc.reset()
    return llc


def build_system(spec: RunSpec, reuse_llc: bool = False) -> SimSystem:
    """Construct the full simulated system for a run specification.

    With *reuse_llc* the LLC comes from the per-process pool (reset, not
    reallocated) - only safe when at most one system built this way is
    live at a time, which holds for the sequential :func:`run` path.
    """
    scheme = spec.config.make_scheme()
    mem = MemorySystem(
        MemorySystemConfig(
            channels=spec.config.channels,
            ranks_per_channel=spec.config.ranks_per_channel,
            chip_widths=scheme.chip_widths(),
            line_size=scheme.line_size,
        )
    )
    ecc_model = EccTrafficModel.for_scheme(
        scheme,
        ecc_parity_channels=spec.config.channels if spec.config.ecc_parity else None,
    )
    traces = make_core_traces(
        spec.workload,
        cores=8,
        llc_block_bytes=scheme.line_size,
        seed=spec.seed,
        footprint_scale=spec.scale,
    )
    size_bytes = llc_size_bytes(spec.scale)
    if reuse_llc:
        llc = _pooled_llc(size_bytes, scheme.line_size)
    else:
        llc = LLC(size_bytes=size_bytes, line_size=scheme.line_size)
    return SimSystem(mem, traces, ecc_model, llc=llc)


def run(spec: RunSpec) -> SimResult:
    """Execute one simulation and return the measured-phase result.

    The timing kernel (epoch-batched vs event-driven reference) follows
    ``REPRO_SIM_KERNEL``; results are bit-identical either way, so the
    evaluation-matrix cache needs no kernel key.
    """
    system = build_system(spec, reuse_llc=True)
    return system.run(spec.resolved_warmup, spec.resolved_measure)


def run_matrix(
    workloads: "list[WorkloadProfile]",
    config_keys: "list[str]",
    system_class: str = "quad",
    warmup: "int | None" = None,
    measure: "int | None" = None,
    seed: int = 0,
    scale: int = DEFAULT_SCALE,
) -> "dict[tuple[str, str], SimResult]":
    """Run a workload x configuration sweep; keys are (workload, config)."""
    configs = SYSTEM_CLASSES[system_class]
    out = {}
    for wl in workloads:
        for key in config_keys:
            spec = RunSpec(wl, configs[key], warmup, measure, seed, scale)
            out[(wl.name, key)] = run(spec)
    return out
