"""Materialization-storm transition experiment (Section III-B's claim).

When a bank pair's error counter saturates, the controller must read every
line of the pair, compute correction bits, write the ECC lines, and
recalculate the affected parity lines - "a few seconds of degraded memory
performance per hundreds of days", which the paper argues is negligible.

This experiment injects that maintenance storm into a running workload and
records the windowed-IPC timeline: how deep the dip is and how fast the
system recovers.  The storm volume is the real one for the simulated
geometry: every line of two banks read, plus the ECC and parity lines
rewritten (~ 2R + R/(N-1) of the pair's size).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.ecc_traffic import EccTrafficModel
from repro.cpu.llc import LLC
from repro.cpu.system import SimSystem
from repro.dram.system import MemorySystem, MemorySystemConfig
from repro.ecc.catalog import SystemConfig
from repro.experiments.runner import RunSpec
from repro.workloads.generator import make_core_traces
from repro.workloads.profiles import WorkloadProfile


@dataclass
class TransitionResult:
    """Windowed-IPC timeline around a materialization storm."""

    window_cycles: int
    storm_cycle: int
    timeline_ipc: "list[float]"
    storm_reads: int
    storm_writes: int

    @property
    def baseline_ipc(self) -> float:
        pre = [v for i, v in enumerate(self.timeline_ipc) if (i + 1) * self.window_cycles < self.storm_cycle]
        pre = pre[1:]  # drop the cold first window
        return sum(pre) / len(pre) if pre else float("nan")

    @property
    def dip_ipc(self) -> float:
        idx = self.storm_cycle // self.window_cycles
        during = self.timeline_ipc[idx : idx + 3]
        return min(during) if during else float("nan")

    @property
    def recovery_windows(self) -> int:
        """Windows after the storm until IPC regains 95% of baseline."""
        idx = self.storm_cycle // self.window_cycles
        target = 0.95 * self.baseline_ipc
        for k, v in enumerate(self.timeline_ipc[idx:]):
            if v >= target:
                return k
        return len(self.timeline_ipc) - idx


def materialization_storm(
    workload: WorkloadProfile,
    config: SystemConfig,
    scale: int = 32,
    seed: int = 0,
    window_cycles: int = 20_000,
) -> TransitionResult:
    """Run a workload and inject one bank-pair materialization mid-flight."""
    scheme = config.make_scheme()
    mem = MemorySystem(
        MemorySystemConfig(
            channels=config.channels,
            ranks_per_channel=config.ranks_per_channel,
            chip_widths=scheme.chip_widths(),
            line_size=scheme.line_size,
        )
    )
    model = EccTrafficModel.for_scheme(
        scheme, ecc_parity_channels=config.channels if config.ecc_parity else None
    )
    traces = make_core_traces(
        workload, cores=8, llc_block_bytes=scheme.line_size,
        seed=seed, footprint_scale=scale,
    )
    llc = LLC(size_bytes=(8 << 20) // scale, line_size=scheme.line_size)
    system = SimSystem(mem, traces, model, llc=llc)
    system.ipc_window = window_cycles

    # Storm volume: two banks' worth of lines read, 2R of that written back
    # as ECC lines plus R/(N-1) parity rewrites.  Scaled bank: total scaled
    # memory / banks; use a round, representative figure.
    lines_per_bank = (256 << 20) // scale // 64 // (config.channels * config.ranks_per_channel * 8)
    storm_reads = 2 * lines_per_bank
    r = scheme.correction_ratio
    storm_writes = int(2 * lines_per_bank * 2 * r + 2 * lines_per_bank * r / max(1, config.channels - 1))

    spec = RunSpec(workload, config, seed=seed, scale=scale)
    warm = spec.resolved_warmup
    measure = spec.resolved_measure
    # Place the storm mid-measurement: estimate cycles/instr ~ 1/ (8*IPC).
    storm_cycle = int((warm + measure // 3) / (8 * 2.0))
    system.schedule_burst(storm_cycle, storm_reads, storm_writes, base_addr=0)
    system.run(warm, measure)

    w = system._window_instr
    timeline = [v / window_cycles for v in w]
    return TransitionResult(window_cycles, storm_cycle, timeline, storm_reads, storm_writes)
