"""Durable campaign supervision: a crash-safe layer over the parallel engine.

The resilient engine (:mod:`repro.experiments.parallel`) survives faults
*inside* a live driver — worker crashes, hangs, broken pools — but a
campaign still dies with its host: SIGKILL the driver and every in-flight
super-task is gone, fill the disk and checkpoints start failing, let RSS
grow unchecked and the OOM killer picks for you.  This module is the
host-level half of the durability story, and the substrate the long-running
campaign service builds on:

* :func:`supervised_tasks` / :func:`run_campaign` wrap ``run_tasks`` in a
  **write-ahead journal**: an ``O_APPEND`` file of CRC-framed
  :mod:`repro.experiments.resultcodec` records (the same durability recipe
  as the super-task spool) holding the campaign's spec hash, every *grant*
  (the task indices handed to the engine) and every *settlement* (index +
  result).  A driver killed at any instant — even mid-append — resumes by
  replaying the journal: settled tasks are served from it byte-identically,
  and only unsettled work is recomputed.
* **Spool salvage**: the engine is given a spool directory that survives
  the driver (``spool_dir=``), so inner results a killed driver's workers
  had finished — durable in the super-task spools but never settled — are
  decoded on resume, journaled as salvaged settlements, and *not*
  recomputed.  The latest grant record maps engine-local spool indices
  back to campaign indices.
* A **resource watchdog** thread samples driver RSS and free disk into the
  obs metrics registry (``supervisor.rss_bytes`` /
  ``supervisor.disk_free_bytes``) and degrades gracefully: above
  ``REPRO_MEM_BUDGET`` it halves the engine's super-task batch cap and
  shrinks ``REPRO_MC_CHUNK`` (future campaigns only — a running campaign's
  cache keys pin their chunk size, preserving determinism); below
  ``REPRO_SUPERVISOR_MIN_DISK`` it pauses the campaign at the next
  settlement (:class:`CampaignPaused`) instead of letting the journal hit
  ENOSPC mid-record.  SIGTERM/SIGINT flush and raise
  :class:`CampaignInterrupted` — the journal *is* the resumable checkpoint.

Every recovery path converges on the bytes of a fault-free serial run:
results replayed from the journal and salvaged from spools were produced
by the same pure workers from the same primitives, and the chaos I/O plane
(:mod:`repro.util.chaos`, ``REPRO_CHAOS_IO``) exists to prove it — tests
SIGKILL the driver between journal appends, storm ENOSPC at every write
site, and tear the journal's tail, then assert bit-identical resumption
with task-count accounting read back from the journal itself
(:func:`journal_stats`).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import signal
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro import obs
from repro.obs import trace
from repro.experiments import parallel, resultcodec
from repro.util import chaos as chaos_mod
from repro.util import envcfg
from repro.util.cachefile import quarantine_file

#: Journal frame header: CRC32 of the payload, then its byte length.
_FRAME = struct.Struct("<II")

#: Journal record tags (first element of every record tuple).  Later PRs
#: appended optional trailing elements (readers use ``len(rec) > n``):
#: ``begin`` carries the campaign's trace context as a 5th element and
#: ``grant`` the granting span's context as a 3rd, so a resumed campaign
#: re-parents under the original trace root and salvaged spool records
#: stay attributable to the grant that dispatched them.
REC_BEGIN = "begin"  #: ("begin", spec_hash, total, name[, trace_ctx])
REC_GRANT = "grant"  #: ("grant", [campaign indices in engine order][, trace_ctx])
REC_SETTLE = "settle"  #: ("settle", index, result, origin "live"|"salvage")
REC_DONE = "done"  #: ("done", settled_count)

#: Extension of campaign journals under the supervisor directory.
JOURNAL_SUFFIX = ".journal"


class CampaignPaused(RuntimeError):
    """A supervised campaign checkpointed and stopped before completion.

    Raised on low disk (the watchdog's floor) or a failing journal append
    (e.g. ENOSPC): everything settled so far is durable in the journal, so
    rerunning the same campaign resumes exactly where it paused.
    """

    def __init__(self, name: str, settled: int, total: int, reason: str):
        self.name = name
        self.settled = settled
        self.total = total
        self.reason = reason
        super().__init__(
            f"campaign {name!r} paused after {settled}/{total} tasks: {reason}; "
            f"rerun to resume from the journal"
        )


class CampaignInterrupted(CampaignPaused):
    """A supervised campaign flushed and stopped on SIGTERM/SIGINT."""


def spec_hash(worker, payloads: "list[tuple]") -> str:
    """Identity of a campaign: worker identity + every payload, hashed.

    Workers are module-level pure functions of primitive payloads (the
    engine's contract), so this is a complete description of the work; a
    journal is replayed only for a byte-identical spec.
    """
    h = hashlib.sha256()
    h.update(f"{getattr(worker, '__module__', '?')}.{getattr(worker, '__qualname__', '?')}".encode())
    h.update(repr(len(payloads)).encode())
    for p in payloads:
        h.update(repr(p).encode())
    return h.hexdigest()


def _emit(kind: str, **fields) -> None:
    if not obs.enabled("supervisor"):
        return
    obs.REGISTRY.counter(kind).inc()
    obs.emit(kind, **fields)


# --------------------------------------------------------------------------
# Write-ahead journal
# --------------------------------------------------------------------------


class Journal:
    """Append-only CRC-framed record log, torn-tail tolerant on replay.

    Every :meth:`append` is one ``os.write`` to an ``O_APPEND`` fd, so a
    record is either fully present or is the torn final frame — the same
    argument the super-task spool makes.  Payloads are
    :mod:`repro.experiments.resultcodec` blobs, so settled results of any
    codec-expressible type round-trip bit-exactly (ndarrays included).
    """

    def __init__(self, path: "Path | str"):
        self.path = Path(path)
        self._fd: "int | None" = None

    def _ensure_open(self) -> int:
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
            )
        return self._fd

    def append(self, record: tuple) -> None:
        """Durably append one record (chaos site ``journal.append``).

        A ``torn`` fault writes only the frame prefix then raises — the
        exact shape a crash mid-append leaves — so replay's tail tolerance
        is testable without killing anything.
        """
        with trace.span("journal.append", "journal", rec=str(record[0])):
            blob = resultcodec.encode(record)
            frame = _FRAME.pack(zlib.crc32(blob) & 0xFFFFFFFF, len(blob)) + blob
            fd = self._ensure_open()
            torn = chaos_mod.io_fire("journal.append", size=len(frame))
            if torn is not None and torn < len(frame):
                os.write(fd, frame[:torn])
                raise OSError(5, f"chaos: torn journal append after {torn} bytes")
            os.write(fd, frame)

    def close(self) -> None:
        if self._fd is not None:
            try:
                os.close(self._fd)
            finally:
                self._fd = None

    @staticmethod
    def read(path: "Path | str") -> "tuple[list[tuple], bool]":
        """Replay a journal; returns ``(records, torn_tail)``.

        Stops at the first incomplete or CRC-mismatched frame: appends are
        atomic, so damage can only be the final frame of a killed writer.
        Everything before it is trustworthy.
        """
        records, torn, _ = Journal.scan(path)
        return records, torn

    @staticmethod
    def scan(path: "Path | str") -> "tuple[list[tuple], bool, int]":
        """:meth:`read` plus the byte length of the clean prefix.

        A resuming supervisor truncates a torn journal back to
        ``clean_len`` before appending — an O_APPEND write after torn
        trailing bytes would strand every later record behind an
        undecodable frame.
        """
        try:
            data = Path(path).read_bytes()
        except OSError:
            return [], False, 0
        records: "list[tuple]" = []
        pos, end = 0, len(data)
        while pos + _FRAME.size <= end:
            crc, blob_len = _FRAME.unpack_from(data, pos)
            start = pos + _FRAME.size
            if start + blob_len > end:
                return records, True, pos
            blob = data[start : start + blob_len]
            if zlib.crc32(blob) & 0xFFFFFFFF != crc:
                return records, True, pos
            try:
                record = resultcodec.decode(blob)
            except Exception:
                return records, True, pos
            records.append(record)
            pos = start + blob_len
        return records, pos < end, pos


def journal_stats(path: "Path | str") -> dict:
    """Task-count accounting straight from a journal file.

    The chaos acceptance tests assert resumption economics with this:
    ``settled_live`` counts tasks actually recomputed across every run of
    the campaign, ``settled_salvage`` counts results recovered from
    orphaned spools, ``granted`` sums the work handed to the engine per
    run, and ``settled`` is the number of distinct settled task indices.
    """
    records, torn = Journal.read(path)
    grants = [list(r[1]) for r in records if r[0] == REC_GRANT]
    settles = [r for r in records if r[0] == REC_SETTLE]
    distinct = {r[1] for r in settles}
    return {
        "begins": sum(1 for r in records if r[0] == REC_BEGIN),
        "grants": grants,
        "granted": sum(len(g) for g in grants),
        "settled": len(distinct),
        "settled_live": sum(1 for r in settles if r[3] == "live"),
        "settled_salvage": sum(1 for r in settles if r[3] == "salvage"),
        "done": any(r[0] == REC_DONE for r in records),
        "torn_tail": torn,
    }


# --------------------------------------------------------------------------
# Resource watchdog
# --------------------------------------------------------------------------

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def process_rss() -> int:
    """Resident set size of this process in bytes (0 when unmeasurable)."""
    override = chaos_mod.io_override("watchdog.rss")
    if override is not None:
        return int(override)
    try:
        with open("/proc/self/statm", "rb") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:
        return 0


class ResourceWatchdog:
    """Daemon thread sampling RSS + free disk with graceful degradation.

    * RSS above *mem_budget*: halve the engine's super-task batch cap
      (down to 1) and halve ``REPRO_MC_CHUNK`` for campaigns resolved
      after this point — both shrink peak memory without touching any
      in-flight work's determinism.  Re-fires on every pressured sample
      until the cap bottoms out; both knobs are restored on :meth:`stop`.
    * Free disk below *min_disk*: set :attr:`pause` — the supervised loop
      checkpoints and raises :class:`CampaignPaused` at the next
      settlement, before writes start dying with ENOSPC.

    Samplers are injectable for tests; the chaos ``rss@watchdog.rss``
    fault overrides the real sampler for exactly one (or every) sample.
    """

    def __init__(
        self,
        disk_path: "Path | str",
        mem_budget: "int | None",
        min_disk: int,
        poll_s: float,
        rss_sampler: "Callable[[], int] | None" = None,
        disk_sampler: "Callable[[], int] | None" = None,
    ):
        self.disk_path = str(disk_path)
        self.mem_budget = mem_budget
        self.min_disk = min_disk
        self.poll_s = poll_s
        self._rss = rss_sampler or process_rss
        self._disk = disk_sampler or self._free_disk
        self.pause = threading.Event()
        self.pause_reason = ""
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None
        self._saved_batch_cap: "int | None | str" = "unset"
        self._saved_chunk_env: "str | None" = None
        self.degradations = 0

    def _free_disk(self) -> int:
        try:
            return shutil.disk_usage(self.disk_path).free
        except OSError:
            return 1 << 62

    def sample(self) -> None:
        """One watchdog tick (called by the thread; tests call it directly)."""
        rss = self._rss()
        free = self._disk()
        if obs.enabled("supervisor"):
            obs.REGISTRY.gauge("supervisor.rss_bytes").set(rss)
            obs.REGISTRY.gauge("supervisor.disk_free_bytes").set(free)
        if self.mem_budget and rss > self.mem_budget:
            self._degrade_memory(rss)
        if self.min_disk and free < self.min_disk and not self.pause.is_set():
            self.pause_reason = (
                f"free disk {free} below floor {self.min_disk} on {self.disk_path}"
            )
            _emit("supervisor.low_disk", free_bytes=free, floor_bytes=self.min_disk)
            self.pause.set()

    def _degrade_memory(self, rss: int) -> None:
        current = parallel._batch_cap or parallel.MAX_BATCH
        if current <= 1:
            return  # fully degraded already; nothing left to shrink
        new_cap = max(1, current // 2)
        previous = parallel.set_batch_cap(new_cap)
        if self._saved_batch_cap == "unset":
            self._saved_batch_cap = previous
        chunk = envcfg.mc_chunk()
        new_chunk = max(1024, chunk // 2)
        if new_chunk < chunk:
            if self._saved_chunk_env is None:
                self._saved_chunk_env = os.environ.get("REPRO_MC_CHUNK", "")
            # Future campaigns only: a running campaign resolved its chunk
            # size at launch and keys its cache by it, so determinism of
            # in-flight work is untouched.
            os.environ["REPRO_MC_CHUNK"] = str(new_chunk)
        self.degradations += 1
        _emit(
            "supervisor.memory_pressure",
            rss_bytes=rss,
            budget_bytes=self.mem_budget,
            batch_cap=new_cap,
            mc_chunk=new_chunk,
        )

    def _run(self) -> None:
        while not self._stop.wait(self.poll_s):
            self.sample()

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-supervisor-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._saved_batch_cap != "unset":
            parallel.set_batch_cap(self._saved_batch_cap)
            self._saved_batch_cap = "unset"
        if self._saved_chunk_env is not None:
            if self._saved_chunk_env:
                os.environ["REPRO_MC_CHUNK"] = self._saved_chunk_env
            else:
                os.environ.pop("REPRO_MC_CHUNK", None)
            self._saved_chunk_env = None


# --------------------------------------------------------------------------
# Supervised campaigns
# --------------------------------------------------------------------------


@dataclass
class _Paths:
    journal: Path
    spool: Path


def _campaign_paths(name: str, directory: "Path | str | None") -> _Paths:
    base = Path(envcfg.supervisor_dir(str(directory) if directory else None))
    return _Paths(base / f"{name}{JOURNAL_SUFFIX}", base / f"{name}.spool")


def _salvage_spools(spool_dir: Path, grant: "list[int]", settled: "set[int]", validate):
    """Decode finished inners from orphaned super-task spools.

    *grant* is the engine-order list of campaign indices from the journal's
    latest grant record: spool records carry engine-local indices, so
    ``grant[local]`` is the campaign task the record settles.  Only clean
    ``OK`` records count — exceptions and chaos-corrupted results are
    recomputed, exactly as a live engine would have retried them.
    """
    out: "dict[int, object]" = {}
    if not spool_dir.is_dir():
        return out
    for spool in sorted(spool_dir.iterdir()):
        records = parallel._read_spool(spool)
        for local, frame in records.items():
            if frame.kind != parallel._REC_OK or local >= len(grant):
                continue
            index = grant[local]
            if index in settled or index in out:
                continue
            try:
                value = resultcodec.decode(frame.blob)
            except Exception:
                continue
            if isinstance(value, chaos_mod.Corrupted):
                continue
            if validate is not None and not validate(value):
                continue
            out[index] = value
    return out


def _clear_dir(path: Path) -> None:
    shutil.rmtree(path, ignore_errors=True)


class _SignalFlag:
    """SIGTERM/SIGINT -> a flag the supervised loop turns into a clean stop.

    Installed only from the main thread (Python restricts handler
    installation to it); elsewhere the campaign simply isn't
    signal-supervised.  Previous handlers are restored on exit.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.fired: "int | None" = None
        self._saved: "dict[int, object]" = {}

    def __enter__(self):
        if self.enabled and threading.current_thread() is threading.main_thread():
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._saved[sig] = signal.signal(sig, self._handle)
                except (ValueError, OSError):  # pragma: no cover - exotic hosts
                    pass
        return self

    def _handle(self, signum, frame):
        self.fired = signum

    def __exit__(self, *exc):
        for sig, handler in self._saved.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
        self._saved.clear()
        return False


def supervised_tasks(
    worker,
    payloads: "Iterable[tuple]",
    *,
    name: str,
    directory: "Path | str | None" = None,
    jobs: "int | None" = None,
    mem_budget: "int | None" = None,
    min_disk: "int | None" = None,
    poll_s: "float | None" = None,
    watchdog: bool = True,
    handle_signals: bool = True,
    rss_sampler: "Callable[[], int] | None" = None,
    disk_sampler: "Callable[[], int] | None" = None,
    **engine_options,
) -> "Iterator[tuple[int, object]]":
    """Run a campaign crash-safely, yielding ``(index, result)`` pairs.

    The order of deliveries is: journal replays (index order), spool
    salvage (index order), then live engine results (completion order).
    Every live settlement is journaled *before* it is yielded, so a caller
    killed while consuming a result finds it in the journal on resume.

    *name* keys the journal under *directory* (``REPRO_SUPERVISOR_DIR``);
    a journal whose spec hash does not match this worker+payloads is
    quarantined and the campaign starts fresh — a name collision never
    silently serves foreign results.  Remaining keyword arguments go to
    :func:`repro.experiments.parallel.run_tasks` unchanged.
    """
    payloads = [tuple(p) for p in payloads]
    total = len(payloads)
    spec = spec_hash(worker, payloads)
    paths = _campaign_paths(name, directory)
    validate = engine_options.get("validate")

    # -- replay -------------------------------------------------------------
    records, torn, clean_len = Journal.scan(paths.journal)
    if records and not (records[0][0] == REC_BEGIN and records[0][1] == spec):
        quarantine_file(paths.journal, "journal spec hash does not match campaign")
        _clear_dir(paths.spool)
        records, torn = [], False
    elif torn:
        # Drop the torn tail *now*: appending after it would strand every
        # later record behind an undecodable frame on the next replay.
        try:
            os.truncate(paths.journal, clean_len)
        except OSError:
            quarantine_file(paths.journal, "could not truncate torn journal tail")
            _clear_dir(paths.spool)
            records, torn = [], False
    settled: "dict[int, object]" = {}
    last_grant: "list[int]" = []
    for rec in records:
        if rec[0] == REC_SETTLE and 0 <= rec[1] < total:
            settled[rec[1]] = rec[2]
        elif rec[0] == REC_GRANT:
            last_grant = [int(i) for i in rec[1]]
    has_done = any(rec[0] == REC_DONE for rec in records)

    # A resumed campaign re-parents under the trace context the original
    # run persisted in its begin record, so every run of one campaign —
    # through any number of crashes — reconstructs as one span forest.
    stored_ctx = None
    if records and len(records[0]) > 4 and records[0][4]:
        stored_ctx = tuple(records[0][4])

    journal = Journal(paths.journal)
    fresh = not records
    root_span = trace.start_span(
        "supervisor.campaign",
        parent=stored_ctx,
        campaign=name,
        total=total,
        resumed=len(settled),
    )
    _emit(
        "supervisor.begin",
        name=name,
        total=total,
        spec=spec[:16],
        resumed=len(settled),
        torn_tail=torn,
    )

    watch = None
    stats = {"live": 0, "salvaged": 0}
    try:
        if fresh:
            begin = (REC_BEGIN, spec, total, name)
            if root_span.span_id is not None:
                begin += ([root_span.trace_id, root_span.span_id],)
            journal.append(begin)
        if settled:
            _emit("supervisor.replay", settled=len(settled))

        # -- salvage orphaned spools -------------------------------------
        with trace.span("supervisor.salvage", "codec", grant=len(last_grant)):
            salvaged = _salvage_spools(paths.spool, last_grant, set(settled), validate)
        _clear_dir(paths.spool)  # spent: spools must map to the *next* grant
        for index in sorted(salvaged):
            journal.append((REC_SETTLE, index, salvaged[index], "salvage"))
            settled[index] = salvaged[index]
        if salvaged:
            stats["salvaged"] = len(salvaged)
            _emit("supervisor.salvage", count=len(salvaged))

        with _SignalFlag(handle_signals) as flag:
            for index in sorted(settled):
                yield index, settled[index]

            missing = [i for i in range(total) if i not in settled]
            if missing:
                if watchdog:
                    watch = ResourceWatchdog(
                        paths.journal.parent,
                        envcfg.mem_budget(mem_budget),
                        envcfg.supervisor_min_disk(min_disk),
                        envcfg.supervisor_poll(poll_s),
                        rss_sampler=rss_sampler,
                        disk_sampler=disk_sampler,
                    )
                    watch.start()
                grant_rec = (REC_GRANT, missing)
                ctx = trace.ctx()
                if ctx is not None:
                    grant_rec += (list(ctx),)
                journal.append(grant_rec)
                engine = parallel.run_tasks(
                    worker,
                    [payloads[i] for i in missing],
                    jobs=jobs,
                    yield_index=True,
                    spool_dir=str(paths.spool),
                    **engine_options,
                )
                for local, result in engine:
                    index = missing[local]
                    # The settle-or-die ordering: journal first, yield
                    # second, so a consumer killed mid-iteration never saw
                    # a result the journal doesn't have.  ``kill`` chaos
                    # fires here — before the append — so the in-hand
                    # result is lost to the journal but its spool record
                    # (batched runs) survives for salvage.
                    chaos_mod.io_fire("supervisor.settle")
                    try:
                        journal.append((REC_SETTLE, index, result, "live"))
                    except OSError as exc:
                        engine.close()
                        _emit("supervisor.pause", settled=len(settled), error=str(exc))
                        raise CampaignPaused(
                            name, len(settled), total, f"journal append failed: {exc}"
                        ) from exc
                    settled[index] = result
                    stats["live"] += 1
                    _emit("supervisor.settle", index=index, origin="live")
                    yield index, result
                    if flag.fired is not None:
                        engine.close()
                        _emit("supervisor.interrupt", signum=flag.fired, settled=len(settled))
                        raise CampaignInterrupted(
                            name, len(settled), total, f"signal {flag.fired}"
                        )
                    if watch is not None and watch.pause.is_set():
                        engine.close()
                        _emit("supervisor.pause", settled=len(settled))
                        raise CampaignPaused(name, len(settled), total, watch.pause_reason)
                if flag.fired is not None:
                    _emit("supervisor.interrupt", signum=flag.fired, settled=len(settled))
                    raise CampaignInterrupted(
                        name, len(settled), total, f"signal {flag.fired}"
                    )

        if fresh or stats["live"] or stats["salvaged"] or not has_done:
            try:
                journal.append((REC_DONE, len(settled)))
            except OSError as exc:
                # Every settlement is already durable; only the completion
                # marker is missing.  Pause like any other append failure —
                # the rerun replays everything and re-attempts the marker.
                _emit("supervisor.pause", settled=len(settled), error=str(exc))
                raise CampaignPaused(
                    name, len(settled), total, f"journal append failed: {exc}"
                ) from exc
        _clear_dir(paths.spool)
        _emit(
            "supervisor.done",
            name=name,
            total=total,
            settled=len(settled),
            computed=stats["live"],
            salvaged=stats["salvaged"],
        )
    finally:
        root_span.end(
            settled=len(settled), computed=stats["live"], salvaged=stats["salvaged"]
        )
        if watch is not None:
            watch.stop()
        journal.close()


def run_campaign(
    worker, payloads: "Iterable[tuple]", *, name: str, **options
) -> "list":
    """Supervised campaign returning results in payload order.

    The list-returning convenience over :func:`supervised_tasks` for
    drivers that don't stream; same crash-safety, same resumption.
    """
    payloads = [tuple(p) for p in payloads]
    results = [None] * len(payloads)
    seen = [False] * len(payloads)
    for index, result in supervised_tasks(worker, payloads, name=name, **options):
        results[index] = result
        seen[index] = True
    if not all(seen):  # pragma: no cover - engine contract: all-or-raise
        missing = [i for i, s in enumerate(seen) if not s]
        raise RuntimeError(f"campaign {name!r} finished without settling tasks {missing}")
    return results


def forget_campaign(name: str, directory: "Path | str | None" = None) -> None:
    """Drop a campaign's journal and spools (e.g. after consuming results)."""
    paths = _campaign_paths(name, directory)
    try:
        os.unlink(paths.journal)
    except OSError:
        pass
    _clear_dir(paths.spool)
