"""Shared evaluation matrix with on-disk caching.

Figures 9-17 all consume the same workload x configuration sweep; running
it once per system class and caching the scalar results lets every
benchmark regenerate its table in milliseconds while `REPRO_FULL=1` (or a
cold cache) triggers the real simulations.

Two fidelity presets:

* ``quick`` (default): scale 32, ~20k LLC references per phase - minutes
  for the full matrix, adequate for shapes and rankings.
* ``full`` (``REPRO_FULL=1``): scale 16, ~40k references - the setting the
  committed EXPERIMENTS.md numbers were produced with.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro.ecc.catalog import SYSTEM_CLASSES
from repro.util.cachefile import load_json_cache, write_json_cache_atomic
from repro.workloads.profiles import ALL_WORKLOADS, PROFILES_VERSION

#: All configuration keys evaluated in Figures 9-17.
CONFIG_KEYS = [
    "chipkill36",
    "chipkill18",
    "lot_ecc9",
    "multi_ecc",
    "lot_ecc5",
    "lot_ecc5_ep",
    "raim",
    "raim_ep",
]

CACHE_DIR = Path(os.environ.get("REPRO_CACHE_DIR", Path.cwd() / ".repro_cache"))


@dataclass(frozen=True)
class CellResult:
    """Scalar outcome of one (workload, config) simulation."""

    epi_nj: float
    dynamic_epi_nj: float
    background_epi_nj: float
    accesses_per_instruction: float
    ipc: float
    bandwidth_gbps: float
    instructions: int
    cycles: int
    data_reads: int
    data_writes: int
    ecc_reads: int
    ecc_writes: int
    llc_misses: int
    llc_hits: int


@dataclass(frozen=True)
class Fidelity:
    """Simulation sizing preset."""

    name: str
    scale: int
    access_target: int

    @property
    def cache_tag(self) -> str:
        return f"{self.name}-s{self.scale}-a{self.access_target}"


QUICK = Fidelity("quick", scale=32, access_target=20_000)
FULL = Fidelity("full", scale=16, access_target=40_000)


def current_fidelity() -> Fidelity:
    """Preset selected by the ``REPRO_FULL`` environment variable."""
    return FULL if os.environ.get("REPRO_FULL") else QUICK


def _cell_from_result(res) -> CellResult:
    return CellResult(
        epi_nj=res.epi_nj,
        dynamic_epi_nj=res.dynamic_epi_nj,
        background_epi_nj=res.background_epi_nj,
        accesses_per_instruction=res.accesses_per_instruction,
        ipc=res.ipc,
        bandwidth_gbps=res.bandwidth_gbps,
        instructions=res.instructions,
        cycles=res.cycles,
        data_reads=res.counters.data_reads,
        data_writes=res.counters.data_writes,
        ecc_reads=res.counters.ecc_reads,
        ecc_writes=res.counters.ecc_writes,
        llc_misses=res.llc_misses,
        llc_hits=res.llc_hits,
    )


def _cache_path(system_class: str, fidelity: Fidelity, seed: int) -> Path:
    return CACHE_DIR / (
        f"matrix-{system_class}-{fidelity.cache_tag}-seed{seed}-p{PROFILES_VERSION}.json"
    )


def instruction_budget(access_target: int, wl) -> int:
    """Instructions per phase sized to hit roughly *access_target* LLC refs.

    Shared by the serial and parallel paths so a cell's RunSpec is identical
    no matter which of them built it.
    """
    return int(access_target * 1000 / wl.apki)


# Shared with the Monte Carlo fig8 cache; kept under the old names for
# callers/tests that patch them here.
_load_cache = load_json_cache
_write_cache_atomic = write_json_cache_atomic


def evaluation_matrix(
    system_class: str = "quad",
    fidelity: "Fidelity | None" = None,
    seed: int = 0,
    workloads: "list[str] | None" = None,
    config_keys: "list[str] | None" = None,
    use_cache: bool = True,
    jobs: "int | None" = None,
) -> "dict[tuple[str, str], CellResult]":
    """The workload x configuration sweep for one system class, cached.

    Cells missing from the cache are simulated - in parallel across
    processes when *jobs* (default: ``REPRO_JOBS``, else CPU count) allows -
    and merged back under their ``workload|config`` key, so the returned
    matrix is independent of completion order and bit-identical to a serial
    sweep.  The cache is flushed atomically (merge-on-write, so concurrent
    sweeps sharing the file keep each other's cells) after every finished
    cell, so an interrupted or crashed sweep resumes where it stopped.
    Worker crashes, hangs, and exceptions are retried by the resilient
    engine (``REPRO_TASK_RETRIES`` / ``REPRO_TASK_TIMEOUT``); cells that
    exhaust their budget surface in a
    :class:`~repro.experiments.parallel.CampaignError` naming each failed
    ``(workload, config)`` payload, raised only after every other cell has
    completed and checkpointed.
    """
    fidelity = fidelity or current_fidelity()
    wl_names = workloads or [w.name for w in ALL_WORKLOADS]
    keys = config_keys or CONFIG_KEYS
    if system_class not in SYSTEM_CLASSES:
        raise KeyError(system_class)

    path = _cache_path(system_class, fidelity, seed)
    cache = _load_cache(path) if use_cache else {}

    missing = [(w, k) for w in wl_names for k in keys if f"{w}|{k}" not in cache]
    if missing:
        # Deferred import: repro.experiments.parallel imports this module.
        from repro import obs
        from repro.experiments import parallel

        if obs.enabled("engine"):
            # Campaign-level manifest facts: the config matrix and seeds
            # that produced this run directory's telemetry.
            obs.ensure_manifest(
                matrix={
                    "system_class": system_class,
                    "fidelity": fidelity.name,
                    "scale": fidelity.scale,
                    "access_target": fidelity.access_target,
                    "seed": seed,
                    "workloads": wl_names,
                    "config_keys": keys,
                    "missing_cells": len(missing),
                }
            )
        for wl_name, key, cell in parallel.run_cells(
            system_class, missing, fidelity, seed, jobs=jobs
        ):
            cache[f"{wl_name}|{key}"] = cell
            if use_cache:
                _write_cache_atomic(path, cache)

    return {
        (wl_name, key): CellResult(**cache[f"{wl_name}|{key}"])
        for wl_name in wl_names
        for key in keys
    }


def workload_order(matrix: "dict[tuple[str, str], CellResult]", reference_key: str = "chipkill36") -> "list[str]":
    """Workloads sorted by bandwidth on the reference configuration."""
    names = sorted({wl for wl, _ in matrix})
    return sorted(names, key=lambda w: matrix[(w, reference_key)].bandwidth_gbps)


def bins(matrix: "dict[tuple[str, str], CellResult]", reference_key: str = "chipkill36") -> "tuple[list[str], list[str]]":
    """The paper's Bin1 (8 lower-bandwidth) / Bin2 (8 higher) split."""
    ordered = workload_order(matrix, reference_key)
    half = len(ordered) // 2
    return ordered[:half], ordered[half:]
