"""Section VI-A: mixing narrow- and wide-DRAM ranks in one channel.

Energy-efficient chipkill (LOT-ECC5-style, wide X16 chips) needs more ranks
per channel for the same capacity, hitting electrical limits.  The paper's
proposal: populate a channel with both rank types, place hot pages in the
wide-chip ranks, and protect *both* with the same strong ECC whose
correction bits ECC Parity amortizes (a faulty wide chip can corrupt
several narrow chips sharing its I/O lanes, so the narrow ranks cannot use
a weaker code).

Model: the energy of a mixed configuration interpolates between two
measured endpoints by the hot-rank hit fraction (accesses served by wide
ranks), while max capacity interpolates by rank population - exposing the
energy-vs-capacity frontier the paper describes qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.ecc_traffic import EccTrafficModel
from repro.cpu.llc import LLC
from repro.cpu.system import SimResult, SimSystem
from repro.dram.system import MemorySystem, MemorySystemConfig
from repro.ecc.catalog import SystemConfig
from repro.experiments.runner import RunSpec, run
from repro.workloads.generator import HOT_ARENA_BASE_LINE, make_core_traces
from repro.workloads.profiles import WorkloadProfile


@dataclass
class MixedRankPoint:
    """One point on the §VI-A frontier."""

    wide_rank_share: float  #: fraction of the channel's ranks using wide chips
    hot_hit_fraction: float  #: accesses served by the wide ranks
    epi_nj: float
    relative_capacity: float  #: max capacity vs an all-narrow channel


def mixed_rank_frontier(
    workload: WorkloadProfile,
    wide_config: SystemConfig,
    narrow_config: SystemConfig,
    wide_shares: "list[float]",
    hot_skew: float = 2.0,
    scale: int = 32,
    seed: int = 0,
) -> "list[MixedRankPoint]":
    """Sweep the wide-rank population share.

    ``hot_skew`` models OS hot-page placement: with share ``s`` of ranks
    wide, the wide ranks serve ``min(1, s * hot_skew)`` of the accesses
    (hot pages concentrate traffic).  Capacity: wide X16 ranks hold half
    the chips' worth of a narrow X4 rank population per slot, normalized so
    all-narrow = 1.0.
    """
    e_wide = run(RunSpec(workload, wide_config, seed=seed, scale=scale)).epi_nj
    e_narrow = run(RunSpec(workload, narrow_config, seed=seed, scale=scale)).epi_nj

    # Device-Gbit per 72-bit rank slot: a LOT-ECC5 wide rank carries
    # 4x2Gb + 1x1Gb = 9 Gbit, an 18 X4 narrow rank 36 Gbit - narrow ranks
    # quadruple the per-slot capacity, which is Section VI-A's motivation.
    wide_scheme = wide_config.make_scheme()
    narrow_scheme = narrow_config.make_scheme()

    def slot_gbits(scheme, chip_gbits: float = 2.0) -> float:
        base = max(scheme.chip_widths())
        return sum(chip_gbits * (w / base) for w in scheme.chip_widths())

    wide_gbit = slot_gbits(wide_scheme)
    narrow_gbit = slot_gbits(narrow_scheme)
    out = []
    for s in wide_shares:
        hot = min(1.0, s * hot_skew) if s > 0 else 0.0
        epi = hot * e_wide + (1 - hot) * e_narrow
        capacity = (s * wide_gbit + (1 - s) * narrow_gbit) / narrow_gbit
        out.append(MixedRankPoint(s, hot, epi, capacity))
    return out


def mixed_channel_simulation(
    workload: WorkloadProfile,
    channels: int = 8,
    wide_ranks: int = 1,
    total_ranks: int = 4,
    scale: int = 32,
    seed: int = 0,
) -> SimResult:
    """Simulate a *heterogeneous channel* natively (Section VI-A).

    Every rank runs the same strong ECC (LOT-ECC5's layout under ECC
    Parity, as VI-A requires - a faulty wide chip can corrupt the narrow
    chips sharing its I/O lanes), but the first ``wide_ranks`` ranks are
    built of X16 chips and the rest of X4 chips.  Hot pages are placed in
    the wide ranks via a dedicated address arena; energy integrates with a
    per-rank power model, so the measured EPI reflects where the traffic
    actually landed.
    """
    from repro.ecc.lot_ecc import LotEcc5

    scheme = LotEcc5()
    wide = [16, 16, 16, 16, 8]
    narrow = [4] * 18
    rank_widths = [wide] * wide_ranks + [narrow] * (total_ranks - wide_ranks)
    mem = MemorySystem(
        MemorySystemConfig(
            channels=channels,
            ranks_per_channel=total_ranks,
            chip_widths=wide,
            rank_chip_widths=rank_widths,
            hot_arena_base_line=HOT_ARENA_BASE_LINE,
            hot_ranks=wide_ranks,
        )
    )
    model = EccTrafficModel.for_scheme(scheme, ecc_parity_channels=channels)
    traces = make_core_traces(
        workload, cores=8, llc_block_bytes=64, seed=seed,
        footprint_scale=scale, hot_arena=True,
    )
    llc = LLC(size_bytes=(8 << 20) // scale)
    system = SimSystem(mem, traces, model, llc=llc)
    cfg = SystemConfig("lot_ecc5", channels, total_ranks, True, 0)
    spec = RunSpec(workload, cfg, seed=seed, scale=scale)
    return system.run(spec.resolved_warmup, spec.resolved_measure)
