"""Reliability figure drivers (Figures 2, 8, and 18)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.analysis import (
    mean_time_between_channel_faults_days,
    multi_channel_window_probability,
)
from repro.faults.fit_rates import MemoryOrg
from repro.faults.montecarlo import eol_fraction_by_channels
from repro.faults.rareevent import sharded_estimate

#: X axes used by the paper's figures.
FIG2_FIT_RANGE = [10, 20, 30, 40, 44, 50, 60, 70, 80, 90, 100]
FIG8_CHANNELS = [2, 4, 8, 16]
FIG18_WINDOWS_HOURS = [1, 2, 4, 8, 16, 24, 48, 96, 168]
FIG18_FIT_RATES = [25, 50, 100]


@dataclass
class Fig2Row:
    fit_per_chip: float
    mtbf_days: float


def figure2(org: "MemoryOrg | None" = None) -> "list[Fig2Row]":
    """Mean time between faults in different channels vs DRAM FIT rate."""
    org = org or MemoryOrg()
    return [
        Fig2Row(fit, mean_time_between_channel_faults_days(fit, org))
        for fit in FIG2_FIT_RANGE
    ]


@dataclass
class Fig8Row:
    channels: int
    mean_fraction: float
    p999_fraction: float


def figure8(
    trials: "int | None" = None,
    seed: int = 0,
    jobs: "int | None" = None,
    use_cache: bool = False,
) -> "list[Fig8Row]":
    """EOL fraction of memory protected by materialized correction bits.

    *trials* defaults to ``REPRO_MC_TRIALS`` (else 20000); set it to 1M for
    a converged 99.9th percentile - the chunked, vectorized Monte Carlo and
    the per-channel-count process fan-out keep that tractable.
    """
    results = eol_fraction_by_channels(
        FIG8_CHANNELS, trials=trials, seed=seed, jobs=jobs, use_cache=use_cache
    )
    return [
        Fig8Row(n, r.mean, r.percentile(99.9)) for n, r in sorted(results.items())
    ]


@dataclass
class Fig8TailRow:
    """One channel count's rare-event view of the fig8 tail."""

    channels: int
    p999_fraction: float  #: weighted 99.9th percentile of the EOL fraction
    tail_probability: float  #: P(fraction >= threshold) at the reported threshold
    tail_se: float  #: analytic standard error of ``tail_probability``
    threshold: float  #: tail threshold the CI is quoted at
    trials: int  #: sampled trials spent
    ess: float  #: effective sample size of the weighted stream
    mode: str  #: estimator that produced the row ("off" | "is" | "strat")


def figure8_tail(
    trials: "int | None" = None,
    seed: int = 0,
    jobs: "int | None" = None,
    mode: "str | None" = None,
    thresholds: "dict[int, float] | None" = None,
    use_cache: bool = False,
    target_rci: "float | None" = None,
) -> "list[Fig8TailRow]":
    """Figure 8's 99.9th percentile via the rare-event estimators.

    For each channel count, runs a sharded campaign
    (:func:`repro.faults.rareevent.sharded_estimate`) under the resolved
    ``REPRO_MC_VR`` mode and reports the weighted 99.9th percentile plus a
    tail probability with analytic CI.  *thresholds* optionally pins the
    tail threshold per channel count (e.g. a materialization budget) -
    with a pinned threshold the campaign targets that tail directly, and
    ``auto`` mode resolves to importance sampling, whose tilt pays
    exactly there (:func:`repro.faults.rareevent.resolve_mode`).
    Without one, each row's threshold is the campaign's own estimated
    p999, so the quoted CI is the resolution of the percentile itself.
    """
    rows = []
    for n in FIG8_CHANNELS:
        org = MemoryOrg(channels=n)
        threshold = None if thresholds is None else thresholds.get(n)
        campaign = sharded_estimate(
            org,
            mode=mode,
            trials=trials,
            seed=seed,
            threshold=threshold,
            jobs=jobs,
            use_cache=use_cache,
            target_rci=target_rci,
        )
        est = campaign.estimate
        if threshold is None:
            threshold = est.percentile(99.9)
        rows.append(
            Fig8TailRow(
                channels=n,
                p999_fraction=est.percentile(99.9),
                tail_probability=est.tail_probability(threshold),
                tail_se=est.se_tail(threshold),
                threshold=threshold,
                trials=campaign.trials,
                ess=campaign.ess,
                mode=campaign.mode,
            )
        )
    return rows


@dataclass
class Fig18Row:
    window_hours: float
    probabilities: "dict[int, float]"  # fit -> lifetime probability


def figure18(org: "MemoryOrg | None" = None) -> "list[Fig18Row]":
    """P(multi-channel faults within any one scrub window over 7 years)."""
    org = org or MemoryOrg()
    rows = []
    for w in FIG18_WINDOWS_HOURS:
        probs = {
            fit: multi_channel_window_probability(w, fit, org) for fit in FIG18_FIT_RATES
        }
        rows.append(Fig18Row(w, probs))
    return rows
