"""Reliability figure drivers (Figures 2, 8, and 18)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.analysis import (
    mean_time_between_channel_faults_days,
    multi_channel_window_probability,
)
from repro.faults.fit_rates import MemoryOrg
from repro.faults.montecarlo import eol_fraction_by_channels

#: X axes used by the paper's figures.
FIG2_FIT_RANGE = [10, 20, 30, 40, 44, 50, 60, 70, 80, 90, 100]
FIG8_CHANNELS = [2, 4, 8, 16]
FIG18_WINDOWS_HOURS = [1, 2, 4, 8, 16, 24, 48, 96, 168]
FIG18_FIT_RATES = [25, 50, 100]


@dataclass
class Fig2Row:
    fit_per_chip: float
    mtbf_days: float


def figure2(org: "MemoryOrg | None" = None) -> "list[Fig2Row]":
    """Mean time between faults in different channels vs DRAM FIT rate."""
    org = org or MemoryOrg()
    return [
        Fig2Row(fit, mean_time_between_channel_faults_days(fit, org))
        for fit in FIG2_FIT_RANGE
    ]


@dataclass
class Fig8Row:
    channels: int
    mean_fraction: float
    p999_fraction: float


def figure8(
    trials: "int | None" = None,
    seed: int = 0,
    jobs: "int | None" = None,
    use_cache: bool = False,
) -> "list[Fig8Row]":
    """EOL fraction of memory protected by materialized correction bits.

    *trials* defaults to ``REPRO_MC_TRIALS`` (else 20000); set it to 1M for
    a converged 99.9th percentile - the chunked, vectorized Monte Carlo and
    the per-channel-count process fan-out keep that tractable.
    """
    results = eol_fraction_by_channels(
        FIG8_CHANNELS, trials=trials, seed=seed, jobs=jobs, use_cache=use_cache
    )
    return [
        Fig8Row(n, r.mean, r.percentile(99.9)) for n, r in sorted(results.items())
    ]


@dataclass
class Fig18Row:
    window_hours: float
    probabilities: "dict[int, float]"  # fit -> lifetime probability


def figure18(org: "MemoryOrg | None" = None) -> "list[Fig18Row]":
    """P(multi-channel faults within any one scrub window over 7 years)."""
    org = org or MemoryOrg()
    rows = []
    for w in FIG18_WINDOWS_HOURS:
        probs = {
            fit: multi_channel_window_probability(w, fit, org) for fit in FIG18_FIT_RATES
        }
        rows.append(Fig18Row(w, probs))
    return rows
