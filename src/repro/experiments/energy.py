"""Energy-per-instruction comparisons (Figures 10-13).

For every workload the paper reports the reduction in memory EPI of the
ECC-Parity systems over each baseline:

* LOT-ECC5+ECC Parity vs {36-dev chipkill, 18-dev chipkill, LOT-ECC9,
  Multi-ECC, LOT-ECC5};
* RAIM+ECC Parity vs RAIM;

with Bin1/Bin2 (lower/higher bandwidth) averages, for both the
quad-channel-equivalent (Fig. 10) and dual-channel-equivalent (Fig. 11)
system classes.  Figures 12 and 13 split the same comparison into dynamic
and background energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.evaluation import CellResult, bins, evaluation_matrix

#: (proposal, baseline) comparison pairs of Figures 10-13.
COMPARISONS = [
    ("lot_ecc5_ep", "chipkill36"),
    ("lot_ecc5_ep", "chipkill18"),
    ("lot_ecc5_ep", "lot_ecc9"),
    ("lot_ecc5_ep", "multi_ecc"),
    ("lot_ecc5_ep", "lot_ecc5"),
    ("raim_ep", "raim"),
]


@dataclass
class EpiReport:
    """EPI reductions per workload and comparison, plus bin averages."""

    system_class: str
    metric: str  # "total" | "dynamic" | "background"
    per_workload: "dict[tuple[str, str, str], float]"  # (wl, prop, base) -> reduction
    bin1: "list[str]"
    bin2: "list[str]"

    def reduction(self, workload: str, proposal: str, baseline: str) -> float:
        return self.per_workload[(workload, proposal, baseline)]

    def bin_average(self, bin_names: "list[str]", proposal: str, baseline: str) -> float:
        vals = [self.per_workload[(w, proposal, baseline)] for w in bin_names]
        return sum(vals) / len(vals)

    def averages(self) -> "dict[tuple[str, str, str], float]":
        """{(bin, proposal, baseline): mean reduction} for Bin1/Bin2/All."""
        out = {}
        for prop, base in COMPARISONS:
            out[("Bin1", prop, base)] = self.bin_average(self.bin1, prop, base)
            out[("Bin2", prop, base)] = self.bin_average(self.bin2, prop, base)
            out[("All", prop, base)] = self.bin_average(self.bin1 + self.bin2, prop, base)
        return out


def _metric(cell: CellResult, metric: str) -> float:
    if metric == "total":
        return cell.epi_nj
    if metric == "dynamic":
        return cell.dynamic_epi_nj
    if metric == "background":
        return cell.background_epi_nj
    raise ValueError(f"unknown metric {metric!r}")


def epi_report(system_class: str = "quad", metric: str = "total", **matrix_kwargs) -> EpiReport:
    """Figure 10/11 (metric='total'), 12 ('dynamic'), or 13 ('background')."""
    matrix = evaluation_matrix(system_class, **matrix_kwargs)
    bin1, bin2 = bins(matrix)
    per = {}
    for wl in bin1 + bin2:
        for prop, base in COMPARISONS:
            e_prop = _metric(matrix[(wl, prop)], metric)
            e_base = _metric(matrix[(wl, base)], metric)
            per[(wl, prop, base)] = 1.0 - e_prop / e_base
    return EpiReport(system_class, metric, per, bin1, bin2)
