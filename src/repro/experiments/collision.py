"""How pessimistic is the paper's uncorrectable-error assumption?

Section VI-C's reliability bound assumes *any* two channels faulting within
one scrub window defeats the ECC parities.  In truth (and in our bit-true
machine) the parities only fail when the two faults overlap in the same
relative locations - i.e. when some parity group has two corrupted members.
This experiment measures that conditional probability directly: inject two
independent field faults in distinct channels with no scrub in between and
check whether every line still reads back correctly.

The measured collision fraction multiplies the Figure 18 window probability
to give a tighter uncorrectable-error estimate than the paper's bound.

Every trial seeds its own generator from ``SeedSequence((seed, trial))``,
so trials are independent of execution order and the campaign partitions
into process-parallel blocks (via
:func:`repro.experiments.parallel.run_tasks`) with bit-identical totals.
The per-trial recoverability sweep runs through the machine's batched
:meth:`~repro.core.machine.ECCParityMachine.read_lines` path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.layout import Geometry
from repro.core.machine import Address, ECCParityMachine
from repro.ecc.lot_ecc import LotEcc5
from repro.faults.fit_rates import FIT_BY_MODE, FaultMode
from repro.faults.injector import FaultInjector
from repro.util.envcfg import mc_trials
from repro.util.rng import make_rng

#: Trials per process-parallel block.
BLOCK_TRIALS = 16


@dataclass
class CollisionResult:
    """Outcome of the two-fault collision campaign."""

    trials: int
    collisions: int  #: trials where some line became unrecoverable
    geometry: Geometry

    @property
    def collision_fraction(self) -> float:
        return self.collisions / self.trials


def _machine_fully_recoverable(machine: ECCParityMachine) -> bool:
    """Can every line still be read back as its pre-fault content?"""
    computed = machine.scheme.compute_detection(machine.data)
    mismatch = np.any(computed != machine.detection, axis=-1)
    coords = np.argwhere(mismatch)
    if coords.size == 0:
        return True
    addrs = [Address(int(c), int(b), int(r), int(l)) for c, b, r, l in coords]
    res = machine.read_lines(addrs, count_errors=False)
    if not res.ok.all():
        return False
    cs, bs, rs, ls = coords.T
    return bool(np.all(res.data == machine.golden[cs, bs, rs, ls]))


def _collision_trial(trial: int, seed: int, geometry: Geometry) -> bool:
    """Run one independently-seeded trial; True when a collision occurred."""
    rng = make_rng(np.random.SeedSequence((seed, trial)))
    m = ECCParityMachine(LotEcc5(), geometry, seed=1000 + trial)
    inj = FaultInjector(m, seed=2000 + trial)
    modes = list(FIT_BY_MODE)
    weights = np.array([FIT_BY_MODE[m] for m in modes])
    weights = weights / weights.sum()
    c1, c2 = rng.choice(geometry.channels, size=2, replace=False)
    for chan in (int(c1), int(c2)):
        mode = modes[int(rng.choice(len(modes), p=weights))]
        bank = int(rng.integers(geometry.banks))
        chip = int(rng.integers(m.scheme.data_chips))
        inj.inject(mode, location=(chan, bank, chip))
    return not _machine_fully_recoverable(m)


def _collision_block(
    start: int,
    stop: int,
    seed: int,
    channels: int,
    banks: int,
    rows_per_bank: int,
    lines_per_row: int,
) -> "tuple[int, int, int]":
    """Worker entry point: ``(start, stop, collisions)`` for trials
    ``[start, stop)``.

    Rebuilds the geometry from primitives; per-trial seeding makes the
    block total independent of how trials are partitioned.  The block
    bounds ride along so the caller can checkpoint each block under its
    own cache key.
    """
    geometry = Geometry(
        channels=channels,
        banks=banks,
        rows_per_bank=rows_per_bank,
        lines_per_row=lines_per_row,
    )
    return start, stop, sum(_collision_trial(t, seed, geometry) for t in range(start, stop))


def two_fault_collision_mc(
    trials: "int | None" = None,
    geometry: "Geometry | None" = None,
    seed: int = 0,
    jobs: "int | None" = None,
    use_cache: bool = False,
) -> CollisionResult:
    """Inject two field faults in distinct channels per trial, no scrub.

    Uses the Sridharan mode mix for both faults.  A "collision" is any line
    the machine can no longer recover - exactly the event the paper's
    pessimistic bound counts at probability 1.  *trials* defaults to
    ``REPRO_MC_TRIALS`` (else 60).  With ``use_cache=True``, each finished
    trial block checkpoints to ``mc_collision.json`` in the experiment
    cache directory, so an interrupted campaign resumes with only the
    unfinished blocks recomputed (per-trial seeding keeps the resumed
    total bit-identical to an uninterrupted run).
    """
    from repro.experiments import parallel

    trials = mc_trials(trials, 60)
    geometry = geometry or Geometry(channels=4, banks=4, rows_per_bank=12, lines_per_row=8)
    cache: "dict[str, object]" = {}
    cache_path = None
    if use_cache:
        from repro.experiments import evaluation
        from repro.util.cachefile import load_json_cache, write_json_cache_atomic

        cache_path = evaluation.CACHE_DIR / "mc_collision.json"
        cache = load_json_cache(cache_path)

    def key(start: int, stop: int) -> str:
        g = geometry
        return (
            f"block={start}-{stop}:seed={seed}"
            f":geom={g.channels}x{g.banks}x{g.rows_per_bank}x{g.lines_per_row}"
        )

    collisions = 0
    payloads = []
    for start in range(0, trials, BLOCK_TRIALS):
        stop = min(start + BLOCK_TRIALS, trials)
        entry = cache.get(key(start, stop))
        if isinstance(entry, int):
            collisions += entry
        else:
            payloads.append(
                (
                    start,
                    stop,
                    seed,
                    geometry.channels,
                    geometry.banks,
                    geometry.rows_per_bank,
                    geometry.lines_per_row,
                )
            )
    for start, stop, count in parallel.run_tasks(_collision_block, payloads, jobs=jobs):
        collisions += count
        if cache_path is not None:
            cache[key(start, stop)] = count
            write_json_cache_atomic(cache_path, cache)
    return CollisionResult(trials, collisions, geometry)
