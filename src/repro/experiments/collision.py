"""How pessimistic is the paper's uncorrectable-error assumption?

Section VI-C's reliability bound assumes *any* two channels faulting within
one scrub window defeats the ECC parities.  In truth (and in our bit-true
machine) the parities only fail when the two faults overlap in the same
relative locations - i.e. when some parity group has two corrupted members.
This experiment measures that conditional probability directly: inject two
independent field faults in distinct channels with no scrub in between and
check whether every line still reads back correctly.

The measured collision fraction multiplies the Figure 18 window probability
to give a tighter uncorrectable-error estimate than the paper's bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.layout import Geometry
from repro.core.machine import Address, ECCParityMachine
from repro.ecc.lot_ecc import LotEcc5
from repro.faults.fit_rates import FIT_BY_MODE, FaultMode
from repro.faults.injector import FaultInjector
from repro.util.rng import make_rng


@dataclass
class CollisionResult:
    """Outcome of the two-fault collision campaign."""

    trials: int
    collisions: int  #: trials where some line became unrecoverable
    geometry: Geometry

    @property
    def collision_fraction(self) -> float:
        return self.collisions / self.trials


def _machine_fully_recoverable(machine: ECCParityMachine) -> bool:
    """Can every line still be read back as its pre-fault content?"""
    g = machine.geom
    computed = machine.scheme.compute_detection(machine.data)
    mismatch = np.any(computed != machine.detection, axis=-1)
    for c, b, r, l in np.argwhere(mismatch):
        if not machine.readable_and_correct(Address(int(c), int(b), int(r), int(l))):
            return False
    return True


def two_fault_collision_mc(
    trials: int = 60,
    geometry: "Geometry | None" = None,
    seed: int = 0,
) -> CollisionResult:
    """Inject two field faults in distinct channels per trial, no scrub.

    Uses the Sridharan mode mix for both faults.  A "collision" is any line
    the machine can no longer recover - exactly the event the paper's
    pessimistic bound counts at probability 1.
    """
    geometry = geometry or Geometry(channels=4, banks=4, rows_per_bank=12, lines_per_row=8)
    rng = make_rng(seed)
    modes = list(FIT_BY_MODE)
    weights = np.array([FIT_BY_MODE[m] for m in modes])
    weights = weights / weights.sum()

    collisions = 0
    for t in range(trials):
        m = ECCParityMachine(LotEcc5(), geometry, seed=1000 + t)
        inj = FaultInjector(m, seed=2000 + t)
        c1, c2 = rng.choice(geometry.channels, size=2, replace=False)
        for chan in (int(c1), int(c2)):
            mode = modes[int(rng.choice(len(modes), p=weights))]
            bank = int(rng.integers(geometry.banks))
            chip = int(rng.integers(m.scheme.data_chips))
            inj.inject(mode, location=(chan, bank, chip))
        if not _machine_fully_recoverable(m):
            collisions += 1
    return CollisionResult(trials, collisions, geometry)
