"""Per-figure/table experiment drivers (see DESIGN.md's experiment index)."""

from repro.experiments.capacity import PAPER_TABLE3, CapacityRow, figure1_breakdown, table3
from repro.experiments.discussion import DiscussionEstimates, estimates
from repro.experiments.energy import COMPARISONS, EpiReport, epi_report
from repro.experiments.evaluation import (
    CONFIG_KEYS,
    FULL,
    QUICK,
    CellResult,
    Fidelity,
    bins,
    current_fidelity,
    evaluation_matrix,
    instruction_budget,
    workload_order,
)
from repro.experiments.parallel import default_jobs, run_cells
from repro.experiments.performance import PerfReport, perf_report
from repro.experiments.reliability import figure2, figure8, figure18
from repro.experiments.report import format_barchart, format_percent, format_table, geomean
from repro.experiments.runner import (
    DEFAULT_SCALE,
    RunSpec,
    adaptive_instructions,
    build_system,
    run,
    run_matrix,
)
from repro.experiments.traffic import (
    BandwidthReport,
    TrafficReport,
    bandwidth_report,
    traffic_report,
)

__all__ = [
    "PAPER_TABLE3",
    "CapacityRow",
    "figure1_breakdown",
    "table3",
    "DiscussionEstimates",
    "estimates",
    "COMPARISONS",
    "EpiReport",
    "epi_report",
    "CONFIG_KEYS",
    "FULL",
    "QUICK",
    "CellResult",
    "Fidelity",
    "bins",
    "current_fidelity",
    "evaluation_matrix",
    "instruction_budget",
    "workload_order",
    "default_jobs",
    "run_cells",
    "PerfReport",
    "perf_report",
    "figure2",
    "figure8",
    "figure18",
    "format_barchart",
    "format_percent",
    "format_table",
    "geomean",
    "DEFAULT_SCALE",
    "RunSpec",
    "adaptive_instructions",
    "build_system",
    "run",
    "run_matrix",
    "BandwidthReport",
    "TrafficReport",
    "bandwidth_report",
    "traffic_report",
]
