"""Ablations of ECC Parity's design choices (called out in DESIGN.md).

* **XOR-cacheline caching** (Section III-D): compare the optimized design
  against a controller that pays the unoptimized Figure 6 step-E cost
  (three extra accesses) on every write-back.
* **Channel count**: the optimization's capacity benefit scales as
  ``R/(N-1)``, but its XOR-line coverage also scales with ``N-1``; this
  sweep measures both together on the timing plane.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.cpu.ecc_traffic import EccTrafficModel
from repro.cpu.llc import LLC
from repro.cpu.system import SimResult, SimSystem
from repro.core.scheme import ECCParityScheme
from repro.dram.system import MemorySystem, MemorySystemConfig
from repro.ecc.catalog import SystemConfig
from repro.ecc.lot_ecc import LotEcc5
from repro.experiments.runner import RunSpec, build_system
from repro.workloads.generator import make_core_traces
from repro.workloads.profiles import WorkloadProfile


def _run_with_model(spec: RunSpec, model: EccTrafficModel) -> SimResult:
    """Like runner.run but with an explicit ECC-traffic model."""
    scheme = spec.config.make_scheme()
    mem = MemorySystem(
        MemorySystemConfig(
            channels=spec.config.channels,
            ranks_per_channel=spec.config.ranks_per_channel,
            chip_widths=scheme.chip_widths(),
            line_size=scheme.line_size,
        )
    )
    traces = make_core_traces(
        spec.workload, cores=8, llc_block_bytes=scheme.line_size,
        seed=spec.seed, footprint_scale=spec.scale,
    )
    llc = LLC(size_bytes=(8 << 20) // spec.scale, line_size=scheme.line_size)
    system = SimSystem(mem, traces, model, llc=llc)
    return system.run(spec.resolved_warmup, spec.resolved_measure)


@dataclass
class CachingAblation:
    """Optimized vs unoptimized parity-update traffic for one workload."""

    workload: str
    cached: SimResult
    uncached: SimResult

    @property
    def traffic_blowup(self) -> float:
        return (
            self.uncached.accesses_per_instruction / self.cached.accesses_per_instruction
        )

    @property
    def energy_blowup(self) -> float:
        return self.uncached.epi_nj / self.cached.epi_nj


def xor_caching_ablation(
    workload: WorkloadProfile,
    config: SystemConfig,
    scale: int = 32,
    seed: int = 0,
) -> CachingAblation:
    """Section III-D ablation on one workload/configuration."""
    scheme = config.make_scheme()
    n = config.channels if config.ecc_parity else None
    base_model = EccTrafficModel.for_scheme(scheme, ecc_parity_channels=n)
    spec = RunSpec(workload, config, seed=seed, scale=scale)
    cached = _run_with_model(spec, base_model)
    uncached = _run_with_model(spec, dataclasses.replace(base_model, cache_ecc_lines=False))
    return CachingAblation(workload.name, cached, uncached)


@dataclass
class ChannelSweepPoint:
    channels: int
    capacity_overhead: float
    result: SimResult


def channel_count_sweep(
    workload: WorkloadProfile,
    channel_counts: "list[int]",
    ranks_per_channel: int = 4,
    scale: int = 32,
    seed: int = 0,
) -> "list[ChannelSweepPoint]":
    """LOT-ECC5+ECC Parity across channel counts (capacity + traffic)."""
    out = []
    for n in channel_counts:
        cfg = SystemConfig(
            "lot_ecc5",
            channels=n,
            ranks_per_channel=ranks_per_channel,
            ecc_parity=True,
            total_pins=72 * n,
        )
        spec = RunSpec(workload, cfg, seed=seed, scale=scale)
        res = build_system(spec).run(spec.resolved_warmup, spec.resolved_measure)
        out.append(
            ChannelSweepPoint(
                channels=n,
                capacity_overhead=ECCParityScheme(LotEcc5(), n).capacity_overhead,
                result=res,
            )
        )
    return out
