"""Memory-traffic metrics: bandwidth characterization (Figure 9) and
normalized accesses per instruction (Figures 16 and 17).

An "access" is 64 bytes read from or written to memory, so the 128B-line
baselines (36-device chipkill, RAIM) are charged two per line transfer -
the paper's own accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.energy import COMPARISONS
from repro.experiments.evaluation import bins, evaluation_matrix
from repro.experiments.report import geomean


@dataclass
class BandwidthReport:
    """Figure 9: per-workload bandwidth on the dual-channel commercial system."""

    per_workload: "dict[str, float]"  # GB/s
    bin1: "list[str]"
    bin2: "list[str]"


def bandwidth_report(**matrix_kwargs) -> BandwidthReport:
    """Workload bandwidth utilization, dual-channel 36-dev chipkill system."""
    matrix = evaluation_matrix("dual", config_keys=["chipkill36"], **matrix_kwargs)
    per = {wl: cell.bandwidth_gbps for (wl, _), cell in matrix.items()}
    ordered = sorted(per, key=per.get)
    half = len(ordered) // 2
    return BandwidthReport(per, ordered[:half], ordered[half:])


@dataclass
class TrafficReport:
    """Figures 16/17: accesses per instruction normalized to baselines."""

    system_class: str
    per_workload: "dict[tuple[str, str, str], float]"
    bin1: "list[str]"
    bin2: "list[str]"

    def normalized(self, workload: str, proposal: str, baseline: str) -> float:
        return self.per_workload[(workload, proposal, baseline)]

    def average(self, proposal: str, baseline: str) -> float:
        vals = [
            v for (w, p, b), v in self.per_workload.items() if p == proposal and b == baseline
        ]
        return geomean(vals)


def traffic_report(system_class: str = "quad", **matrix_kwargs) -> TrafficReport:
    """Figure 16 (quad) / Figure 17 (dual)."""
    matrix = evaluation_matrix(system_class, **matrix_kwargs)
    bin1, bin2 = bins(matrix)
    per = {}
    for wl in bin1 + bin2:
        for prop, base in COMPARISONS:
            per[(wl, prop, base)] = (
                matrix[(wl, prop)].accesses_per_instruction
                / matrix[(wl, base)].accesses_per_instruction
            )
    return TrafficReport(system_class, per, bin1, bin2)
