"""Empirical detection-coverage campaign (Section VI-D).

Monte Carlo over simulated *address-decoder* faults: a chip coherently
returns another location's data.  Plain LOT-ECC5's chip-local checksums
travel with the wrong data and stay self-consistent, so the error escapes;
the VI-D Reed-Solomon variant computes its on-the-fly check symbol across
chips and catches it.  This is the measured counterpart to the paper's
once-per-300,000-years analytic estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ecc.lot_ecc import LotEcc5
from repro.ecc.lot_ecc_rs import LotEcc5RS
from repro.util.rng import make_rng


@dataclass
class DetectionCoverage:
    """Outcome of one scheme's address-error campaign."""

    scheme: str
    trials: int
    detected: int
    corrected: int

    @property
    def detection_rate(self) -> float:
        return self.detected / self.trials

    @property
    def correction_rate(self) -> float:
        return self.corrected / self.trials


def _address_error_trial_plain(scheme: LotEcc5, rng) -> "tuple[bool, bool]":
    """Plain LOT-ECC5 with chip-local checksums: data + checksum swap together."""
    data = rng.integers(0, 256, 64, dtype=np.uint8)
    wrong = rng.integers(0, 256, 64, dtype=np.uint8)
    victim = int(rng.integers(scheme.data_chips))
    chips, det, cor = scheme.encode_line(data)
    wchips, wdet, _ = scheme.encode_line(wrong)
    bad = chips.copy()
    bad[victim] = wchips[victim]
    bad_det = det.reshape(scheme.data_chips, -1).copy()
    bad_det[victim] = wdet.reshape(scheme.data_chips, -1)[victim]
    bad_det = bad_det.reshape(-1)
    detected = scheme.detect_line(bad, bad_det).error
    res = scheme.correct_line(bad, bad_det, cor)
    corrected = res.data is not None and np.array_equal(res.data, data)
    return detected, corrected


def _address_error_trial_rs(scheme: LotEcc5RS, rng) -> "tuple[bool, bool]":
    data = rng.integers(0, 256, 64, dtype=np.uint8)
    wrong = rng.integers(0, 256, 64, dtype=np.uint8)
    victim = int(rng.integers(scheme.data_chips))
    chips, det, cor = scheme.encode_line(data)
    bad = chips.copy()
    bad[victim] = scheme.split_to_chips(wrong)[victim]
    detected = scheme.detect_line(bad, det).error
    res = scheme.correct_line(bad, det, cor)
    corrected = res.data is not None and np.array_equal(res.data, data)
    return detected, corrected


def address_error_campaign(trials: int = 300, seed: int = 0) -> "list[DetectionCoverage]":
    """Run the campaign for both encodings; returns coverage per scheme."""
    out = []
    for scheme, trial in (
        (LotEcc5(), _address_error_trial_plain),
        (LotEcc5RS(), _address_error_trial_rs),
    ):
        rng = make_rng(seed)
        detected = corrected = 0
        for _ in range(trials):
            d, c = trial(scheme, rng)
            detected += d
            corrected += c
        out.append(DetectionCoverage(scheme.name, trials, detected, corrected))
    return out
