"""Detection/correction coverage study across ECC schemes.

Monte Carlo the failure space the schemes are specified against - and just
beyond it - to measure what the capacity overheads actually buy:

* single-chip kills (every scheme's contract: must detect and correct);
* double-chip kills (only double chipkill corrects; the others should
  *detect* - silent corruption or miscorrection is the failure mode);
* random multi-bit scatter (detection-code stress).

This quantifies the paper's caveat that the 18-device code's shared
detection/correction symbols "potentially slightly impact error detection
coverage": with both check symbols consumed by correction, a double-chip
corruption can alias to a valid single-symbol correction and silently
miscorrect, where the 36-device code's spare symbols flag it.

Trials are drawn and decoded in chunked batches (one
:meth:`~repro.ecc.base.ECCScheme.correct_lines` call per chunk); the
per-trial loop survives as :func:`_tally_reference`, which consumes the
same draws and is held equal to the batched path by
``tests/test_mc_batched.py``.  Cells fan out over processes via
:func:`repro.experiments.parallel.run_tasks`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ecc.base import ECCScheme
from repro.util.envcfg import mc_trials
from repro.util.rng import make_rng

#: Fault patterns: name -> (kind, parameter).
PATTERNS = {
    "single-chip kill": ("chips", 1),
    "double-chip kill": ("chips", 2),
    "8 scattered bit flips": ("bits", 8),
}

#: Trials per draw/decode batch (bounds peak memory at large trial counts).
DEFAULT_CHUNK = 1 << 14


@dataclass
class CoverageRow:
    """Outcome counts for one (scheme, fault pattern) cell."""

    scheme: str
    pattern: str
    trials: int
    corrected: int = 0  #: returned the original data
    detected_uncorrectable: int = 0  #: flagged, no data (safe)
    silent_or_wrong: int = 0  #: undetected or miscorrected (the bad case)

    @property
    def safe_rate(self) -> float:
        return (self.corrected + self.detected_uncorrectable) / self.trials

    @property
    def silent_rate(self) -> float:
        return self.silent_or_wrong / self.trials


def _draw_chunk(scheme: ECCScheme, pattern: str, n: int, rng):
    """Draw one chunk of *n* trials: payloads plus the corruption spec.

    The shared draw-order contract of the batched and reference tallies:
    line payloads first, then per-pattern placement arrays (victim-chip
    orderings and replacement segments for chip kills; flat byte positions
    and bit indices for scatter).
    """
    kind, param = PATTERNS[pattern]
    data = rng.integers(0, 256, (n, scheme.line_size), dtype=np.uint8)
    if kind == "chips":
        order = np.argsort(rng.random((n, scheme.data_chips)), axis=1)
        victims = order[:, :param]
        repl = rng.integers(0, 256, (n, param, scheme.chip_bytes), dtype=np.uint8)
        return data, (kind, victims, repl)
    pos = rng.integers(scheme.data_chips * scheme.chip_bytes, size=(n, param))
    bit = rng.integers(8, size=(n, param))
    return data, (kind, pos, bit)


def _corrupt(scheme: ECCScheme, chips: np.ndarray, spec) -> np.ndarray:
    """Apply a chunk's corruption spec to its ``(n, chips, chip_bytes)`` batch."""
    kind, a, b = spec
    bad = chips.copy()
    n = bad.shape[0]
    if kind == "chips":
        bad[np.arange(n)[:, None], a] = b
        return bad
    flat = bad.reshape(n, -1)
    for i in range(a.shape[1]):  # a few vector ops; duplicates self-cancel
        flat[np.arange(n), a[:, i]] ^= (1 << b[:, i]).astype(np.uint8)
    return bad


def _tally_batched(scheme: ECCScheme, data: np.ndarray, spec) -> np.ndarray:
    """Chunk outcome counts ``[corrected, detected_uncorrectable, silent]``."""
    chips = scheme.split_to_chips(data)
    det = scheme.compute_detection(data)
    cor = scheme.compute_correction(data)
    bad = _corrupt(scheme, chips, spec)
    res = scheme.correct_lines(bad, det, cor)
    right = res.ok & np.all(res.data == data, axis=1)
    return np.array(
        [int(right.sum()), int((~res.ok).sum()), int((res.ok & ~right).sum())], dtype=np.int64
    )


def _tally_reference(scheme: ECCScheme, data: np.ndarray, spec) -> np.ndarray:
    """Per-trial oracle over the same draws (property-test reference)."""
    chips = scheme.split_to_chips(data)
    det = scheme.compute_detection(data)
    cor = scheme.compute_correction(data)
    bad = _corrupt(scheme, chips, spec)
    counts = np.zeros(3, dtype=np.int64)
    for i in range(data.shape[0]):
        res = scheme.correct_line(bad[i], det[i], cor[i])
        if res.data is None:
            counts[1] += 1
        elif np.array_equal(res.data, data[i]):
            counts[0] += 1
        else:
            counts[2] += 1
    return counts


def _cell_counts(
    scheme: ECCScheme, pattern: str, trials: int, seed: int, chunk_size: int
) -> "list[int]":
    """One (scheme, pattern) cell: chunked draw + batched tally."""
    rng = make_rng(seed)
    counts = np.zeros(3, dtype=np.int64)
    done = 0
    while done < trials:
        n = min(chunk_size, trials - done)
        data, spec = _draw_chunk(scheme, pattern, n, rng)
        counts += _tally_batched(scheme, data, spec)
        done += n
    return [int(v) for v in counts]


def _coverage_cell(
    scheme_cls: str,
    pattern: str,
    trials: int,
    seed: int,
    chunk_size: int,
) -> "tuple[str, str, list[int]]":
    """Worker entry point: one cell from primitives.

    The scheme is rebuilt from its class name (every catalog scheme is
    default-constructible), so the cell pickles cleanly and is
    bit-identical wherever it runs.
    """
    import repro.ecc as ecc_pkg

    scheme = getattr(ecc_pkg, scheme_cls)()
    return scheme_cls, pattern, _cell_counts(scheme, pattern, trials, seed, chunk_size)


def _worker_compatible(scheme: ECCScheme) -> bool:
    import repro.ecc as ecc_pkg

    return getattr(ecc_pkg, type(scheme).__name__, None) is type(scheme)


def coverage_study(
    schemes: "list[ECCScheme]",
    trials: "int | None" = None,
    seed: int = 0,
    jobs: "int | None" = None,
    chunk_size: int = DEFAULT_CHUNK,
    use_cache: bool = False,
) -> "list[CoverageRow]":
    """Run the fault-pattern grid over *schemes*.

    *trials* defaults to ``REPRO_MC_TRIALS`` (else 200).  Cells are
    independent (each reseeds from *seed*) and fan out over processes;
    schemes that are not rebuildable from their class name force the
    in-process path.  With ``use_cache=True``, finished cells checkpoint
    to ``mc_coverage.json`` in the experiment cache directory after each
    completion, so an interrupted or partially-failed campaign resumes
    with only the missing cells recomputed (cells are keyed by scheme
    class, pattern, and every sizing knob; schemes not rebuildable from a
    class name are never cached, since the key can't capture their state).
    """
    from repro.experiments import parallel

    trials = mc_trials(trials, 200)
    by_name = {type(s).__name__: s for s in schemes}
    results = {}
    compatible = all(_worker_compatible(s) for s in schemes)
    cache: "dict[str, object]" = {}
    cache_path = None
    if use_cache and compatible:
        from repro.experiments import evaluation
        from repro.util.cachefile import load_json_cache, write_json_cache_atomic

        cache_path = evaluation.CACHE_DIR / "mc_coverage.json"
        cache = load_json_cache(cache_path)

    def key(cls_name: str, pname: str) -> str:
        return f"{cls_name}|{pname}|trials={trials}:seed={seed}:chunk={chunk_size}"

    if compatible:
        payloads = []
        for s in schemes:
            for pname in PATTERNS:
                entry = cache.get(key(type(s).__name__, pname))
                if isinstance(entry, list) and len(entry) == 3:
                    results[(type(s).__name__, pname)] = [int(v) for v in entry]
                else:
                    payloads.append((type(s).__name__, pname, trials, seed, chunk_size))
        for cls_name, pname, counts in parallel.run_tasks(_coverage_cell, payloads, jobs=jobs):
            results[(cls_name, pname)] = counts
            if cache_path is not None:
                cache[key(cls_name, pname)] = counts
                write_json_cache_atomic(cache_path, cache)
    else:
        # Schemes we can't rebuild from a class name don't cross processes.
        for s in schemes:
            for pname in PATTERNS:
                results[(type(s).__name__, pname)] = _cell_counts(
                    s, pname, trials, seed, chunk_size
                )
    return [
        CoverageRow(
            by_name[cls_name].name,
            pname,
            trials,
            corrected=results[(cls_name, pname)][0],
            detected_uncorrectable=results[(cls_name, pname)][1],
            silent_or_wrong=results[(cls_name, pname)][2],
        )
        for cls_name in (type(s).__name__ for s in schemes)
        for pname in PATTERNS
    ]
