"""Detection/correction coverage study across ECC schemes.

Monte Carlo the failure space the schemes are specified against - and just
beyond it - to measure what the capacity overheads actually buy:

* single-chip kills (every scheme's contract: must detect and correct);
* double-chip kills (only double chipkill corrects; the others should
  *detect* - silent corruption or miscorrection is the failure mode);
* random multi-bit scatter (detection-code stress).

This quantifies the paper's caveat that the 18-device code's shared
detection/correction symbols "potentially slightly impact error detection
coverage": with both check symbols consumed by correction, a double-chip
corruption can alias to a valid single-symbol correction and silently
miscorrect, where the 36-device code's spare symbols flag it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ecc.base import ECCScheme
from repro.util.rng import make_rng


@dataclass
class CoverageRow:
    """Outcome counts for one (scheme, fault pattern) cell."""

    scheme: str
    pattern: str
    trials: int
    corrected: int = 0  #: returned the original data
    detected_uncorrectable: int = 0  #: flagged, no data (safe)
    silent_or_wrong: int = 0  #: undetected or miscorrected (the bad case)

    @property
    def safe_rate(self) -> float:
        return (self.corrected + self.detected_uncorrectable) / self.trials

    @property
    def silent_rate(self) -> float:
        return self.silent_or_wrong / self.trials


def _classify(scheme: ECCScheme, data, chips, det, cor) -> str:
    res = scheme.correct_line(chips, det, cor)
    if res.data is None:
        return "detected_uncorrectable"
    if np.array_equal(res.data, data):
        return "corrected" if res.detected else "clean"
    return "silent_or_wrong"


def _corrupt_chips(scheme, rng, chips, n_chips):
    bad = chips.copy()
    victims = rng.choice(scheme.data_chips, size=n_chips, replace=False)
    for v in victims:
        bad[int(v)] = rng.integers(0, 256, scheme.chip_bytes)
    return bad


def _scatter_bits(scheme, rng, chips, n_bits):
    bad = chips.copy()
    flat = bad.reshape(-1)
    for _ in range(n_bits):
        pos = int(rng.integers(flat.size))
        flat[pos] ^= 1 << int(rng.integers(8))
    return bad


def coverage_study(
    schemes: "list[ECCScheme]",
    trials: int = 200,
    seed: int = 0,
) -> "list[CoverageRow]":
    """Run the fault-pattern grid over *schemes*."""
    patterns = {
        "single-chip kill": lambda s, rng, ch: _corrupt_chips(s, rng, ch, 1),
        "double-chip kill": lambda s, rng, ch: _corrupt_chips(s, rng, ch, 2),
        "8 scattered bit flips": lambda s, rng, ch: _scatter_bits(s, rng, ch, 8),
    }
    out = []
    for scheme in schemes:
        for pname, corrupt in patterns.items():
            rng = make_rng(seed)
            row = CoverageRow(scheme.name, pname, trials)
            for _ in range(trials):
                data = rng.integers(0, 256, scheme.line_size, dtype=np.uint8)
                chips, det, cor = scheme.encode_line(data)
                bad = corrupt(scheme, rng, chips)
                outcome = _classify(scheme, data, bad, det, cor)
                if outcome in ("corrected", "clean"):
                    row.corrected += 1
                elif outcome == "detected_uncorrectable":
                    row.detected_uncorrectable += 1
                else:
                    row.silent_or_wrong += 1
            out.append(row)
    return out
