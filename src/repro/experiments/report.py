"""Plain-text rendering of the reproduced tables and figures.

Every experiment driver returns rows of (label, value...) data; these
helpers format them as aligned monospace tables, the library's equivalent
of the paper's plots.
"""

from __future__ import annotations


def format_table(
    headers: "list[str]",
    rows: "list[list]",
    floatfmt: str = "{:.3f}",
    title: "str | None" = None,
) -> str:
    """Render rows as an aligned monospace table."""

    def fmt(v):
        if isinstance(v, float):
            return floatfmt.format(v)
        return str(v)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_percent(x: float) -> str:
    return f"{x * 100:.1f}%"


def format_barchart(
    items: "list[tuple[str, float]]",
    width: int = 48,
    title: "str | None" = None,
    fmt: str = "{:+.1%}",
    baseline: float = 0.0,
) -> str:
    """Render labeled values as a horizontal ASCII bar chart.

    Values are plotted relative to *baseline*; negatives extend left of the
    axis.  Used to give the regenerated figures the paper's bar-chart look
    in plain text.
    """
    if not items:
        return title or ""
    span = max(abs(v - baseline) for _, v in items) or 1.0
    label_w = max(len(label) for label, _ in items)
    half = width // 2
    lines = [title] if title else []
    for label, v in items:
        frac = (v - baseline) / span
        n = round(abs(frac) * half)
        if frac >= 0:
            bar = " " * half + "|" + "#" * n + " " * (half - n)
        else:
            bar = " " * (half - n) + "#" * n + "|" + " " * half
        lines.append(f"{label.ljust(label_w)}  {bar}  {fmt.format(v)}")
    return "\n".join(lines)


def geomean(values: "list[float]") -> float:
    """Geometric mean (the right average for normalized ratios)."""
    if not values:
        return float("nan")
    prod = 1.0
    for v in values:
        prod *= v
    return prod ** (1.0 / len(values))
