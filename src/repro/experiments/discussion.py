"""Section VI estimates: HPC stalls (VI-B), added uncorrectable errors
(VI-C), and undetectable errors (VI-D)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.analysis import (
    added_uncorrectable_interval_years,
    hpc_stall_fraction,
    undetectable_error_interval_years,
)


@dataclass(frozen=True)
class DiscussionEstimates:
    """The three headline numbers of Section VI, with the paper's values."""

    hpc_stall_fraction: float  #: paper: 0.0035
    added_ue_interval_years: float  #: paper: ~35,000 yr (8h scrub, 100 FIT)
    undetectable_interval_years: float  #: paper: ~300,000 yr

    PAPER_STALL = 0.0035
    PAPER_ADDED_UE_YEARS = 35_000.0
    PAPER_UNDETECTABLE_YEARS = 300_000.0


def estimates() -> DiscussionEstimates:
    """Compute all Section VI estimates with the paper's parameters."""
    return DiscussionEstimates(
        hpc_stall_fraction=hpc_stall_fraction(),
        added_ue_interval_years=added_uncorrectable_interval_years(8.0, 100.0),
        undetectable_interval_years=undetectable_error_interval_years(),
    )
