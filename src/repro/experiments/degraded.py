"""Degraded-mode evaluation: cost of operating with faulty bank pairs.

The paper argues (Section III-C) that reading the ECC line for every
application read to a faulty bank (step B) is the most expensive added step
but stays cheap because it is LLC-cached and faults are rare.  This
experiment makes that quantitative: sweep the fraction of bank pairs
recorded as faulty and measure traffic, energy, and performance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.degraded import DegradedMode
from repro.cpu.ecc_traffic import EccTrafficModel
from repro.cpu.llc import LLC
from repro.cpu.system import SimResult, SimSystem
from repro.dram.system import MemorySystem, MemorySystemConfig
from repro.ecc.catalog import SystemConfig
from repro.experiments.runner import RunSpec
from repro.workloads.generator import make_core_traces
from repro.workloads.profiles import WorkloadProfile


@dataclass
class DegradedPoint:
    """One sweep point: fraction of bank pairs faulty and measured costs."""

    faulty_fraction: float
    result: SimResult


def _faulty_bank_set(config: SystemConfig, fraction: float, banks_per_rank: int = 8):
    """Deterministically mark the first `fraction` of bank pairs faulty."""
    total_pairs = config.channels * config.ranks_per_channel * banks_per_rank // 2
    n_faulty = round(total_pairs * fraction)
    banks = []
    pair = 0
    for ch in range(config.channels):
        for rk in range(config.ranks_per_channel):
            for bp in range(banks_per_rank // 2):
                if pair < n_faulty:
                    banks.append((ch, rk, 2 * bp))
                    banks.append((ch, rk, 2 * bp + 1))
                pair += 1
    return banks


def degraded_sweep(
    workload: WorkloadProfile,
    config: SystemConfig,
    fractions: "list[float]",
    scale: int = 32,
    seed: int = 0,
) -> "list[DegradedPoint]":
    """Run the workload with increasing shares of faulty bank pairs."""
    out = []
    for frac in fractions:
        scheme = config.make_scheme()
        mem = MemorySystem(
            MemorySystemConfig(
                channels=config.channels,
                ranks_per_channel=config.ranks_per_channel,
                chip_widths=scheme.chip_widths(),
                line_size=scheme.line_size,
            )
        )
        model = EccTrafficModel.for_scheme(
            scheme, ecc_parity_channels=config.channels if config.ecc_parity else None
        )
        degraded = (
            DegradedMode.for_scheme(scheme, _faulty_bank_set(config, frac))
            if frac > 0
            else None
        )
        traces = make_core_traces(
            workload, cores=8, llc_block_bytes=scheme.line_size,
            seed=seed, footprint_scale=scale,
        )
        llc = LLC(size_bytes=(8 << 20) // scale, line_size=scheme.line_size)
        system = SimSystem(mem, traces, model, llc=llc, degraded=degraded)
        spec = RunSpec(workload, config, seed=seed, scale=scale)
        res = system.run(spec.resolved_warmup, spec.resolved_measure)
        out.append(DegradedPoint(frac, res))
    return out
