"""Scrub-rate design space: reliability vs bandwidth/energy overhead.

Section VI-C gives the reliability side of the scrub-rate trade (Figure 18);
this experiment adds the cost side.  Two views:

* **analytic**: the bandwidth a patrol scrubber consumes is simply
  ``memory_bytes / window`` - a fraction of peak bandwidth that is
  negligible at the paper's 8-hour window and grows inversely with it;
* **simulated**: accelerated scrub intervals injected into the timing plane
  show how patrol reads interact with real traffic (they ride the
  background priority class, so demand impact stays small until the
  scrubber consumes a visible bandwidth share).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.ecc_traffic import EccTrafficModel
from repro.cpu.llc import LLC
from repro.cpu.system import ScrubConfig, SimResult, SimSystem
from repro.dram.system import MemorySystem, MemorySystemConfig
from repro.ecc.catalog import SystemConfig
from repro.experiments.runner import RunSpec
from repro.util.units import GIB
from repro.workloads.generator import make_core_traces
from repro.workloads.profiles import WorkloadProfile


def scrub_bandwidth_fraction(
    memory_gib: float,
    window_hours: float,
    peak_bandwidth_gbps: float,
) -> float:
    """Fraction of peak bandwidth a patrol scrubber consumes.

    One full sweep of *memory_gib* per *window_hours* against a channel
    aggregate of *peak_bandwidth_gbps* (GB/s).
    """
    bytes_per_second = memory_gib * GIB / (window_hours * 3600.0)
    return bytes_per_second / (peak_bandwidth_gbps * 1e9)


@dataclass
class ScrubPoint:
    """One simulated scrub-rate point."""

    interval_cycles: int
    result: SimResult
    scrub_reads: int


def scrub_sweep(
    workload: WorkloadProfile,
    config: SystemConfig,
    intervals: "list[int | None]",
    scale: int = 32,
    seed: int = 0,
) -> "list[ScrubPoint]":
    """Run the workload under increasingly aggressive patrol scrubbing.

    ``None`` in *intervals* means no scrubber (the baseline).
    """
    out = []
    for interval in intervals:
        scheme = config.make_scheme()
        mem = MemorySystem(
            MemorySystemConfig(
                channels=config.channels,
                ranks_per_channel=config.ranks_per_channel,
                chip_widths=scheme.chip_widths(),
                line_size=scheme.line_size,
            )
        )
        model = EccTrafficModel.for_scheme(
            scheme, ecc_parity_channels=config.channels if config.ecc_parity else None
        )
        traces = make_core_traces(
            workload, cores=8, llc_block_bytes=scheme.line_size,
            seed=seed, footprint_scale=scale,
        )
        llc = LLC(size_bytes=(8 << 20) // scale, line_size=scheme.line_size)
        scrub = (
            ScrubConfig(interval_cycles=interval, region_lines=1 << 20)
            if interval is not None
            else None
        )
        system = SimSystem(mem, traces, model, llc=llc, scrub=scrub)
        spec = RunSpec(workload, config, seed=seed, scale=scale)
        res = system.run(spec.resolved_warmup, spec.resolved_measure)
        out.append(ScrubPoint(interval or 0, res, system.scrub_reads))
    return out
