"""Resilient process-parallel fan-out of campaign tasks.

Every campaign cell (evaluation-matrix cells, Monte Carlo fig8 / coverage /
collision cells) is an independent, deterministic simulation: workers
receive only primitives, rebuild their inputs, and seed themselves, so a
task's result never depends on which process ran it and a parallel
campaign is bit-identical to a serial one.  :func:`run_tasks` is the
generic engine under every driver; :func:`run_cells` adapts it to the
evaluation matrix.

At production scale (1M-trial campaigns, full 16-workload sweeps) partial
failure is the common case, so the engine wraps the fan-out in a
resilience layer:

* **Bounded retry with exponential backoff** — a worker exception consumes
  one attempt; the task is resubmitted up to ``retries``
  (``REPRO_TASK_RETRIES``, default 2) times before being recorded as a
  structured :class:`TaskFailure`.
* **Per-task timeout** — with ``timeout`` (``REPRO_TASK_TIMEOUT``) set, a
  task that produces no result within the window is presumed hung; the
  only way to reclaim a hung worker is to kill its pool, so the pool is
  torn down, the timed-out task is charged an attempt, and everything
  in flight is requeued.
* **Pool rebuild on ``BrokenProcessPool``** — an OOM-killed or crashed
  worker takes the whole executor down; the engine kills the broken pool,
  requeues all in-flight tasks (the culprit is unknowable, so nobody's
  retry budget is charged), and rebuilds.
* **Graceful degradation to serial** — when the pool breaks
  :data:`REBUILD_LIMIT` times consecutively (no task resolved in between)
  or :data:`REBUILD_TOTAL_LIMIT` times overall, the engine stops fighting
  and finishes the remaining tasks in-process.
* **Failure records at campaign end** — failed tasks no longer abort the
  campaign: every other task still completes (and is checkpointed by the
  caller as it streams back), then a :class:`CampaignError` carrying every
  :class:`TaskFailure` (payload identity, attempts, error) is raised, so a
  rerun recomputes only the failed cells.

Because workers are pure and retried/requeued tasks are simply re-executed
from the same primitives, every recovery path yields the same bytes as a
fault-free run — the serial == parallel determinism contract survives
retries, rebuilds, and degradation.  The deterministic fault injector in
:mod:`repro.util.chaos` (armed via ``REPRO_CHAOS`` or the ``chaos``
argument) exists to prove exactly that in tests: faults are injected only
into pool workers, never into the serial/degraded in-process path.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from typing import Callable, Iterable, Iterator

from repro import obs
from repro.ecc.catalog import SYSTEM_CLASSES
from repro.experiments import evaluation
from repro.experiments.runner import RunSpec, run
from repro.util import chaos as chaos_mod
from repro.util import envcfg
from repro.workloads.profiles import WORKLOADS_BY_NAME

#: Base delay (seconds) of the exponential retry backoff; attempt *k*
#: sleeps ``backoff * 2**(k-1)`` capped at :data:`BACKOFF_CAP`.
BACKOFF_BASE = 0.05
BACKOFF_CAP = 2.0

#: Consecutive pool rebuilds (no task resolved in between) before the
#: engine degrades to serial in-process execution.
REBUILD_LIMIT = 2

#: Total pool rebuilds in one campaign before degrading, whatever the
#: progress in between — bounds a persistent crasher that lets other
#: tasks finish between rebuilds.
REBUILD_TOTAL_LIMIT = 5


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set, else the machine's CPU count."""
    return envcfg.jobs(os.cpu_count() or 1)


@dataclass(frozen=True)
class TaskFailure:
    """Structured record of one task that exhausted its attempt budget."""

    index: int  #: position in the campaign's payload list
    payload: tuple  #: the originating payload (cell identity)
    attempts: int  #: attempts consumed when the task was given up
    kind: str  #: "exception" | "timeout" | "corrupt"
    error: str  #: rendered final error
    cause: "BaseException | None" = field(default=None, repr=False, compare=False)


class TaskError(RuntimeError):
    """A worker failure wrapped with the identity of the task that raised it.

    Raised immediately (``fail_fast=True``) instead of being collected, so
    the failing cell is identifiable without rerunning the sweep.
    """

    def __init__(self, failure: TaskFailure):
        self.failure = failure
        super().__init__(
            f"task #{failure.index} {failure.payload!r} failed after "
            f"{failure.attempts} attempt(s) [{failure.kind}]: {failure.error}"
        )


class CampaignError(RuntimeError):
    """Raised at campaign end when tasks failed; carries every failure record.

    By the time this is raised every other task has completed and been
    yielded (and checkpointed by callers that cache), so a rerun recomputes
    only the cells listed here.
    """

    def __init__(self, failures: "list[TaskFailure]", total: int):
        self.failures = list(failures)
        self.total = total
        lines = "\n".join(
            f"  - task #{f.index} {f.payload!r}: {f.kind} after "
            f"{f.attempts} attempt(s): {f.error}"
            for f in self.failures
        )
        super().__init__(
            f"{len(self.failures)}/{total} campaign task(s) failed after retries:\n{lines}"
        )


def _emit(kind: str, **fields) -> None:
    """Engine telemetry: event + matching counter, no-op unless armed.

    All engine events are per-task (not per-simulated-event), so the
    armed-path cost is irrelevant; the disarmed path is one mode check.
    """
    if not obs.enabled("engine"):
        return
    obs.REGISTRY.counter(kind).inc()
    obs.emit(kind, **fields)


@dataclass(frozen=True)
class _WorkerReport:
    """Worker-side attribution shipped back alongside every pooled result."""

    pid: int
    wall_s: float


def _obs_task(cfg, chaos, worker, index, attempt, payload):
    """Worker entry point for every pooled task.

    Arms the worker's telemetry to the parent's config (*cfg*, picklable;
    fork workers inherit the sink and this is a no-op), applies chaos when
    armed, and wraps the result in a ``(_WorkerReport, result)`` envelope
    so per-worker attribution flows back through the pool.  Exceptions
    (and ``crash`` faults) propagate unwrapped, exactly as before.
    """
    obs.ensure_worker(cfg)
    t0 = time.perf_counter()
    if chaos:
        result = chaos_mod.chaos_call(chaos, worker, index, attempt, payload)
    else:
        result = worker(*payload)
    return _WorkerReport(os.getpid(), round(time.perf_counter() - t0, 6)), result


def _unwrap(value) -> "tuple[_WorkerReport | None, object]":
    """Split a pooled result envelope; tolerate a bare value defensively."""
    if type(value) is tuple and len(value) == 2 and isinstance(value[0], _WorkerReport):
        return value
    return None, value


def _record(failures, index, payload, attempts, kind, exc, fail_fast):
    failure = TaskFailure(
        index=index,
        payload=payload,
        attempts=attempts,
        kind=kind,
        error=f"{type(exc).__name__}: {exc}",
        cause=exc,
    )
    if fail_fast:
        raise TaskError(failure) from exc
    failures.append(failure)


def _result_ok(result, validate) -> bool:
    if isinstance(result, chaos_mod.Corrupted):
        return False
    return validate is None or bool(validate(result))


def _backoff_sleep(backoff: float, attempt: int) -> None:
    if backoff > 0:
        time.sleep(min(BACKOFF_CAP, backoff * (2 ** (attempt - 1))))


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting: cancel queued work, kill workers.

    A hung or crashed worker never drains the call queue, so a waiting
    shutdown could block forever; the worker processes are terminated
    directly (the private ``_processes`` map is the only handle the
    executor exposes).
    """
    procs = getattr(pool, "_processes", None)
    procs = list(procs.values()) if procs else []
    pool.shutdown(wait=False, cancel_futures=True)
    for p in procs:
        try:
            p.terminate()
        except Exception:
            pass
    for p in procs:
        try:
            p.join(timeout=5.0)
        except Exception:
            pass


def _submit(pool, worker, payload, index, attempt, chaos):
    return pool.submit(_obs_task, obs.worker_config(), chaos, worker, index, attempt, payload)


def _collect(fut) -> "tuple[str, object]":
    """Classify a future: ("ok", result) | ("error", exc) | ("broken", exc).

    "broken" means the pool died under the task (or cancelled it) — the
    task itself is not at fault and is requeued without charging its retry
    budget.
    """
    if not fut.done():
        return "broken", RuntimeError("worker still running when its pool died")
    if fut.cancelled():
        return "broken", RuntimeError("task cancelled by pool teardown")
    exc = fut.exception()
    if exc is None:
        return "ok", fut.result()
    if isinstance(exc, BrokenProcessPool):
        return "broken", exc
    return "error", exc


def _run_serial(worker, payloads, tasks, retries, backoff, validate, failures, fail_fast):
    """In-process execution with the same retry/validation contract.

    *tasks* is a list of ``(index, first_attempt)`` pairs — the degraded
    path hands over tasks mid-campaign with their attempt count intact.
    Every task is executed at least once regardless of the attempt it
    arrives with.  No chaos, no timeout: this is the reference path.
    """
    max_attempts = retries + 1
    for index, attempt in tasks:
        payload = payloads[index]
        while True:
            _emit("engine.submit", index=index, attempt=attempt, path="serial")
            t0 = time.perf_counter()
            try:
                result = worker(*payload)
            except Exception as exc:
                _emit(
                    "engine.error",
                    index=index,
                    attempt=attempt,
                    error=f"{type(exc).__name__}: {exc}",
                )
                if attempt >= max_attempts:
                    _emit("engine.fail", index=index, attempts=attempt, reason="exception")
                    _record(failures, index, payload, attempt, "exception", exc, fail_fast)
                    break
                _emit("engine.retry", index=index, attempt=attempt + 1, reason="exception")
                _backoff_sleep(backoff, attempt)
                attempt += 1
                continue
            if not _result_ok(result, validate):
                _emit("engine.error", index=index, attempt=attempt, error="invalid result")
                if attempt >= max_attempts:
                    exc = ValueError(f"invalid result: {result!r}")
                    _emit("engine.fail", index=index, attempts=attempt, reason="corrupt")
                    _record(failures, index, payload, attempt, "corrupt", exc, fail_fast)
                    break
                _emit("engine.retry", index=index, attempt=attempt + 1, reason="corrupt")
                _backoff_sleep(backoff, attempt)
                attempt += 1
                continue
            wall = round(time.perf_counter() - t0, 6)
            if obs.enabled("engine"):
                obs.REGISTRY.timer("engine.task").observe(wall)
            _emit(
                "engine.ok", index=index, attempt=attempt, worker_pid=os.getpid(), wall_s=wall
            )
            yield result
            break


def _run_pooled(
    worker, payloads, jobs, timeout, retries, backoff, validate, chaos, failures, fail_fast
):
    """The pooled engine: windowed submission, deadlines, rebuilds."""
    max_attempts = retries + 1
    pending = deque((i, 1) for i in range(len(payloads)))
    inflight: "dict[object, tuple[int, int, float | None]]" = {}
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(payloads)))
    consecutive_rebuilds = 0
    total_rebuilds = 0
    try:
        while pending or inflight:
            broken = False
            # 1. Refill the submission window (at most *jobs* in flight, so
            #    deadlines measure run time, not queue time).
            while pool is not None and pending and len(inflight) < jobs:
                index, attempt = pending[0]
                try:
                    fut = _submit(pool, worker, payloads[index], index, attempt, chaos)
                except (BrokenProcessPool, RuntimeError):
                    broken = True
                    break
                pending.popleft()
                _emit("engine.submit", index=index, attempt=attempt, path="pooled")
                deadline = (time.monotonic() + timeout) if timeout else None
                inflight[fut] = (index, attempt, deadline)

            # 2. Wait for completions, bounded by the nearest deadline.
            done = ()
            if not broken and inflight:
                wait_s = None
                if timeout:
                    nearest = min(d for (_, _, d) in inflight.values())
                    wait_s = max(0.0, nearest - time.monotonic())
                done, _ = wait(list(inflight), timeout=wait_s, return_when=FIRST_COMPLETED)

            # 3. Settle finished futures.
            for fut in done:
                index, attempt, _ = inflight.pop(fut)
                status, value = _collect(fut)
                if status == "broken":
                    broken = True
                    _emit("engine.requeue", index=index, attempt=attempt)
                    pending.append((index, attempt + 1))
                elif status == "error":
                    _emit(
                        "engine.error",
                        index=index,
                        attempt=attempt,
                        error=f"{type(value).__name__}: {value}",
                    )
                    if attempt >= max_attempts:
                        _emit("engine.fail", index=index, attempts=attempt, reason="exception")
                        _record(
                            failures, index, payloads[index], attempt, "exception", value, fail_fast
                        )
                        consecutive_rebuilds = 0
                    else:
                        _emit("engine.retry", index=index, attempt=attempt + 1, reason="exception")
                        _backoff_sleep(backoff, attempt)
                        pending.append((index, attempt + 1))
                else:
                    report, value = _unwrap(value)
                    if _result_ok(value, validate):
                        consecutive_rebuilds = 0
                        if obs.enabled("engine") and report is not None:
                            obs.REGISTRY.timer("engine.task").observe(report.wall_s)
                        _emit(
                            "engine.ok",
                            index=index,
                            attempt=attempt,
                            worker_pid=report.pid if report else None,
                            wall_s=report.wall_s if report else None,
                        )
                        yield value
                    else:
                        _emit("engine.error", index=index, attempt=attempt, error="invalid result")
                        if attempt >= max_attempts:
                            exc = ValueError(f"invalid result: {value!r}")
                            _emit("engine.fail", index=index, attempts=attempt, reason="corrupt")
                            _record(
                                failures, index, payloads[index], attempt, "corrupt", exc, fail_fast
                            )
                            consecutive_rebuilds = 0
                        else:
                            _emit("engine.retry", index=index, attempt=attempt + 1, reason="corrupt")
                            _backoff_sleep(backoff, attempt)
                            pending.append((index, attempt + 1))

            # 4. Expire deadlines: a hung worker never completes on its own,
            #    and the only way to reclaim it is to rebuild the pool.
            if not broken and timeout and inflight:
                now = time.monotonic()
                expired = [
                    f
                    for f, (_, _, d) in inflight.items()
                    if d is not None and d <= now and not f.done()
                ]
                if expired:
                    broken = True
                    for fut in expired:
                        index, attempt, _ = inflight.pop(fut)
                        _emit(
                            "engine.timeout", index=index, attempt=attempt, timeout_s=timeout
                        )
                        if attempt >= max_attempts:
                            exc = TimeoutError(f"no result within {timeout:g}s")
                            _emit("engine.fail", index=index, attempts=attempt, reason="timeout")
                            _record(
                                failures, index, payloads[index], attempt, "timeout", exc, fail_fast
                            )
                            consecutive_rebuilds = 0
                        else:
                            _emit("engine.retry", index=index, attempt=attempt + 1, reason="timeout")
                            pending.append((index, attempt + 1))

            # 5. Rebuild the pool, or degrade to serial when it keeps dying.
            if broken:
                for fut, (index, attempt, _) in inflight.items():
                    status, value = _collect(fut)
                    report, value = _unwrap(value)
                    if status == "ok" and _result_ok(value, validate):
                        # Completed in the teardown race window: don't redo it.
                        consecutive_rebuilds = 0
                        _emit(
                            "engine.ok",
                            index=index,
                            attempt=attempt,
                            worker_pid=report.pid if report else None,
                            wall_s=report.wall_s if report else None,
                        )
                        yield value
                    else:
                        _emit("engine.requeue", index=index, attempt=attempt)
                        pending.append((index, attempt + 1))
                inflight.clear()
                _kill_pool(pool)
                pool = None
                consecutive_rebuilds += 1
                total_rebuilds += 1
                _emit(
                    "engine.rebuild",
                    consecutive=consecutive_rebuilds,
                    total=total_rebuilds,
                    pending=len(pending),
                )
                if (
                    consecutive_rebuilds >= REBUILD_LIMIT
                    or total_rebuilds >= REBUILD_TOTAL_LIMIT
                ):
                    tasks = list(pending)
                    pending.clear()
                    _emit("engine.degrade", remaining=len(tasks), rebuilds=total_rebuilds)
                    yield from _run_serial(
                        worker, payloads, tasks, retries, backoff, validate, failures, fail_fast
                    )
                    return
                if pending:
                    pool = ProcessPoolExecutor(max_workers=min(jobs, len(pending)))
    except BaseException:
        # Ctrl-C or an abandoned generator: drop pending work and return
        # without blocking on the pool - results already yielded were merged
        # (and cached) by the caller, so the campaign resumes where it
        # stopped.
        if pool is not None:
            _kill_pool(pool)
        raise
    if pool is not None:
        pool.shutdown()


def run_tasks(
    worker,
    payloads: "Iterable[tuple]",
    jobs: "int | None" = None,
    *,
    timeout: "float | None" = None,
    retries: "int | None" = None,
    backoff: "float | None" = None,
    validate: "Callable[[object], bool] | None" = None,
    chaos: "str | None" = None,
    fail_fast: bool = False,
) -> "Iterator":
    """Fan *worker(*payload)* over processes, yielding results as they finish.

    The generic resilient engine under every campaign driver: *worker* must
    be a module-level function taking only primitives, so payloads pickle
    cleanly and a task's result never depends on which process ran it.
    With ``jobs == 1`` or a single payload everything runs in-process, in
    order — no executor, no pickling — keeping the serial path the
    reference behaviour.

    Resilience knobs (see the module docstring for semantics):

    * *timeout* — per-task seconds (default ``REPRO_TASK_TIMEOUT``; unset
      disables; ``0`` disables explicitly).  Pool path only.
    * *retries* — attempts beyond the first per task (default
      ``REPRO_TASK_RETRIES``, else 2).
    * *backoff* — base seconds of the exponential retry backoff (default
      :data:`BACKOFF_BASE`; pass ``0`` to disable sleeping in tests).
    * *validate* — optional predicate over results; a falsy verdict counts
      as a failed attempt (kind ``corrupt``).
    * *chaos* — a :mod:`repro.util.chaos` spec string (default
      ``REPRO_CHAOS``); injected into pool workers only.
    * *fail_fast* — raise :class:`TaskError` on the first exhausted task
      instead of collecting failures into a :class:`CampaignError`.

    Tasks that exhaust their budget are reported in one
    :class:`CampaignError` raised *after* every other task has been
    yielded; callers that checkpoint per result therefore resume with only
    the failed cells missing.
    """
    payloads = [tuple(p) for p in payloads]
    if jobs is None:
        jobs = default_jobs()
    timeout = envcfg.task_timeout(timeout)
    retries = envcfg.task_retries(retries)
    if backoff is None:
        backoff = BACKOFF_BASE
    if chaos is None:
        chaos = chaos_mod.from_env()
    failures: "list[TaskFailure]" = []
    serial = jobs == 1 or len(payloads) <= 1
    if obs.enabled("engine"):
        obs.ensure_manifest()
    _emit(
        "engine.start",
        tasks=len(payloads),
        jobs=jobs,
        timeout=timeout,
        retries=retries,
        chaos=chaos,
        path="serial" if serial else "pooled",
    )
    t0 = time.perf_counter()
    if serial:
        inner = _run_serial(
            worker,
            payloads,
            [(i, 1) for i in range(len(payloads))],
            retries,
            backoff,
            validate,
            failures,
            fail_fast,
        )
    else:
        inner = _run_pooled(
            worker, payloads, jobs, timeout, retries, backoff, validate, chaos, failures, fail_fast
        )
    ok = 0
    for result in inner:
        ok += 1
        yield result
    _emit(
        "engine.done",
        tasks=len(payloads),
        ok=ok,
        failed=len(failures),
        wall_s=round(time.perf_counter() - t0, 6),
    )
    if failures:
        raise CampaignError(failures, len(payloads)) from failures[0].cause


def _run_cell(
    system_class: str,
    wl_name: str,
    config_key: str,
    scale: int,
    access_target: int,
    seed: int,
) -> "tuple[str, str, dict]":
    """Worker entry point: simulate one cell rebuilt from primitives.

    Module-level (picklable) and pure: the RunSpec is reconstructed from the
    same formula the serial path uses, and the simulation seeds itself from
    *seed*, so results do not depend on which process ran the cell.
    """
    wl = WORKLOADS_BY_NAME[wl_name]
    instructions = evaluation.instruction_budget(access_target, wl)
    spec = RunSpec(
        wl,
        SYSTEM_CLASSES[system_class][config_key],
        warmup_instructions=instructions,
        measure_instructions=instructions,
        seed=seed,
        scale=scale,
    )
    return wl_name, config_key, asdict(evaluation._cell_from_result(run(spec)))


def run_cells(
    system_class: str,
    cells: "Iterable[tuple[str, str]]",
    fidelity: "evaluation.Fidelity",
    seed: int,
    jobs: "int | None" = None,
    **options,
) -> "Iterator[tuple[str, str, dict]]":
    """Simulate *cells* and yield ``(workload, config_key, cell_dict)``.

    A thin adapter over :func:`run_tasks` (which owns pooling, retries,
    timeouts, and failure records — *options* passes those knobs through).
    Results stream back in completion order; callers key by name, so order
    does not matter for correctness, and with ``jobs == 1`` or a single
    cell everything runs in-process, byte-for-byte the reference behaviour.
    A failing cell surfaces in :class:`CampaignError` /
    :class:`TaskError` with its ``(system_class, workload, config_key,
    ...)`` payload attached, so it is identifiable without rerunning the
    sweep.
    """
    payloads = [
        (system_class, wl_name, key, fidelity.scale, fidelity.access_target, seed)
        for wl_name, key in cells
    ]
    return run_tasks(_run_cell, payloads, jobs=jobs, **options)
