"""Process-parallel fan-out of evaluation-matrix cells.

Every (workload, configuration) cell of the evaluation matrix is an
independent, deterministic simulation: the core traces are seeded per
:class:`~repro.experiments.runner.RunSpec` and nothing is shared between
cells at run time.  That makes the sweep embarrassingly parallel - this
module fans the missing cells of a matrix over a
:class:`~concurrent.futures.ProcessPoolExecutor` and streams results back
in completion order.

Workers receive only primitives (names, ints) and rebuild the ``RunSpec``
themselves, so nothing unpicklable ever crosses the process boundary and a
cell computed in a worker is bit-identical to the same cell computed
serially.  The worker count comes from the ``REPRO_JOBS`` environment
variable (default: ``os.cpu_count()``).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict
from typing import Iterable, Iterator

from repro.ecc.catalog import SYSTEM_CLASSES
from repro.experiments import evaluation
from repro.experiments.runner import RunSpec, run
from repro.workloads.profiles import WORKLOADS_BY_NAME


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set, else the machine's CPU count."""
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if raw:
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an integer, got {raw!r}") from None
        if jobs < 1:
            raise ValueError(f"REPRO_JOBS must be >= 1, got {jobs}")
        return jobs
    return os.cpu_count() or 1


def run_tasks(
    worker,
    payloads: "Iterable[tuple]",
    jobs: "int | None" = None,
) -> "Iterator":
    """Fan *worker(*payload)* over processes, yielding results as they finish.

    The generic engine under every campaign driver (evaluation cells, Monte
    Carlo fig8 / coverage / collision cells): *worker* must be a module-level
    function taking only primitives, so payloads pickle cleanly and a task's
    result never depends on which process ran it.  With ``jobs == 1`` or a
    single payload everything runs in-process, in order - no executor, no
    pickling - keeping the serial path the reference behaviour.
    """
    payloads = list(payloads)
    if jobs is None:
        jobs = default_jobs()
    if jobs == 1 or len(payloads) <= 1:
        for payload in payloads:
            yield worker(*payload)
        return
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(payloads)))
    try:
        futures = [pool.submit(worker, *payload) for payload in payloads]
        for fut in as_completed(futures):
            yield fut.result()
    except BaseException:
        # Ctrl-C or an abandoned generator: drop pending work and return
        # without blocking on the pool - results already yielded were merged
        # (and cached) by the caller, so the campaign resumes where it
        # stopped.
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown()


def _run_cell(
    system_class: str,
    wl_name: str,
    config_key: str,
    scale: int,
    access_target: int,
    seed: int,
) -> "tuple[str, str, dict]":
    """Worker entry point: simulate one cell rebuilt from primitives.

    Module-level (picklable) and pure: the RunSpec is reconstructed from the
    same formula the serial path uses, and the simulation seeds itself from
    *seed*, so results do not depend on which process ran the cell.
    """
    wl = WORKLOADS_BY_NAME[wl_name]
    instructions = evaluation.instruction_budget(access_target, wl)
    spec = RunSpec(
        wl,
        SYSTEM_CLASSES[system_class][config_key],
        warmup_instructions=instructions,
        measure_instructions=instructions,
        seed=seed,
        scale=scale,
    )
    return wl_name, config_key, asdict(evaluation._cell_from_result(run(spec)))


def run_cells(
    system_class: str,
    cells: "Iterable[tuple[str, str]]",
    fidelity: "evaluation.Fidelity",
    seed: int,
    jobs: "int | None" = None,
) -> "Iterator[tuple[str, str, dict]]":
    """Simulate *cells* and yield ``(workload, config_key, cell_dict)``.

    Results stream back in completion order (callers key by name, so order
    does not matter for correctness).  With ``jobs == 1`` or a single cell
    everything runs in-process - no executor, no pickling - which keeps the
    serial path byte-for-byte the reference behaviour.
    """
    cells = list(cells)
    if jobs is None:
        jobs = default_jobs()
    if jobs == 1 or len(cells) <= 1:
        for wl_name, key in cells:
            yield _run_cell(
                system_class, wl_name, key, fidelity.scale, fidelity.access_target, seed
            )
        return
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(cells)))
    try:
        futures = [
            pool.submit(
                _run_cell,
                system_class,
                wl_name,
                key,
                fidelity.scale,
                fidelity.access_target,
                seed,
            )
            for wl_name, key in cells
        ]
        for fut in as_completed(futures):
            yield fut.result()
    except BaseException:
        # Ctrl-C or an abandoned generator: drop pending work and return
        # without blocking on the pool - cells already yielded are merged
        # (and cached) by the caller, so the sweep resumes where it stopped.
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown()
