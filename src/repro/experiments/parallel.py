"""Resilient, granularity-aware process-parallel fan-out of campaign tasks.

Every campaign cell (evaluation-matrix cells, Monte Carlo fig8 / coverage /
collision cells) is an independent, deterministic simulation: workers
receive only primitives, rebuild their inputs, and seed themselves, so a
task's result never depends on which process ran it and a parallel
campaign is bit-identical to a serial one.  :func:`run_tasks` is the
generic engine under every driver; :func:`run_cells` adapts it to the
evaluation matrix.

At production scale (1M-trial campaigns, full 16-workload sweeps) partial
failure is the common case, so the engine wraps the fan-out in a
resilience layer:

* **Bounded retry with exponential backoff** — a worker exception consumes
  one attempt; the task is resubmitted up to ``retries``
  (``REPRO_TASK_RETRIES``, default 2) times before being recorded as a
  structured :class:`TaskFailure`.
* **Per-task timeout** — with ``timeout`` (``REPRO_TASK_TIMEOUT``) set, a
  task that produces no result within the window is presumed hung; the
  only way to reclaim a hung worker is to kill its pool, so the pool is
  torn down, the timed-out task is charged an attempt, and everything
  in flight is requeued.
* **Pool rebuild on ``BrokenProcessPool``** — an OOM-killed or crashed
  worker takes the whole executor down; the engine kills the broken pool,
  requeues all in-flight tasks (the culprit is unknowable, so nobody's
  retry budget is charged), and rebuilds.
* **Graceful degradation to serial** — when the pool breaks
  :data:`REBUILD_LIMIT` times consecutively (no task resolved in between)
  or :data:`REBUILD_TOTAL_LIMIT` times overall, the engine stops fighting
  and finishes the remaining tasks in-process.
* **Failure records at campaign end** — failed tasks no longer abort the
  campaign: every other task still completes (and is checkpointed by the
  caller as it streams back), then a :class:`CampaignError` carrying every
  :class:`TaskFailure` (payload identity, attempts, error) is raised, so a
  rerun recomputes only the failed cells.

On top of the resilience layer sits **granularity-aware dispatch**: fast
kernels made individual cells so cheap that per-task pickle + pool
dispatch overhead can dominate (and even lose to serial), so the engine
coalesces small tasks into batched *super-tasks* (``REPRO_TASK_BATCH``:
cost-calibrated ``auto``, ``off``, or a fixed size).  Inside a super-task
every inner task keeps its own identity: per-inner chaos injection,
retry/timeout attribution, and telemetry events are unchanged, and inner
results stream back through a crash-safe spool file in a compact binary
codec (:mod:`repro.experiments.resultcodec`) instead of pickled object
graphs — a worker that dies mid-batch loses only its unfinished inners.
Workers are kept *warm*: a pool initializer (re-applied on every rebuild)
pre-imports the sim stack and primes per-process caches, so rebuilt pools
do not pay cold-start per cell.

Because workers are pure and retried/requeued tasks are simply re-executed
from the same primitives, every recovery path yields the same bytes as a
fault-free run — the serial == parallel == batched-parallel determinism
contract survives retries, rebuilds, and degradation.  The deterministic
fault injector in :mod:`repro.util.chaos` (armed via ``REPRO_CHAOS`` or
the ``chaos`` argument) exists to prove exactly that in tests: faults are
injected only into pool workers, never into the serial/degraded
in-process path.
"""

from __future__ import annotations

import math
import os
import pickle
import shutil
import tempfile
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from typing import Callable, Iterable, Iterator

from repro import obs
from repro.obs import trace
from repro.ecc.catalog import SYSTEM_CLASSES
from repro.experiments import evaluation, resultcodec
from repro.experiments.runner import RunSpec, run
from repro.util import chaos as chaos_mod
from repro.util import envcfg
from repro.workloads.profiles import WORKLOADS_BY_NAME

#: Base delay (seconds) of the exponential retry backoff; attempt *k*
#: sleeps ``backoff * 2**(k-1)`` capped at :data:`BACKOFF_CAP`.
BACKOFF_BASE = 0.05
BACKOFF_CAP = 2.0

#: Consecutive pool rebuilds (no task resolved in between) before the
#: engine degrades to serial in-process execution.
REBUILD_LIMIT = 2

#: Total pool rebuilds in one campaign before degrading, whatever the
#: progress in between — bounds a persistent crasher that lets other
#: tasks finish between rebuilds.
REBUILD_TOTAL_LIMIT = 5

#: Estimated fixed dispatch cost of one pooled submission (pickle, queue
#: hop, future bookkeeping, result transport).  The auto-batching
#: heuristic sizes super-tasks so this overhead stays under
#: :data:`TARGET_OVERHEAD_FRACTION` of the measured per-task work.
DISPATCH_OVERHEAD_S = 0.004

#: Dispatch overhead budget as a fraction of useful per-task work.
TARGET_OVERHEAD_FRACTION = 0.10

#: Upper bound on inner tasks per super-task, so one slow batch cannot
#: serialize the tail of a campaign.
MAX_BATCH = 32

#: Recent per-task wall samples kept for the auto-batching estimate.
_CALIBRATION_WINDOW = 64

#: Process-wide ceiling on inner tasks per super-task, below
#: :data:`MAX_BATCH`; ``None`` = uncapped.  The supervisor's resource
#: watchdog lowers it under memory pressure (smaller batches mean fewer
#: concurrently-materialized results per worker) and restores it after.
_batch_cap: "int | None" = None


def set_batch_cap(cap: "int | None") -> "int | None":
    """Set (or with ``None`` clear) the process-wide super-task batch cap.

    Returns the previous value so callers can restore it.  Takes effect on
    the next submission of every running campaign — in-flight batches are
    not recalled.
    """
    global _batch_cap
    previous = _batch_cap
    _batch_cap = max(1, int(cap)) if cap is not None else None
    return previous

#: Wait-loop cap while a super-task is in flight: the parent polls the
#: batch spools at least this often so finished inners settle promptly
#: even when no future completes and no deadline is near.
_SPOOL_POLL_S = 0.05


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set, else the machine's CPU count."""
    return envcfg.jobs(os.cpu_count() or 1)


@dataclass(frozen=True)
class TaskFailure:
    """Structured record of one task that exhausted its attempt budget."""

    index: int  #: position in the campaign's payload list
    payload: tuple  #: the originating payload (cell identity)
    attempts: int  #: attempts consumed when the task was given up
    kind: str  #: "exception" | "timeout" | "corrupt"
    error: str  #: rendered final error
    cause: "BaseException | None" = field(default=None, repr=False, compare=False)


class TaskError(RuntimeError):
    """A worker failure wrapped with the identity of the task that raised it.

    Raised immediately (``fail_fast=True``) instead of being collected, so
    the failing cell is identifiable without rerunning the sweep.
    """

    def __init__(self, failure: TaskFailure):
        self.failure = failure
        super().__init__(
            f"task #{failure.index} {failure.payload!r} failed after "
            f"{failure.attempts} attempt(s) [{failure.kind}]: {failure.error}"
        )


class CampaignError(RuntimeError):
    """Raised at campaign end when tasks failed; carries every failure record.

    By the time this is raised every other task has completed and been
    yielded (and checkpointed by callers that cache), so a rerun recomputes
    only the cells listed here.
    """

    def __init__(self, failures: "list[TaskFailure]", total: int):
        self.failures = list(failures)
        self.total = total
        lines = "\n".join(
            f"  - task #{f.index} {f.payload!r}: {f.kind} after "
            f"{f.attempts} attempt(s): {f.error}"
            for f in self.failures
        )
        super().__init__(
            f"{len(self.failures)}/{total} campaign task(s) failed after retries:\n{lines}"
        )


def _emit(kind: str, **fields) -> None:
    """Engine telemetry: event + matching counter, no-op unless armed.

    All engine events are per-task (not per-simulated-event), so the
    armed-path cost is irrelevant; the disarmed path is one mode check.
    """
    if not obs.enabled("engine"):
        return
    obs.REGISTRY.counter(kind).inc()
    obs.emit(kind, **fields)


@dataclass(frozen=True)
class _WorkerReport:
    """Worker-side attribution shipped back alongside every pooled result."""

    pid: int
    wall_s: float


def _obs_task(cfg, chaos, worker, index, attempt, payload):
    """Worker entry point for every individually-submitted pooled task.

    Arms the worker's telemetry to the parent's config (*cfg*, picklable;
    fork workers inherit the sink and this is a no-op; the shipped trace
    context makes the task span a child of the dispatching campaign),
    applies chaos when armed, and wraps the result in a
    ``(_WorkerReport, result)`` envelope so per-worker attribution flows
    back through the pool.  Exceptions (and ``crash`` faults) propagate
    unwrapped, exactly as before.
    """
    obs.ensure_worker(cfg)
    t0 = time.perf_counter()
    with trace.span("engine.task", "compute", index=index, attempt=attempt):
        if chaos:
            result = chaos_mod.chaos_call(chaos, worker, index, attempt, payload)
        else:
            result = worker(*payload)
    return _WorkerReport(os.getpid(), round(time.perf_counter() - t0, 6)), result


#: Spool record kinds (aliases of the shared framed-record layer in
#: :mod:`repro.experiments.resultcodec`): a codec-encoded result, a
#: pickled worker exception, or a codec-encoded result that a ``corrupt``
#: chaos fault wrapped.
_REC_OK = resultcodec.KIND_OK
_REC_EXC = resultcodec.KIND_EXC
_REC_CORRUPT = resultcodec.KIND_CORRUPT

#: Sentinel a super-task returns through the pool: the real results
#: travelled through the spool file, not the pickled future.
_SUPER_DONE = "__super_done__"


def _run_super(cfg, chaos, worker, tasks, spool):
    """Worker entry point for one batched super-task.

    *tasks* is an ordered list of ``(index, attempt, payload)`` inner
    tasks.  Each inner task runs under its own chaos/attempt identity and
    appends one self-delimiting record to *spool* with a single
    ``os.write`` (O_APPEND), so a ``crash`` fault killing the process via
    ``os._exit`` mid-batch leaves every already-finished inner result
    durable on disk — the parent recovers them without recomputation.
    Inner exceptions are captured per record; only the whole-batch
    envelope travels back through the pool.
    """
    obs.ensure_worker(cfg)
    t0 = time.perf_counter()
    pid = os.getpid()
    fd = os.open(spool, os.O_WRONLY | os.O_APPEND)
    batch_span = trace.start_span("engine.super", "compute", size=len(tasks))
    try:
        for index, attempt, payload in tasks:
            t1 = time.perf_counter()
            kind = _REC_OK
            task_span = trace.start_span("engine.task", "compute", index=index, attempt=attempt)
            try:
                if chaos:
                    result = chaos_mod.chaos_call(chaos, worker, index, attempt, payload)
                else:
                    result = worker(*payload)
            except Exception as exc:
                task_span.end(error=repr(exc))
                kind = _REC_EXC
                try:
                    blob = pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
                except Exception:
                    blob = pickle.dumps(RuntimeError(f"{type(exc).__name__}: {exc}"))
            else:
                task_span.end()
                if isinstance(result, chaos_mod.Corrupted):
                    kind = _REC_CORRUPT
                    result = result.original
                with trace.span("engine.encode", "codec", index=index):
                    blob = resultcodec.encode(result)
            wall = round(time.perf_counter() - t1, 6)
            os.write(
                fd, resultcodec.pack_frame(index, wall, pid, kind, blob, task_span.span_id)
            )
    finally:
        batch_span.end()
        os.close(fd)
    return _WorkerReport(pid, round(time.perf_counter() - t0, 6)), _SUPER_DONE


def _read_spool_from(path, offset: int) -> "tuple[dict[int, resultcodec.Frame], int]":
    """Parse complete spool records from byte *offset* on.

    Returns ``({index: Frame}, new_offset)`` where *new_offset* is the end
    of the last complete record.  Stops at the first truncated record:
    each record is one ``os.write``, so a torn tail is either a write
    still in flight (the next read picks it up from the same offset) or a
    file that vanished mid-read — everything before it is trustworthy
    either way.
    """
    try:
        with open(path, "rb") as fh:
            fh.seek(offset)
            data = fh.read()
    except OSError:
        return {}, offset
    frames, consumed = resultcodec.unpack_frames(data)
    return {frame.index: frame for frame in frames}, offset + consumed


def _read_spool(path) -> "dict[int, resultcodec.Frame]":
    """Parse a whole super-task spool into ``{index: Frame}``."""
    records, _ = _read_spool_from(path, 0)
    return records


def _apply_warm(warm) -> None:
    """Run a campaign's warm hint; warming is best-effort, never load-bearing."""
    if not warm:
        return
    fn, args = warm
    try:
        fn(*args)
    except Exception:
        pass


def _pool_init(cfg, warm) -> None:
    """Pool initializer: arm telemetry and pre-warm every (re)built worker.

    Under the fork start method workers already inherit the parent's
    imports and caches (the parent runs the warm hint before building the
    first pool); this keeps spawned workers and post-rebuild pools equally
    warm.
    """
    obs.ensure_worker(cfg)
    _apply_warm(warm)


def _warm_cells(system_class, config_keys, scale) -> None:
    """Warm hint for evaluation-matrix campaigns.

    Pre-imports the simulation stack, compiles/loads the native epoch core
    once (instead of per worker per cell), and primes the per-process LLC
    pool for every cache geometry the sweep will touch.
    """
    from repro.cpu import epochnative
    from repro.experiments import runner

    epochnative.available()
    for key in config_keys:
        scheme = SYSTEM_CLASSES[system_class][key].make_scheme()
        runner._pooled_llc(runner.llc_size_bytes(scale), scheme.line_size)


def _unwrap(value) -> "tuple[_WorkerReport | None, object]":
    """Split a pooled result envelope; tolerate a bare value defensively."""
    if type(value) is tuple and len(value) == 2 and isinstance(value[0], _WorkerReport):
        return value
    return None, value


def _record(failures, index, payload, attempts, kind, exc, fail_fast):
    failure = TaskFailure(
        index=index,
        payload=payload,
        attempts=attempts,
        kind=kind,
        error=f"{type(exc).__name__}: {exc}",
        cause=exc,
    )
    if fail_fast:
        raise TaskError(failure) from exc
    failures.append(failure)


def _result_ok(result, validate) -> bool:
    if isinstance(result, chaos_mod.Corrupted):
        return False
    return validate is None or bool(validate(result))


def _backoff_sleep(backoff: float, attempt: int) -> None:
    if backoff > 0:
        with trace.span("engine.backoff", "retry", attempt=attempt):
            time.sleep(min(BACKOFF_CAP, backoff * (2 ** (attempt - 1))))


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting: cancel queued work, kill workers.

    A hung or crashed worker never drains the call queue, so a waiting
    shutdown could block forever; the worker processes are terminated
    directly (the private ``_processes`` map is the only handle the
    executor exposes).
    """
    procs = getattr(pool, "_processes", None)
    procs = list(procs.values()) if procs else []
    pool.shutdown(wait=False, cancel_futures=True)
    for p in procs:
        try:
            p.terminate()
        except Exception:
            pass
    for p in procs:
        try:
            p.join(timeout=5.0)
        except Exception:
            pass


def _submit(pool, worker, payload, index, attempt, chaos):
    return pool.submit(_obs_task, obs.worker_config(), chaos, worker, index, attempt, payload)


def _collect(fut) -> "tuple[str, object]":
    """Classify a future: ("ok", result) | ("error", exc) | ("broken", exc).

    "broken" means the pool died under the task (or cancelled it) — the
    task itself is not at fault and is requeued without charging its retry
    budget.
    """
    if not fut.done():
        return "broken", RuntimeError("worker still running when its pool died")
    if fut.cancelled():
        return "broken", RuntimeError("task cancelled by pool teardown")
    exc = fut.exception()
    if exc is None:
        return "ok", fut.result()
    if isinstance(exc, BrokenProcessPool):
        return "broken", exc
    return "error", exc


class _Flight:
    """Parent-side state of one in-flight submission (single or batched)."""

    __slots__ = ("entries", "spool", "deadline", "progress")

    def __init__(self, entries, spool, deadline):
        self.entries = entries  #: ordered [(index, attempt)] unsettled inner tasks
        self.spool = spool  #: spool path for super-tasks, None for singles
        self.deadline = deadline  #: monotonic expiry, None when untimed
        self.progress = 0  #: spool bytes already parsed and settled


def _run_serial(worker, payloads, tasks, retries, backoff, validate, failures, fail_fast):
    """In-process execution with the same retry/validation contract.

    *tasks* is a list of ``(index, first_attempt)`` pairs — the degraded
    path hands over tasks mid-campaign with their attempt count intact.
    Every task is executed at least once regardless of the attempt it
    arrives with.  No chaos, no timeout: this is the reference path.
    Yields ``(index, result)`` pairs like every engine path.
    """
    max_attempts = retries + 1
    for index, attempt in tasks:
        payload = payloads[index]
        while True:
            _emit("engine.submit", index=index, attempt=attempt, path="serial")
            t0 = time.perf_counter()
            try:
                with trace.span("engine.task", "compute", index=index, attempt=attempt):
                    result = worker(*payload)
            except Exception as exc:
                _emit(
                    "engine.error",
                    index=index,
                    attempt=attempt,
                    error=f"{type(exc).__name__}: {exc}",
                )
                if attempt >= max_attempts:
                    _emit("engine.fail", index=index, attempts=attempt, reason="exception")
                    _record(failures, index, payload, attempt, "exception", exc, fail_fast)
                    break
                _emit("engine.retry", index=index, attempt=attempt + 1, reason="exception")
                _backoff_sleep(backoff, attempt)
                attempt += 1
                continue
            if not _result_ok(result, validate):
                _emit("engine.error", index=index, attempt=attempt, error="invalid result")
                if attempt >= max_attempts:
                    exc = ValueError(f"invalid result: {result!r}")
                    _emit("engine.fail", index=index, attempts=attempt, reason="corrupt")
                    _record(failures, index, payload, attempt, "corrupt", exc, fail_fast)
                    break
                _emit("engine.retry", index=index, attempt=attempt + 1, reason="corrupt")
                _backoff_sleep(backoff, attempt)
                attempt += 1
                continue
            wall = round(time.perf_counter() - t0, 6)
            if obs.enabled("engine"):
                obs.REGISTRY.timer("engine.task").observe(wall)
            _emit(
                "engine.ok", index=index, attempt=attempt, worker_pid=os.getpid(), wall_s=wall
            )
            yield index, result
            break


def _run_pooled(
    worker,
    payloads,
    jobs,
    timeout,
    retries,
    backoff,
    validate,
    chaos,
    failures,
    fail_fast,
    batch,
    warm,
    spool_dir=None,
):
    """The pooled engine: batching, windowed submission, deadlines, rebuilds.

    Yields ``(index, result)`` pairs.  With a caller-provided *spool_dir*
    super-task spools live there and the directory survives this function
    (the supervisor salvages finished inner results out of spools orphaned
    by a killed driver); settled spools are still unlinked individually.
    """
    max_attempts = retries + 1
    pending = deque((i, 1) for i in range(len(payloads)))
    inflight: "dict[object, _Flight]" = {}
    consecutive_rebuilds = 0
    total_rebuilds = 0
    owns_spool_dir = spool_dir is None
    if spool_dir is not None:
        os.makedirs(spool_dir, exist_ok=True)
    samples: "deque[float]" = deque(maxlen=_CALIBRATION_WINDOW)

    def _new_spool():
        nonlocal spool_dir
        if spool_dir is None:
            spool_dir = tempfile.mkdtemp(prefix="repro-spool-")
        fd, path = tempfile.mkstemp(prefix="super-", suffix=".bin", dir=spool_dir)
        os.close(fd)
        return path

    def _drop_spool(path):
        if path is not None:
            try:
                os.unlink(path)
            except OSError:
                pass

    def _target_batch() -> int:
        """Inner tasks per submission right now.

        ``off``/1 and fixed sizes are literal.  ``auto`` submits singles
        until at least one task's wall has been measured (calibration),
        then sizes batches so :data:`DISPATCH_OVERHEAD_S` stays under
        :data:`TARGET_OVERHEAD_FRACTION` of the median measured task —
        capped at :data:`MAX_BATCH` and at an even split of the remaining
        queue over the whole pool, so one batch never starves the others.
        """
        if batch == "off":
            size = 1
        elif batch != "auto":
            size = batch
        elif not samples:
            return 1
        else:
            med = sorted(samples)[len(samples) // 2]
            if med <= 0:
                size = MAX_BATCH
            else:
                size = math.ceil(DISPATCH_OVERHEAD_S / (TARGET_OVERHEAD_FRACTION * med))
            size = min(MAX_BATCH, size)
        if _batch_cap is not None:
            size = min(size, _batch_cap)
        return max(1, min(size, math.ceil(len(pending) / jobs)))

    def _settle_ok(index, attempt, value, pid, wall):
        """One inner result arrived: validate, account, return (yieldable, value)."""
        nonlocal consecutive_rebuilds
        if _result_ok(value, validate):
            consecutive_rebuilds = 0
            if wall is not None:
                samples.append(wall)
                if obs.enabled("engine"):
                    obs.REGISTRY.timer("engine.task").observe(wall)
            _emit("engine.ok", index=index, attempt=attempt, worker_pid=pid, wall_s=wall)
            return True, value
        _emit("engine.error", index=index, attempt=attempt, error="invalid result")
        if attempt >= max_attempts:
            exc = ValueError(f"invalid result: {value!r}")
            _emit("engine.fail", index=index, attempts=attempt, reason="corrupt")
            _record(failures, index, payloads[index], attempt, "corrupt", exc, fail_fast)
            consecutive_rebuilds = 0
        else:
            _emit("engine.retry", index=index, attempt=attempt + 1, reason="corrupt")
            _backoff_sleep(backoff, attempt)
            pending.append((index, attempt + 1))
        return False, None

    def _settle_error(index, attempt, exc):
        """One inner task raised: charge an attempt, retry or record."""
        nonlocal consecutive_rebuilds
        _emit(
            "engine.error",
            index=index,
            attempt=attempt,
            error=f"{type(exc).__name__}: {exc}",
        )
        if attempt >= max_attempts:
            _emit("engine.fail", index=index, attempts=attempt, reason="exception")
            _record(failures, index, payloads[index], attempt, "exception", exc, fail_fast)
            consecutive_rebuilds = 0
        else:
            _emit("engine.retry", index=index, attempt=attempt + 1, reason="exception")
            _backoff_sleep(backoff, attempt)
            pending.append((index, attempt + 1))

    def _settle_record(index, attempt, rec):
        """Decode one spool record (a :class:`resultcodec.Frame`);
        returns (yieldable, value)."""
        if rec.kind == _REC_EXC:
            try:
                exc = pickle.loads(rec.blob)
            except Exception:
                exc = RuntimeError("worker exception could not be decoded")
            _settle_error(index, attempt, exc)
            return False, None
        try:
            with trace.span("engine.decode", "codec", index=index):
                value = resultcodec.decode(rec.blob)
        except Exception as exc:
            _settle_error(index, attempt, RuntimeError(f"result decode failed: {exc}"))
            return False, None
        if rec.kind == _REC_CORRUPT:
            value = chaos_mod.Corrupted(value)
        return _settle_ok(index, attempt, value, rec.pid, rec.wall_s)

    def _charge_timeout(index, attempt):
        nonlocal consecutive_rebuilds
        _emit("engine.timeout", index=index, attempt=attempt, timeout_s=timeout)
        if attempt >= max_attempts:
            exc = TimeoutError(f"no result within {timeout:g}s")
            _emit("engine.fail", index=index, attempts=attempt, reason="timeout")
            _record(failures, index, payloads[index], attempt, "timeout", exc, fail_fast)
            consecutive_rebuilds = 0
        else:
            _emit("engine.retry", index=index, attempt=attempt + 1, reason="timeout")
            pending.append((index, attempt + 1))

    def _requeue(index, attempt):
        _emit("engine.requeue", index=index, attempt=attempt)
        pending.append((index, attempt + 1))

    _apply_warm(warm)  # under fork, workers inherit the warmed parent
    pool_args = dict(initializer=_pool_init, initargs=(obs.worker_config(), warm))
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(payloads)), **pool_args)
    try:
        while pending or inflight:
            broken = False
            # 1. Refill the submission window (at most *jobs* submissions in
            #    flight, so deadlines measure run time, not queue time).
            while pool is not None and pending and len(inflight) < jobs:
                size = _target_batch()
                entries = []
                while pending and len(entries) < size:
                    index, attempt = pending[0]
                    if attempt > 1 and entries:
                        break  # retried tasks always travel alone
                    pending.popleft()
                    entries.append((index, attempt))
                    if attempt > 1:
                        break
                deadline = (time.monotonic() + timeout) if timeout else None
                if len(entries) == 1:
                    index, attempt = entries[0]
                    try:
                        fut = _submit(pool, worker, payloads[index], index, attempt, chaos)
                    except (BrokenProcessPool, RuntimeError):
                        pending.appendleft(entries[0])
                        broken = True
                        break
                    _emit("engine.submit", index=index, attempt=attempt, path="pooled")
                    inflight[fut] = _Flight(entries, None, deadline)
                else:
                    spool = _new_spool()
                    tasks = [(i, a, payloads[i]) for i, a in entries]
                    try:
                        fut = pool.submit(
                            _run_super, obs.worker_config(), chaos, worker, tasks, spool
                        )
                    except (BrokenProcessPool, RuntimeError):
                        _drop_spool(spool)
                        for e in reversed(entries):
                            pending.appendleft(e)
                        broken = True
                        break
                    _emit("engine.batch", size=len(entries), indices=[i for i, _ in entries])
                    for i, a in entries:
                        _emit("engine.submit", index=i, attempt=a, path="batched")
                    inflight[fut] = _Flight(entries, spool, deadline)

            # 2. Wait for completions, bounded by the nearest deadline.
            #    With a super-task in flight the wait is also capped so the
            #    parent keeps draining its spool: a finished inner must
            #    settle promptly even while a sibling hangs.
            done = ()
            if not broken and inflight:
                wait_s = None
                if timeout:
                    nearest = min(fl.deadline for fl in inflight.values())
                    wait_s = max(0.0, nearest - time.monotonic())
                if any(fl.spool is not None for fl in inflight.values()):
                    wait_s = _SPOOL_POLL_S if wait_s is None else min(wait_s, _SPOOL_POLL_S)
                done, _ = wait(list(inflight), timeout=wait_s, return_when=FIRST_COMPLETED)

            # 3. Settle finished futures.
            for fut in done:
                flight = inflight.pop(fut)
                status, value = _collect(fut)
                if flight.spool is None:
                    (index, attempt) = flight.entries[0]
                    if status == "broken":
                        broken = True
                        _requeue(index, attempt)
                    elif status == "error":
                        _settle_error(index, attempt, value)
                    else:
                        report, value = _unwrap(value)
                        yieldable, value = _settle_ok(
                            index,
                            attempt,
                            value,
                            report.pid if report else None,
                            report.wall_s if report else None,
                        )
                        if yieldable:
                            yield index, value
                else:
                    records = _read_spool(flight.spool)
                    if status == "broken":
                        broken = True
                    first_unsettled = True
                    for index, attempt in flight.entries:
                        rec = records.get(index)
                        if rec is not None:
                            yieldable, value = _settle_record(index, attempt, rec)
                            if yieldable:
                                yield index, value
                        elif status == "error" and first_unsettled:
                            # The super-task envelope itself raised (spool
                            # I/O, teardown): the first unfinished inner is
                            # where it stopped; it is charged, the rest
                            # never ran and are requeued uncharged.
                            first_unsettled = False
                            _settle_error(index, attempt, value)
                        else:
                            _requeue(index, attempt)
                    _drop_spool(flight.spool)

            # 4. Drain running super-tasks: an inner result that reached the
            #    spool settles immediately — its retry or its yield must not
            #    wait for siblings (a hang would delay it a full timeout and
            #    skew the rebuild/degradation accounting vs singles).  New
            #    records are also progress and re-arm the deadline.
            if not broken:
                for flight in inflight.values():
                    if flight.spool is None:
                        continue
                    records, offset = _read_spool_from(flight.spool, flight.progress)
                    if offset <= flight.progress:
                        continue
                    flight.progress = offset
                    if timeout:
                        flight.deadline = time.monotonic() + timeout
                    if records:
                        remaining = []
                        for index, attempt in flight.entries:
                            rec = records.get(index)
                            if rec is None:
                                remaining.append((index, attempt))
                                continue
                            yieldable, value = _settle_record(index, attempt, rec)
                            if yieldable:
                                yield index, value
                        flight.entries = remaining

            # 5. Expire deadlines: a hung worker never completes on its own,
            #    and the only way to reclaim it is to rebuild the pool.  A
            #    super-task's deadline is per *inner* task: the drain above
            #    re-arms it on progress, so expiry means no inner finished
            #    for a whole window.
            if not broken and timeout and inflight:
                now = time.monotonic()
                expired = [
                    f
                    for f, fl in inflight.items()
                    if fl.deadline is not None and fl.deadline <= now and not f.done()
                ]
                if expired:
                    broken = True
                    for fut in expired:
                        flight = inflight.pop(fut)
                        if flight.spool is None:
                            (index, attempt) = flight.entries[0]
                            _charge_timeout(index, attempt)
                        else:
                            records = _read_spool(flight.spool)
                            hung_charged = False
                            for index, attempt in flight.entries:
                                rec = records.get(index)
                                if rec is not None:
                                    yieldable, value = _settle_record(index, attempt, rec)
                                    if yieldable:
                                        yield index, value
                                elif not hung_charged:
                                    # The first inner without a record is
                                    # the one the worker is stuck inside.
                                    hung_charged = True
                                    _charge_timeout(index, attempt)
                                else:
                                    _requeue(index, attempt)
                            _drop_spool(flight.spool)

            # 6. Rebuild the pool, or degrade to serial when it keeps dying.
            if broken:
                for fut, flight in list(inflight.items()):
                    status, value = _collect(fut)
                    if flight.spool is None:
                        (index, attempt) = flight.entries[0]
                        report, value = _unwrap(value)
                        if status == "ok" and _result_ok(value, validate):
                            # Completed in the teardown race window: don't redo it.
                            consecutive_rebuilds = 0
                            _emit(
                                "engine.ok",
                                index=index,
                                attempt=attempt,
                                worker_pid=report.pid if report else None,
                                wall_s=report.wall_s if report else None,
                            )
                            yield index, value
                        else:
                            _requeue(index, attempt)
                    else:
                        # Whatever reached the spool is durable: settle the
                        # finished inners, requeue only the unfinished rest.
                        records = _read_spool(flight.spool)
                        for index, attempt in flight.entries:
                            rec = records.get(index)
                            if rec is not None:
                                yieldable, value = _settle_record(index, attempt, rec)
                                if yieldable:
                                    yield index, value
                            else:
                                _requeue(index, attempt)
                        _drop_spool(flight.spool)
                inflight.clear()
                rebuild_span = trace.start_span("engine.rebuild", "retry", pending=len(pending))
                _kill_pool(pool)
                pool = None
                consecutive_rebuilds += 1
                total_rebuilds += 1
                _emit(
                    "engine.rebuild",
                    consecutive=consecutive_rebuilds,
                    total=total_rebuilds,
                    pending=len(pending),
                )
                if (
                    consecutive_rebuilds >= REBUILD_LIMIT
                    or total_rebuilds >= REBUILD_TOTAL_LIMIT
                ):
                    tasks = list(pending)
                    pending.clear()
                    rebuild_span.end(degraded=True)
                    _emit("engine.degrade", remaining=len(tasks), rebuilds=total_rebuilds)
                    yield from _run_serial(
                        worker, payloads, tasks, retries, backoff, validate, failures, fail_fast
                    )
                    return
                if pending:
                    pool = ProcessPoolExecutor(max_workers=min(jobs, len(pending)), **pool_args)
                rebuild_span.end()
    except BaseException:
        # Ctrl-C or an abandoned generator: drop pending work and return
        # without blocking on the pool - results already yielded were merged
        # (and cached) by the caller, so the campaign resumes where it
        # stopped.
        if pool is not None:
            _kill_pool(pool)
        raise
    finally:
        # A caller-provided spool dir outlives the engine: whatever a killed
        # driver left there is exactly what the supervisor salvages.
        if owns_spool_dir and spool_dir is not None:
            shutil.rmtree(spool_dir, ignore_errors=True)
    if pool is not None:
        pool.shutdown()


def run_tasks(
    worker,
    payloads: "Iterable[tuple]",
    jobs: "int | None" = None,
    *,
    timeout: "float | None" = None,
    retries: "int | None" = None,
    backoff: "float | None" = None,
    validate: "Callable[[object], bool] | None" = None,
    chaos: "str | None" = None,
    fail_fast: bool = False,
    batch: "str | int | None" = None,
    warm: "tuple | None" = None,
    yield_index: bool = False,
    spool_dir: "str | None" = None,
) -> "Iterator":
    """Fan *worker(*payload)* over processes, yielding results as they finish.

    The generic resilient engine under every campaign driver: *worker* must
    be a module-level function taking only primitives, so payloads pickle
    cleanly and a task's result never depends on which process ran it.
    With ``jobs == 1`` or a single payload everything runs in-process, in
    order — no executor, no pickling — keeping the serial path the
    reference behaviour.

    Resilience knobs (see the module docstring for semantics):

    * *timeout* — per-task seconds (default ``REPRO_TASK_TIMEOUT``; unset
      disables; ``0`` disables explicitly).  Pool path only; inside a
      super-task the window re-arms on every finished inner task.
    * *retries* — attempts beyond the first per task (default
      ``REPRO_TASK_RETRIES``, else 2).
    * *backoff* — base seconds of the exponential retry backoff (default
      :data:`BACKOFF_BASE`; pass ``0`` to disable sleeping in tests).
    * *validate* — optional predicate over results; a falsy verdict counts
      as a failed attempt (kind ``corrupt``).
    * *chaos* — a :mod:`repro.util.chaos` spec string (default
      ``REPRO_CHAOS``); injected into pool workers only, per inner task.
    * *fail_fast* — raise :class:`TaskError` on the first exhausted task
      instead of collecting failures into a :class:`CampaignError`.
    * *batch* — super-task batching policy (default ``REPRO_TASK_BATCH``):
      ``auto`` sizes batches from measured task cost, ``off`` submits every
      task individually, an integer pins the size.  Retried tasks are
      always submitted individually.
    * *warm* — optional ``(function, args)`` warm hint, applied in the
      parent before the first pool (fork workers inherit it) and as the
      initializer of every built or rebuilt pool.
    * *yield_index* — yield ``(payload_index, result)`` pairs instead of
      bare results, so a caller journaling settlements (the supervisor)
      can attribute each completion-ordered result to its task.
    * *spool_dir* — directory for super-task spool files.  By default the
      engine owns a private temp dir and removes it on exit; a
      caller-provided directory is created if needed and left in place, so
      spools orphaned by a killed driver survive for salvage.

    Tasks that exhaust their budget are reported in one
    :class:`CampaignError` raised *after* every other task has been
    yielded; callers that checkpoint per result therefore resume with only
    the failed cells missing.
    """
    payloads = [tuple(p) for p in payloads]
    if jobs is None:
        jobs = default_jobs()
    timeout = envcfg.task_timeout(timeout)
    retries = envcfg.task_retries(retries)
    batch = envcfg.task_batch(batch)
    if backoff is None:
        backoff = BACKOFF_BASE
    if chaos is None:
        chaos = chaos_mod.from_env()
    failures: "list[TaskFailure]" = []
    serial = jobs == 1 or len(payloads) <= 1
    if obs.enabled("engine"):
        obs.ensure_manifest()
    campaign_span = trace.start_span(
        "engine.campaign",
        "dispatch",
        tasks=len(payloads),
        jobs=jobs,
        path="serial" if serial else "pooled",
    )
    _emit(
        "engine.start",
        tasks=len(payloads),
        jobs=jobs,
        timeout=timeout,
        retries=retries,
        chaos=chaos,
        batch=batch,
        path="serial" if serial else "pooled",
    )
    t0 = time.perf_counter()
    if serial:
        inner = _run_serial(
            worker,
            payloads,
            [(i, 1) for i in range(len(payloads))],
            retries,
            backoff,
            validate,
            failures,
            fail_fast,
        )
    else:
        inner = _run_pooled(
            worker,
            payloads,
            jobs,
            timeout,
            retries,
            backoff,
            validate,
            chaos,
            failures,
            fail_fast,
            batch,
            warm,
            spool_dir,
        )
    ok = 0
    try:
        for index, result in inner:
            ok += 1
            yield (index, result) if yield_index else result
        _emit(
            "engine.done",
            tasks=len(payloads),
            ok=ok,
            failed=len(failures),
            wall_s=round(time.perf_counter() - t0, 6),
        )
    finally:
        # Generators may be abandoned mid-campaign (Ctrl-C, fail_fast):
        # the span must still close so the forest stays complete.
        campaign_span.end(ok=ok, failed=len(failures))
    if failures:
        raise CampaignError(failures, len(payloads)) from failures[0].cause


def _run_cell(
    system_class: str,
    wl_name: str,
    config_key: str,
    scale: int,
    access_target: int,
    seed: int,
) -> "tuple[str, str, dict]":
    """Worker entry point: simulate one cell rebuilt from primitives.

    Module-level (picklable) and pure: the RunSpec is reconstructed from the
    same formula the serial path uses, and the simulation seeds itself from
    *seed*, so results do not depend on which process ran the cell.
    """
    wl = WORKLOADS_BY_NAME[wl_name]
    instructions = evaluation.instruction_budget(access_target, wl)
    spec = RunSpec(
        wl,
        SYSTEM_CLASSES[system_class][config_key],
        warmup_instructions=instructions,
        measure_instructions=instructions,
        seed=seed,
        scale=scale,
    )
    return wl_name, config_key, asdict(evaluation._cell_from_result(run(spec)))


def run_cells(
    system_class: str,
    cells: "Iterable[tuple[str, str]]",
    fidelity: "evaluation.Fidelity",
    seed: int,
    jobs: "int | None" = None,
    **options,
) -> "Iterator[tuple[str, str, dict]]":
    """Simulate *cells* and yield ``(workload, config_key, cell_dict)``.

    A thin adapter over :func:`run_tasks` (which owns pooling, batching,
    retries, timeouts, and failure records — *options* passes those knobs
    through).  Results stream back in completion order; callers key by
    name, so order does not matter for correctness, and with ``jobs == 1``
    or a single cell everything runs in-process, byte-for-byte the
    reference behaviour.  Pooled workers get a warm hint that pre-imports
    the sim stack, pre-compiles the native core, and primes the LLC pool
    for every cache geometry in the sweep.  A failing cell surfaces in
    :class:`CampaignError` / :class:`TaskError` with its ``(system_class,
    workload, config_key, ...)`` payload attached, so it is identifiable
    without rerunning the sweep.
    """
    cells = list(cells)
    payloads = [
        (system_class, wl_name, key, fidelity.scale, fidelity.access_target, seed)
        for wl_name, key in cells
    ]
    options.setdefault(
        "warm",
        (_warm_cells, (system_class, tuple(sorted({key for _, key in cells})), fidelity.scale)),
    )
    return run_tasks(_run_cell, payloads, jobs=jobs, **options)
