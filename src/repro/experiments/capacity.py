"""Capacity-overhead arithmetic (Figure 1 and Table III).

Figure 1 splits each ECC's capacity overhead into detection and correction
bits; Table III adds the ECC-Parity variants with their static formula
(Section III-E) and end-of-life averages from the lifetime Monte Carlo.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scheme import ECCParityScheme
from repro.ecc.chipkill import Chipkill18, Chipkill36
from repro.ecc.lot_ecc import LotEcc5, LotEcc9
from repro.ecc.multi_ecc import MultiEcc
from repro.ecc.raim import Raim18EP, Raim45
from repro.faults.fit_rates import MemoryOrg
from repro.faults.montecarlo import EolCapacitySim


@dataclass(frozen=True)
class CapacityRow:
    """One row of Figure 1 / Table III."""

    label: str
    detection: float
    correction: float
    eol_average: "float | None" = None  #: None for schemes without time growth

    @property
    def total(self) -> float:
        return self.detection + self.correction


def figure1_breakdown() -> "list[CapacityRow]":
    """Figure 1: detection/correction split of the baseline ECCs."""
    rows = []
    for scheme in (Chipkill36(), Raim45(), LotEcc9(), LotEcc5()):
        label = {
            "36-device commercial chipkill": "Commercial chipkill correct",
            "RAIM": "Commercial DIMM-kill correct (RAIM)",
            "LOT-ECC9": "LOT-ECC I (9 chips/rank)",
            "LOT-ECC5": "LOT-ECC II (5 chips/rank)",
        }[scheme.name]
        rows.append(CapacityRow(label, scheme.detection_overhead, scheme.correction_overhead))
    return rows


def _eol_fraction(channels: int, trials: int, seed: int) -> float:
    sim = EolCapacitySim(MemoryOrg(channels=channels), seed=seed)
    return sim.run(trials).mean


def table3(trials: int = 5000, seed: int = 0) -> "list[CapacityRow]":
    """Table III: total capacity overheads including EOL averages."""
    rows = [
        CapacityRow("36-device commercial chipkill correct",
                    Chipkill36().detection_overhead, Chipkill36().correction_overhead),
        CapacityRow("18-device commercial chipkill correct",
                    Chipkill18().detection_overhead, Chipkill18().correction_overhead),
        CapacityRow("LOT-ECC9", LotEcc9().detection_overhead, LotEcc9().correction_overhead),
        CapacityRow("Multi-ECC", MultiEcc().detection_overhead, MultiEcc().correction_overhead),
        CapacityRow("LOT-ECC5", LotEcc5().detection_overhead, LotEcc5().correction_overhead),
    ]
    for channels, base, label in (
        (8, LotEcc5(), "8 chan LOT-ECC5 + ECC Parity"),
        (4, LotEcc5(), "4 chan LOT-ECC5 + ECC Parity"),
    ):
        ep = ECCParityScheme(base, channels)
        frac = _eol_fraction(channels, trials, seed)
        rows.append(
            CapacityRow(label, ep.detection_overhead, ep.parity_overhead,
                        eol_average=ep.eol_capacity_overhead(frac))
        )
    rows.append(CapacityRow("RAIM", Raim45().detection_overhead, Raim45().correction_overhead))
    for channels, label in ((10, "10 chan RAIM + ECC Parity"), (5, "5 chan RAIM + ECC Parity")):
        ep = ECCParityScheme(Raim18EP(), channels)
        frac = _eol_fraction(channels, trials, seed)
        rows.append(
            CapacityRow(label, ep.detection_overhead, ep.parity_overhead,
                        eol_average=ep.eol_capacity_overhead(frac))
        )
    return rows


def raid5_data_overhead(channels: int, detection: float = 0.125) -> float:
    """Capacity overhead of naive RAID5 over *data* lines (Section VII).

    The related-work strawman: striping a parity of the data lines across
    channels costs ``1/(N-1)`` of data capacity (50% for a quad-channel
    system, as the paper notes) plus the usual detection chips - the
    comparison that motivates taking the parity of *correction bits*
    instead.
    """
    if channels < 2:
        raise ValueError("RAID5 needs at least two channels")
    return detection + (1 + detection) / (channels - 1)


#: The paper's Table III values, for verification in tests/EXPERIMENTS.md.
PAPER_TABLE3 = {
    "36-device commercial chipkill correct": 0.125,
    "18-device commercial chipkill correct": 0.125,
    "LOT-ECC9": 0.265,
    "Multi-ECC": 0.129,
    "LOT-ECC5": 0.406,
    "8 chan LOT-ECC5 + ECC Parity": 0.165,
    "4 chan LOT-ECC5 + ECC Parity": 0.219,
    "RAIM": 0.406,
    "10 chan RAIM + ECC Parity": 0.188,
    "5 chan RAIM + ECC Parity": 0.266,
}
