"""Closed-form reliability analyses (Figures 2 and 18, Sections VI-B/C/D).

All arrivals are exponential (the paper's stated assumption); times are in
hours unless a function says otherwise.
"""

from __future__ import annotations

import math

from repro.faults.fit_rates import (
    SATURATING_FIT,
    TOTAL_FIT_DDR3,
    MemoryOrg,
)
from repro.util.units import DAYS, YEARS

#: The paper's evaluated server lifetime.
LIFETIME_HOURS = 7 * YEARS


def mean_time_between_channel_faults_days(
    fit_per_chip: float,
    org: "MemoryOrg | None" = None,
) -> float:
    """Figure 2: mean time between faults in *different* channels, in days.

    With per-channel Poisson rate ``lam`` and N independent channels, the
    expected wait from one fault to the next fault that lands in a
    *different* channel is ``1 / ((N-1) * lam)``: the other N-1 channels'
    superposed arrival process is what ends the interval.
    """
    org = org or MemoryOrg()
    lam = org.channel_fault_rate_per_hour(fit_per_chip)
    return 1.0 / ((org.channels - 1) * lam) / DAYS


def multi_channel_window_probability(
    window_hours: float,
    fit_per_chip: float = 100.0,
    org: "MemoryOrg | None" = None,
    lifetime_hours: float = LIFETIME_HOURS,
) -> float:
    """Figure 18: P(faults in >1 channel within any single scrub window).

    Splits the lifetime into ``lifetime / window`` detection windows; in
    each, a channel is faulted with ``q = 1 - exp(-lam * w)``, and the
    window is bad when two or more channels fault.  The lifetime
    probability composes the per-window survival.
    """
    org = org or MemoryOrg()
    lam = org.channel_fault_rate_per_hour(fit_per_chip)
    n = org.channels
    q = -math.expm1(-lam * window_hours)
    p_ok = (1 - q) ** n + n * q * (1 - q) ** (n - 1)
    p_window = 1 - p_ok
    windows = lifetime_hours / window_hours
    # 1 - (1 - p)^k, numerically stable for tiny p.
    return -math.expm1(windows * math.log1p(-p_window))


def added_uncorrectable_interval_years(
    window_hours: float = 8.0,
    fit_per_chip: float = 100.0,
    org: "MemoryOrg | None" = None,
    lifetime_hours: float = LIFETIME_HOURS,
) -> float:
    """Section VI-C: expected years per *added* uncorrectable error.

    Under the paper's pessimistic assumption that any multi-channel fault
    combination within one scrub window defeats the ECC parities, the added
    uncorrectable-error rate is the Figure 18 probability per lifetime.
    """
    p = multi_channel_window_probability(window_hours, fit_per_chip, org, lifetime_hours)
    return (1.0 / p) * (lifetime_hours / YEARS)


def hpc_stall_fraction(
    total_memory_pb: float = 2.0,
    node_memory_gb: float = 128.0,
    nic_gbps: float = 1.0,
    fit_saturating: float = SATURATING_FIT,
    chip_gbits: float = 2.0,
    reconstruction_read_gbps: float = 25.6,
) -> float:
    """Section VI-B: fraction of time a big HPC system stalls for migration.

    Thread migration happens on every column/bank/multi-bank/multi-rank
    fault; the whole machine stalls while the affected node's memory ships
    over its NIC and while the faulty regions' correction bits are
    reconstructed (a full-memory read).
    """
    nodes = total_memory_pb * 1024 * 1024 / node_memory_gb
    chips_per_node = node_memory_gb * 8 / chip_gbits  # data chips; ECC chips add ~12.5%
    chips_per_node *= 1.125
    event_rate_per_hour = nodes * chips_per_node * fit_saturating * 1e-9
    migrate_s = node_memory_gb / nic_gbps
    reconstruct_s = node_memory_gb / reconstruction_read_gbps
    stall_s = migrate_s + reconstruct_s
    return event_rate_per_hour * stall_s / 3600.0


def undetectable_error_interval_years(
    org: "MemoryOrg | None" = None,
    fit_per_chip: float = TOTAL_FIT_DDR3,
    errors_before_marked: int = 4,
    check_symbol_bits: int = 16,
) -> float:
    """Section VI-D: years per undetected error in banks not yet marked faulty.

    Pessimistically treats every fault as an address-decoder fault producing
    random flips; each of the (at most ``threshold``) error events occurring
    before the bank pair is recorded as faulty escapes the single on-the-fly
    check symbol with probability ``2^-check_symbol_bits``.
    """
    org = org or MemoryOrg()
    rate = org.system_fault_rate_per_hour(fit_per_chip)
    p_escape = 2.0 ** (-check_symbol_bits)
    undetected_per_hour = rate * errors_before_marked * p_escape
    return 1.0 / undetected_per_hour / YEARS
