"""Lifetime Monte Carlo of fault accumulation (Figure 8, Table III EOL).

Simulates a population of memory systems over seven years: fault events
arrive per chip as Poisson processes split by mode; counter-saturating
modes (column/bank/multi-bank/multi-rank) cause their bank pair(s) to be
recorded as faulty, materializing actual ECC correction bits for those
banks.  The observable is the fraction of memory that ends life protected
by materialized correction bits rather than ECC parities - the quantity
Figure 8 reports as an average and a 99.9th percentile, and the driver of
Table III's end-of-life capacity overheads.

The inner loop is vectorized across trials: event *counts* per (trial,
mode) are Poisson draws, and bank placement is sampled only for trials with
events (the overwhelming majority have none).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.fit_rates import (
    FIT_BY_MODE,
    SATURATING_MODES,
    FaultMode,
    MemoryOrg,
)
from repro.util.rng import make_rng
from repro.util.units import YEARS

#: Banks a saturating fault marks faulty, per mode (bank pairs round up).
_BANKS_MATERIALIZED = {
    FaultMode.SINGLE_COLUMN: 2,  # one bank -> its pair
    FaultMode.SINGLE_BANK: 2,
    FaultMode.MULTI_BANK: 4,  # two banks, typically adjacent -> two pairs
    FaultMode.MULTI_RANK: None,  # all banks of two ranks
}


@dataclass
class EolResult:
    """Distribution of end-of-life materialized-memory fraction."""

    fractions: np.ndarray  #: per-trial fraction of memory with stored ECC bits

    @property
    def mean(self) -> float:
        return float(self.fractions.mean())

    def percentile(self, q: float = 99.9) -> float:
        return float(np.percentile(self.fractions, q))

    @property
    def any_fault_fraction(self) -> float:
        """Fraction of simulated systems with at least one materialization."""
        return float((self.fractions > 0).mean())


class EolCapacitySim:
    """Monte Carlo for the end-of-life materialized-memory fraction."""

    def __init__(
        self,
        org: "MemoryOrg | None" = None,
        lifetime_hours: float = 7 * YEARS,
        seed: "int | None" = 0,
    ):
        self.org = org or MemoryOrg()
        self.lifetime_hours = lifetime_hours
        self.rng = make_rng(seed)

    def run(self, trials: int = 20000) -> EolResult:
        org = self.org
        rng = self.rng
        fractions = np.zeros(trials)
        sat_modes = [m for m in FaultMode if m in SATURATING_MODES]
        # Expected saturating events per system lifetime, per mode.
        lam = {
            m: FIT_BY_MODE[m] * 1e-9 * org.total_chips * self.lifetime_hours for m in sat_modes
        }
        counts = {m: rng.poisson(lam[m], size=trials) for m in sat_modes}
        busy = np.zeros(trials, dtype=bool)
        for m in sat_modes:
            busy |= counts[m] > 0

        banks_per_rank = org.banks_per_rank
        total_banks = org.total_banks
        for t in np.nonzero(busy)[0]:
            faulty_pairs: "set[tuple[int, int]]" = set()  # (channel, global pair id)
            for m in sat_modes:
                for _ in range(int(counts[m][t])):
                    channel = int(rng.integers(org.channels))
                    rank = int(rng.integers(org.ranks_per_channel))
                    if m is FaultMode.MULTI_RANK:
                        ranks = {rank, int(rng.integers(org.ranks_per_channel))}
                        for rk in ranks:
                            for pair in range(banks_per_rank // 2):
                                faulty_pairs.add((channel, rk * banks_per_rank // 2 + pair))
                        continue
                    bank = int(rng.integers(banks_per_rank))
                    pair0 = rank * (banks_per_rank // 2) + bank // 2
                    faulty_pairs.add((channel, pair0))
                    if m is FaultMode.MULTI_BANK:
                        nxt = rank * (banks_per_rank // 2) + min(banks_per_rank // 2 - 1, bank // 2 + 1)
                        faulty_pairs.add((channel, nxt))
            fractions[t] = 2 * len(faulty_pairs) / total_banks
        return EolResult(fractions=fractions)


def eol_fraction_by_channels(
    channel_counts: "list[int]",
    trials: int = 20000,
    seed: int = 0,
    lifetime_hours: float = 7 * YEARS,
) -> "dict[int, EolResult]":
    """Figure 8 driver: EOL materialized fraction for several system widths."""
    out = {}
    for n in channel_counts:
        sim = EolCapacitySim(
            MemoryOrg(channels=n), lifetime_hours=lifetime_hours, seed=seed + n
        )
        out[n] = sim.run(trials)
    return out


@dataclass
class HpcStallResult:
    """Simulated §VI-B outcome over one system lifetime."""

    migrations: int
    stall_hours: float
    lifetime_hours: float

    @property
    def stall_fraction(self) -> float:
        return self.stall_hours / self.lifetime_hours


def hpc_stall_mc(
    total_memory_pb: float = 2.0,
    node_memory_gb: float = 128.0,
    nic_gbps: float = 1.0,
    chip_gbits: float = 2.0,
    reconstruction_read_gbps: float = 25.6,
    lifetime_hours: float = 7 * YEARS,
    trials: int = 200,
    seed: int = 0,
) -> HpcStallResult:
    """Monte Carlo cross-check of the Section VI-B stall estimate.

    Draws counter-saturating fault events (column/bank/multi-bank/multi-rank
    modes) across all nodes over the lifetime; every event stalls the whole
    machine for a thread migration (node memory over the NIC) plus the
    reconstruction of the faulty regions' correction bits (a full-memory
    read).  Aggregates over *trials* simulated machines.
    """
    from repro.faults.fit_rates import SATURATING_FIT

    rng = make_rng(seed)
    nodes = total_memory_pb * 1024 * 1024 / node_memory_gb
    chips_per_node = node_memory_gb * 8 / chip_gbits * 1.125  # incl. ECC chips
    rate = nodes * chips_per_node * SATURATING_FIT * 1e-9  # events/hour
    stall_per_event_h = (
        node_memory_gb / nic_gbps + node_memory_gb / reconstruction_read_gbps
    ) / 3600.0
    events = rng.poisson(rate * lifetime_hours, size=trials)
    total_events = int(events.sum())
    return HpcStallResult(
        migrations=total_events,
        stall_hours=total_events * stall_per_event_h / trials,
        lifetime_hours=lifetime_hours,
    )


def mean_time_between_channel_faults_mc(
    fit_per_chip: float,
    org: "MemoryOrg | None" = None,
    trials: int = 20000,
    seed: int = 0,
) -> float:
    """Monte Carlo cross-check of Figure 2's analytic curve (days).

    Samples consecutive fault (time, channel) pairs and averages the gap
    between each fault and the next one striking a different channel.
    """
    org = org or MemoryOrg()
    rng = make_rng(seed)
    lam_sys = org.system_fault_rate_per_hour(fit_per_chip)
    gaps = rng.exponential(1.0 / lam_sys, size=trials)
    chans = rng.integers(org.channels, size=trials)
    total = 0.0
    count = 0
    i = 0
    while i < trials - 1:
        j = i + 1
        acc = 0.0
        while j < trials and chans[j] == chans[i]:
            acc += gaps[j]
            j += 1
        if j >= trials:
            break
        acc += gaps[j]
        total += acc
        count += 1
        i = j
    return (total / max(1, count)) / 24.0
