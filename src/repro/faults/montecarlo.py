"""Lifetime Monte Carlo of fault accumulation (Figure 8, Table III EOL).

Simulates a population of memory systems over seven years: fault events
arrive per chip as Poisson processes split by mode; counter-saturating
modes (column/bank/multi-bank/multi-rank) cause their bank pair(s) to be
recorded as faulty, materializing actual ECC correction bits for those
banks.  The observable is the fraction of memory that ends life protected
by materialized correction bits rather than ECC parities - the quantity
Figure 8 reports as an average and a 99.9th percentile, and the driver of
Table III's end-of-life capacity overheads.

The simulation is a whole-array program: trials are processed in fixed
chunks (so memory stays bounded at millions of trials), and within a chunk
every random draw is an array draw.  Both implementations - the vectorized
one behind :meth:`EolCapacitySim.run` and the retained per-event loop
behind :meth:`EolCapacitySim._run_reference` - consume the *same* draw
stream produced by :func:`_draw_chunk`, so at a matched seed and chunk
size they see identical event placements and must produce identical
per-trial fractions.  The property tests in ``tests/test_mc_batched.py``
assert exactly that.

The vectorized path dedupes faulty bank pairs without any per-trial set:
each (trial, channel, pair) is packed into one integer key and the whole
chunk is deduped with a single ``np.unique`` + ``np.bincount``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.obs import trace
from repro.faults.fit_rates import (
    FIT_BY_MODE,
    SATURATING_MODES,
    FaultMode,
    MemoryOrg,
)
from repro.util.envcfg import DEFAULT_MC_CHUNK, mc_chunk, mc_trials
from repro.util.rng import make_rng
from repro.util.units import YEARS

#: Banks a saturating fault marks faulty, per mode (bank pairs round up).
_BANKS_MATERIALIZED = {
    FaultMode.SINGLE_COLUMN: 2,  # one bank -> its pair
    FaultMode.SINGLE_BANK: 2,
    FaultMode.MULTI_BANK: 4,  # two banks, typically adjacent -> two pairs
    FaultMode.MULTI_RANK: None,  # all banks of two ranks
}

#: Saturating modes in enum order - the draw order of every chunk.
_SAT_MODES = tuple(m for m in FaultMode if m in SATURATING_MODES)

#: Default trials per chunk; the ``REPRO_MC_CHUNK`` knob overrides it
#: (resolved through :func:`repro.util.envcfg.mc_chunk` wherever a caller
#: leaves ``chunk_size`` unset).
DEFAULT_CHUNK = DEFAULT_MC_CHUNK


@dataclass
class EolResult:
    """Distribution of end-of-life materialized-memory fraction."""

    fractions: np.ndarray  #: per-trial fraction of memory with stored ECC bits

    @property
    def mean(self) -> float:
        return float(self.fractions.mean())

    def percentile(self, q: float = 99.9) -> float:
        """Percentile under the repo-wide ``linear`` interpolation convention.

        Pinned explicitly so the unweighted path, the histogram round-trip,
        and the weighted rare-event estimators
        (:func:`repro.faults.rareevent.weighted_percentile`) all interpolate
        identically; plain-MC equality is asserted in the tests.
        """
        return float(np.percentile(self.fractions, q, method="linear"))

    @property
    def any_fault_fraction(self) -> float:
        """Fraction of simulated systems with at least one materialization."""
        return float((self.fractions > 0).mean())

    def histogram(self) -> "tuple[list[float], list[int]]":
        """Compact exact encoding: distinct fractions and their counts.

        The distribution has very few distinct values (multiples of
        ``2/total_banks``), so this is the JSON-cacheable form; every
        statistic above is order-insensitive, so a result rebuilt with
        :meth:`from_histogram` reports identical numbers.
        """
        values, counts = np.unique(self.fractions, return_counts=True)
        return [float(v) for v in values], [int(c) for c in counts]

    @classmethod
    def from_histogram(cls, values: "list[float]", counts: "list[int]") -> "EolResult":
        return cls(fractions=np.repeat(np.asarray(values, dtype=float), counts))


def _draw_chunk(
    rng: np.random.Generator,
    org: MemoryOrg,
    lam: "dict[FaultMode, float]",
    n: int,
) -> "dict[FaultMode, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]":
    """Draw one chunk of *n* trials' worth of saturating events.

    This is the draw-order contract shared by the vectorized and reference
    simulations: per mode (enum order) a Poisson count vector over trials,
    then - for that mode's pooled events, in trial order - a channel array,
    a rank array, and a third array (second rank for MULTI_RANK, bank
    otherwise).  Returns ``{mode: (counts, channels, ranks, third)}``.
    """
    draws = {}
    for m in _SAT_MODES:
        counts = rng.poisson(lam[m], size=n)
        draws[m] = (counts,) + _draw_placements(rng, org, m, int(counts.sum()))
    return draws


def _draw_placements(
    rng: np.random.Generator, org: MemoryOrg, mode: FaultMode, events: int
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Placement stage of the draw contract for one mode's pooled events.

    Uniform over the organization in both the nominal and every proposal
    measure (only the *count* distributions are reweighted/stratified), so
    the likelihood ratios in :mod:`repro.faults.rareevent` involve counts
    alone.  Shared verbatim by :func:`_draw_chunk` and
    :func:`_draw_chunk_conditional`.
    """
    channels = rng.integers(org.channels, size=events)
    ranks = rng.integers(org.ranks_per_channel, size=events)
    if mode is FaultMode.MULTI_RANK:
        third = rng.integers(org.ranks_per_channel, size=events)
    else:
        third = rng.integers(org.banks_per_rank, size=events)
    return channels, ranks, third


def _draw_chunk_conditional(
    rng: np.random.Generator,
    org: MemoryOrg,
    lam: "dict[FaultMode, float]",
    totals: np.ndarray,
) -> "dict[FaultMode, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]":
    """Draw one chunk *conditioned on per-trial total event counts*.

    The superposition of the per-mode Poisson processes splits exactly:
    given trial *t*'s total count ``totals[t]``, the per-mode counts are
    multinomial with probabilities ``lam[m] / sum(lam)``.  One broadcast
    multinomial draws the whole split, then each mode's pooled events get
    placements from :func:`_draw_placements` in enum order — the same
    ``{mode: (counts, channels, ranks, third)}`` contract
    :func:`_chunk_batched` and :func:`_chunk_reference` consume, so the
    stratified sampler reuses both chunk kernels unchanged.
    """
    totals = np.asarray(totals, dtype=np.int64)
    lam_total = sum(lam[m] for m in _SAT_MODES)
    pvals = np.array([lam[m] / lam_total for m in _SAT_MODES])
    split = rng.multinomial(totals, pvals)  # (n, modes)
    draws = {}
    for j, m in enumerate(_SAT_MODES):
        counts = split[:, j].astype(np.int64)
        draws[m] = (counts,) + _draw_placements(rng, org, m, int(counts.sum()))
    return draws


def _chunk_batched(org: MemoryOrg, draws, n: int) -> np.ndarray:
    """Vectorized chunk: pack (trial, channel, pair) keys, dedupe, count."""
    ppr = org.banks_per_rank // 2  # bank pairs per rank
    ppc = org.ranks_per_channel * ppr  # bank pairs per channel
    pairs_per_trial = org.channels * ppc
    keys = []
    for m in _SAT_MODES:
        counts, channels, ranks, third = draws[m]
        if channels.size == 0:
            continue
        trial = np.repeat(np.arange(n, dtype=np.int64), counts)
        base = trial * pairs_per_trial + channels * ppc
        if m is FaultMode.MULTI_RANK:
            offsets = np.arange(ppr, dtype=np.int64)
            keys.append(((base + ranks * ppr)[:, None] + offsets).ravel())
            keys.append(((base + third * ppr)[:, None] + offsets).ravel())
            continue
        pair0 = ranks * ppr + third // 2
        keys.append(base + pair0)
        if m is FaultMode.MULTI_BANK:
            # Adjacent pair, wrapping at the rank edge (see _chunk_reference).
            nxt = ranks * ppr + (third // 2 + 1) % ppr if ppr > 1 else pair0
            keys.append(base + nxt)
    fractions = np.zeros(n)
    if keys:
        # Dedupe by sort + neighbour-diff rather than np.unique: the keys
        # are mostly-distinct int64s, where numpy's hash-based unique path
        # costs several times a plain sort (the dominant chunk cost for
        # fault-heavy proposals in repro.faults.rareevent).
        all_keys = np.concatenate(keys)
        all_keys.sort()
        fresh = np.empty(all_keys.size, dtype=bool)
        fresh[0] = True
        np.not_equal(all_keys[1:], all_keys[:-1], out=fresh[1:])
        per_trial = np.bincount(all_keys[fresh] // pairs_per_trial, minlength=n)
        fractions = 2.0 * per_trial / org.total_banks
    return fractions


def _chunk_reference(org: MemoryOrg, draws, n: int) -> np.ndarray:
    """Reference chunk: the original per-event set accumulation.

    Consumes the same arrays as :func:`_chunk_batched`, walking each mode's
    pooled events with a cursor so event *i* of trial *t* sees exactly the
    draw the vectorized path uses.
    """
    ppr = org.banks_per_rank // 2
    total_banks = org.total_banks
    fractions = np.zeros(n)
    cursor = {m: 0 for m in _SAT_MODES}
    for t in range(n):
        faulty_pairs: "set[tuple[int, int]]" = set()  # (channel, global pair id)
        for m in _SAT_MODES:
            counts, channels, ranks, third = draws[m]
            start = cursor[m]
            stop = start + int(counts[t])
            cursor[m] = stop
            for i in range(start, stop):
                channel = int(channels[i])
                rank = int(ranks[i])
                if m is FaultMode.MULTI_RANK:
                    for rk in {rank, int(third[i])}:
                        for pair in range(ppr):
                            faulty_pairs.add((channel, rk * ppr + pair))
                    continue
                bank = int(third[i])
                faulty_pairs.add((channel, rank * ppr + bank // 2))
                if m is FaultMode.MULTI_BANK:
                    # The second bank of a multi-bank fault lands in the
                    # *adjacent* pair; at the top of the rank it wraps to
                    # pair 0 rather than clamping onto the same pair (the
                    # old min() clamp silently dropped the second bank).
                    nxt_pair = (bank // 2 + 1) % ppr if ppr > 1 else bank // 2
                    faulty_pairs.add((channel, rank * ppr + nxt_pair))
        if faulty_pairs:
            fractions[t] = 2 * len(faulty_pairs) / total_banks
    return fractions


def _draw_scatter_chunk(
    rng: np.random.Generator,
    scheme,
    rate: float,
    n: int,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Draw one chunk of *n* codec trials: payloads + scattered bit flips.

    Per trial: a random line payload, a ``Poisson(rate)`` flip count, and
    - pooled across the chunk in trial order - uniform (byte, bit)
    placements over the trial's data-chip matrix.  Only the *count*
    distribution is tilted by the importance sampler; placements are
    uniform under both measures, so (exactly as for :func:`_draw_chunk`)
    the likelihood ratios involve counts alone.  *scheme* is any
    :class:`~repro.ecc.base.ECCScheme`-shaped object (duck-typed; this
    module never imports the ecc layer).
    """
    data = rng.integers(0, 256, size=(n, scheme.line_size), dtype=np.uint8)
    counts = rng.poisson(rate, size=n)
    total = int(counts.sum())
    pos = rng.integers(scheme.data_chips * scheme.chip_bytes, size=total)
    bit = rng.integers(8, size=total)
    return data, counts, pos, bit


def _codec_scatter_tally(
    scheme, data: np.ndarray, counts: np.ndarray, pos: np.ndarray, bit: np.ndarray
) -> np.ndarray:
    """Per-trial silent-or-wrong indicator for one scatter chunk.

    Encodes every payload, applies the drawn flips to the chip matrices,
    pushes the whole chunk through ``scheme.correct_lines`` (one batched
    codec call - the RS decode kernel sees every dirty word at once), and
    returns 1.0 where the scheme claimed recovery but the payload is wrong
    - the same miscorrection/silent-corruption bucket
    ``experiments.coverage`` counts.
    """
    n = data.shape[0]
    chips, det, corr = scheme.encode_line(data)
    flat = np.ascontiguousarray(chips).reshape(n, -1)
    trial = np.repeat(np.arange(n), counts)
    np.bitwise_xor.at(flat, (trial, pos), (np.uint8(1) << bit).astype(np.uint8))
    res = scheme.correct_lines(flat.reshape(chips.shape), det, corr)
    wrong = res.ok & ~np.all(res.data == data, axis=1)
    return wrong.astype(np.float64)


class EolCapacitySim:
    """Monte Carlo for the end-of-life materialized-memory fraction."""

    def __init__(
        self,
        org: "MemoryOrg | None" = None,
        lifetime_hours: float = 7 * YEARS,
        seed: "int | None" = 0,
        fit_scale: float = 1.0,
    ):
        if fit_scale <= 0:
            raise ValueError(f"fit_scale must be > 0, got {fit_scale}")
        self.org = org or MemoryOrg()
        self.lifetime_hours = lifetime_hours
        self.fit_scale = fit_scale  #: vendor/age FIT multiplier (fleet mixes)
        self.rng = make_rng(seed)

    def _lambdas(self) -> "dict[FaultMode, float]":
        # Expected saturating events per system lifetime, per mode.
        org = self.org
        return {
            m: FIT_BY_MODE[m] * self.fit_scale * 1e-9 * org.total_chips * self.lifetime_hours
            for m in _SAT_MODES
        }

    def _run(self, trials: int, chunk_size: "int | None", chunk_fn) -> EolResult:
        chunk_size = mc_chunk(chunk_size)
        lam = self._lambdas()
        fractions = np.empty(trials)
        done = 0
        # Telemetry is gated once per *chunk* (tens of thousands of trials),
        # so the instrumented loop stays bit-identical and all-but-free.
        # The convergence gauge keeps an incremental sum - an O(done) prefix
        # mean per chunk would dominate the vectorized kernel itself.
        armed = obs.enabled("mc")
        running_total = 0.0
        with trace.span("mc.run", "mc", trials=trials, channels=self.org.channels):
            while done < trials:
                t0 = time.perf_counter() if armed else 0.0
                n = min(chunk_size, trials - done)
                draws = _draw_chunk(self.rng, self.org, lam, n)
                fractions[done : done + n] = chunk_fn(self.org, draws, n)
                done += n
                if armed:
                    wall = time.perf_counter() - t0
                    rate = round(n / wall, 1) if wall > 0 else None
                    running_total += float(fractions[done - n : done].sum())
                    running_mean = round(running_total / done, 9)
                    obs.REGISTRY.counter("mc.trials").inc(n)
                    obs.REGISTRY.counter("mc.chunks").inc()
                    obs.REGISTRY.gauge("mc.trials_per_sec").set(rate)
                    obs.REGISTRY.gauge("mc.running_mean").set(running_mean)
                    obs.emit(
                        "mc.chunk",
                        done=done,
                        trials=trials,
                        n=n,
                        channels=self.org.channels,
                        trials_per_sec=rate,
                        running_mean=running_mean,
                    )
        return EolResult(fractions=fractions)

    def run(self, trials: int = 20000, chunk_size: "int | None" = None) -> EolResult:
        """Vectorized simulation (chunked so memory stays bounded).

        *chunk_size* defaults to ``REPRO_MC_CHUNK`` (else
        :data:`DEFAULT_CHUNK`); it slices the shared draw stream, so results
        are bit-reproducible only at a matched chunk size.
        """
        return self._run(trials, chunk_size, _chunk_batched)

    def _run_reference(
        self, trials: int = 20000, chunk_size: "int | None" = None
    ) -> EolResult:
        """Per-event reference loop; identical results to :meth:`run` at a
        matched seed and chunk size (property-tested)."""
        return self._run(trials, chunk_size, _chunk_reference)


def _eol_cell(
    channels: int,
    trials: int,
    seed: int,
    lifetime_hours: float,
    chunk_size: int,
) -> "tuple[int, list[float], list[int]]":
    """Worker entry point: one Figure 8 cell from primitives.

    Module-level (picklable) and pure - the sim seeds itself from the
    arguments - so a cell computed in a worker process is bit-identical to
    the same cell computed serially.  Returns the cell's exact histogram.
    """
    sim = EolCapacitySim(
        MemoryOrg(channels=channels), lifetime_hours=lifetime_hours, seed=seed + channels
    )
    values, counts = sim.run(trials, chunk_size=chunk_size).histogram()
    return channels, values, counts


def eol_fraction_by_channels(
    channel_counts: "list[int]",
    trials: "int | None" = None,
    seed: int = 0,
    lifetime_hours: float = 7 * YEARS,
    chunk_size: "int | None" = None,
    jobs: "int | None" = None,
    use_cache: bool = False,
) -> "dict[int, EolResult]":
    """Figure 8 driver: EOL materialized fraction for several system widths.

    *trials* defaults to ``REPRO_MC_TRIALS`` (else 20000).  Cells fan out
    over processes (``jobs``; ``REPRO_JOBS``/cpu count by default, 1 =
    in-process) and, with ``use_cache=True``, finished cells are stored as
    exact histograms in the experiment cache directory so interrupted
    million-trial campaigns resume instead of restarting.  The resilient
    engine retries crashed/hung/failed cells (``REPRO_TASK_RETRIES`` /
    ``REPRO_TASK_TIMEOUT``); cells that exhaust their budget surface in a
    :class:`~repro.experiments.parallel.CampaignError` *after* every other
    cell has completed and checkpointed, so a rerun recomputes only the
    failed cells.
    """
    from repro.experiments import parallel

    trials = mc_trials(trials, 20000)
    chunk_size = mc_chunk(chunk_size)
    cache: "dict[str, object]" = {}
    cache_path = None
    if use_cache:
        from repro.experiments import evaluation
        from repro.util.cachefile import load_json_cache, write_json_cache_atomic

        cache_path = evaluation.CACHE_DIR / "mc_fig8.json"
        cache = load_json_cache(cache_path)

    def key(n: int) -> str:
        return f"ch={n}:trials={trials}:seed={seed}:life={lifetime_hours}:chunk={chunk_size}"

    out: "dict[int, EolResult]" = {}
    missing = []
    for n in channel_counts:
        entry = cache.get(key(n))
        if isinstance(entry, dict) and "values" in entry and "counts" in entry:
            out[n] = EolResult.from_histogram(entry["values"], entry["counts"])
        else:
            missing.append(n)

    payloads = [(n, trials, seed, lifetime_hours, chunk_size) for n in missing]
    for n, values, counts in parallel.run_tasks(_eol_cell, payloads, jobs=jobs):
        out[n] = EolResult.from_histogram(values, counts)
        if cache_path is not None:
            cache[key(n)] = {"values": values, "counts": counts}
            write_json_cache_atomic(cache_path, cache)
    return out


@dataclass
class HpcStallResult:
    """Simulated §VI-B outcome over one system lifetime."""

    migrations: int
    stall_hours: float
    lifetime_hours: float

    @property
    def stall_fraction(self) -> float:
        return self.stall_hours / self.lifetime_hours


def hpc_stall_mc(
    total_memory_pb: float = 2.0,
    node_memory_gb: float = 128.0,
    nic_gbps: float = 1.0,
    chip_gbits: float = 2.0,
    reconstruction_read_gbps: float = 25.6,
    lifetime_hours: float = 7 * YEARS,
    trials: int = 200,
    seed: int = 0,
) -> HpcStallResult:
    """Monte Carlo cross-check of the Section VI-B stall estimate.

    Draws counter-saturating fault events (column/bank/multi-bank/multi-rank
    modes) across all nodes over the lifetime; every event stalls the whole
    machine for a thread migration (node memory over the NIC) plus the
    reconstruction of the faulty regions' correction bits (a full-memory
    read).  Aggregates over *trials* simulated machines.
    """
    from repro.faults.fit_rates import SATURATING_FIT

    rng = make_rng(seed)
    nodes = total_memory_pb * 1024 * 1024 / node_memory_gb
    chips_per_node = node_memory_gb * 8 / chip_gbits * 1.125  # incl. ECC chips
    rate = nodes * chips_per_node * SATURATING_FIT * 1e-9  # events/hour
    stall_per_event_h = (
        node_memory_gb / nic_gbps + node_memory_gb / reconstruction_read_gbps
    ) / 3600.0
    events = rng.poisson(rate * lifetime_hours, size=trials)
    total_events = int(events.sum())
    return HpcStallResult(
        migrations=total_events,
        stall_hours=total_events * stall_per_event_h / trials,
        lifetime_hours=lifetime_hours,
    )


@dataclass
class ChannelGapStats:
    """Monte Carlo estimate of the gap between faults in *different* channels.

    The sample ends mid-run almost surely, so the trailing same-channel run
    is *censored*: its partial gap is excluded from the mean (including it
    would bias the estimate low, since the run is cut short by the end of
    the sample rather than by a channel change).  ``censored_tail_events``
    reports how many drawn events were discarded this way.
    """

    mean_days: float
    runs_counted: int
    censored_tail_events: int


def channel_fault_gap_stats(
    fit_per_chip: float,
    org: "MemoryOrg | None" = None,
    trials: int = 20000,
    seed: int = 0,
) -> ChannelGapStats:
    """Vectorized Monte Carlo behind Figure 2's analytic cross-check.

    Samples *trials* consecutive fault (inter-arrival gap, channel) pairs
    and averages the elapsed time between each fault and the next fault
    striking a *different* channel.  Run boundaries are the positions where
    the channel changes; the interval for each boundary pair is a cumulative
    -sum difference, so the whole walk is three array operations.
    """
    org = org or MemoryOrg()
    rng = make_rng(seed)
    lam_sys = org.system_fault_rate_per_hour(fit_per_chip)
    gaps = rng.exponential(1.0 / lam_sys, size=trials)
    chans = rng.integers(org.channels, size=trials)
    elapsed = np.cumsum(gaps)
    # Anchors: the first event, then every event whose channel differs from
    # its predecessor - exactly the points where the scalar walk restarted.
    anchors = np.concatenate(([0], np.flatnonzero(np.diff(chans) != 0) + 1))
    intervals = elapsed[anchors[1:]] - elapsed[anchors[:-1]]
    censored = trials - 1 - int(anchors[-1])
    mean_days = float(intervals.sum() / max(1, intervals.size)) / 24.0
    return ChannelGapStats(
        mean_days=mean_days,
        runs_counted=int(intervals.size),
        censored_tail_events=censored,
    )


def mean_time_between_channel_faults_mc(
    fit_per_chip: float,
    org: "MemoryOrg | None" = None,
    trials: int = 20000,
    seed: int = 0,
) -> float:
    """Monte Carlo cross-check of Figure 2's analytic curve (days).

    Thin wrapper over :func:`channel_fault_gap_stats`; see its docstring
    for the censoring of the trailing same-channel run.
    """
    return channel_fault_gap_stats(fit_per_chip, org, trials, seed).mean_days
