"""DRAM fault modeling: field FIT rates, Monte Carlo lifetime simulation,
closed-form reliability analyses, and fault injection into the functional
machine."""

from repro.faults.analysis import (
    LIFETIME_HOURS,
    added_uncorrectable_interval_years,
    hpc_stall_fraction,
    mean_time_between_channel_faults_days,
    multi_channel_window_probability,
    undetectable_error_interval_years,
)
from repro.faults.fit_rates import (
    FIT_BY_MODE,
    SATURATING_FIT,
    SATURATING_MODES,
    TOTAL_FIT_DDR3,
    FaultMode,
    MemoryOrg,
)
from repro.faults.fleet import (
    PRESET_MIXES,
    FleetMix,
    FleetReport,
    FleetSegment,
    fleet_failure_probability,
)
from repro.faults.injector import FaultInjector, InjectedFault
from repro.faults.montecarlo import (
    ChannelGapStats,
    EolCapacitySim,
    EolResult,
    HpcStallResult,
    channel_fault_gap_stats,
    eol_fraction_by_channels,
    hpc_stall_mc,
    mean_time_between_channel_faults_mc,
)
from repro.faults.rareevent import (
    CampaignResult,
    StratifiedEstimate,
    WeightedEstimate,
    WeightedTally,
    oracle_compare,
    run_estimate,
    sharded_estimate,
    weighted_percentile,
)

__all__ = [
    "LIFETIME_HOURS",
    "added_uncorrectable_interval_years",
    "hpc_stall_fraction",
    "mean_time_between_channel_faults_days",
    "multi_channel_window_probability",
    "undetectable_error_interval_years",
    "FIT_BY_MODE",
    "SATURATING_FIT",
    "SATURATING_MODES",
    "TOTAL_FIT_DDR3",
    "FaultMode",
    "MemoryOrg",
    "FaultInjector",
    "InjectedFault",
    "ChannelGapStats",
    "EolCapacitySim",
    "EolResult",
    "HpcStallResult",
    "channel_fault_gap_stats",
    "eol_fraction_by_channels",
    "hpc_stall_mc",
    "mean_time_between_channel_faults_mc",
    "CampaignResult",
    "StratifiedEstimate",
    "WeightedEstimate",
    "WeightedTally",
    "oracle_compare",
    "run_estimate",
    "sharded_estimate",
    "weighted_percentile",
    "PRESET_MIXES",
    "FleetMix",
    "FleetReport",
    "FleetSegment",
    "fleet_failure_probability",
]
