"""Fleet-level reliability: mixes of node populations over rare-event MC.

The paper evaluates one memory system; a fleet planner asks the question
one level up: across *N* heterogeneous nodes - different DRAM vendors,
different service ages, both shifting the per-chip FIT rate - what is the
probability that *any* node exceeds an end-of-life materialization budget
over the deployment lifetime?  Plain MC cannot answer this (per-node
probabilities sit at 1e-3 and below, and fleets multiply them by 1e5-1e6
nodes), so every per-segment probability here comes from the rare-event
estimators in :mod:`repro.faults.rareevent` via sharded campaigns.

A :class:`FleetMix` is a list of :class:`FleetSegment` populations, each
with a node count and a ``fit_scale`` multiplier applied to every
per-mode FIT rate (vendor quality spread and age-dependent wear both act
as multiplicative rate shifts at the granularity this model resolves).
:func:`fleet_failure_probability` estimates each segment's per-node tail
probability ``p_s = P(fraction >= threshold)``, then combines

    P(any) = 1 - prod_s (1 - p_s) ** N_s

in log space (``-expm1(sum N_s log1p(-p_s))``) so fleets of a million
nodes do not underflow, with a delta-method standard error propagated
from the per-segment MC standard errors
(``d P(any) / d p_s = N_s (1 - P(any)) / (1 - p_s)``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.faults.fit_rates import MemoryOrg
from repro.faults.rareevent import DEFAULT_SHARDS, CampaignResult, sharded_estimate
from repro.util.units import YEARS


@dataclass(frozen=True)
class FleetSegment:
    """One homogeneous node population inside a fleet mix."""

    name: str
    nodes: int  #: node count of this segment
    fit_scale: float = 1.0  #: vendor/age multiplier on every per-mode FIT rate
    org: "MemoryOrg | None" = None  #: per-node memory organization (default org)
    lifetime_hours: float = 7 * YEARS

    def __post_init__(self):
        if self.nodes < 0:
            raise ValueError(f"segment {self.name!r}: nodes must be >= 0, got {self.nodes}")
        if self.fit_scale <= 0:
            raise ValueError(
                f"segment {self.name!r}: fit_scale must be > 0, got {self.fit_scale}"
            )


@dataclass(frozen=True)
class FleetMix:
    """A named fleet composition: segments with vendor/age FIT multipliers."""

    name: str
    segments: "tuple[FleetSegment, ...]"

    def __post_init__(self):
        if not self.segments:
            raise ValueError("a fleet mix needs at least one segment")
        names = [s.name for s in self.segments]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate segment names in mix {self.name!r}: {names}")

    @property
    def nodes(self) -> int:
        return sum(s.nodes for s in self.segments)


def uniform_mix(nodes: int, name: str = "uniform") -> FleetMix:
    """A single-segment fleet at nominal FIT rates."""
    return FleetMix(name=name, segments=(FleetSegment(name="nominal", nodes=nodes),))


def vendor_spread_mix(nodes: int, name: str = "vendor-spread") -> FleetMix:
    """A three-vendor mix with the FIT spread field studies report.

    Large-scale field data (Sridharan et al.; the DDR3 rates behind
    ``FIT_BY_MODE``) show several-x differences in fault rates across DRAM
    vendors at equal organization; this mix models a fleet sourced 50/30/20
    from a nominal, a good (0.6x), and a weak (2.5x) vendor.
    """
    return FleetMix(
        name=name,
        segments=(
            FleetSegment(name="vendor-a", nodes=nodes // 2, fit_scale=1.0),
            FleetSegment(name="vendor-b", nodes=nodes * 3 // 10, fit_scale=0.6),
            FleetSegment(
                name="vendor-c", nodes=nodes - nodes // 2 - nodes * 3 // 10, fit_scale=2.5
            ),
        ),
    )


def aging_mix(nodes: int, name: str = "aging") -> FleetMix:
    """A fleet of three service-age cohorts with wear-elevated FIT rates."""
    third = nodes // 3
    return FleetMix(
        name=name,
        segments=(
            FleetSegment(name="year-1", nodes=third, fit_scale=0.8),
            FleetSegment(name="year-3", nodes=third, fit_scale=1.0),
            FleetSegment(name="year-5", nodes=nodes - 2 * third, fit_scale=1.6),
        ),
    )


#: Preset mixes by name (the CLI/bench surface).
PRESET_MIXES = {
    "uniform": uniform_mix,
    "vendor-spread": vendor_spread_mix,
    "aging": aging_mix,
}


@dataclass
class SegmentReport:
    """Per-segment outcome of a fleet campaign."""

    segment: FleetSegment
    campaign: CampaignResult

    @property
    def p_node(self) -> float:
        """Per-node P(fraction >= threshold)."""
        return self.campaign.estimate.tail_probability(self.campaign.threshold)

    @property
    def se_node(self) -> float:
        return self.campaign.estimate.se_tail(self.campaign.threshold)

    @property
    def expected_affected(self) -> float:
        """Expected number of this segment's nodes over the threshold."""
        return self.segment.nodes * self.p_node


@dataclass
class FleetReport:
    """Fleet-level answer: P(any node exceeds the materialization budget)."""

    mix: FleetMix
    threshold: float
    segments: "list[SegmentReport]" = field(default_factory=list)

    @property
    def p_any(self) -> float:
        """``P(any)`` combined in log space (underflow-safe at 1e6 nodes)."""
        acc = 0.0
        for r in self.segments:
            p = min(r.p_node, 1.0)
            if p >= 1.0:
                return 1.0
            acc += r.segment.nodes * math.log1p(-p)
        return -math.expm1(acc)

    @property
    def se_any(self) -> float:
        """Delta-method SE of :attr:`p_any` from per-segment MC errors."""
        p_any = self.p_any
        if p_any >= 1.0:
            return 0.0
        var = 0.0
        for r in self.segments:
            p = min(r.p_node, 1.0)
            if p >= 1.0:
                continue
            grad = r.segment.nodes * (1.0 - p_any) / (1.0 - p)
            var += (grad * r.se_node) ** 2
        return math.sqrt(var)

    @property
    def expected_affected(self) -> float:
        """Expected count of nodes over the threshold across the fleet."""
        return sum(r.expected_affected for r in self.segments)

    @property
    def se_expected_affected(self) -> float:
        return math.sqrt(
            sum((r.segment.nodes * r.se_node) ** 2 for r in self.segments)
        )

    @property
    def trials(self) -> int:
        return sum(r.campaign.trials for r in self.segments)

    def to_dict(self) -> dict:
        return {
            "mix": self.mix.name,
            "threshold": self.threshold,
            "nodes": self.mix.nodes,
            "p_any": self.p_any,
            "se_any": self.se_any,
            "expected_affected": self.expected_affected,
            "se_expected_affected": self.se_expected_affected,
            "segments": [
                {
                    "name": r.segment.name,
                    "nodes": r.segment.nodes,
                    "fit_scale": r.segment.fit_scale,
                    "p_node": r.p_node,
                    "se_node": r.se_node,
                    "trials": r.campaign.trials,
                    "ess": r.campaign.ess,
                    "mode": r.campaign.mode,
                }
                for r in self.segments
            ],
        }


def fleet_failure_probability(
    mix: FleetMix,
    threshold: float,
    *,
    mode: "str | None" = None,
    trials: "int | None" = None,
    shards: int = DEFAULT_SHARDS,
    seed: int = 0,
    tilt: "float | None" = None,
    jobs: "int | None" = None,
    use_cache: bool = False,
    target_rci: "float | None" = None,
) -> FleetReport:
    """Estimate ``P(any node in the fleet materializes >= threshold)``.

    Runs one sharded rare-event campaign per segment (the segment's
    ``fit_scale`` feeds straight into the per-mode Poisson rates via
    ``EolCapacitySim(fit_scale=...)``; the campaign seed is salted with
    the segment index so segments draw independent streams) and combines
    the per-node tail probabilities across the mix.  All
    :func:`~repro.faults.rareevent.sharded_estimate` behaviours apply
    per segment: ``REPRO_MC_VR`` mode resolution, checkpointed resume
    with ``use_cache``, early stop on ``target_rci``.
    """
    if not 0.0 < threshold:
        raise ValueError(f"threshold must be > 0, got {threshold}")
    report = FleetReport(mix=mix, threshold=threshold)
    for i, seg in enumerate(mix.segments):
        campaign = sharded_estimate(
            seg.org,
            mode=mode,
            trials=trials,
            shards=shards,
            seed=seed * len(mix.segments) + i,
            lifetime_hours=seg.lifetime_hours,
            fit_scale=seg.fit_scale,
            threshold=threshold,
            tilt=tilt,
            jobs=jobs,
            use_cache=use_cache,
            target_rci=target_rci,
        )
        report.segments.append(SegmentReport(segment=seg, campaign=campaign))
    return report
