"""Rare-event Monte Carlo: importance sampling and stratification.

The chunked whole-array Monte Carlo (:mod:`repro.faults.montecarlo`) runs
millions of trials per second, but the paper's headline reliability claims
live in the *tails*: the 99.9th percentile of the end-of-life materialized
fraction, and fleet-level questions like "P(any node materializes across a
million machines over seven years)".  Those events have probability 1e-3
and below, so plain MC needs billions of trials for a tight confidence
interval.  This module trades trials for *variance reduction* - orders of
magnitude fewer trials at the same CI width - with two estimators that
both remain provably unbiased:

**Importance sampling (exponential tilting).**  The saturating-fault count
of each mode is Poisson; sampling from a *tilted* proposal with rates
``theta_m * lam[m]`` pushes trials toward fault-heavy trajectories, and
each trial is reweighted by the exact likelihood ratio

    w = prod_m  Poisson(k_m; lam_m) / Poisson(k_m; theta_m lam_m)
      = prod_m  exp((theta_m - 1) lam_m) * theta_m ** (-k_m)

The per-mode tilts come from one scalar knob (``REPRO_MC_TILT``) scaled
by each mode's blast radius: ``theta_m = 1 + (theta - 1) * b_m / 2``
with ``b_m`` the banks one event of mode *m* materializes
(:func:`_tilt_by_mode`).  This is the discrete analogue of exponentially
tilting the total-damage observable ``S = sum_m b_m K_m`` (whose change
of measure multiplies ``lam_m`` by ``exp(t b_m)``): the tail of the EOL
fraction is dominated by large-blast-radius MULTI_RANK events, and a
uniform tilt that ignores ``b_m`` leaves most of the tail variance on
the table.  The placement draws (channels, ranks, banks) are uniform
under both measures, so the ratio involves counts alone; the tilted run
reuses :func:`~repro.faults.montecarlo._draw_chunk` verbatim - only the
``lam`` argument changes - and the weights come from the same draw
contract.  ``E_q[w f] = E_p[f]`` exactly, so the *unnormalized* weighted
mean ``sum(w f) / n`` is unbiased for every observable at every trial
count.

**Stratified sampling over total fault count.**  The superposition of the
per-mode Poissons makes the per-trial total ``K ~ Poisson(sum lam)``, and
conditioned on ``K = k`` the mode split is multinomial
(:func:`~repro.faults.montecarlo._draw_chunk_conditional`).  Strata are
``K = 0, 1, ..., kmax-1`` plus the tail ``K >= kmax`` (sampled by inverse
CDF over the truncated Poisson); stratum probabilities are analytic, so
``E[f] = sum_h P(h) E[f | h]`` holds exactly.  The zero-event stratum -
over 80% of the probability mass at paper FIT rates - is *exact*: no
events means fraction 0, zero variance, zero samples spent.  Allocation of
the trial budget over the remaining strata is proportional (``n_h ~ p_h``)
or Neyman (``n_h ~ p_h sigma_h`` from a pilot round).

Both estimators emit ``(value, weight)`` streams into one aggregation
type, :class:`WeightedTally`: a streaming weighted mean, an exact
value->weight histogram (the EOL fraction distribution has few distinct
values; a nearest-merge compaction bounds it for continuous observables),
effective-sample-size tracking (``ESS = (sum w)^2 / sum w^2``), and
weighted quantiles under the same ``linear`` interpolation convention as
:meth:`EolResult.percentile <repro.faults.montecarlo.EolResult.percentile>`
- with uniform weights, :func:`weighted_percentile` *is*
``np.percentile(..., method="linear")``.  Tallies merge associatively and
round-trip through JSON, which is what makes campaigns shardable: each
shard of :func:`sharded_estimate` is an independent, deterministically
seeded run fanned out through :func:`repro.experiments.parallel.run_tasks`,
checkpointed into the experiment cache for resume, and merged in shard
order so a parallel campaign is bit-identical to a serial one.  With
``REPRO_MC_TARGET_RCI`` set, runs and campaigns stop early once the 95%
relative CI of the primary estimator is tight enough.

Every weighted path retains a reference twin in the spirit of
``_run_reference``/``_chunk_reference``: the vectorized likelihood-ratio
computation (:func:`_is_log_weights`) is mirrored by a per-trial
log-pmf-difference loop (:func:`_is_log_weights_reference`), and the
unbiasedness oracle (:func:`oracle_compare`, exercised by
``tests/test_rareevent.py`` and ``benchmarks/bench_rareevent.py``) pins
weighted estimates to plain MC within analytic CI bounds.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.obs import trace
from repro.faults.fit_rates import MemoryOrg
from repro.faults.montecarlo import (
    _BANKS_MATERIALIZED,
    _SAT_MODES,
    EolCapacitySim,
    _chunk_batched,
    _codec_scatter_tally,
    _draw_chunk,
    _draw_chunk_conditional,
    _draw_scatter_chunk,
)
from repro.util.rng import make_rng
from repro.util.envcfg import (
    mc_chunk,
    mc_target_rci,
    mc_tilt,
    mc_trials,
    mc_vr,
)
from repro.util.units import YEARS

#: 95% two-sided normal quantile used by every CI in this module.
Z95 = 1.959963984540054

#: Distinct values a tally tracks exactly before nearest-merge compaction.
#: The EOL fraction distribution has a handful of distinct values, so the
#: cap exists only to bound memory for continuous observables.
MAX_TALLY_POINTS = 4096

#: Default count strata: exact strata ``K = 1 .. DEFAULT_STRATA - 1`` plus
#: the inverse-CDF tail ``K >= DEFAULT_STRATA`` (``K = 0`` is analytic).
DEFAULT_STRATA = 6

#: Minimum samples a sampled stratum receives, so no stratum with positive
#: probability is left unestimated (which would bias the estimator).
MIN_PER_STRATUM = 32

#: Default shard count of :func:`sharded_estimate` - fixed rather than
#: CPU-derived so shard seeding (and therefore the merged estimate) does
#: not depend on the machine running the campaign.
DEFAULT_SHARDS = 8


# -- weighted quantiles ----------------------------------------------------------------


def weighted_percentile(values, weights=None, q: float = 50.0, samples: "int | None" = None) -> float:
    """Weighted percentile under the repo-wide ``linear`` (type-7) convention.

    Each point's weight is a *mass interval* on the cumulative-weight
    axis; with ``u = W / samples`` the mass of one nominal sample
    (*samples* defaults to ``len(values)``), value *k* spanning masses
    ``(S_k - w_k, S_k]`` anchors the quantile function at positions
    ``S_{k-1} / (W - u)`` and ``(S_k - u) / (W - u)`` (one anchor when
    ``w_k < u``), linearly interpolated in between.  For unit weights the
    anchors coincide at numpy's ``(k - 1) / (n - 1)`` grid, and for
    *integer* weights with ``samples = sum(weights)`` the result equals
    ``np.percentile(np.repeat(values, weights), q, method="linear")``
    exactly - duplicated samples produce the same flat quantile segments
    - which is what pins the weighted estimators to
    :meth:`EolResult.percentile <repro.faults.montecarlo.EolResult.percentile>`
    on the plain-MC special case.  Zero-weight points are dropped (they
    must not anchor interpolation).
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("weighted_percentile of an empty sample")
    if weights is None:
        return float(np.percentile(values, q, method="linear"))
    weights = np.asarray(weights, dtype=float)
    if weights.shape != values.shape:
        raise ValueError("values and weights must have matching shapes")
    if np.any(weights < 0):
        raise ValueError("weights must be >= 0")
    keep = weights > 0
    if not keep.any():
        raise ValueError("at least one weight must be > 0")
    values, weights = values[keep], weights[keep]
    if values.size == 1:
        return float(values[0])
    order = np.argsort(values, kind="stable")
    v, w = values[order], weights[order]
    s = np.cumsum(w)
    total = float(s[-1])
    u = total / (samples if samples else v.size)
    denom = total - u
    if denom <= 0:  # one nominal sample's worth of mass: no interpolation span
        return float(v[-1])
    last = (s - u) / denom
    first = np.where(w >= u, (s - w) / denom, last)
    positions = np.empty(2 * v.size)
    positions[0::2] = first
    positions[1::2] = last
    return float(np.interp(q / 100.0, positions, np.repeat(v, 2)))


# -- streaming weighted aggregation ----------------------------------------------------


class WeightedTally:
    """Streaming weighted aggregation: mean, ESS, exact histogram, quantiles.

    Accumulates ``(value, weight)`` pairs with per-trial weights whose
    expectation is one under the sampling design (plain MC: all ones;
    importance sampling: likelihood ratios; stratification: design
    weights), so :attr:`mean` ``= sum(w v) / n`` is unbiased.  The
    histogram maps each distinct value to its total weight *and* total
    squared weight, which makes post-hoc tail probabilities - and their
    standard errors - exact for any threshold.  Tallies merge
    associatively and round-trip through :meth:`to_dict`/:meth:`from_dict`
    (the sharded-campaign checkpoint format).
    """

    __slots__ = ("n", "sum_w", "sum_w_sq", "sum_wv", "sum_wv_sq", "_hist", "compacted")

    def __init__(self):
        self.n = 0  #: samples absorbed
        self.sum_w = 0.0  #: sum of weights
        self.sum_w_sq = 0.0  #: sum of squared weights
        self.sum_wv = 0.0  #: sum of weight * value
        self.sum_wv_sq = 0.0  #: sum of (weight * value)^2
        self._hist: "dict[float, list[float]]" = {}  #: value -> [sum w, sum w^2]
        self.compacted = 0  #: points merged away by compaction (0 = exact)

    def add(self, values, weights=None) -> None:
        """Absorb a batch of samples (*weights* ``None`` means all-ones)."""
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return
        if weights is None:
            weights = np.ones_like(values)
        else:
            weights = np.asarray(weights, dtype=float)
            if weights.shape != values.shape:
                raise ValueError("values and weights must have matching shapes")
        self.n += int(values.size)
        w_sq = weights * weights
        wv = weights * values
        self.sum_w += float(weights.sum())
        self.sum_w_sq += float(w_sq.sum())
        self.sum_wv += float(wv.sum())
        self.sum_wv_sq += float((wv * wv).sum())
        uniq, inverse = np.unique(values, return_inverse=True)
        w_tot = np.bincount(inverse, weights=weights)
        w2_tot = np.bincount(inverse, weights=w_sq)
        hist = self._hist
        for v, a, b in zip(uniq.tolist(), w_tot.tolist(), w2_tot.tolist()):
            cell = hist.get(v)
            if cell is None:
                hist[v] = [a, b]
            else:
                cell[0] += a
                cell[1] += b
        if len(hist) > MAX_TALLY_POINTS:
            self._compact()

    def _compact(self) -> None:
        """Merge nearest-neighbour values until half the cap remains.

        Weights add; the merged value is the weight-averaged midpoint, so
        the (weighted) mean of the histogram is preserved and quantiles
        move by at most the local gap.  Only continuous observables ever
        trigger this; :attr:`compacted` records the loss of exactness.
        """
        items = sorted(self._hist.items())
        target = MAX_TALLY_POINTS // 2
        while len(items) > target:
            values = [v for v, _ in items]
            gaps = np.diff(values)
            i = int(np.argmin(gaps))
            (v0, (w0, q0)), (v1, (w1, q1)) = items[i], items[i + 1]
            w = w0 + w1
            merged = (v0 * w0 + v1 * w1) / w if w > 0 else 0.5 * (v0 + v1)
            items[i : i + 2] = [(merged, [w, q0 + q1])]
            self.compacted += 1
        self._hist = {v: cell for v, cell in items}

    # -- estimators --------------------------------------------------------------------

    @property
    def mean(self) -> float:
        """Unnormalized weighted mean ``sum(w v) / n`` (unbiased)."""
        return self.sum_wv / self.n if self.n else 0.0

    @property
    def se_mean(self) -> float:
        """Standard error of :attr:`mean` under iid sampling."""
        if self.n < 2:
            return float("inf")
        var = max(0.0, self.sum_wv_sq / self.n - self.mean**2)
        return math.sqrt(var / self.n)

    @property
    def ess(self) -> float:
        """Kong effective sample size ``(sum w)^2 / sum w^2``."""
        return self.sum_w**2 / self.sum_w_sq if self.sum_w_sq > 0 else 0.0

    @property
    def weight_cv_sq(self) -> float:
        """Squared coefficient of variation of the weights (0 = plain MC)."""
        if self.sum_w <= 0:
            return 0.0
        return max(0.0, self.n * self.sum_w_sq / self.sum_w**2 - 1.0)

    def tail_stats(self, threshold: float) -> "tuple[float, float]":
        """``(sum of w, sum of w^2)`` over samples with value >= *threshold*."""
        w = w_sq = 0.0
        for v, (a, b) in self._hist.items():
            if v >= threshold:
                w += a
                w_sq += b
        return w, w_sq

    def tail_probability(self, threshold: float) -> float:
        """Unbiased estimate of ``P(value >= threshold)``."""
        return self.tail_stats(threshold)[0] / self.n if self.n else 0.0

    def se_tail(self, threshold: float) -> float:
        """Standard error of :meth:`tail_probability` under iid sampling."""
        if self.n < 2:
            return float("inf")
        w, w_sq = self.tail_stats(threshold)
        p = w / self.n
        var = max(0.0, w_sq / self.n - p * p)
        return math.sqrt(var / self.n)

    def percentile(self, q: float = 99.9) -> float:
        """Weighted percentile of the histogram (``linear`` convention).

        Passes the absorbed sample count so the mass of one nominal
        sample is ``sum_w / n``; with unit weights this reproduces
        ``np.percentile`` over the raw sample exactly.
        """
        values = np.array(sorted(self._hist))
        weights = np.array([self._hist[v][0] for v in values.tolist()])
        return weighted_percentile(values, weights, q, samples=self.n)

    # -- composition -------------------------------------------------------------------

    def merge(self, other: "WeightedTally") -> "WeightedTally":
        """Absorb *other* (associative; shard aggregation)."""
        self.n += other.n
        self.sum_w += other.sum_w
        self.sum_w_sq += other.sum_w_sq
        self.sum_wv += other.sum_wv
        self.sum_wv_sq += other.sum_wv_sq
        hist = self._hist
        for v, (a, b) in other._hist.items():
            cell = hist.get(v)
            if cell is None:
                hist[v] = [a, b]
            else:
                cell[0] += a
                cell[1] += b
        self.compacted += other.compacted
        if len(hist) > MAX_TALLY_POINTS:
            self._compact()
        return self

    def scaled(self, factor: float) -> "WeightedTally":
        """A copy with every weight multiplied by *factor* (values intact).

        Turns a unit-weight per-stratum tally into its mixture-view
        contribution (weight ``p_h n / n_h`` per sample).
        """
        out = WeightedTally()
        out.n = self.n
        out.sum_w = self.sum_w * factor
        out.sum_w_sq = self.sum_w_sq * factor**2
        out.sum_wv = self.sum_wv * factor
        out.sum_wv_sq = self.sum_wv_sq * factor**2
        out._hist = {v: [a * factor, b * factor**2] for v, (a, b) in self._hist.items()}
        out.compacted = self.compacted
        return out

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "sum_w": self.sum_w,
            "sum_w_sq": self.sum_w_sq,
            "sum_wv": self.sum_wv,
            "sum_wv_sq": self.sum_wv_sq,
            "hist": [[v, a, b] for v, (a, b) in sorted(self._hist.items())],
            "compacted": self.compacted,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "WeightedTally":
        out = cls()
        out.n = int(d["n"])
        out.sum_w = float(d["sum_w"])
        out.sum_w_sq = float(d["sum_w_sq"])
        out.sum_wv = float(d["sum_wv"])
        out.sum_wv_sq = float(d["sum_wv_sq"])
        out._hist = {float(v): [float(a), float(b)] for v, a, b in d["hist"]}
        out.compacted = int(d.get("compacted", 0))
        return out


def _rci(se: float, value: float) -> float:
    """95% relative CI half-width; infinite when the estimate is zero."""
    if value == 0.0:
        return float("inf")
    return Z95 * se / abs(value)


# -- estimates (plain / importance-sampled / stratified) -------------------------------


@dataclass
class WeightedEstimate:
    """Plain-MC or importance-sampled estimate: one iid weighted stream."""

    mode: str  #: "off" (plain) or "is"
    tally: WeightedTally
    tilt: float = 1.0  #: proposal tilt factor (1 = plain)

    @property
    def trials(self) -> int:
        return self.tally.n

    @property
    def ess(self) -> float:
        return self.tally.ess

    @property
    def mean(self) -> float:
        return self.tally.mean

    @property
    def se_mean(self) -> float:
        return self.tally.se_mean

    def tail_probability(self, threshold: float) -> float:
        return self.tally.tail_probability(threshold)

    def se_tail(self, threshold: float) -> float:
        return self.tally.se_tail(threshold)

    def percentile(self, q: float = 99.9) -> float:
        return self.tally.percentile(q)

    def rci(self, target: "tuple | None" = None) -> float:
        """Relative CI of the primary estimator (mean, or a tail target)."""
        if target is not None and target[0] == "tail":
            t = target[1]
            return _rci(self.se_tail(t), self.tail_probability(t))
        return _rci(self.se_mean, self.mean)

    def merge(self, other: "WeightedEstimate") -> "WeightedEstimate":
        if (self.mode, self.tilt) != (other.mode, other.tilt):
            raise ValueError(
                f"cannot merge estimates with different designs: "
                f"{(self.mode, self.tilt)} vs {(other.mode, other.tilt)}"
            )
        self.tally.merge(other.tally)
        return self

    def to_dict(self) -> dict:
        return {
            "kind": "weighted",
            "mode": self.mode,
            "tilt": self.tilt,
            "tally": self.tally.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "WeightedEstimate":
        return cls(
            mode=str(d["mode"]),
            tally=WeightedTally.from_dict(d["tally"]),
            tilt=float(d["tilt"]),
        )


@dataclass
class StratumState:
    """One count stratum: analytic probability + unit-weight sample tally."""

    k: int  #: stratum label: exact count, or ``kmax`` for the tail stratum
    prob: float  #: analytic P(K in stratum)
    tally: WeightedTally = field(default_factory=WeightedTally)
    exact: "float | None" = None  #: observable value known analytically (K=0)

    def to_dict(self) -> dict:
        return {
            "k": self.k,
            "prob": self.prob,
            "tally": self.tally.to_dict(),
            "exact": self.exact,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "StratumState":
        return cls(
            k=int(d["k"]),
            prob=float(d["prob"]),
            tally=WeightedTally.from_dict(d["tally"]),
            exact=None if d.get("exact") is None else float(d["exact"]),
        )


@dataclass
class StratifiedEstimate:
    """Stratified estimate over total-fault-count strata.

    Sampled strata hold unit-weight tallies; design weights
    ``p_h n / n_h`` are applied at aggregation time, so merging shards
    (which changes every ``n_h``) needs no reweighting.  The zero-event
    stratum is analytic (``exact=0.0``): it contributes its probability
    mass to quantiles and zero variance to every standard error.
    """

    mode: str  #: always "strat"
    strata: "list[StratumState]"
    allocation: str = "neyman"

    @property
    def trials(self) -> int:
        return sum(s.tally.n for s in self.strata)

    @property
    def sampled_mass(self) -> float:
        return sum(s.prob for s in self.strata if s.exact is None)

    def mixture_tally(self) -> WeightedTally:
        """The weighted mixture view (quantiles, ESS, histogram).

        Per-sample weight in stratum *h* is ``p_h n / n_h`` with *n* the
        total sampled trials; the exact stratum enters as mass ``p_h n``
        at its known value with zero squared weight (it is not sampled).
        """
        n = max(1, self.trials)
        out = WeightedTally()
        for s in self.strata:
            if s.exact is not None:
                cell = out._hist.setdefault(s.exact, [0.0, 0.0])
                cell[0] += s.prob * n
                out.sum_w += s.prob * n
                out.sum_wv += s.prob * n * s.exact
                out.sum_wv_sq += 0.0
            elif s.tally.n:
                out.merge(s.tally.scaled(s.prob * n / s.tally.n))
        return out

    @property
    def ess(self) -> float:
        """ESS of the sampled mixture (the exact stratum is free)."""
        return self.mixture_tally().ess

    def _combine(self, stat) -> "tuple[float, float]":
        """Stratified estimate + SE for a per-stratum ``(mean, var)`` map."""
        total = 0.0
        variance = 0.0
        for s in self.strata:
            if s.exact is not None:
                total += s.prob * stat(s, exact=True)
                continue
            n_h = s.tally.n
            if n_h == 0:
                # Unsampled positive-probability stratum: the estimate is
                # biased low; surface it as infinite uncertainty rather
                # than silently ignoring the mass.
                variance = float("inf")
                continue
            mean_h, var_h = stat(s, exact=False)
            total += s.prob * mean_h
            if n_h > 1 and math.isfinite(variance):
                variance += (s.prob**2) * var_h / n_h
            else:
                variance = float("inf")
        return total, math.sqrt(variance) if math.isfinite(variance) else float("inf")

    @property
    def mean(self) -> float:
        return self._mean_se()[0]

    @property
    def se_mean(self) -> float:
        return self._mean_se()[1]

    def _mean_se(self) -> "tuple[float, float]":
        def stat(s, exact):
            if exact:
                return s.exact
            t = s.tally  # unit weights: sum_wv == sum f, sum_wv_sq == sum f^2
            mean_h = t.sum_wv / t.n
            var_h = max(0.0, (t.sum_wv_sq - t.n * mean_h**2) / max(1, t.n - 1))
            return mean_h, var_h

        return self._combine(stat)

    def _tail_se(self, threshold: float) -> "tuple[float, float]":
        def stat(s, exact):
            if exact:
                return 1.0 if s.exact >= threshold else 0.0
            count = s.tally.tail_stats(threshold)[0]  # unit weights: a count
            p_h = count / s.tally.n
            var_h = p_h * (1.0 - p_h) * s.tally.n / max(1, s.tally.n - 1)
            return p_h, var_h

        return self._combine(stat)

    def tail_probability(self, threshold: float) -> float:
        return self._tail_se(threshold)[0]

    def se_tail(self, threshold: float) -> float:
        return self._tail_se(threshold)[1]

    def percentile(self, q: float = 99.9) -> float:
        return self.mixture_tally().percentile(q)

    def rci(self, target: "tuple | None" = None) -> float:
        if target is not None and target[0] == "tail":
            p, se = self._tail_se(target[1])
            return _rci(se, p)
        mean, se = self._mean_se()
        return _rci(se, mean)

    def merge(self, other: "StratifiedEstimate") -> "StratifiedEstimate":
        if [s.k for s in self.strata] != [s.k for s in other.strata]:
            raise ValueError("cannot merge stratified estimates with different strata")
        for mine, theirs in zip(self.strata, other.strata):
            if not math.isclose(mine.prob, theirs.prob, rel_tol=1e-12):
                raise ValueError("cannot merge strata with different probabilities")
            mine.tally.merge(theirs.tally)
        return self

    def to_dict(self) -> dict:
        return {
            "kind": "stratified",
            "mode": self.mode,
            "allocation": self.allocation,
            "strata": [s.to_dict() for s in self.strata],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "StratifiedEstimate":
        return cls(
            mode=str(d["mode"]),
            allocation=str(d.get("allocation", "neyman")),
            strata=[StratumState.from_dict(s) for s in d["strata"]],
        )


def estimate_from_dict(d: dict) -> "WeightedEstimate | StratifiedEstimate":
    """Rehydrate a checkpointed estimate (shard cache / JSON transport)."""
    kind = d.get("kind")
    if kind == "weighted":
        return WeightedEstimate.from_dict(d)
    if kind == "stratified":
        return StratifiedEstimate.from_dict(d)
    raise ValueError(f"unknown estimate kind {kind!r}")


# -- importance sampling ---------------------------------------------------------------


def _tilt_by_mode(org: MemoryOrg, tilt: float) -> "dict":
    """Per-mode proposal tilts from the scalar knob, scaled by blast radius.

    ``theta_m = 1 + (theta - 1) * b_m / 2`` where ``b_m`` is the banks one
    event of mode *m* materializes (2 for the smallest modes, so they tilt
    by exactly *theta*; ``2 * banks_per_rank`` for MULTI_RANK).  The tail
    of the EOL fraction is reached by large-damage trajectories, and the
    exponential change of measure for the total damage ``sum b_m K_m``
    tilts each rate by a factor growing with ``b_m``; this linearization
    keeps one interpretable knob while tilting heavy modes harder.
    ``theta = 1`` maps to all-ones (plain MC) for every geometry.
    """
    out = {}
    for m in _SAT_MODES:
        banks = _BANKS_MATERIALIZED[m]
        if banks is None:  # MULTI_RANK: all banks of two ranks
            banks = 2 * org.banks_per_rank
        out[m] = 1.0 + (tilt - 1.0) * banks / 2.0
    return out


def _is_log_weights(draws, lam: dict, tilts: dict) -> np.ndarray:
    """Vectorized per-trial log likelihood ratios from a tilted chunk.

    Placements are measure-invariant, so only the per-mode Poisson counts
    enter:  ``log w = sum_m [(theta_m - 1) lam_m - k_m log(theta_m)]``.
    """
    n = next(iter(draws.values()))[0].shape[0]
    logw = np.zeros(n)
    for m in _SAT_MODES:
        theta = tilts[m]
        if theta == 1.0:
            continue
        counts = draws[m][0]
        logw += (theta - 1.0) * lam[m] - counts * math.log(theta)
    return logw


def _is_log_weights_reference(draws, lam: dict, tilts: dict) -> np.ndarray:
    """Per-trial reference for :func:`_is_log_weights`.

    Walks every trial and evaluates the two Poisson log-pmfs directly
    (``-lam + k log lam - lgamma(k+1)``), rather than the algebraically
    reduced ratio the vectorized path uses - the same pattern as
    ``_chunk_reference`` mirroring ``_chunk_batched``.
    """

    def log_pmf(k: int, rate: float) -> float:
        if rate == 0.0:
            return 0.0 if k == 0 else float("-inf")
        return -rate + k * math.log(rate) - math.lgamma(k + 1)

    n = next(iter(draws.values()))[0].shape[0]
    logw = np.zeros(n)
    for t in range(n):
        acc = 0.0
        for m in _SAT_MODES:
            k = int(draws[m][0][t])
            acc += log_pmf(k, lam[m]) - log_pmf(k, tilts[m] * lam[m])
        logw[t] = acc
    return logw


def _emit_progress(mode: str, done: int, trials: int, tally_view, target, rci) -> None:
    """Per-chunk telemetry (gated on ``REPRO_OBS=mc``): ESS + weight spread."""
    ess = round(tally_view.ess, 1)
    obs.REGISTRY.counter("mc.vr_trials").inc()
    obs.REGISTRY.gauge("mc.ess").set(ess)
    obs.REGISTRY.gauge("mc.weight_cv_sq").set(round(tally_view.weight_cv_sq, 6))
    obs.emit(
        "mc.rareevent",
        mode=mode,
        done=done,
        trials=trials,
        ess=ess,
        rci=None if rci is None or not math.isfinite(rci) else round(rci, 6),
        target=list(target) if target else None,
    )


def run_plain(
    sim: EolCapacitySim,
    trials: "int | None" = None,
    chunk_size: "int | None" = None,
    target: "tuple | None" = None,
    target_rci: "float | None" = None,
) -> WeightedEstimate:
    """Plain MC through the weighted pipeline (all weights one).

    The ``REPRO_MC_VR=off`` leg of every campaign: identical draws to
    :meth:`EolCapacitySim.run`, aggregated into a :class:`WeightedTally`
    so plain runs, IS runs, and stratified runs are directly comparable.
    """
    return _run_weighted(sim, trials, chunk_size, target, target_rci, tilt=1.0, mode="off")


def run_is(
    sim: EolCapacitySim,
    trials: "int | None" = None,
    tilt: "float | None" = None,
    chunk_size: "int | None" = None,
    target: "tuple | None" = None,
    target_rci: "float | None" = None,
) -> WeightedEstimate:
    """Importance-sampled run: exponential tilt + exact per-trial weights.

    *target* selects the primary estimator for early stopping and
    telemetry: ``None``/``("mean",)`` for the mean, ``("tail", x)`` for
    ``P(fraction >= x)``.  With ``target_rci`` (default
    ``REPRO_MC_TARGET_RCI``) the run stops at the end of the first chunk
    whose 95% relative CI is below the target.
    """
    tilt = mc_tilt(tilt)
    return _run_weighted(sim, trials, chunk_size, target, target_rci, tilt=tilt, mode="is")


def _run_weighted(sim, trials, chunk_size, target, target_rci, tilt, mode) -> WeightedEstimate:
    trials = mc_trials(trials, 20000)
    chunk_size = mc_chunk(chunk_size)
    target_rci = mc_target_rci(target_rci)
    lam = sim._lambdas()
    tilts = _tilt_by_mode(sim.org, tilt)
    lam_q = {m: tilts[m] * lam[m] for m in _SAT_MODES}
    tally = WeightedTally()
    estimate = WeightedEstimate(mode=mode, tally=tally, tilt=tilt)
    armed = obs.enabled("mc")
    done = 0
    while done < trials:
        n = min(chunk_size, trials - done)
        draws = _draw_chunk(sim.rng, sim.org, lam_q, n)
        fractions = _chunk_batched(sim.org, draws, n)
        weights = None if tilt == 1.0 else np.exp(_is_log_weights(draws, lam, tilts))
        tally.add(fractions, weights)
        done += n
        rci = estimate.rci(target) if (target_rci or armed) else None
        if armed:
            _emit_progress(mode, done, trials, tally, target, rci)
        if target_rci and rci is not None and rci <= target_rci:
            break
    return estimate


def run_is_coverage(
    scheme,
    trials: "int | None" = None,
    rate: float = 0.05,
    tilt: "float | None" = None,
    chunk_size: "int | None" = None,
    seed: int = 0,
    target: "tuple | None" = None,
    target_rci: "float | None" = None,
) -> WeightedEstimate:
    """Tilted codec campaign: silent-corruption probability under bit scatter.

    The end-to-end consumer of the batched RS decode kernel: per trial a
    random line accumulates ``Poisson(rate)`` scattered bit flips, the
    chunk runs through one batched ``scheme.correct_lines`` call, and the
    observable is the miscorrection/silent-corruption indicator (claimed
    ``ok`` with a wrong payload - the bucket ``experiments.coverage``
    calls ``silent_or_wrong``).  At realistic scatter rates that event
    needs multiple in-line flips, so its probability is deep in the tail;
    exponentially tilting the flip-count distribution to
    ``Poisson(tilt * rate)`` over-samples fault-heavy trials - exactly
    the regime the batched kernel exists for, since most words arrive
    dirty - and each trial carries the exact likelihood ratio
    ``exp((tilt - 1) rate) * tilt**(-k)`` (placements are uniform under
    both measures and cancel).  ``tilt=1.0`` degrades to plain MC with
    unit weights; estimates are bit-identical across the NumPy batch and
    native decode paths because the decoders themselves are.
    """
    trials = mc_trials(trials, 20000)
    chunk_size = mc_chunk(chunk_size)
    target_rci = mc_target_rci(target_rci)
    tilt = mc_tilt(tilt)
    mode = "off" if tilt == 1.0 else "is"
    rng = make_rng(seed)
    tally = WeightedTally()
    estimate = WeightedEstimate(mode=mode, tally=tally, tilt=tilt)
    armed = obs.enabled("mc")
    done = 0
    while done < trials:
        n = min(chunk_size, trials - done)
        data, counts, pos, bit = _draw_scatter_chunk(rng, scheme, tilt * rate, n)
        wrong = _codec_scatter_tally(scheme, data, counts, pos, bit)
        weights = (
            None
            if tilt == 1.0
            else np.exp((tilt - 1.0) * rate - counts * math.log(tilt))
        )
        tally.add(wrong, weights)
        done += n
        rci = estimate.rci(target) if (target_rci or armed) else None
        if armed:
            _emit_progress(f"{mode}_coverage", done, trials, tally, target, rci)
        if target_rci and rci is not None and rci <= target_rci:
            break
    return estimate


# -- stratified sampling ---------------------------------------------------------------


def _poisson_pmf(k: int, lam: float) -> float:
    return math.exp(-lam + k * math.log(lam) - math.lgamma(k + 1)) if lam > 0 else (
        1.0 if k == 0 else 0.0
    )


def _stratum_probs(lam_total: float, kmax: int) -> "list[float]":
    """Analytic probabilities of strata ``K=0..kmax-1`` and the ``>=kmax`` tail."""
    probs = [_poisson_pmf(k, lam_total) for k in range(kmax)]
    return probs + [max(0.0, 1.0 - math.fsum(probs))]


def _sample_tail_counts(
    rng: np.random.Generator, lam_total: float, kmax: int, n: int
) -> np.ndarray:
    """Sample *n* counts from ``Poisson(lam_total)`` conditioned on ``K >= kmax``.

    Inverse CDF over the truncated tail: the pmf table is extended until
    the residual mass is negligible relative to the tail, then uniforms
    are mapped through ``searchsorted`` (the final cell absorbs the
    clipped residual, keeping the distribution proper).
    """
    tail_mass = 1.0 - math.fsum(_poisson_pmf(k, lam_total) for k in range(kmax))
    tail_mass = max(tail_mass, 1e-300)
    pmf = []
    k = kmax
    acc = 0.0
    while acc < tail_mass * (1.0 - 1e-12) or len(pmf) < 2:
        p = _poisson_pmf(k, lam_total)
        pmf.append(p)
        acc += p
        k += 1
        if k > kmax + 10_000:  # unreachable for sane rates; hard stop
            break
    cdf = np.cumsum(pmf) / acc
    u = rng.random(n)
    return kmax + np.searchsorted(cdf, u, side="left").astype(np.int64)


def _sample_stratum(sim, lam, kmax: int, k: int, n: int) -> np.ndarray:
    """Draw *n* conditional trials of stratum *k* and return their fractions."""
    lam_total = sum(lam[m] for m in _SAT_MODES)
    if k >= kmax:
        totals = _sample_tail_counts(sim.rng, lam_total, kmax, n)
    else:
        totals = np.full(n, k, dtype=np.int64)
    draws = _draw_chunk_conditional(sim.rng, sim.org, lam, totals)
    return _chunk_batched(sim.org, draws, n)


def _allocate(budget: int, shares: "list[float]", minimum: int) -> "list[int]":
    """Integer allocation of *budget* proportional to *shares* with a floor.

    Every stratum with positive share receives at least *minimum* samples
    (bias guard); the remainder is split largest-share-first.
    """
    active = [i for i, s in enumerate(shares) if s > 0]
    out = [0] * len(shares)
    if not active or budget <= 0:
        return out
    floor = min(minimum, max(1, budget // len(active)))
    for i in active:
        out[i] = floor
    remaining = budget - floor * len(active)
    if remaining <= 0:
        return out
    total = sum(shares[i] for i in active)
    quotas = [(shares[i] / total) * remaining for i in active]
    for j, i in enumerate(active):
        out[i] += int(quotas[j])
    leftover = remaining - sum(int(q) for q in quotas)
    # Largest fractional remainders first; ties broken by stratum order.
    order = sorted(range(len(active)), key=lambda j: quotas[j] - int(quotas[j]), reverse=True)
    for j in order[:leftover]:
        out[active[j]] += 1
    return out


def run_stratified(
    sim: EolCapacitySim,
    trials: "int | None" = None,
    strata: "int | None" = None,
    allocation: str = "neyman",
    chunk_size: "int | None" = None,
    target: "tuple | None" = None,
    target_rci: "float | None" = None,
) -> StratifiedEstimate:
    """Stratified run over total-fault-count strata.

    *strata* is ``kmax``: exact strata ``K = 1 .. kmax-1`` plus the
    ``K >= kmax`` tail (default :data:`DEFAULT_STRATA`); ``K = 0`` is
    analytic and consumes no samples.  *allocation* is ``"proportional"``
    (``n_h ~ p_h``) or ``"neyman"`` (``n_h ~ p_h sigma_h``, with
    ``sigma_h`` estimated from a pilot round of :data:`MIN_PER_STRATUM`
    samples per stratum; the pilot samples count toward the budget).
    *trials* is the total *sampled* budget.  Early stopping mirrors
    :func:`run_is`: once the pilot is in, sampling proceeds in chunks and
    stops when the target relative CI is met.
    """
    if allocation not in ("proportional", "neyman"):
        raise ValueError(f"allocation must be 'proportional' or 'neyman', got {allocation!r}")
    trials = mc_trials(trials, 20000)
    chunk_size = mc_chunk(chunk_size)
    target_rci = mc_target_rci(target_rci)
    kmax = DEFAULT_STRATA if strata is None else int(strata)
    if kmax < 2:
        raise ValueError(f"strata (kmax) must be >= 2, got {kmax}")
    lam = sim._lambdas()
    lam_total = sum(lam[m] for m in _SAT_MODES)
    probs = _stratum_probs(lam_total, kmax)
    states = [StratumState(k=0, prob=probs[0], exact=0.0)]
    states += [StratumState(k=k, prob=probs[k]) for k in range(1, kmax + 1)]
    estimate = StratifiedEstimate(mode="strat", strata=states, allocation=allocation)
    sampled = [s for s in states if s.exact is None and s.prob > 0]
    armed = obs.enabled("mc")

    # Pilot round: the variance source for Neyman shares, and the bias
    # guard that every positive-probability stratum is represented.
    pilot = min(MIN_PER_STRATUM, max(1, trials // max(1, len(sampled))))
    for s in sampled:
        s.tally.add(_sample_stratum(sim, lam, kmax, s.k, pilot))
    done = sum(s.tally.n for s in sampled)

    if allocation == "neyman":
        indicator = target is not None and target[0] == "tail"

        def sigma(s: StratumState) -> float:
            t = s.tally
            if indicator:
                p_h = t.tail_stats(target[1])[0] / t.n
                return math.sqrt(p_h * (1.0 - p_h))
            mean_h = t.sum_wv / t.n
            return math.sqrt(max(0.0, t.sum_wv_sq / t.n - mean_h**2))

        shares = [s.prob * sigma(s) for s in sampled]
        if not any(shares):  # a pilot too small to see any variance
            shares = [s.prob for s in sampled]
    else:
        shares = [s.prob for s in sampled]

    plan = _allocate(max(0, trials - done), shares, MIN_PER_STRATUM)
    remaining = {s.k: plan[i] for i, s in enumerate(sampled)}
    stop = False
    while not stop and any(remaining.values()):
        for s in sampled:
            n = min(chunk_size, remaining[s.k])
            if n <= 0:
                continue
            s.tally.add(_sample_stratum(sim, lam, kmax, s.k, n))
            remaining[s.k] -= n
            done += n
            rci = estimate.rci(target) if (target_rci or armed) else None
            if armed:
                _emit_progress("strat", done, trials, estimate.mixture_tally(), target, rci)
            if target_rci and rci is not None and rci <= target_rci:
                stop = True
                break
    return estimate


# -- front door + sharded campaigns ----------------------------------------------------


def resolve_mode(mode: "str | None" = None, target: "tuple | None" = None) -> str:
    """Resolve ``REPRO_MC_VR`` to a concrete estimator.

    ``auto`` picks importance sampling for tail/threshold targets (the
    tilt concentrates trials exactly where the indicator lives) and
    stratification otherwise (the zero-variance ``K=0`` stratum does the
    heavy lifting for means).
    """
    mode = mc_vr(mode)
    if mode == "auto":
        return "is" if (target is not None and target[0] == "tail") else "strat"
    return mode


def run_estimate(
    sim: EolCapacitySim,
    mode: "str | None" = None,
    trials: "int | None" = None,
    *,
    tilt: "float | None" = None,
    strata: "int | None" = None,
    allocation: str = "neyman",
    chunk_size: "int | None" = None,
    target: "tuple | None" = None,
    target_rci: "float | None" = None,
) -> "WeightedEstimate | StratifiedEstimate":
    """One-process front door: dispatch on the resolved VR mode."""
    mode = resolve_mode(mode, target)
    if mode == "off":
        return run_plain(sim, trials, chunk_size, target, target_rci)
    if mode == "is":
        return run_is(sim, trials, tilt, chunk_size, target, target_rci)
    return run_stratified(sim, trials, strata, allocation, chunk_size, target, target_rci)


def _shard_worker(
    channels: int,
    ranks_per_channel: int,
    chips_per_rank: int,
    banks_per_rank: int,
    lifetime_hours: float,
    fit_scale: float,
    mode: str,
    trials: int,
    seed: int,
    shard: int,
    tilt: float,
    strata: int,
    allocation: str,
    chunk_size: int,
    threshold: "float | None",
) -> "tuple[int, dict]":
    """One campaign shard from primitives (picklable, pure, self-seeding).

    Seeded from ``SeedSequence((seed, shard))`` so a shard's estimate is
    bit-identical wherever (and whenever, on resume) it runs.
    """
    org = MemoryOrg(
        channels=channels,
        ranks_per_channel=ranks_per_channel,
        chips_per_rank=chips_per_rank,
        banks_per_rank=banks_per_rank,
    )
    sim = EolCapacitySim(
        org,
        lifetime_hours=lifetime_hours,
        seed=np.random.default_rng(np.random.SeedSequence((seed, shard))),
        fit_scale=fit_scale,
    )
    target = None if threshold is None else ("tail", threshold)
    with trace.span("mc.shard", "mc", shard=shard, mode=mode, trials=trials):
        est = run_estimate(
            sim,
            mode,
            trials,
            tilt=tilt,
            strata=strata,
            allocation=allocation,
            chunk_size=chunk_size,
            target=target,
            target_rci=0,  # shards never self-truncate; the driver stops globally
        )
    return shard, est.to_dict()


@dataclass
class CampaignResult:
    """Merged outcome of a sharded rare-event campaign."""

    estimate: "WeightedEstimate | StratifiedEstimate"
    mode: str
    shards_total: int
    shards_used: int  #: shards merged (fewer than total under early stop)
    early_stopped: bool
    threshold: "float | None"
    wall_s: float

    @property
    def trials(self) -> int:
        return self.estimate.trials

    @property
    def ess(self) -> float:
        return self.estimate.ess

    @property
    def target(self) -> "tuple | None":
        return None if self.threshold is None else ("tail", self.threshold)

    @property
    def rci(self) -> float:
        return self.estimate.rci(self.target)


def sharded_estimate(
    org: "MemoryOrg | None" = None,
    *,
    mode: "str | None" = None,
    trials: "int | None" = None,
    shards: int = DEFAULT_SHARDS,
    seed: int = 0,
    lifetime_hours: float = 7 * YEARS,
    fit_scale: float = 1.0,
    threshold: "float | None" = None,
    tilt: "float | None" = None,
    strata: "int | None" = None,
    allocation: str = "neyman",
    chunk_size: "int | None" = None,
    jobs: "int | None" = None,
    use_cache: bool = False,
    target_rci: "float | None" = None,
) -> CampaignResult:
    """Sharded rare-event campaign through the resilient engine.

    The trial budget splits over *shards* independent, deterministically
    seeded shard runs fanned out via
    :func:`repro.experiments.parallel.run_tasks` (``jobs``;
    ``REPRO_JOBS``/cpu count by default, 1 = in-process).  With
    ``use_cache=True`` finished shards checkpoint into
    ``mc_rareevent.json`` in the experiment cache directory, so an
    interrupted campaign resumes from the completed shards; the engine's
    retry/timeout/chaos machinery applies per shard.  With a target
    relative CI (``target_rci`` / ``REPRO_MC_TARGET_RCI``) the campaign
    stops consuming shards once the merged estimate is tight enough -
    pending shards are cancelled, and ``shards_used`` records the cut.

    Completed shards are re-merged in shard order, so serial and parallel
    campaigns (and resumed ones) agree bit-for-bit when no early stop
    truncates the shard set.
    """
    org = org or MemoryOrg()
    threshold_t = None if threshold is None else ("tail", threshold)
    mode = resolve_mode(mode, threshold_t)
    trials = mc_trials(trials, 20000)
    tilt = mc_tilt(tilt)
    chunk_size = mc_chunk(chunk_size)
    target_rci = mc_target_rci(target_rci)
    strata_n = DEFAULT_STRATA if strata is None else int(strata)
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")

    from repro.experiments import parallel

    cache: "dict[str, object]" = {}
    cache_path = None
    if use_cache:
        from repro.experiments import evaluation
        from repro.util.cachefile import load_json_cache, write_json_cache_atomic

        cache_path = evaluation.CACHE_DIR / "mc_rareevent.json"
        cache = load_json_cache(cache_path)

    def key(shard: int, shard_trials: int) -> str:
        parts = [
            f"org={org.channels}x{org.ranks_per_channel}x{org.chips_per_rank}x{org.banks_per_rank}",
            f"life={lifetime_hours}",
            f"fit={fit_scale}",
            f"mode={mode}",
            f"trials={shard_trials}",
            f"seed={seed}",
            f"shard={shard}",
            f"chunk={chunk_size}",
        ]
        if mode == "is":
            parts.append(f"tilt={tilt}")
        if mode == "strat":
            parts.append(f"strata={strata_n}:alloc={allocation}")
            if threshold is not None:
                parts.append(f"thr={threshold}")
        return ":".join(parts)

    base, extra = divmod(trials, shards)
    shard_trials = {s: base + (1 if s < extra else 0) for s in range(shards)}
    shard_trials = {s: n for s, n in shard_trials.items() if n > 0}

    results: "dict[int, dict]" = {}
    missing = []
    for s, n in shard_trials.items():
        entry = cache.get(key(s, n))
        if isinstance(entry, dict) and "kind" in entry:
            results[s] = entry
        else:
            missing.append(s)

    def merged(upto: "set[int]") -> "WeightedEstimate | StratifiedEstimate":
        est = None
        for s in sorted(upto):
            shard_est = estimate_from_dict(results[s])
            est = shard_est if est is None else est.merge(shard_est)
        return est

    t0 = time.perf_counter()
    early = False
    armed = obs.enabled("mc")
    if target_rci and results:
        current = merged(set(results))
        early = current.rci(threshold_t) <= target_rci
    if missing and not early:
        payloads = [
            (
                org.channels,
                org.ranks_per_channel,
                org.chips_per_rank,
                org.banks_per_rank,
                lifetime_hours,
                fit_scale,
                mode,
                shard_trials[s],
                seed,
                s,
                tilt,
                strata_n,
                allocation,
                chunk_size,
                threshold,
            )
            for s in missing
        ]
        for s, est_dict in parallel.run_tasks(_shard_worker, payloads, jobs=jobs):
            results[s] = est_dict
            if cache_path is not None:
                cache[key(s, shard_trials[s])] = est_dict
                write_json_cache_atomic(cache_path, cache)
            if armed:
                obs.emit(
                    "mc.rareevent.shard",
                    mode=mode,
                    shard=s,
                    shards=shards,
                    done=len(results),
                )
            if target_rci:
                current = merged(set(results))
                if current.rci(threshold_t) <= target_rci:
                    early = True
                    break  # abandoning the generator cancels pending shards

    estimate = merged(set(results))
    wall = time.perf_counter() - t0
    out = CampaignResult(
        estimate=estimate,
        mode=mode,
        shards_total=len(shard_trials),
        shards_used=len(results),
        early_stopped=early,
        threshold=threshold,
        wall_s=wall,
    )
    if armed:
        obs.REGISTRY.gauge("mc.ess").set(round(out.ess, 1))
        obs.emit(
            "mc.rareevent.campaign",
            mode=mode,
            trials=out.trials,
            shards_used=out.shards_used,
            shards_total=out.shards_total,
            early_stopped=early,
            ess=round(out.ess, 1),
        )
    return out


# -- unbiasedness oracle ---------------------------------------------------------------


def oracle_compare(
    org: "MemoryOrg | None" = None,
    trials: int = 60_000,
    seed: int = 0,
    threshold: "float | None" = None,
    tilt: "float | None" = None,
    strata: "int | None" = None,
    z: float = 4.0,
) -> dict:
    """Compare plain / IS / stratified estimates of the same quantities.

    Runs each estimator on an independent stream at the same budget and
    returns per-pair z-scores of the disagreement against the combined
    analytic standard errors.  Unbiased estimators disagree by more than
    ``z`` (default 4) combined standard deviations with probability
    ~6e-5 per comparison - the bound the oracle tests assert.
    """
    org = org or MemoryOrg()

    def sim(salt: int) -> EolCapacitySim:
        return EolCapacitySim(
            org, seed=np.random.default_rng(np.random.SeedSequence((seed, salt)))
        )

    target = None if threshold is None else ("tail", threshold)
    runs = {
        "plain": run_plain(sim(1), trials),
        "is": run_is(sim(2), trials, tilt=tilt, target=target),
        "strat": run_stratified(sim(3), trials, strata=strata, target=target),
    }
    report = {"trials": trials, "estimates": {}, "zscores": {}, "ok": True}
    for name, est in runs.items():
        entry = {"mean": est.mean, "se_mean": est.se_mean, "ess": est.ess}
        if threshold is not None:
            entry["tail"] = est.tail_probability(threshold)
            entry["se_tail"] = est.se_tail(threshold)
        report["estimates"][name] = entry
    for name in ("is", "strat"):
        a, b = report["estimates"]["plain"], report["estimates"][name]
        se = math.hypot(a["se_mean"], b["se_mean"])
        zs = {"mean": abs(a["mean"] - b["mean"]) / se if se > 0 else 0.0}
        if threshold is not None:
            se_t = math.hypot(a["se_tail"], b["se_tail"])
            zs["tail"] = abs(a["tail"] - b["tail"]) / se_t if se_t > 0 else 0.0
        report["zscores"][name] = zs
        if any(v > z for v in zs.values()):
            report["ok"] = False
    return report
