"""DRAM device fault modes and field failure rates.

Rates follow the large-scale field studies the paper relies on (Sridharan &
Liberty, SC'12; Sridharan et al., SC'13): per-device FIT contributions by
fault mode, scaled so the total matches the 44 FIT/chip average DDR3 rate
across vendors that the paper's Figure 2 caption quotes.

1 FIT = one failure per 10^9 device-hours.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Average DDR3 device fault rate across vendors [Sridharan13], FIT/chip.
TOTAL_FIT_DDR3 = 44.0


class FaultMode(enum.Enum):
    """Device-level DRAM fault modes, ordered by blast radius."""

    SINGLE_BIT = "single-bit"
    SINGLE_WORD = "single-word"
    SINGLE_COLUMN = "single-column"
    SINGLE_ROW = "single-row"
    SINGLE_BANK = "single-bank"
    MULTI_BANK = "multi-bank"
    MULTI_RANK = "multi-rank"


#: Relative FIT weights per mode (Sridharan & Liberty field distribution,
#: transient + permanent combined), renormalized to TOTAL_FIT_DDR3 below.
_RAW_WEIGHTS = {
    FaultMode.SINGLE_BIT: 28.8,
    FaultMode.SINGLE_WORD: 0.4,
    FaultMode.SINGLE_COLUMN: 2.4,
    FaultMode.SINGLE_ROW: 4.9,
    FaultMode.SINGLE_BANK: 8.8,
    FaultMode.MULTI_BANK: 0.3,
    FaultMode.MULTI_RANK: 0.9,
}

_SCALE = TOTAL_FIT_DDR3 / sum(_RAW_WEIGHTS.values())

#: FIT per chip by fault mode, summing to TOTAL_FIT_DDR3.
FIT_BY_MODE = {mode: w * _SCALE for mode, w in _RAW_WEIGHTS.items()}

#: Modes that saturate a bank-pair error counter (many rows affected) and
#: therefore trigger materialization of ECC correction bits; the paper's
#: Section VI-B migrates threads on exactly these modes.
SATURATING_MODES = frozenset(
    {FaultMode.SINGLE_COLUMN, FaultMode.SINGLE_BANK, FaultMode.MULTI_BANK, FaultMode.MULTI_RANK}
)

#: FIT per chip of counter-saturating (materializing) modes.
SATURATING_FIT = sum(FIT_BY_MODE[m] for m in SATURATING_MODES)


@dataclass(frozen=True)
class MemoryOrg:
    """Organization of the memory the reliability studies model.

    Defaults match the paper's Monte Carlo setup: four ranks per channel,
    nine chips per rank, eight banks per rank.
    """

    channels: int = 8
    ranks_per_channel: int = 4
    chips_per_rank: int = 9
    banks_per_rank: int = 8

    @property
    def chips_per_channel(self) -> int:
        return self.ranks_per_channel * self.chips_per_rank

    @property
    def total_chips(self) -> int:
        return self.channels * self.chips_per_channel

    @property
    def banks_per_channel(self) -> int:
        return self.ranks_per_channel * self.banks_per_rank

    @property
    def total_banks(self) -> int:
        return self.channels * self.banks_per_channel

    def channel_fault_rate_per_hour(self, fit_per_chip: float = TOTAL_FIT_DDR3) -> float:
        """Fault arrival rate of one channel, per hour."""
        return self.chips_per_channel * fit_per_chip * 1e-9

    def system_fault_rate_per_hour(self, fit_per_chip: float = TOTAL_FIT_DDR3) -> float:
        return self.total_chips * fit_per_chip * 1e-9
