"""Fault injection into the functional ECC Parity machine.

Translates the field fault modes of :mod:`repro.faults.fit_rates` into
:class:`~repro.core.machine.PermanentFault` regions on an
:class:`~repro.core.machine.ECCParityMachine`, so coverage experiments and
examples can speak in terms of "a row fault in channel 2" rather than raw
array slices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.machine import ECCParityMachine, PermanentFault
from repro.faults.fit_rates import FIT_BY_MODE, FaultMode
from repro.util.rng import make_rng


@dataclass
class InjectedFault:
    """Record of one injected fault (for assertions and reports)."""

    mode: FaultMode
    channel: int
    bank: int
    chip: int
    faults: "list[PermanentFault]"


class FaultInjector:
    """Draws fault modes/locations and applies them to a machine."""

    def __init__(self, machine: ECCParityMachine, seed: "int | None" = 0):
        self.machine = machine
        self.rng = make_rng(seed)
        self.injected: "list[InjectedFault]" = []

    def _rand_location(self) -> "tuple[int, int, int]":
        g = self.machine.geom
        chan = int(self.rng.integers(g.channels))
        bank = int(self.rng.integers(g.banks))
        chip = int(self.rng.integers(self.machine.scheme.data_chips))
        return chan, bank, chip

    def inject(
        self,
        mode: FaultMode,
        location: "tuple[int, int, int] | None" = None,
        transient: bool = False,
    ) -> InjectedFault:
        """Inject one fault of *mode* at *location* (or a random one).

        ``transient=True`` corrupts the region once (a scrub-with-repair
        pass heals it); otherwise the fault is permanent and re-asserts
        itself after repairs.
        """
        chan, bank, chip = location if location is not None else self._rand_location()
        g = self.machine.geom
        seed = int(self.rng.integers(1 << 30))
        faults: "list[PermanentFault]" = []

        if mode is FaultMode.SINGLE_BIT or mode is FaultMode.SINGLE_WORD:
            row = int(self.rng.integers(g.rows_per_bank))
            line = int(self.rng.integers(g.lines_per_row))
            faults.append(PermanentFault(chan, bank, (row, row + 1), (line, line + 1), chip, seed))
        elif mode is FaultMode.SINGLE_ROW:
            row = int(self.rng.integers(g.rows_per_bank))
            faults.append(PermanentFault(chan, bank, (row, row + 1), (0, g.lines_per_row), chip, seed))
        elif mode is FaultMode.SINGLE_COLUMN:
            line = int(self.rng.integers(g.lines_per_row))
            faults.append(
                PermanentFault(chan, bank, (0, g.rows_per_bank), (line, line + 1), chip, seed)
            )
        elif mode is FaultMode.SINGLE_BANK:
            faults.append(
                PermanentFault(chan, bank, (0, g.rows_per_bank), (0, g.lines_per_row), chip, seed)
            )
        elif mode is FaultMode.MULTI_BANK:
            for b in (bank, (bank + 1) % g.banks):
                faults.append(
                    PermanentFault(chan, b, (0, g.rows_per_bank), (0, g.lines_per_row), chip, seed + b)
                )
        elif mode is FaultMode.MULTI_RANK:
            # The machine folds ranks into its bank dimension; hit every bank.
            for b in range(g.banks):
                faults.append(
                    PermanentFault(chan, b, (0, g.rows_per_bank), (0, g.lines_per_row), chip, seed + b)
                )
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unhandled fault mode {mode}")

        for f in faults:
            if transient:
                self.machine.add_transient_fault(f)
            else:
                self.machine.add_permanent_fault(f)
        rec = InjectedFault(mode, chan, bank, chip, faults)
        self.injected.append(rec)
        return rec

    def inject_random(self) -> InjectedFault:
        """Inject a fault with mode drawn from the field FIT distribution."""
        modes = list(FIT_BY_MODE)
        weights = np.array([FIT_BY_MODE[m] for m in modes])
        mode = modes[int(self.rng.choice(len(modes), p=weights / weights.sum()))]
        return self.inject(mode)
