"""repro: reproduction of "ECC Parity: A Technique for Efficient Memory
Error Resilience for Multi-Channel Memory Systems" (Jian & Kumar, SC'14).

Subpackages
-----------
``repro.gf``
    GF(2^m) arithmetic and Reed-Solomon coding.
``repro.ecc``
    Bit-true baseline ECC schemes (commercial chipkill, LOT-ECC,
    Multi-ECC, RAIM) and the Table II configuration catalog.
``repro.core``
    The paper's contribution: ECC parity construction/layout, bank health
    tracking, and the functional multi-channel machine.
``repro.dram``
    DDR3 timing/energy substrate (close-page, Most-Pending, TN-41-01).
``repro.cpu``
    LLC + trace-driven multicore timing plane with ECC-traffic rules.
``repro.workloads``
    Synthetic SPEC/PARSEC workload profiles and generators.
``repro.faults``
    Field fault rates, lifetime Monte Carlo, reliability analyses,
    fault injection.
``repro.experiments``
    One driver per paper table/figure (see DESIGN.md's index).
``repro.obs``
    Zero-dependency telemetry plane: JSONL event bus, metrics registry,
    run manifests, and the ``repro.obs.summarize`` campaign reporter.
"""

__version__ = "1.0.0"

__all__ = [
    "core",
    "cpu",
    "dram",
    "ecc",
    "experiments",
    "faults",
    "gf",
    "obs",
    "util",
    "workloads",
]
