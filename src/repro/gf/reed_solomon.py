"""Systematic Reed-Solomon codes with errors-and-erasures decoding.

The encoder and syndrome computation are vectorized across arbitrarily large
batches of codewords (the common case: every word of every cache line in a
memory region).  Full decoding — Sugiyama (extended Euclid) key equation
solver plus Chien search and Forney's formula — runs per affected word only;
in a memory system almost all words are clean, so the scalar path is cold.

Positions are array indices ``0..n-1``; index ``i`` holds the coefficient of
``x^(n-1-i)`` (highest degree first), with data symbols followed by check
symbols.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gf.field import GF2m


@dataclass
class RSDecodeResult:
    """Outcome of a batched RS decode.

    Attributes
    ----------
    corrected:
        Codeword batch after correction, same shape as the input.
    ok:
        Per-word flag: True when the word is clean or was fully corrected
        (recomputed syndromes are zero).
    had_errors:
        Per-word flag: the received word had nonzero syndromes or erasures.
    n_corrected:
        Number of symbols whose value was changed, per word.
    """

    corrected: np.ndarray
    ok: np.ndarray
    had_errors: np.ndarray
    n_corrected: np.ndarray


class ReedSolomon:
    """An ``(n, k)`` systematic Reed-Solomon code over *field*.

    Corrects any pattern of ``e`` symbol errors and ``f`` symbol erasures
    with ``2e + f <= n - k``.
    """

    def __init__(self, field: GF2m, n: int, k: int):
        if not (0 < k < n <= field.order - 1):
            raise ValueError(f"invalid RS parameters n={n}, k={k} over GF(2^{field.m})")
        self.field = field
        self.n = n
        self.k = k
        self.num_check = n - k

        f = field
        # Generator polynomial g(x) = prod_{j=1..n-k} (x + alpha^j), lowest degree first.
        g = np.array([1], dtype=f.dtype)
        for j in range(1, self.num_check + 1):
            g = f.poly_mul(g, np.array([f.alpha_pow(j), 1], dtype=f.dtype))
        self._gen_poly = g
        # Encoder feedback taps: g without the monic leading term, highest degree first.
        self._gen_taps = g[:-1][::-1].copy()

        # Syndrome evaluation matrix in log space: S_j = sum_i c_i * alpha^{(j+1)(n-1-i)}.
        j = np.arange(self.num_check)
        i = np.arange(n)
        self._synd_log = ((j[None, :] + 1) * (n - 1 - i[:, None])) % (f.order - 1)

    # -- encoding ---------------------------------------------------------------

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode a batch of messages: shape ``(..., k)`` -> ``(..., n)``."""
        f = self.field
        data = np.asarray(data, dtype=f.dtype)
        if data.shape[-1] != self.k:
            raise ValueError(f"expected {self.k} data symbols, got {data.shape[-1]}")
        batch_shape = data.shape[:-1]
        flat = data.reshape(-1, self.k)
        rem = np.zeros((flat.shape[0], self.num_check), dtype=f.dtype)
        for col in range(self.k):
            fb = f.add(rem[:, 0], flat[:, col])
            rem[:, :-1] = rem[:, 1:]
            rem[:, -1] = 0
            rem = f.add(rem, f.mul(fb[:, None], self._gen_taps[None, :]))
        out = np.concatenate([flat, rem], axis=-1)
        return out.reshape(*batch_shape, self.n)

    # -- syndromes / detection ----------------------------------------------------

    def syndromes(self, codewords: np.ndarray) -> np.ndarray:
        """Syndrome batch: shape ``(..., n)`` -> ``(..., n-k)``; zero means clean."""
        f = self.field
        cw = np.asarray(codewords, dtype=np.int64)
        if cw.shape[-1] != self.n:
            raise ValueError(f"expected {self.n} symbols, got {cw.shape[-1]}")
        logs = f._log[cw]  # (..., n)
        terms = f._exp[logs[..., :, None] + self._synd_log[None, :, :]]
        terms = np.where(cw[..., :, None] == 0, 0, terms)
        return np.bitwise_xor.reduce(terms, axis=-2).astype(f.dtype)

    def detect(self, codewords: np.ndarray) -> np.ndarray:
        """Per-word error flag (True where any syndrome is nonzero)."""
        return np.any(self.syndromes(codewords) != 0, axis=-1)

    # -- decoding ---------------------------------------------------------------

    def decode(
        self,
        codewords: np.ndarray,
        erasures: "list[int] | np.ndarray | None" = None,
    ) -> RSDecodeResult:
        """Correct a batch of codewords in place of a copy.

        Parameters
        ----------
        codewords:
            Shape ``(..., n)`` batch.
        erasures:
            Optional list of array positions known to be unreliable, shared
            by every word in the batch (e.g. the symbols supplied by a dead
            chip).  ``2*errors + erasures <= n-k`` must hold for success.
        """
        f = self.field
        cw = np.array(codewords, dtype=f.dtype, copy=True)
        batch_shape = cw.shape[:-1]
        flat = cw.reshape(-1, self.n)
        n_words = flat.shape[0]

        erasure_pos = np.array(sorted(set(int(e) for e in erasures)), dtype=np.int64) if erasures is not None and len(erasures) else np.array([], dtype=np.int64)
        if erasure_pos.size and (erasure_pos.min() < 0 or erasure_pos.max() >= self.n):
            raise ValueError("erasure position out of range")

        synd = self.syndromes(flat)
        dirty = np.any(synd != 0, axis=-1)
        ok = np.ones(n_words, dtype=bool)
        n_corrected = np.zeros(n_words, dtype=np.int64)

        if erasure_pos.size > self.num_check:
            # More erasures than redundancy: dirty words are unrecoverable.
            ok = ~dirty
        else:
            for w in np.nonzero(dirty)[0]:
                fixed, count = self._decode_word(flat[w], synd[w], erasure_pos)
                if fixed is None:
                    ok[w] = False
                else:
                    flat[w] = fixed
                    n_corrected[w] = count

        had = dirty | bool(erasure_pos.size)
        return RSDecodeResult(
            flat.reshape(*batch_shape, self.n),
            ok.reshape(batch_shape),
            had.reshape(batch_shape),
            n_corrected.reshape(batch_shape),
        )

    def decode_erasures_batch(
        self, codewords: np.ndarray, erasures: "list[int] | np.ndarray"
    ) -> RSDecodeResult:
        """Fully vectorized erasure-only decoding at fixed positions.

        The common memory case - a dead chip erases the *same* symbol
        position of every word - reduces to one small linear solve: with
        erasure locators ``X_e = alpha^(n-1-pos_e)``, the magnitudes satisfy
        ``S_j = sum_e Y_e X_e^(j+1)``; the f x f system is inverted once and
        applied to the whole batch with a GF matmul.  Words whose residual
        syndromes stay nonzero (extra errors beyond the erasures) are
        reported ``ok=False`` - chain into :meth:`decode` for those.
        """
        f = self.field
        positions = sorted(set(int(e) for e in erasures))
        if not positions:
            raise ValueError("decode_erasures_batch needs at least one erasure")
        if len(positions) > self.num_check:
            raise ValueError("more erasures than check symbols")
        if min(positions) < 0 or max(positions) >= self.n:
            raise ValueError("erasure position out of range")

        cw = np.array(codewords, dtype=f.dtype, copy=True)
        batch_shape = cw.shape[:-1]
        flat = cw.reshape(-1, self.n)
        nf = len(positions)

        # A[j, e] = X_e^(j+1) for the first nf syndrome rows.
        x = f.alpha_pow([self.n - 1 - p for p in positions])  # (nf,)
        rows = np.arange(1, nf + 1)
        a = f.pow(np.broadcast_to(x, (nf, nf)), rows[:, None])
        inv_a = f.mat_inv(a)

        synd = self.syndromes(flat)  # (W, 2t)
        dirty = np.any(synd != 0, axis=-1)
        # Y = inv_a @ S[:nf] per word  ==  S[:, :nf] @ inv_a.T batched.
        magnitudes = f.matmul(synd[:, :nf], inv_a.T.copy())  # (W, nf)
        flat[:, positions] ^= magnitudes

        resid = self.syndromes(flat)
        ok = ~np.any(resid != 0, axis=-1)
        if not ok.all():
            # Words with extra errors keep their original content.
            bad_idx = np.nonzero(~ok)[0]
            flat[np.ix_(bad_idx, positions)] ^= magnitudes[bad_idx]
        n_corrected = np.where(ok, (magnitudes != 0).sum(axis=-1), 0)
        # Declared erasures make every word "suspected" regardless of dirt.
        had = np.ones_like(dirty)
        return RSDecodeResult(
            flat.reshape(*batch_shape, self.n),
            ok.reshape(batch_shape),
            had.reshape(batch_shape),
            n_corrected.reshape(batch_shape),
        )

    # -- scalar word decode (cold path) -----------------------------------------

    def _decode_word(
        self, word: np.ndarray, synd: np.ndarray, erasure_pos: np.ndarray
    ) -> "tuple[np.ndarray | None, int]":
        """Errors-and-erasures decode of one word; returns (fixed, n_changed)."""
        f = self.field
        two_t = self.num_check
        rho = int(erasure_pos.size)

        # Erasure locator Gamma(x) = prod (1 + X_e x), X_e = alpha^{n-1-pos}.
        gamma = np.array([1], dtype=f.dtype)
        for pos in erasure_pos:
            x_e = f.alpha_pow(self.n - 1 - int(pos))
            gamma = f.poly_mul(gamma, np.array([1, x_e], dtype=f.dtype))

        # Modified syndrome Xi(x) = S(x) * Gamma(x) mod x^{2t}.
        s_poly = np.asarray(synd, dtype=f.dtype)
        xi = f.poly_mul(s_poly, gamma)[:two_t]

        # Sugiyama: extended Euclid on (x^{2t}, Xi) until deg r < (2t + rho)/2.
        r_prev = np.zeros(two_t + 1, dtype=f.dtype)
        r_prev[-1] = 1  # x^{2t}
        r_cur = _trim(xi)
        u_prev = np.array([0], dtype=f.dtype)
        u_cur = np.array([1], dtype=f.dtype)
        while 2 * _deg(r_cur) >= two_t + rho and np.any(r_cur != 0):
            q, rem = _poly_divmod(f, r_prev, r_cur)
            qu = f.poly_mul(q, u_cur)
            width = max(len(u_prev), len(qu))
            u_next = _trim(f.add(_pad_to(u_prev, width), _pad_to(qu, width)))
            r_prev, r_cur = r_cur, _trim(rem)
            u_prev, u_cur = u_cur, u_next

        lam = u_cur
        omega = r_cur
        if lam[0] == 0:
            return None, 0
        scale = f.inv(lam[0])
        lam = f.mul(lam, scale)
        omega = f.mul(omega, scale)

        psi = _trim(f.poly_mul(lam, gamma))  # combined error+erasure locator

        # Chien search: roots of Psi at alpha^{-p} identify positions p (as powers).
        n_roots_expected = _deg(psi)
        if n_roots_expected == 0:
            # Syndromes nonzero but locator trivial: only possible if all the
            # corruption is in the erased positions with zero magnitude - bail.
            return None, 0
        powers = np.arange(self.n)
        inv_x = f.alpha_pow(-(powers) % (f.order - 1))
        vals = f.poly_eval(psi, inv_x)
        root_powers = powers[vals == 0]
        if root_powers.size != n_roots_expected:
            return None, 0

        psi_deriv = f.poly_deriv(psi)
        fixed = word.copy()
        changed = 0
        for p in root_powers:
            x_inv = f.alpha_pow(-int(p) % (f.order - 1))
            num = f.poly_eval(omega, x_inv)
            den = f.poly_eval(psi_deriv, x_inv)
            if den == 0:
                return None, 0
            mag = f.div(num, den)
            pos = self.n - 1 - int(p)
            if pos < 0 or pos >= self.n:
                return None, 0
            if mag != 0:
                fixed[pos] = f.add(fixed[pos], mag)
                changed += 1

        if np.any(self.syndromes(fixed[None, :])[0] != 0):
            return None, 0
        return fixed, changed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReedSolomon(n={self.n}, k={self.k}, GF(2^{self.field.m}))"


def _deg(p: np.ndarray) -> int:
    """Degree of a lowest-first coefficient array (deg(0) == -1... we use 0)."""
    nz = np.nonzero(p)[0]
    return int(nz[-1]) if nz.size else 0


def _trim(p: np.ndarray) -> np.ndarray:
    """Strip trailing zero coefficients, keeping at least one term."""
    nz = np.nonzero(p)[0]
    if not nz.size:
        return p[:1].copy()
    return p[: nz[-1] + 1].copy()


def _pad_to(p: np.ndarray, length: int) -> np.ndarray:
    if len(p) >= length:
        return p
    out = np.zeros(length, dtype=p.dtype)
    out[: len(p)] = p
    return out


def _poly_divmod(f: GF2m, a: np.ndarray, b: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """Polynomial division ``a = q*b + r`` over GF(2^m), lowest-first coeffs."""
    a = _trim(np.asarray(a, dtype=f.dtype)).copy()
    b = _trim(np.asarray(b, dtype=f.dtype))
    db = _deg(b)
    if np.all(b == 0):
        raise ZeroDivisionError("polynomial division by zero")
    da = _deg(a)
    if da < db:
        return np.zeros(1, dtype=f.dtype), a
    q = np.zeros(da - db + 1, dtype=f.dtype)
    inv_lead = f.inv(b[db])
    for d in range(da, db - 1, -1):
        if a[d]:
            coef = f.mul(a[d], inv_lead)
            q[d - db] = coef
            a[d - db : d + 1] = f.add(a[d - db : d + 1], f.mul(coef, b[: db + 1]))
    return q, a
