"""Systematic Reed-Solomon codes with errors-and-erasures decoding.

The encoder and syndrome computation are vectorized across arbitrarily large
batches of codewords (the common case: every word of every cache line in a
memory region).  Full decoding is batched too: all dirty words of a batch
run the key-equation solver **lock-step** — a vectorized Berlekamp-Massey
over the erasure-modified syndromes with per-word active masks, Chien search
as one Vandermonde evaluation over all ``n`` positions x ``W`` words, and a
vectorized Forney update.  The founding assumption of the old per-word loop
("almost all words are clean, so the scalar path is cold") died with the
tilted rare-event campaigns, which deliberately over-sample faulty trials;
the batched kernel makes dirty-word decoding an array program.

Everything derived from an erasure set — the erasure locator, the modified
syndrome transform, the lock-step solve matrices, and the erasure-only
Vandermonde solve — is built once per distinct position set and cached on
the codec instance (``_erasure_setup``), since campaigns decode against the
same health-table erasures for millions of lines.

An optional cffi-compiled core (:mod:`repro.gf.rsnative`, knob
``REPRO_GF_NATIVE``) runs the same per-word algorithm in C over
pointer-shared NumPy state.  The scalar Sugiyama path survives verbatim as
:meth:`ReedSolomon.decode_reference` / :meth:`ReedSolomon._decode_word`, the
reference oracle ``tests/test_rs_batched.py`` pins both the NumPy batch and
the native core against, mirroring the ``_run_reference`` /
``_scrub_reference`` policy elsewhere in the codebase.

Positions are array indices ``0..n-1``; index ``i`` holds the coefficient of
``x^(n-1-i)`` (highest degree first), with data symbols followed by check
symbols.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro import obs
from repro.gf import rsnative
from repro.gf.field import GF2m

#: Dirty words decoded per lock-step slice (bounds the (D, 2t+1, n)
#: matmul temporaries at large tilted-campaign batch sizes).
_BATCH_SLICE = 1 << 14


@dataclass
class RSDecodeResult:
    """Outcome of a batched RS decode.

    Attributes
    ----------
    corrected:
        Codeword batch after correction, same shape as the input.
    ok:
        Per-word flag: True when the word is clean or was fully corrected
        (recomputed syndromes are zero).
    had_errors:
        Per-word flag: the received word had nonzero syndromes or erasures.
    n_corrected:
        Number of symbols whose value was changed, per word.
    """

    corrected: np.ndarray
    ok: np.ndarray
    had_errors: np.ndarray
    n_corrected: np.ndarray


class ReedSolomon:
    """An ``(n, k)`` systematic Reed-Solomon code over *field*.

    Corrects any pattern of ``e`` symbol errors and ``f`` symbol erasures
    with ``2e + f <= n - k``.
    """

    def __init__(self, field: GF2m, n: int, k: int):
        if not (0 < k < n <= field.order - 1):
            raise ValueError(f"invalid RS parameters n={n}, k={k} over GF(2^{field.m})")
        self.field = field
        self.n = n
        self.k = k
        self.num_check = n - k

        f = field
        # Generator polynomial g(x) = prod_{j=1..n-k} (x + alpha^j), lowest degree first.
        g = np.array([1], dtype=f.dtype)
        for j in range(1, self.num_check + 1):
            g = f.poly_mul(g, np.array([f.alpha_pow(j), 1], dtype=f.dtype))
        self._gen_poly = g
        # Encoder feedback taps: g without the monic leading term, highest degree first.
        self._gen_taps = g[:-1][::-1].copy()

        # Syndrome evaluation matrix in log space: S_j = sum_i c_i * alpha^{(j+1)(n-1-i)}.
        j = np.arange(self.num_check)
        i = np.arange(n)
        self._synd_log = ((j[None, :] + 1) * (n - 1 - i[:, None])) % (f.order - 1)

        # Chien/Forney evaluation matrix: row j, column p holds alpha^{-p*j},
        # so a (W, deg+1) coefficient batch matmul'd against it evaluates
        # every word's polynomial at every inverse position at once.
        two_t = self.num_check
        jj = np.arange(two_t + 1)
        pp = np.arange(n)
        self._chien_mat = f.alpha_pow((-(jj[:, None] * pp[None, :])) % (f.order - 1))

        #: Per-erasure-set solve state, keyed by the caller's literal
        #: position tuple *and* its sorted-unique canonical form (so the
        #: per-call ``sorted(set(...))`` normalization is paid once).
        self._erasure_cache: "dict[tuple, dict]" = {}
        #: Lazily-built native-core table block (see :mod:`repro.gf.rsnative`).
        self._native_tables = None

    # -- encoding ---------------------------------------------------------------

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode a batch of messages: shape ``(..., k)`` -> ``(..., n)``."""
        f = self.field
        data = np.asarray(data, dtype=f.dtype)
        if data.shape[-1] != self.k:
            raise ValueError(f"expected {self.k} data symbols, got {data.shape[-1]}")
        batch_shape = data.shape[:-1]
        flat = data.reshape(-1, self.k)
        rem = np.zeros((flat.shape[0], self.num_check), dtype=f.dtype)
        for col in range(self.k):
            fb = f.add(rem[:, 0], flat[:, col])
            rem[:, :-1] = rem[:, 1:]
            rem[:, -1] = 0
            rem = f.add(rem, f.mul(fb[:, None], self._gen_taps[None, :]))
        out = np.concatenate([flat, rem], axis=-1)
        return out.reshape(*batch_shape, self.n)

    # -- syndromes / detection ----------------------------------------------------

    def syndromes(self, codewords: np.ndarray) -> np.ndarray:
        """Syndrome batch: shape ``(..., n)`` -> ``(..., n-k)``; zero means clean."""
        f = self.field
        cw = np.asarray(codewords, dtype=np.int64)
        if cw.shape[-1] != self.n:
            raise ValueError(f"expected {self.n} symbols, got {cw.shape[-1]}")
        if rsnative.use_native(self):
            batch_shape = cw.shape[:-1]
            out = rsnative.syndromes(self, cw.reshape(-1, self.n))
            return out.reshape(*batch_shape, self.num_check)
        logs = f._log[cw]  # (..., n)
        terms = f._exp[logs[..., :, None] + self._synd_log[None, :, :]]
        terms = np.where(cw[..., :, None] == 0, 0, terms)
        return np.bitwise_xor.reduce(terms, axis=-2).astype(f.dtype)

    def detect(self, codewords: np.ndarray) -> np.ndarray:
        """Per-word error flag (True where any syndrome is nonzero)."""
        return np.any(self.syndromes(codewords) != 0, axis=-1)

    # -- erasure-set solve cache --------------------------------------------------

    def _erasure_setup(self, erasures) -> dict:
        """Everything derived from an erasure set, built once and cached.

        Keyed first by the caller's literal tuple (skipping even the
        sort/dedup on repeated identical calls), then by the canonical
        sorted-unique form so permutations share one setup object.
        Invalid positions raise ``ValueError`` on every call, as before.
        """
        key = tuple(int(e) for e in erasures) if erasures is not None else ()
        setup = self._erasure_cache.get(key)
        if setup is not None:
            return setup
        canon = tuple(sorted(set(key)))
        setup = self._erasure_cache.get(canon)
        if setup is None:
            setup = self._build_erasure_setup(canon)
            self._erasure_cache[canon] = setup
        self._erasure_cache[key] = setup
        return setup

    def _build_erasure_setup(self, positions: tuple) -> dict:
        f = self.field
        two_t = self.num_check
        rho = len(positions)
        pos = np.array(positions, dtype=np.int64)
        if rho and (pos[0] < 0 or pos[-1] >= self.n):
            raise ValueError("erasure position out of range")

        # Erasure locator Gamma(x) = prod (1 + X_e x), X_e = alpha^{n-1-pos}.
        gamma = np.array([1], dtype=f.dtype)
        for p in positions:
            x_e = f.alpha_pow(self.n - 1 - p)
            gamma = f.poly_mul(gamma, np.array([1, x_e], dtype=f.dtype))
        setup = {"pos": pos, "rho": rho, "gamma": gamma}

        if rho <= two_t:
            setup["e_max"] = (two_t - rho) // 2
            # Xi = S * Gamma mod x^{2t} as one matmul: xi_mat[i, j] = gamma[j-i].
            xi_mat = np.zeros((two_t, two_t), dtype=f.dtype)
            for i in range(two_t):
                hi = min(two_t - i, rho + 1)
                xi_mat[i, i : i + hi] = gamma[:hi]
            setup["xi_mat"] = xi_mat
            # Psi = Lambda * Gamma as one matmul: conv[i, i+l] = gamma[l].
            width = two_t - rho + 1  # lock-step Lambda storage width
            conv = np.zeros((width, two_t + 1), dtype=f.dtype)
            for i in range(width):
                conv[i, i : i + rho + 1] = gamma
            setup["conv"] = conv
        if 1 <= rho <= two_t:
            # Erasure-only Vandermonde solve: A[j, e] = X_e^(j+1); the f x f
            # inverse is applied to whole batches as S[:, :rho] @ inv(A).T.
            x = f.alpha_pow([self.n - 1 - p for p in positions])
            rows = np.arange(1, rho + 1)
            a = f.pow(np.broadcast_to(x, (rho, rho)), rows[:, None])
            setup["era_inv_t"] = f.mat_inv(a).T.copy()
        return setup

    # -- decoding ---------------------------------------------------------------

    def decode(
        self,
        codewords: np.ndarray,
        erasures: "list[int] | np.ndarray | None" = None,
    ) -> RSDecodeResult:
        """Correct a batch of codewords in place of a copy.

        Parameters
        ----------
        codewords:
            Shape ``(..., n)`` batch.
        erasures:
            Optional list of array positions known to be unreliable, shared
            by every word in the batch (e.g. the symbols supplied by a dead
            chip).  ``2*errors + erasures <= n-k`` must hold for success.
        """
        f = self.field
        cw = np.array(codewords, dtype=f.dtype, copy=True)
        batch_shape = cw.shape[:-1]
        flat = cw.reshape(-1, self.n)
        n_words = flat.shape[0]

        setup = self._erasure_setup(erasures)
        rho = setup["rho"]

        armed = obs.enabled("ecc")
        t0 = perf_counter() if armed else 0.0
        synd = self.syndromes(flat)
        dirty = np.any(synd != 0, axis=-1)
        ok = np.ones(n_words, dtype=bool)
        n_corrected = np.zeros(n_words, dtype=np.int64)
        native_used = False

        if rho > self.num_check:
            # More erasures than redundancy: dirty words are unrecoverable.
            ok = ~dirty
        else:
            didx = np.flatnonzero(dirty)
            if didx.size:
                native_used = rsnative.use_native(self)
                for lo in range(0, didx.size, _BATCH_SLICE):
                    sl = didx[lo : lo + _BATCH_SLICE]
                    if native_used:
                        ok_d, nc_d = rsnative.decode_batch(self, flat, synd, sl, setup)
                    else:
                        ok_d, nc_d = self._decode_batch(flat, synd, sl, setup)
                    ok[sl] = ok_d
                    n_corrected[sl] = nc_d

        if armed:
            self._emit_decode(n_words, int(dirty.sum()), rho, native_used, perf_counter() - t0)
        had = dirty | bool(rho)
        return RSDecodeResult(
            flat.reshape(*batch_shape, self.n),
            ok.reshape(batch_shape),
            had.reshape(batch_shape),
            n_corrected.reshape(batch_shape),
        )

    def _decode_batch(
        self, flat: np.ndarray, synd: np.ndarray, didx: np.ndarray, setup: dict
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Lock-step errors-and-erasures decode of the dirty word subset.

        Vectorized Berlekamp-Massey over the erasure-modified syndromes
        ``Xi = S*Gamma mod x^{2t}`` (per-word masks replace the data-dependent
        branches), Chien search as one matmul against the inverse-position
        Vandermonde, and a vectorized Forney update.  Every failure gate of
        the scalar oracle is mirrored — locator length above the erasure
        budget, trivial/deficient locator, missing Chien roots, a vanishing
        Forney denominator, and the final syndrome recheck — so the observable
        outcome (corrected bytes, ``ok``, ``n_corrected``) is bit-identical
        to :meth:`_decode_word` for every word: within the unique decoding
        sphere both solvers find the same minimal key-equation solution, and
        outside it both land in a failure gate.

        Corrects ``flat`` rows in place for words that pass; returns the
        per-dirty-word ``(ok, n_corrected)`` pair.
        """
        f = self.field
        two_t = self.num_check
        rho = setup["rho"]
        e_max = setup["e_max"]
        d_count = didx.size

        s = synd[didx]
        xi = f.matmul(s, setup["xi_mat"]) if rho else s
        y = xi[:, rho:]  # Forney-shifted sequence: errors-only BM applies
        n_iter = two_t - rho
        width = n_iter + 1

        # -- Berlekamp-Massey, all words lock-step -------------------------------
        lam = np.zeros((d_count, width), dtype=f.dtype)
        lam[:, 0] = 1
        bpoly = np.zeros_like(lam)
        bpoly[:, 0] = 1
        big_l = np.zeros(d_count, dtype=np.int64)
        bb = np.ones(d_count, dtype=f.dtype)
        m = np.ones(d_count, dtype=np.int64)
        y_ext = np.concatenate([np.zeros((d_count, width - 1), dtype=f.dtype), y], axis=1)
        col = np.arange(width)
        for r in range(n_iter):
            window = y_ext[:, r : r + width][:, ::-1]  # y[r], y[r-1], ...
            delta = np.bitwise_xor.reduce(f.mul(lam, window), axis=1)
            nz = delta != 0
            grow = nz & (2 * big_l <= r)
            coef = f.div(delta, bb)  # bb is always a past nonzero discrepancy
            idx = col[None, :] - m[:, None]
            shifted = np.where(
                idx >= 0, np.take_along_axis(bpoly, np.clip(idx, 0, width - 1), axis=1), 0
            ).astype(f.dtype)
            lam_new = f.add(lam, f.mul(coef[:, None], shifted))
            prev = lam
            lam = np.where(nz[:, None], lam_new, lam)
            bpoly = np.where(grow[:, None], prev, bpoly)
            bb = np.where(grow, delta, bb)
            big_l = np.where(grow, r + 1 - big_l, big_l)
            m = np.where(grow, 1, m + 1)

        fail = big_l > e_max  # beyond the (2t - rho)/2 error budget

        # -- combined locator, Chien search as one Vandermonde evaluation --------
        psi = f.matmul(lam, setup["conv"])  # (D, 2t+1)
        nzm = psi != 0
        deg_psi = np.where(
            nzm.any(axis=1), psi.shape[1] - 1 - np.argmax(nzm[:, ::-1], axis=1), 0
        )
        fail |= deg_psi == 0
        vals = f.matmul(psi, self._chien_mat)  # psi(alpha^{-p}) for all p
        roots = vals == 0
        fail |= roots.sum(axis=1) != deg_psi

        # -- vectorized Forney ----------------------------------------------------
        # omega = S * psi mod x^{2t}, per word (psi differs per word).
        omega = np.zeros((d_count, two_t), dtype=f.dtype)
        for low in range(min(psi.shape[1], two_t)):
            omega[:, low:] = f.add(
                omega[:, low:], f.mul(psi[:, low : low + 1], s[:, : two_t - low])
            )
        deriv = psi[:, 1:].copy()
        deriv[:, 1::2] = 0  # formal derivative in characteristic 2
        num_vals = f.matmul(omega, self._chien_mat[:two_t])
        den_vals = f.matmul(deriv, self._chien_mat[:two_t])
        fail |= (roots & (den_vals == 0)).any(axis=1)
        mag = f.div(num_vals, np.where(den_vals == 0, 1, den_vals))
        mag = np.where(roots, mag, 0)
        n_corr = (mag != 0).sum(axis=1)

        # Root power p names position n-1-p: scatter = reverse the last axis.
        cand = f.add(flat[didx], mag[:, ::-1])
        cand = np.where(fail[:, None], flat[didx], cand)
        fail |= np.any(self.syndromes(cand) != 0, axis=1)  # final recheck
        okd = ~fail
        flat[didx[okd]] = cand[okd]
        return okd, np.where(okd, n_corr, 0)

    def decode_erasures_batch(
        self, codewords: np.ndarray, erasures: "list[int] | np.ndarray"
    ) -> RSDecodeResult:
        """Fully vectorized erasure-only decoding at fixed positions.

        The common memory case - a dead chip erases the *same* symbol
        position of every word - reduces to one small linear solve: with
        erasure locators ``X_e = alpha^(n-1-pos_e)``, the magnitudes satisfy
        ``S_j = sum_e Y_e X_e^(j+1)``; the f x f system is inverted once per
        distinct position set (cached on the codec) and applied to the whole
        batch with a GF matmul.  Words whose residual syndromes stay nonzero
        (extra errors beyond the erasures) are reported ``ok=False`` - chain
        into :meth:`decode` for those.
        """
        f = self.field
        setup = self._erasure_setup(erasures)
        rho = setup["rho"]
        if not rho:
            raise ValueError("decode_erasures_batch needs at least one erasure")
        if rho > self.num_check:
            raise ValueError("more erasures than check symbols")
        positions = setup["pos"]

        cw = np.array(codewords, dtype=f.dtype, copy=True)
        batch_shape = cw.shape[:-1]
        flat = cw.reshape(-1, self.n)

        armed = obs.enabled("ecc")
        t0 = perf_counter() if armed else 0.0
        synd = self.syndromes(flat)  # (W, 2t)
        dirty = np.any(synd != 0, axis=-1)
        # Y = inv_a @ S[:rho] per word  ==  S[:, :rho] @ inv_a.T batched.
        magnitudes = f.matmul(synd[:, :rho], setup["era_inv_t"])  # (W, rho)
        flat[:, positions] ^= magnitudes

        resid = self.syndromes(flat)
        ok = ~np.any(resid != 0, axis=-1)
        if not ok.all():
            # Words with extra errors keep their original content.
            bad_idx = np.nonzero(~ok)[0]
            flat[np.ix_(bad_idx, positions)] ^= magnitudes[bad_idx]
        n_corrected = np.where(ok, (magnitudes != 0).sum(axis=-1), 0)
        if armed:
            self._emit_decode(
                flat.shape[0], int(dirty.sum()), rho, rsnative.use_native(self),
                perf_counter() - t0,
            )
        # Declared erasures make every word "suspected" regardless of dirt.
        had = np.ones_like(dirty)
        return RSDecodeResult(
            flat.reshape(*batch_shape, self.n),
            ok.reshape(batch_shape),
            had.reshape(batch_shape),
            n_corrected.reshape(batch_shape),
        )

    def _emit_decode(self, words: int, dirty: int, rho: int, native: bool, dt: float) -> None:
        """``ecc.decode`` batch telemetry (gated on ``REPRO_OBS=ecc``)."""
        obs.REGISTRY.counter("ecc.decode_batches").inc()
        obs.REGISTRY.counter("ecc.dirty_words").inc(dirty)
        if dirty and dt > 0:
            obs.REGISTRY.gauge("ecc.dirty_words_per_sec").set(round(dirty / dt))
        obs.emit(
            "ecc.decode",
            words=words,
            dirty=dirty,
            dirty_frac=round(dirty / words, 4) if words else 0.0,
            rho=rho,
            native=bool(native),
            wall_s=round(dt, 6),
            code=f"rs{self.n}_{self.k}",
        )

    # -- scalar word decode (reference oracle) -----------------------------------

    def decode_reference(
        self,
        codewords: np.ndarray,
        erasures: "list[int] | np.ndarray | None" = None,
    ) -> RSDecodeResult:
        """Per-word scalar decode: the pre-batching loop, kept as the oracle.

        Identical contract to :meth:`decode`; every dirty word goes through
        :meth:`_decode_word` (Sugiyama + scalar Chien/Forney), with no solve
        caching and no native core.  ``tests/test_rs_batched.py`` holds
        :meth:`decode` bit-identical to this across error/erasure mixes, and
        the codec benchmark uses it as the seed-throughput baseline.
        """
        f = self.field
        cw = np.array(codewords, dtype=f.dtype, copy=True)
        batch_shape = cw.shape[:-1]
        flat = cw.reshape(-1, self.n)
        n_words = flat.shape[0]

        erasure_pos = (
            np.array(sorted(set(int(e) for e in erasures)), dtype=np.int64)
            if erasures is not None and len(erasures)
            else np.array([], dtype=np.int64)
        )
        if erasure_pos.size and (erasure_pos.min() < 0 or erasure_pos.max() >= self.n):
            raise ValueError("erasure position out of range")

        synd = self._syndromes_reference(flat)
        dirty = np.any(synd != 0, axis=-1)
        ok = np.ones(n_words, dtype=bool)
        n_corrected = np.zeros(n_words, dtype=np.int64)

        if erasure_pos.size > self.num_check:
            ok = ~dirty
        else:
            for w in np.nonzero(dirty)[0]:
                fixed, count = self._decode_word(flat[w], synd[w], erasure_pos)
                if fixed is None:
                    ok[w] = False
                else:
                    flat[w] = fixed
                    n_corrected[w] = count

        had = dirty | bool(erasure_pos.size)
        return RSDecodeResult(
            flat.reshape(*batch_shape, self.n),
            ok.reshape(batch_shape),
            had.reshape(batch_shape),
            n_corrected.reshape(batch_shape),
        )

    def _syndromes_reference(self, codewords: np.ndarray) -> np.ndarray:
        """Pure-NumPy syndromes, ignoring the native core (oracle path)."""
        f = self.field
        cw = np.asarray(codewords, dtype=np.int64)
        logs = f._log[cw]
        terms = f._exp[logs[..., :, None] + self._synd_log[None, :, :]]
        terms = np.where(cw[..., :, None] == 0, 0, terms)
        return np.bitwise_xor.reduce(terms, axis=-2).astype(f.dtype)

    def _decode_word(
        self, word: np.ndarray, synd: np.ndarray, erasure_pos: np.ndarray
    ) -> "tuple[np.ndarray | None, int]":
        """Errors-and-erasures decode of one word; returns (fixed, n_changed)."""
        f = self.field
        two_t = self.num_check
        rho = int(erasure_pos.size)

        # Erasure locator Gamma(x) = prod (1 + X_e x), X_e = alpha^{n-1-pos}.
        gamma = np.array([1], dtype=f.dtype)
        for pos in erasure_pos:
            x_e = f.alpha_pow(self.n - 1 - int(pos))
            gamma = f.poly_mul(gamma, np.array([1, x_e], dtype=f.dtype))

        # Modified syndrome Xi(x) = S(x) * Gamma(x) mod x^{2t}.
        s_poly = np.asarray(synd, dtype=f.dtype)
        xi = f.poly_mul(s_poly, gamma)[:two_t]

        # Sugiyama: extended Euclid on (x^{2t}, Xi) until deg r < (2t + rho)/2.
        r_prev = np.zeros(two_t + 1, dtype=f.dtype)
        r_prev[-1] = 1  # x^{2t}
        r_cur = _trim(xi)
        u_prev = np.array([0], dtype=f.dtype)
        u_cur = np.array([1], dtype=f.dtype)
        while 2 * _deg(r_cur) >= two_t + rho and np.any(r_cur != 0):
            q, rem = _poly_divmod(f, r_prev, r_cur)
            qu = f.poly_mul(q, u_cur)
            width = max(len(u_prev), len(qu))
            u_next = _trim(f.add(_pad_to(u_prev, width), _pad_to(qu, width)))
            r_prev, r_cur = r_cur, _trim(rem)
            u_prev, u_cur = u_cur, u_next

        lam = u_cur
        omega = r_cur
        if lam[0] == 0:
            return None, 0
        scale = f.inv(lam[0])
        lam = f.mul(lam, scale)
        omega = f.mul(omega, scale)

        psi = _trim(f.poly_mul(lam, gamma))  # combined error+erasure locator

        # Chien search: roots of Psi at alpha^{-p} identify positions p (as powers).
        n_roots_expected = _deg(psi)
        if n_roots_expected == 0:
            # Syndromes nonzero but locator trivial: only possible if all the
            # corruption is in the erased positions with zero magnitude - bail.
            return None, 0
        powers = np.arange(self.n)
        inv_x = f.alpha_pow(-(powers) % (f.order - 1))
        vals = f.poly_eval(psi, inv_x)
        root_powers = powers[vals == 0]
        if root_powers.size != n_roots_expected:
            return None, 0

        psi_deriv = f.poly_deriv(psi)
        fixed = word.copy()
        changed = 0
        for p in root_powers:
            x_inv = f.alpha_pow(-int(p) % (f.order - 1))
            num = f.poly_eval(omega, x_inv)
            den = f.poly_eval(psi_deriv, x_inv)
            if den == 0:
                return None, 0
            mag = f.div(num, den)
            pos = self.n - 1 - int(p)
            if pos < 0 or pos >= self.n:
                return None, 0
            if mag != 0:
                fixed[pos] = f.add(fixed[pos], mag)
                changed += 1

        if np.any(self._syndromes_reference(fixed[None, :])[0] != 0):
            return None, 0
        return fixed, changed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReedSolomon(n={self.n}, k={self.k}, GF(2^{self.field.m}))"


def _deg(p: np.ndarray) -> int:
    """Degree of a lowest-first coefficient array (deg(0) == -1... we use 0)."""
    nz = np.nonzero(p)[0]
    return int(nz[-1]) if nz.size else 0


def _trim(p: np.ndarray) -> np.ndarray:
    """Strip trailing zero coefficients, keeping at least one term."""
    nz = np.nonzero(p)[0]
    if not nz.size:
        return p[:1].copy()
    return p[: nz[-1] + 1].copy()


def _pad_to(p: np.ndarray, length: int) -> np.ndarray:
    if len(p) >= length:
        return p
    out = np.zeros(length, dtype=p.dtype)
    out[: len(p)] = p
    return out


def _poly_divmod(f: GF2m, a: np.ndarray, b: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """Polynomial division ``a = q*b + r`` over GF(2^m), lowest-first coeffs."""
    a = _trim(np.asarray(a, dtype=f.dtype)).copy()
    b = _trim(np.asarray(b, dtype=f.dtype))
    db = _deg(b)
    if np.all(b == 0):
        raise ZeroDivisionError("polynomial division by zero")
    da = _deg(a)
    if da < db:
        return np.zeros(1, dtype=f.dtype), a
    q = np.zeros(da - db + 1, dtype=f.dtype)
    inv_lead = f.inv(b[db])
    for d in range(da, db - 1, -1):
        if a[d]:
            coef = f.mul(a[d], inv_lead)
            q[d - db] = coef
            a[d - db : d + 1] = f.add(a[d - db : d + 1], f.mul(coef, b[: db + 1]))
    return q, a
