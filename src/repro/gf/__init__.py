"""Finite-field arithmetic and Reed-Solomon coding.

:class:`~repro.gf.field.GF2m` provides table-driven, vectorized GF(2^m)
arithmetic; :class:`~repro.gf.reed_solomon.ReedSolomon` builds systematic RS
codes with errors-and-erasures decoding on top of it.  These are the
primitives from which every ECC scheme in :mod:`repro.ecc` is constructed.
"""

from repro.gf.field import GF2m, GF16, GF256, GF65536
from repro.gf.reed_solomon import ReedSolomon, RSDecodeResult

__all__ = ["GF2m", "GF16", "GF256", "GF65536", "ReedSolomon", "RSDecodeResult"]
