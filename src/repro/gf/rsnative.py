"""Compiled GF/RS decode core (``REPRO_GF_NATIVE``).

The batched NumPy decoder in :mod:`repro.gf.reed_solomon` turned the
per-dirty-word scalar loop into an array program, but each lock-step
Berlekamp-Massey iteration still walks the whole batch through a handful
of NumPy kernels.  This module compiles the identical per-word algorithm
- modified-syndrome convolution, Berlekamp-Massey on the Forney-shifted
sequence, combined-locator convolution, Chien scan over all ``n``
positions, Forney magnitudes, and the final syndrome recheck - to machine
code with :mod:`cffi` (the toolchain ships in the base image; nothing is
downloaded) over pointer-shared NumPy buffers, plus a table-based batched
syndrome kernel.

Scope: any code whose field fits 16-bit symbols (``order <= 2^16``, i.e.
every field in :mod:`repro.gf.field`) with at most ``RS_MAXCHK`` check
symbols.  Everything else falls back to the NumPy batch path, which
handles every configuration.  Both paths are bit-identical to the scalar
Sugiyama oracle (``ReedSolomon.decode_reference``);
``tests/test_rs_batched.py`` pins all three against each other.

Build model mirrors :mod:`repro.cpu.epochnative`: the C source below is
compiled once per source hash into ``src/repro/gf/_native/`` (gitignored)
and memoized process-wide.  Compilation failures degrade silently to the
NumPy path - ``REPRO_GF_NATIVE=on`` turns that into a hard error,
``off`` disables the native path outright, and the default ``auto`` uses
it when available and eligible.

Identity-critical conventions shared with the NumPy batch kernel:

* the exponent table is doubled (length ``2*(order-1)`` + slack) so any
  two-log sum indexes it without a modulo, exactly like ``GF2m._exp``;
* magnitudes with value zero are neither applied nor counted, matching
  the scalar oracle's ``if mag != 0`` gate;
* a failed word is left byte-for-byte untouched (changes are reverted
  before returning) with ``ok=False`` and ``n_corrected=0``.
"""

from __future__ import annotations

import hashlib
import os

import numpy as np

#: Max check symbols (2t) the fixed-size per-word stack buffers support.
RS_MAXCHK = 64

_CDEF = """
typedef struct {
    int64_t n, two_t, rho, order, e_max;
    const int32_t *exp_t;    /* doubled: index up to 2*(order-1) */
    const int32_t *log_t;    /* order entries; log[0] unused */
    const int32_t *synd_log; /* n * two_t, values in [0, order-2] */
    const uint16_t *gamma;   /* rho + 1 coefficients, lowest first */
} rs_ctx;

void rs_syndromes(const rs_ctx *rs, const uint16_t *words, int64_t count,
                  uint16_t *out);
void rs_decode_batch(const rs_ctx *rs, uint16_t *words, const uint16_t *synd,
                     int64_t count, uint8_t *ok, int64_t *ncorr);
"""

_CSRC = """
#include <stdint.h>

typedef struct {
    int64_t n, two_t, rho, order, e_max;
    const int32_t *exp_t;
    const int32_t *log_t;
    const int32_t *synd_log;
    const uint16_t *gamma;
} rs_ctx;

#define RS_MAXCHK 64

static inline int32_t gmul(const rs_ctx *rs, int32_t a, int32_t b) {
    if (!a || !b) return 0;
    return rs->exp_t[rs->log_t[a] + rs->log_t[b]];
}

/* b must be nonzero at every call site. */
static inline int32_t gdiv(const rs_ctx *rs, int32_t a, int32_t b) {
    if (!a) return 0;
    return rs->exp_t[rs->log_t[a] - rs->log_t[b] + rs->order - 1];
}

static void word_syndromes(const rs_ctx *rs, const uint16_t *c, int32_t *s) {
    int64_t n = rs->n, tt = rs->two_t;
    for (int64_t j = 0; j < tt; j++) s[j] = 0;
    for (int64_t i = 0; i < n; i++) {
        int32_t ci = c[i];
        if (!ci) continue;
        int32_t lc = rs->log_t[ci];
        const int32_t *sl = rs->synd_log + i * tt;
        for (int64_t j = 0; j < tt; j++)
            s[j] ^= rs->exp_t[lc + sl[j]];
    }
}

void rs_syndromes(const rs_ctx *rs, const uint16_t *words, int64_t count,
                  uint16_t *out) {
    int32_t s[RS_MAXCHK];
    for (int64_t w = 0; w < count; w++) {
        word_syndromes(rs, words + w * rs->n, s);
        uint16_t *o = out + w * rs->two_t;
        for (int64_t j = 0; j < rs->two_t; j++) o[j] = (uint16_t)s[j];
    }
}

void rs_decode_batch(const rs_ctx *rs, uint16_t *words, const uint16_t *synd,
                     int64_t count, uint8_t *ok, int64_t *ncorr) {
    int64_t n = rs->n, tt = rs->two_t, rho = rs->rho;
    int32_t q1 = (int32_t)(rs->order - 1);
    int64_t n_iter = tt - rho;      /* Forney-shifted BM iterations */
    int64_t W = n_iter + 1;         /* lambda storage width */
    int64_t P = W + rho;            /* psi width (== tt + 1) */

    int32_t xi[RS_MAXCHK];
    int32_t lam[RS_MAXCHK + 1], bpoly[RS_MAXCHK + 1], tmp[RS_MAXCHK + 1];
    int32_t psi[RS_MAXCHK + 1], omega[RS_MAXCHK], deriv[RS_MAXCHK];
    int32_t chg_pos[RS_MAXCHK + 1], chg_val[RS_MAXCHK + 1];
    int32_t scheck[RS_MAXCHK];

    for (int64_t w = 0; w < count; w++) {
        uint16_t *cw = words + w * n;
        const uint16_t *s = synd + w * tt;
        ok[w] = 0;
        ncorr[w] = 0;

        /* Xi = S * Gamma mod x^{2t}; Y = Xi shifted by rho. */
        for (int64_t j = 0; j < tt; j++) {
            int32_t acc = 0;
            int64_t lmax = rho < j ? rho : j;
            for (int64_t l = 0; l <= lmax; l++)
                acc ^= gmul(rs, rs->gamma[l], s[j - l]);
            xi[j] = acc;
        }
        const int32_t *y = xi + rho;

        /* Berlekamp-Massey on the shifted sequence. */
        for (int64_t j = 0; j < W; j++) { lam[j] = 0; bpoly[j] = 0; }
        lam[0] = 1; bpoly[0] = 1;
        int64_t L = 0, m = 1;
        int32_t bb = 1;
        for (int64_t r = 0; r < n_iter; r++) {
            int32_t delta = 0;
            int64_t jmax = r < W - 1 ? r : W - 1;
            for (int64_t j = 0; j <= jmax; j++)
                delta ^= gmul(rs, lam[j], y[r - j]);
            if (!delta) { m++; continue; }
            int32_t coef = gdiv(rs, delta, bb);
            if (2 * L <= r) {
                for (int64_t j = 0; j < W; j++) tmp[j] = lam[j];
                for (int64_t j = W - 1; j >= m; j--)
                    lam[j] ^= gmul(rs, coef, bpoly[j - m]);
                for (int64_t j = 0; j < W; j++) bpoly[j] = tmp[j];
                bb = delta; L = r + 1 - L; m = 1;
            } else {
                for (int64_t j = W - 1; j >= m; j--)
                    lam[j] ^= gmul(rs, coef, bpoly[j - m]);
                m++;
            }
        }
        if (L > rs->e_max) continue;  /* beyond the error budget */

        /* Combined locator psi = lambda * gamma. */
        for (int64_t j = 0; j < P; j++) psi[j] = 0;
        for (int64_t i = 0; i < W; i++) {
            if (!lam[i]) continue;
            for (int64_t l = 0; l <= rho; l++)
                psi[i + l] ^= gmul(rs, lam[i], rs->gamma[l]);
        }
        int64_t deg_psi = 0;
        for (int64_t j = P - 1; j >= 1; j--)
            if (psi[j]) { deg_psi = j; break; }
        if (deg_psi == 0) continue;

        /* omega = S * psi mod x^{2t}; deriv = formal derivative of psi. */
        for (int64_t j = 0; j < tt; j++) {
            int32_t acc = 0;
            int64_t lmax = (P - 1) < j ? (P - 1) : j;
            for (int64_t l = 0; l <= lmax; l++)
                acc ^= gmul(rs, psi[l], s[j - l]);
            omega[j] = acc;
        }
        for (int64_t j = 0; j < tt; j++)
            deriv[j] = (j % 2 == 0) ? psi[j + 1] : 0;

        /* Chien scan over all n inverse positions + inline Forney. */
        int64_t nroots = 0, nchg = 0;
        int fail = 0;
        for (int64_t p = 0; p < n; p++) {
            int32_t lp = (int32_t)((q1 - (p % q1)) % q1);
            int32_t xinv = rs->exp_t[lp];
            int32_t v = 0;
            for (int64_t j = P - 1; j >= 0; j--)
                v = gmul(rs, v, xinv) ^ psi[j];
            if (v) continue;
            nroots++;
            if (nroots > deg_psi) { fail = 1; break; }
            int32_t num = 0, den = 0;
            for (int64_t j = tt - 1; j >= 0; j--)
                num = gmul(rs, num, xinv) ^ omega[j];
            for (int64_t j = tt - 1; j >= 0; j--)
                den = gmul(rs, den, xinv) ^ deriv[j];
            if (!den) { fail = 1; break; }
            int32_t mag = gdiv(rs, num, den);
            if (mag) {
                chg_pos[nchg] = (int32_t)(n - 1 - p);
                chg_val[nchg] = mag;
                nchg++;
            }
        }
        if (fail || nroots != deg_psi) continue;

        /* Apply, recheck, revert on residual syndromes. */
        for (int64_t i = 0; i < nchg; i++)
            cw[chg_pos[i]] ^= (uint16_t)chg_val[i];
        word_syndromes(rs, cw, scheck);
        int resid = 0;
        for (int64_t j = 0; j < tt; j++) resid |= scheck[j];
        if (resid) {
            for (int64_t i = 0; i < nchg; i++)
                cw[chg_pos[i]] ^= (uint16_t)chg_val[i];
            continue;
        }
        ok[w] = 1;
        ncorr[w] = nchg;
    }
}
"""

_BUILD_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_native")

_lib = None
_ffi = None
_load_attempted = False


def _source_tag() -> str:
    return hashlib.sha1((_CDEF + _CSRC).encode()).hexdigest()[:12]


def _load():
    """Compile (once) and import the native core; None when unavailable."""
    global _lib, _ffi, _load_attempted
    if _load_attempted:
        return _lib
    _load_attempted = True
    try:
        import importlib.util

        from cffi import FFI

        modname = f"_rscore_{_source_tag()}"
        sofile = None
        if os.path.isdir(_BUILD_DIR):
            for fn in os.listdir(_BUILD_DIR):
                if fn.startswith(modname) and fn.endswith(".so"):
                    sofile = os.path.join(_BUILD_DIR, fn)
                    break
        ffi = FFI()
        ffi.cdef(_CDEF)
        if sofile is None:
            # Build in a per-process scratch dir, then publish atomically so
            # concurrent workers never import a half-written extension.
            tmpdir = os.path.join(_BUILD_DIR, f"build-{os.getpid()}")
            os.makedirs(tmpdir, exist_ok=True)
            ffi.set_source(modname, _CSRC, extra_compile_args=["-O2"])
            built = ffi.compile(tmpdir=tmpdir)
            final = os.path.join(_BUILD_DIR, os.path.basename(built))
            os.replace(built, final)
            sofile = final
        spec = importlib.util.spec_from_file_location(modname, sofile)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        _ffi = mod.ffi
        _lib = mod.lib
    except Exception:  # no compiler / sandboxed build dir / import failure
        _lib = None
    return _lib


def available() -> bool:
    """True when the compiled core is importable (builds on first call)."""
    return _load() is not None


def native_mode() -> str:
    from repro.util.envcfg import gf_native

    return gf_native()


def eligible(rs) -> bool:
    """True when *rs*'s code fits the native core's fixed-width buffers."""
    return rs.field.order <= (1 << 16) and rs.num_check <= RS_MAXCHK


def use_native(rs) -> bool:
    """Policy gate for :meth:`ReedSolomon.syndromes` / :meth:`decode`."""
    mode = native_mode()
    if mode == "off":
        return False
    if not eligible(rs):
        if mode == "on":
            raise RuntimeError(
                "REPRO_GF_NATIVE=on but this code exceeds the native core's "
                f"scope (order <= 2^16, num_check <= {RS_MAXCHK})"
            )
        return False
    if not available():
        if mode == "on":
            raise RuntimeError(
                "REPRO_GF_NATIVE=on but the native core failed to build "
                "(compiler or cffi unavailable)"
            )
        return False
    return True


def _tables(rs) -> dict:
    """Per-codec int32 table block, built once and cached on the instance."""
    tabs = rs._native_tables
    if tabs is None:
        f = rs.field
        tabs = {
            "exp": np.ascontiguousarray(f._exp, dtype=np.int32),
            "log": np.ascontiguousarray(f._log, dtype=np.int32),
            "synd_log": np.ascontiguousarray(rs._synd_log, dtype=np.int32),
        }
        rs._native_tables = tabs
    return tabs


def _ctx(ffi, rs, setup: "dict | None") -> "tuple[object, list]":
    """Fill an ``rs_ctx`` struct; *hold* keeps owning arrays alive."""
    tabs = _tables(rs)
    if setup is not None:
        rho = setup["rho"]
        gamma = np.ascontiguousarray(setup["gamma"], dtype=np.uint16)
        e_max = setup["e_max"]
    else:
        rho, gamma, e_max = 0, np.ones(1, dtype=np.uint16), rs.num_check // 2
    ctx = ffi.new("rs_ctx *")
    ctx.n = rs.n
    ctx.two_t = rs.num_check
    ctx.rho = rho
    ctx.order = rs.field.order
    ctx.e_max = e_max
    ctx.exp_t = ffi.cast("const int32_t *", tabs["exp"].ctypes.data)
    ctx.log_t = ffi.cast("const int32_t *", tabs["log"].ctypes.data)
    ctx.synd_log = ffi.cast("const int32_t *", tabs["synd_log"].ctypes.data)
    ctx.gamma = ffi.cast("const uint16_t *", gamma.ctypes.data)
    hold = [tabs, gamma]
    return ctx, hold


def syndromes(rs, flat: np.ndarray) -> np.ndarray:
    """Batched syndromes over the compiled core: ``(W, n) -> (W, 2t)``."""
    lib = _load()
    buf = np.ascontiguousarray(flat, dtype=np.uint16)
    out = np.empty((buf.shape[0], rs.num_check), dtype=np.uint16)
    ctx, hold = _ctx(_ffi, rs, None)
    lib.rs_syndromes(
        ctx,
        _ffi.cast("const uint16_t *", buf.ctypes.data),
        buf.shape[0],
        _ffi.cast("uint16_t *", out.ctypes.data),
    )
    del hold
    return out.astype(rs.field.dtype)


def decode_batch(
    rs, flat: np.ndarray, synd: np.ndarray, didx: np.ndarray, setup: dict
) -> "tuple[np.ndarray, np.ndarray]":
    """Decode the dirty rows ``flat[didx]`` in the compiled core.

    Same contract as ``ReedSolomon._decode_batch``: corrects ``flat`` rows
    in place for words that pass, returns per-dirty-word ``(ok, n_corrected)``.
    """
    lib = _load()
    buf = np.ascontiguousarray(flat[didx], dtype=np.uint16)
    sd = np.ascontiguousarray(synd[didx], dtype=np.uint16)
    ok = np.zeros(didx.size, dtype=np.uint8)
    ncorr = np.zeros(didx.size, dtype=np.int64)
    ctx, hold = _ctx(_ffi, rs, setup)
    lib.rs_decode_batch(
        ctx,
        _ffi.cast("uint16_t *", buf.ctypes.data),
        _ffi.cast("const uint16_t *", sd.ctypes.data),
        didx.size,
        _ffi.cast("uint8_t *", ok.ctypes.data),
        _ffi.cast("int64_t *", ncorr.ctypes.data),
    )
    del hold
    flat[didx] = buf.astype(rs.field.dtype)
    return ok.astype(bool), ncorr
