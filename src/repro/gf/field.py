"""Table-driven GF(2^m) arithmetic, vectorized over NumPy arrays.

A field instance precomputes exponential/logarithm tables once; all
arithmetic then reduces to integer adds and table lookups, which NumPy
vectorizes across entire codeword batches (per the HPC guide: no per-symbol
Python loops on hot paths).
"""

from __future__ import annotations

import numpy as np

#: Default primitive polynomials (with the x^m term) per field degree.
_PRIMITIVE_POLYS = {
    2: 0b111,
    3: 0b1011,
    4: 0b10011,
    8: 0b100011101,  # x^8 + x^4 + x^3 + x^2 + 1 (0x11D)
    16: 0b10001000000001011,  # x^16 + x^12 + x^3 + x + 1 (0x1100B)
}


class GF2m:
    """The finite field GF(2^m) with table-driven arithmetic.

    Parameters
    ----------
    m:
        Field degree; field has ``2**m`` elements.
    primitive_poly:
        Binary representation of the primitive polynomial including the
        ``x^m`` term.  Defaults to a standard choice for common degrees.
    """

    def __init__(self, m: int, primitive_poly: int | None = None):
        if primitive_poly is None:
            try:
                primitive_poly = _PRIMITIVE_POLYS[m]
            except KeyError:
                raise ValueError(f"no default primitive polynomial for m={m}") from None
        self.m = m
        self.order = 1 << m
        self.primitive_poly = primitive_poly
        self.dtype = np.uint8 if m <= 8 else (np.uint16 if m <= 16 else np.uint32)

        # exp table doubled in length so mul can skip the mod (2^m - 1) step
        # for the common two-operand case.
        exp = np.zeros(2 * self.order, dtype=np.int64)
        log = np.zeros(self.order, dtype=np.int64)
        x = 1
        for i in range(self.order - 1):
            exp[i] = x
            log[x] = i
            x <<= 1
            if x & self.order:
                x ^= primitive_poly
        if x != 1:
            raise ValueError(f"polynomial {primitive_poly:#x} is not primitive for m={m}")
        exp[self.order - 1 : 2 * (self.order - 1)] = exp[: self.order - 1]
        self._exp = exp
        self._log = log

    # -- scalar/array arithmetic ------------------------------------------------

    def add(self, a, b):
        """Field addition (bitwise XOR)."""
        return np.bitwise_xor(np.asarray(a, dtype=self.dtype), np.asarray(b, dtype=self.dtype))

    sub = add  # characteristic 2: subtraction is addition

    def mul(self, a, b):
        """Elementwise field multiplication."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        out = self._exp[self._log[a] + self._log[b]]
        out = np.where((a == 0) | (b == 0), 0, out)
        return out.astype(self.dtype)

    def div(self, a, b):
        """Elementwise field division; raises on division by zero."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if np.any(b == 0):
            raise ZeroDivisionError("division by zero in GF(2^m)")
        q = self._exp[self._log[a] - self._log[b] + (self.order - 1)]
        return np.where(a == 0, 0, q).astype(self.dtype)

    def inv(self, a):
        """Elementwise multiplicative inverse; raises on zero."""
        a = np.asarray(a, dtype=np.int64)
        if np.any(a == 0):
            raise ZeroDivisionError("inverse of zero in GF(2^m)")
        return self._exp[(self.order - 1) - self._log[a]].astype(self.dtype)

    def pow(self, a, e):
        """Elementwise ``a ** e`` with integer (possibly negative) exponent *e*."""
        a = np.asarray(a, dtype=np.int64)
        e = np.asarray(e, dtype=np.int64)
        n = self.order - 1
        exp_idx = (self._log[a] * e) % n
        out = self._exp[exp_idx]
        # 0^0 == 1 by convention; 0^e == 0 for e > 0; 0^-e is an error we map to 0.
        out = np.where(a == 0, np.where(e == 0, 1, 0), out)
        return out.astype(self.dtype)

    def alpha_pow(self, e):
        """Return alpha**e for the primitive element alpha (vectorized in *e*)."""
        e = np.asarray(e, dtype=np.int64) % (self.order - 1)
        return self._exp[e].astype(self.dtype)

    def log_alpha(self, a):
        """Discrete log base alpha; *a* must be nonzero."""
        a = np.asarray(a, dtype=np.int64)
        if np.any(a == 0):
            raise ZeroDivisionError("log of zero in GF(2^m)")
        return self._log[a]

    # -- polynomial helpers (coefficient arrays, lowest degree first) -----------

    def poly_eval(self, coeffs: np.ndarray, x):
        """Evaluate polynomial with coefficient array *coeffs* (c0 + c1 x + ...) at *x*.

        *x* may be an array; evaluation is Horner's rule vectorized over *x*.
        """
        coeffs = np.asarray(coeffs, dtype=self.dtype)
        x = np.asarray(x, dtype=self.dtype)
        result = np.zeros_like(x)
        for c in coeffs[::-1]:
            result = self.add(self.mul(result, x), c)
        return result

    def poly_mul(self, p: np.ndarray, q: np.ndarray) -> np.ndarray:
        """Product of two polynomials (coefficient arrays, lowest degree first)."""
        p = np.asarray(p, dtype=self.dtype)
        q = np.asarray(q, dtype=self.dtype)
        out = np.zeros(len(p) + len(q) - 1, dtype=self.dtype)
        for i, c in enumerate(p):
            if c:
                out[i : i + len(q)] = self.add(out[i : i + len(q)], self.mul(c, q))
        return out

    def poly_deriv(self, p: np.ndarray) -> np.ndarray:
        """Formal derivative over GF(2^m): odd-degree terms survive."""
        p = np.asarray(p, dtype=self.dtype)
        if len(p) <= 1:
            return np.zeros(1, dtype=self.dtype)
        d = p[1:].copy()
        d[1::2] = 0  # coefficient i of derivative = (i+1)*p[i+1]; even i+1 -> 0 in char 2
        return d

    # -- small-matrix linear algebra (erasure solvers) ---------------------------

    def mat_inv(self, a: np.ndarray) -> np.ndarray:
        """Invert a small square matrix over GF(2^m) by Gauss-Jordan.

        Raises ``np.linalg.LinAlgError`` when singular.  Intended for the
        f x f erasure-locator systems (f <= n-k, i.e. tiny).
        """
        a = np.asarray(a, dtype=self.dtype)
        n = a.shape[0]
        if a.shape != (n, n):
            raise ValueError("mat_inv needs a square matrix")
        aug = np.concatenate([a.copy(), np.eye(n, dtype=self.dtype)], axis=1)
        for col in range(n):
            pivot = None
            for row in range(col, n):
                if aug[row, col]:
                    pivot = row
                    break
            if pivot is None:
                raise np.linalg.LinAlgError("singular matrix over GF(2^m)")
            if pivot != col:
                aug[[col, pivot]] = aug[[pivot, col]]
            aug[col] = self.mul(aug[col], self.inv(aug[col, col]))
            for row in range(n):
                if row != col and aug[row, col]:
                    aug[row] = self.add(aug[row], self.mul(aug[row, col], aug[col]))
        return aug[:, n:].copy()

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix product over GF(2^m): ``(..., k) @ (k, m) -> (..., m)``.

        Vectorized over the leading batch dimensions of *a*; *b* is small.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        k, m = b.shape
        loga = self._log[a]  # (..., k)
        logb = self._log[b]  # (k, m)
        terms = self._exp[loga[..., :, None] + logb[None, ...]]  # broadcast (..., k, m)
        terms = np.where((a[..., :, None] == 0) | (b[None, ...] == 0), 0, terms)
        return np.bitwise_xor.reduce(terms, axis=-2).astype(self.dtype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GF2m(m={self.m}, poly={self.primitive_poly:#x})"


#: Shared field instances (table construction is not free; reuse these).
GF16 = GF2m(4)
GF256 = GF2m(8)
GF65536 = GF2m(16)
