"""Zero-dependency telemetry plane: structured events, metrics, manifests.

The reproduction's campaign stack (resilient engine, Monte Carlo plane,
timing simulator) runs production-scale workloads but was previously
blind: retries, pool rebuilds, degradation to serial, and MC convergence
were invisible except through final results.  This package makes them
observable without perturbing them:

* **Event bus** - :func:`emit` appends one JSON object per line to
  ``<run-dir>/events.jsonl``.  Every record carries a monotonic timestamp
  (``CLOCK_MONOTONIC`` is system-wide on Linux, so worker and parent
  events sort on one axis) and the emitting ``pid``.  Each line is written
  with a single ``os.write`` on an ``O_APPEND`` descriptor, so concurrent
  pool workers appending to the same file never interleave lines.  The
  default sink is ``None`` and :func:`emit` returns after **one global
  load and one identity check** - the disabled path adds no measurable
  cost to any hot loop (``benchmarks/bench_obs_overhead.py`` proves it).
* **Metrics registry** - :data:`REGISTRY` (see :mod:`repro.obs.metrics`):
  counters, gauges, timers with ``snapshot()``/``reset()``.
* **Run manifest** - :func:`ensure_manifest` captures the reproducibility
  envelope (every registered ``REPRO_*`` knob via
  :mod:`repro.util.envcfg`, package version, hostname, interpreter,
  argv) into ``<run-dir>/manifest.json``.
* **Summaries** - ``python -m repro.obs.summarize <run-dir>`` renders a
  human-readable campaign report from the JSONL + manifest alone.

Arming
------
``REPRO_OBS`` selects instrumented layers as a comma-separated mode list
(``engine``, ``mc``, ``sim``, ``chaos``, ``supervisor``, ``ecc``;
``all``/``1`` enables every mode); unset keeps telemetry off.  ``REPRO_OBS_DIR`` picks the run
directory (default ``./.repro_obs``).  Both are read at import time, so
spawn-started worker processes arm themselves; fork-started workers
inherit the parent's armed sink (O_APPEND keeps their writes atomic).
Tests and benchmarks arm programmatically via :func:`configure` and
restore the environment-driven state with :func:`init_from_env`.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.obs.metrics import REGISTRY, MetricsRegistry  # noqa: F401 (re-export)

#: Environment knobs (registered with repro.util.envcfg).
ENV_MODES = "REPRO_OBS"
ENV_DIR = "REPRO_OBS_DIR"

DEFAULT_DIR = ".repro_obs"
EVENTS_FILE = "events.jsonl"
MANIFEST_FILE = "manifest.json"

#: Instrumented layers selectable in REPRO_OBS.
MODES = ("engine", "mc", "sim", "chaos", "supervisor", "ecc")

_ALL_TOKENS = frozenset({"1", "true", "on", "all"})


class _JsonlSink:
    """Append-only JSONL writer; one atomic ``os.write`` per record.

    With ``REPRO_OBS_MAX_BYTES`` set, a write that would push the stream
    past the cap first rotates ``events.jsonl`` to ``events.jsonl.1``
    (replacing any previous rotation).  Every append is one whole-line
    write, so the rename always lands on a line boundary; concurrent
    writers holding the old descriptor keep appending to the rotated
    file — never torn, only filed under the previous generation.
    """

    __slots__ = ("run_dir", "path", "_fd", "max_bytes")

    def __init__(self, run_dir: "Path | str", max_bytes: "int | None" = None):
        self.run_dir = Path(run_dir)
        self.path = self.run_dir / EVENTS_FILE
        self._fd = None
        self.max_bytes = max_bytes

    def _open(self) -> int:
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self._fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        return self._fd

    def write_line(self, text: str) -> None:
        fd = self._fd
        if fd is None:
            fd = self._open()
        data = text.encode("utf-8")
        if self.max_bytes:
            fd = self._maybe_rotate(fd, len(data))
        os.write(fd, data)

    def _maybe_rotate(self, fd: int, incoming: int) -> int:
        """Rotate when the stream would exceed the cap; returns a live fd.

        Another process may have rotated already (the descriptor no longer
        names ``events.jsonl``): then this writer just reopens the fresh
        stream instead of rotating the new generation straight out again.
        """
        try:
            size = os.fstat(fd).st_size
        except OSError:
            return fd
        if size == 0 or size + incoming <= self.max_bytes:
            return fd
        rotated = size
        try:
            current = os.stat(self.path)
            stale = current.st_ino != os.fstat(fd).st_ino
        except OSError:
            stale = False
        if not stale:
            try:
                os.replace(self.path, self.path.with_name(EVENTS_FILE + ".1"))
            except OSError:
                return fd
        self.close()
        fd = self._open()
        rec = {
            "kind": "obs.rotate",
            "ts": round(time.monotonic(), 6),
            "pid": os.getpid(),
            "rotated_bytes": rotated,
            "max_bytes": self.max_bytes,
        }
        os.write(fd, (json.dumps(rec, separators=(",", ":"), sort_keys=True) + "\n").encode())
        return fd

    def close(self) -> None:
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:
                pass
            self._fd = None


#: The active sink; ``None`` is the no-op default (the whole off path).
_sink: "_JsonlSink | None" = None
_modes: frozenset = frozenset()

#: Ambient-span provider installed by :mod:`repro.obs.trace` while the
#: span plane is armed; ``None`` (the default) keeps :func:`emit` free of
#: any trace cost.  When set, it returns the current ``(trace_id,
#: span_id)`` pair (or ``None`` outside any span) and every emitted event
#: is stamped with it, so flat events resolve into the span forest.
_span_provider = None


def parse_modes(raw: "str | None") -> frozenset:
    """Parse a REPRO_OBS value into a mode set; malformed raises eagerly."""
    raw = (raw or "").strip()
    if not raw:
        return frozenset()
    out = set()
    for tok in raw.split(","):
        tok = tok.strip().lower()
        if not tok:
            continue
        if tok in _ALL_TOKENS:
            out.update(MODES)
        elif tok in MODES:
            out.add(tok)
        else:
            raise ValueError(
                f"{ENV_MODES} mode must be one of {MODES} or 'all', got {tok!r}"
            )
    return frozenset(out)


def configure(run_dir: "Path | str | None" = None, modes: "str | object" = "all") -> "Path | None":
    """Arm the bus programmatically; returns the run directory (or None).

    *modes* is a REPRO_OBS-style string or an iterable of mode names; an
    empty set disarms.  The events file is opened lazily on first emit, so
    arming never touches the filesystem by itself.
    """
    from repro.util import envcfg  # deferred: envcfg is import-light but cyclic

    global _sink, _modes
    parsed = parse_modes(modes) if isinstance(modes, str) else frozenset(modes)
    if _sink is not None:
        _sink.close()
    if not parsed:
        _sink = None
        _modes = frozenset()
        return None
    _sink = _JsonlSink(
        run_dir or os.environ.get(ENV_DIR) or DEFAULT_DIR,
        max_bytes=envcfg.obs_max_bytes(),
    )
    _modes = parsed
    return _sink.run_dir


def disarm() -> None:
    """Return to the no-op default sink."""
    configure(modes=frozenset())


def init_from_env() -> "Path | None":
    """(Re)apply ``REPRO_OBS`` / ``REPRO_OBS_DIR``; unset disarms."""
    modes = parse_modes(os.environ.get(ENV_MODES))
    if not modes:
        disarm()
        return None
    return configure(os.environ.get(ENV_DIR) or DEFAULT_DIR, modes)


def enabled(mode: "str | None" = None) -> bool:
    """Is the bus armed (and, if given, is *mode*'s layer instrumented)?"""
    if _sink is None:
        return False
    return mode is None or mode in _modes


def run_dir() -> "Path | None":
    """Run directory of the armed sink, or None when disarmed."""
    return _sink.run_dir if _sink is not None else None


def emit(kind: str, **fields) -> None:
    """Append one structured event; a no-op while the bus is disarmed.

    Reserved fields ``kind``, ``ts`` (monotonic seconds), and ``pid`` are
    stamped by the bus and win over caller fields of the same name.
    """
    sink = _sink
    if sink is None:
        return
    rec = dict(fields)
    provider = _span_provider
    if provider is not None and "span" not in rec:
        ctx = provider()
        if ctx is not None:
            rec["trace"], rec["span"] = ctx
    rec["kind"] = kind
    rec["ts"] = round(time.monotonic(), 6)
    rec["pid"] = os.getpid()
    sink.write_line(json.dumps(rec, separators=(",", ":"), sort_keys=True, default=repr) + "\n")


def worker_config() -> "tuple[str, str, tuple | None] | None":
    """Picklable arming state to ship to pool workers (None when off).

    Third element: the parent's span-plane state — ``None`` when tracing
    is off, else the ambient ``(trace_id, span_id)`` pair (itself possibly
    ``None``) that worker-side spans should parent to.
    """
    if _sink is None:
        return None
    from repro.obs import trace

    tctx = (trace.ctx(),) if trace.armed() else None
    return str(_sink.run_dir), ",".join(sorted(_modes)), tctx


def ensure_worker(cfg: "tuple | None") -> None:
    """Arm a worker process to the parent's config (idempotent).

    Fork-started workers inherit the parent's sink and return immediately;
    spawn-started workers (or workers of a parent armed programmatically
    after import) configure themselves here.  The span plane is (dis)armed
    to match the parent either way.
    """
    if cfg is None:
        return
    run_dir_s, modes_s, tctx = cfg
    from repro.obs import trace

    trace.arm(tctx is not None)
    if tctx is not None:
        trace.adopt(tctx[0])
    if _sink is not None and str(_sink.run_dir) == run_dir_s and _modes == parse_modes(modes_s):
        return
    configure(run_dir_s, modes_s)


def ensure_manifest(**extra) -> "Path | None":
    """Write/refresh ``manifest.json`` in the run dir; no-op when disarmed.

    Top-level *extra* keys merge into the existing manifest (atomic
    merge-on-write via :mod:`repro.util.cachefile`), so concurrent
    campaigns sharing a run dir keep each other's additions.  Without
    *extra*, an existing manifest is left untouched.
    """
    if _sink is None:
        return None
    from repro.obs.manifest import write_manifest

    path = _sink.run_dir / MANIFEST_FILE
    if not extra and path.exists():
        return path
    return write_manifest(_sink.run_dir, **extra)


init_from_env()

# Imported for its import-time REPRO_TRACE arming (installs _span_provider);
# must come after init_from_env so the sink state it checks is settled.
from repro.obs import trace as _trace  # noqa: E402,F401
