"""Run manifests: the reproducibility envelope of a campaign.

A manifest answers "what exactly produced this run directory?" without
consulting the shell history: every registered ``REPRO_*`` knob (with its
source - environment or default), the package version, host, interpreter,
and invocation.  Campaign drivers add campaign-level facts (seeds, the
config matrix) as extra top-level keys; benchmarks embed
:func:`manifest_dict` directly into their ``results/BENCH_*.json``.

Writes go through the shared atomic merge-on-write cache helper, so a
manifest refreshed by two concurrent campaigns keeps both campaigns'
extra keys and a crash never leaves a torn file.
"""

from __future__ import annotations

import os
import sys
from datetime import datetime, timezone
from pathlib import Path

from repro.obs import MANIFEST_FILE


def manifest_dict(**extra) -> dict:
    """The manifest as a JSON-ready dict (plus caller *extra* keys)."""
    import platform
    import socket
    import time

    import numpy

    import repro
    from repro.util import envcfg

    knobs = {
        k["name"]: {
            "current": k["current"],
            "source": k["source"],
            "default": k["default"],
        }
        for k in envcfg.describe()
    }
    base = {
        "captured_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "monotonic_anchor": round(time.monotonic(), 6),
        "hostname": socket.gethostname(),
        "pid": os.getpid(),
        "argv": list(sys.argv),
        "cwd": os.getcwd(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "package": {"name": "repro", "version": repro.__version__},
        "numpy": numpy.__version__,
        "knobs": knobs,
    }
    base.update(extra)
    return base


def write_manifest(run_dir: "Path | str", **extra) -> Path:
    """Write/merge the manifest into *run_dir* atomically; returns its path."""
    from repro.util.cachefile import write_json_cache_atomic

    path = Path(run_dir) / MANIFEST_FILE
    write_json_cache_atomic(path, manifest_dict(**extra))
    return path


def load_manifest(run_dir: "Path | str") -> dict:
    """Read a run dir's manifest ({} when missing or unreadable).

    A reader, not a writer: manifests from older layouts are returned
    as-is rather than schema-checked, and nothing is ever quarantined out
    of someone else's run directory.
    """
    from repro.util.cachefile import load_json_cache

    return load_json_cache(
        Path(run_dir) / MANIFEST_FILE, schema=False, quarantine=False
    )
