"""Span-forest reconstruction, critical path, and wall-time attribution.

Consumes the flat ``trace.span`` records the span plane
(:mod:`repro.obs.trace`) appends to ``events.jsonl`` and rebuilds the
causal structure of a campaign:

* :func:`build_forest` — parent-link the spans of each trace into trees.
  A span whose parent never closed (a chaos ``crash`` kills the worker
  between a child's emit and the parent's) gets a **synthetic** parent
  node spanning its children, attached to the trace's root, so the
  forest stays complete through crashes.
* :func:`critical_path` — the chain of latest-finishing descendants from
  a root: the spans that determined the campaign's wall-clock time.
* :func:`attribute` — sweep the root's wall-clock window and charge every
  instant to exactly one bucket (buckets sum to the root's wall by
  construction):

  ========  ==========================================================
  bucket    instants where the highest-precedence active descendant is
  ========  ==========================================================
  codec     a ``codec`` span (result encode/decode, spool salvage)
  journal   a ``journal`` span (write-ahead journal appends)
  compute   a ``compute``/``mc``/``sim`` span (worker task bodies,
            MC chunk loops, simulator kernels)
  retry     a ``retry`` span (backoff sleeps, pool rebuilds)
  dispatch  any other span (queueing, submission, envelope overhead)
  idle      no descendant span at all is active
  ========  ==========================================================

  Precedence (codec > journal > compute > retry > dispatch) charges an
  instant to the most specific work happening anywhere in the campaign:
  a journal append racing a worker's compute charges to journal only
  for the microseconds it actually takes.

:func:`trace_summary` packages forest + critical path + buckets as the
``trace`` section of :func:`repro.obs.summarize.summarize`.
"""

from __future__ import annotations

from pathlib import Path

#: Category → attribution bucket (anything else falls into ``dispatch``).
BUCKET_BY_CAT = {
    "codec": "codec",
    "journal": "journal",
    "compute": "compute",
    "mc": "compute",
    "sim": "compute",
    "retry": "retry",
}

#: Sweep precedence, most specific first; ``idle`` is the absence of all.
BUCKET_PRECEDENCE = ("codec", "journal", "compute", "retry", "dispatch")

BUCKETS = BUCKET_PRECEDENCE + ("idle",)


class SpanNode:
    """One reconstructed span; ``synthetic`` marks a never-closed parent."""

    __slots__ = (
        "span_id",
        "trace_id",
        "parent_id",
        "name",
        "cat",
        "t0",
        "t1",
        "fields",
        "children",
        "synthetic",
    )

    def __init__(self, span_id, trace_id, parent_id, name, cat, t0, t1, fields, synthetic=False):
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.name = name
        self.cat = cat
        self.t0 = t0
        self.t1 = t1
        self.fields = fields
        self.children: "list[SpanNode]" = []
        self.synthetic = synthetic

    @property
    def wall_s(self) -> float:
        return max(0.0, self.t1 - self.t0)

    def walk(self):
        """Yield this node and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        return {
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "cat": self.cat,
            "t0": self.t0,
            "t1": self.t1,
            "wall_s": round(self.wall_s, 6),
            "synthetic": self.synthetic,
            "children": len(self.children),
        }


_RESERVED = frozenset({"kind", "ts", "pid", "trace", "span", "parent", "name", "cat", "t0", "t1"})


def build_forest(events: "list[dict]") -> "dict[str, list[SpanNode]]":
    """Rebuild ``{trace_id: [roots]}`` from a run's event stream.

    Dangling parent references (the parent crashed before closing) become
    synthetic nodes whose window covers their children; a synthetic node
    is attached under the trace's real root when one exists, so every
    span still resolves to it.
    """
    nodes: "dict[str, SpanNode]" = {}
    for e in events:
        if e.get("kind") != "trace.span" or "span" not in e or "trace" not in e:
            continue
        fields = {k: v for k, v in e.items() if k not in _RESERVED}
        nodes[e["span"]] = SpanNode(
            e["span"],
            e["trace"],
            e.get("parent"),
            e.get("name", "?"),
            e.get("cat", ""),
            float(e.get("t0", 0.0)),
            float(e.get("t1", 0.0)),
            fields,
        )

    # Synthesize never-closed parents (windows grown below from children).
    for node in list(nodes.values()):
        pid = node.parent_id
        if pid is not None and pid not in nodes:
            nodes[pid] = SpanNode(
                pid, node.trace_id, None, "(lost)", "", node.t0, node.t1, {}, synthetic=True
            )

    # A flat event stamped with a span that never closed (the worker died
    # mid-span, so no ``trace.span`` record ever followed) still names a
    # causal position; synthesize a zero-width node at the event's
    # timestamp so the event resolves into the forest like any other.
    for e in events:
        span_id, trace_id = e.get("span"), e.get("trace")
        if (
            e.get("kind") == "trace.span"
            or span_id is None
            or trace_id is None
            or span_id in nodes
        ):
            continue
        ts = float(e.get("ts", 0.0))
        nodes[span_id] = SpanNode(
            span_id, trace_id, None, "(lost)", "", ts, ts, {}, synthetic=True
        )

    forest: "dict[str, list[SpanNode]]" = {}
    for node in nodes.values():
        parent = nodes.get(node.parent_id) if node.parent_id is not None else None
        if parent is not None:
            parent.children.append(node)
        else:
            forest.setdefault(node.trace_id, []).append(node)

    # Grow synthetic windows over their subtrees, then re-root synthetic
    # orphans under the trace's real root (the campaign) when it exists.
    for roots in forest.values():
        for root in roots:
            if root.synthetic:
                ts = [t for c in root.walk() if not c.synthetic for t in (c.t0, c.t1)]
                if ts:
                    root.t0, root.t1 = min(ts), max(ts)
    for trace_id, roots in forest.items():
        real = [r for r in roots if not r.synthetic]
        if len(real) >= 1 and len(roots) > len(real):
            primary = max(real, key=lambda r: r.wall_s)
            for r in roots:
                if r.synthetic:
                    r.parent_id = primary.span_id
                    primary.children.append(r)
            forest[trace_id] = real
    for roots in forest.values():
        for root in roots:
            for node in root.walk():
                node.children.sort(key=lambda n: (n.t0, n.span_id))
    return dict(sorted(forest.items()))


def resolve_root(forest: "dict[str, list[SpanNode]]", trace_id: str, span_id: str) -> "SpanNode | None":
    """The root that *span_id* of *trace_id* resolves to, or None."""
    for root in forest.get(trace_id, ()):
        for node in root.walk():
            if node.span_id == span_id:
                return root
    return None


def primary_root(forest: "dict[str, list[SpanNode]]") -> "SpanNode | None":
    """The longest-wall non-synthetic root across every trace (the campaign)."""
    roots = [r for rs in forest.values() for r in rs if not r.synthetic]
    if not roots:
        roots = [r for rs in forest.values() for r in rs]
    return max(roots, key=lambda r: r.wall_s, default=None)


def critical_path(root: SpanNode) -> "list[SpanNode]":
    """The latest-finishing descendant chain from *root* downward.

    At every level the child that finished last is the one the parent was
    (transitively) waiting on — the campaign could not have ended sooner
    than that chain allowed.
    """
    path = [root]
    node = root
    while node.children:
        node = max(node.children, key=lambda c: (c.t1, c.t0, c.span_id))
        path.append(node)
    return path


def attribute(root: SpanNode) -> "dict[str, float]":
    """Charge every instant of *root*'s window to one bucket (seconds).

    Boundary sweep over the clamped descendant intervals; buckets sum to
    ``root.wall_s`` exactly (up to float rounding), so coverage of the
    campaign wall is total by construction — ``idle`` is the remainder no
    descendant claims.
    """
    lo, hi = root.t0, root.t1
    intervals = []  # (t0, t1, bucket)
    for node in root.walk():
        if node is root:
            continue
        t0, t1 = max(node.t0, lo), min(node.t1, hi)
        if t1 > t0:
            intervals.append((t0, t1, BUCKET_BY_CAT.get(node.cat, "dispatch")))
    buckets = dict.fromkeys(BUCKETS, 0.0)
    if hi <= lo:
        return buckets
    cuts = sorted({lo, hi, *(t for iv in intervals for t in iv[:2])})
    rank = {b: i for i, b in enumerate(BUCKET_PRECEDENCE)}
    for left, right in zip(cuts, cuts[1:]):
        active = [b for t0, t1, b in intervals if t0 <= left and t1 >= right]
        bucket = min(active, key=rank.__getitem__) if active else "idle"
        buckets[bucket] += right - left
    return {b: round(s, 6) for b, s in buckets.items()}


def trace_summary(events: "list[dict]") -> "dict | None":
    """The ``trace`` section of a run summary (None without spans).

    Buckets and critical path are computed for the primary (longest) root
    — one campaign per run directory is the common case; other traces are
    still counted.
    """
    forest = build_forest(events)
    if not forest:
        return None
    root = primary_root(forest)
    all_nodes = [n for rs in forest.values() for r in rs for n in r.walk()]
    summary = {
        "spans": sum(1 for n in all_nodes if not n.synthetic),
        "synthetic": sum(1 for n in all_nodes if n.synthetic),
        "traces": len(forest),
        "roots": sum(len(rs) for rs in forest.values()),
    }
    if root is None:
        return summary
    buckets = attribute(root)
    path = critical_path(root)
    summary.update(
        {
            "root": root.to_dict(),
            "wall_s": round(root.wall_s, 6),
            "buckets": buckets,
            "coverage": (
                round(sum(buckets.values()) / root.wall_s, 4) if root.wall_s > 0 else 1.0
            ),
            "critical_path": [n.to_dict() for n in path],
        }
    )
    return summary


def load_forest(run_dir: "Path | str") -> "dict[str, list[SpanNode]]":
    """Forest straight from a run directory (tolerant JSONL reader)."""
    from repro.obs.summarize import read_events

    return build_forest(read_events(Path(run_dir)))
