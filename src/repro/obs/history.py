"""Perf-history tracker: an append-only ledger of benchmark results.

``python -m repro.obs.history append results/BENCH_*.json`` folds each
benchmark document into one JSONL entry in ``results/PERF_HISTORY.jsonl``
— every numeric ``section.field`` metric, the git sha + dirty flag the
run was produced at (from the document's provenance stamp, else the live
repository), and a hash of the provenance manifest (the knob envelope) —
so performance can be charted and trend-checked across commits, not just
diffed against a single committed baseline.

:func:`repro.obs.history` is deliberately direction-agnostic: it records
and serves windowed statistics; *which* metrics matter and which way is
better lives in ``benchmarks/perf_guard.py`` (its trend check compares
the newest entry against the median of the preceding window).
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

HISTORY_FILE = "PERF_HISTORY.jsonl"


def git_info(repo: "Path | str | None" = None) -> dict:
    """``{"sha": ..., "dirty": ...}`` of *repo* (None fields off-git)."""
    cwd = str(repo) if repo else None
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True, text=True
        )
        status = subprocess.run(
            ["git", "status", "--porcelain"], cwd=cwd, capture_output=True, text=True
        )
    except OSError:
        return {"sha": None, "dirty": None}
    if sha.returncode != 0:
        return {"sha": None, "dirty": None}
    return {
        "sha": sha.stdout.strip(),
        "dirty": bool(status.stdout.strip()) if status.returncode == 0 else None,
    }


def flatten_metrics(doc: dict) -> "dict[str, float]":
    """Numeric leaves of a BENCH document as ``section.field`` pairs.

    Only int/float (not bool) values one level under a section survive —
    exactly the shape ``perf_guard`` guards — and ``provenance`` is
    excluded wholesale.
    """
    out: "dict[str, float]" = {}
    for section, body in doc.items():
        if section == "provenance" or not isinstance(body, dict):
            continue
        for field, value in body.items():
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                out[f"{section}.{field}"] = value
    return out


def manifest_hash(doc: dict) -> "str | None":
    """Short hash of the provenance manifest (the knob/host envelope)."""
    manifest = (doc.get("provenance") or {}).get("manifest")
    if not manifest:
        return None
    blob = json.dumps(manifest, sort_keys=True, default=repr).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def entry_for(path: "Path | str", repo: "Path | str | None" = None) -> dict:
    """One history entry for a benchmark results file.

    Prefers the git stamp ``benchmarks/conftest.py`` wrote into the
    document's provenance (the state when the bench *ran*); falls back to
    the live repository only for documents that predate the stamp.
    """
    path = Path(path)
    doc = json.loads(path.read_text())
    git = (doc.get("provenance") or {}).get("git") or git_info(repo or path.parent.parent)
    quick = any(
        body.get("quick_mode") is True
        for body in doc.values()
        if isinstance(body, dict)
    )
    return {
        "file": path.name,
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_sha": git.get("sha"),
        "git_dirty": git.get("dirty"),
        "manifest": manifest_hash(doc),
        "quick": quick,
        "metrics": flatten_metrics(doc),
    }


def append(
    paths: "list[Path | str]",
    history_path: "Path | str",
    repo: "Path | str | None" = None,
) -> "list[dict]":
    """Append one entry per benchmark file; returns the entries written."""
    history_path = Path(history_path)
    history_path.parent.mkdir(parents=True, exist_ok=True)
    entries = [entry_for(p, repo) for p in sorted(Path(p) for p in paths)]
    with history_path.open("a", encoding="utf-8") as fh:
        for entry in entries:
            fh.write(json.dumps(entry, separators=(",", ":"), sort_keys=True) + "\n")
    return entries


def load(history_path: "Path | str") -> "list[dict]":
    """Read the ledger oldest-first; torn/invalid lines are skipped loudly."""
    history_path = Path(history_path)
    if not history_path.exists():
        return []
    entries = []
    with history_path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                print(
                    f"warning: {history_path}:{lineno}: skipping torn history record",
                    file=sys.stderr,
                )
    return entries


def series(
    entries: "list[dict]", filename: str, metric: str, quick: "bool | None" = None
) -> "list[float]":
    """Oldest-first values of ``metric`` for ``filename`` entries.

    *quick* filters to entries of one budget class (quick vs full runs
    are not comparable); ``None`` keeps both.
    """
    out = []
    for e in entries:
        if e.get("file") != filename:
            continue
        if quick is not None and e.get("quick") != quick:
            continue
        value = (e.get("metrics") or {}).get(metric)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out.append(float(value))
    return out


def median(values: "list[float]") -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        raise ValueError("median of empty series")
    mid = n // 2
    return ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2.0


def main(argv: "list[str] | None" = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.history",
        description="Append benchmark results to the perf-history ledger.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    ap = sub.add_parser("append", help="append BENCH_*.json files to the ledger")
    ap.add_argument("results", nargs="+", help="benchmark result JSON files")
    ap.add_argument(
        "--history",
        default=None,
        help=f"ledger path (default: <first result's dir>/{HISTORY_FILE})",
    )
    sh = sub.add_parser("show", help="print the ledger as indented JSON")
    sh.add_argument("history", help="ledger path")
    args = parser.parse_args(argv)

    if args.command == "append":
        history_path = Path(args.history) if args.history else (
            Path(args.results[0]).resolve().parent / HISTORY_FILE
        )
        entries = append(args.results, history_path)
        for entry in entries:
            sha = (entry["git_sha"] or "?")[:12]
            dirty = "+dirty" if entry["git_dirty"] else ""
            print(
                f"recorded {entry['file']}: {len(entry['metrics'])} metric(s) "
                f"at {sha}{dirty}"
            )
        print(f"history: {history_path} ({len(load(history_path))} entries)")
        return 0
    print(json.dumps(load(args.history), indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
