"""Export a telemetry run as Chrome trace-event JSON.

``python -m repro.obs.export <run-dir> [-o trace.json]`` converts
``events.jsonl`` (spans + flat events) into the Trace Event Format that
``chrome://tracing`` and Perfetto load directly:

* every ``trace.span`` record becomes a complete (``"ph": "X"``) event —
  name, category, start, duration — laid out per emitting process;
* every other event becomes a process-scoped instant (``"ph": "i"``)
  carrying its fields as ``args``;
* one metadata record per pid names the track.

Timestamps are the bus's monotonic seconds scaled to microseconds;
``CLOCK_MONOTONIC`` is system-wide on Linux, so parent and worker tracks
share one axis and a campaign reads left-to-right across processes.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.obs.summarize import read_events

_RESERVED = frozenset({"kind", "ts", "pid", "trace", "span", "parent", "name", "cat", "t0", "t1"})


def _us(seconds: float) -> float:
    return round(seconds * 1e6, 1)


def export_events(events: "list[dict]") -> dict:
    """Build the Chrome trace-event document for an event stream."""
    out: "list[dict]" = []
    pids = set()
    for e in events:
        pid = int(e.get("pid", 0))
        pids.add(pid)
        args = {k: v for k, v in e.items() if k not in _RESERVED}
        if e.get("kind") == "trace.span":
            t0 = float(e.get("t0", 0.0))
            t1 = float(e.get("t1", t0))
            args.update(trace=e.get("trace"), span=e.get("span"), parent=e.get("parent"))
            out.append(
                {
                    "ph": "X",
                    "name": e.get("name", "?"),
                    "cat": e.get("cat") or "span",
                    "ts": _us(t0),
                    "dur": _us(max(0.0, t1 - t0)),
                    "pid": pid,
                    "tid": pid,
                    "args": args,
                }
            )
        else:
            if e.get("span") is not None:
                args.update(trace=e.get("trace"), span=e.get("span"))
            out.append(
                {
                    "ph": "i",
                    "name": e.get("kind", "?"),
                    "cat": "event",
                    "ts": _us(float(e.get("ts", 0.0))),
                    "pid": pid,
                    "tid": pid,
                    "s": "p",
                    "args": args,
                }
            )
    meta = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": pid,
            "args": {"name": f"repro pid {pid}"},
        }
        for pid in sorted(pids)
    ]
    return {"traceEvents": meta + out, "displayTimeUnit": "ms"}


def export_run(run_dir: "Path | str") -> dict:
    """Chrome trace document for a run directory."""
    return export_events(read_events(Path(run_dir)))


def main(argv: "list[str] | None" = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description="Export a telemetry run directory as Chrome trace-event JSON.",
    )
    parser.add_argument("run_dir", help="directory holding events.jsonl")
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="output file (default: <run-dir>/trace.json; '-' for stdout)",
    )
    args = parser.parse_args(argv)
    doc = export_run(args.run_dir)
    text = json.dumps(doc, separators=(",", ":"), sort_keys=True, default=repr)
    if args.output == "-":
        print(text)
        return 0
    out = Path(args.output) if args.output else Path(args.run_dir) / "trace.json"
    out.write_text(text + "\n", encoding="utf-8")
    print(
        f"wrote {out} ({len(doc['traceEvents'])} trace events)",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
