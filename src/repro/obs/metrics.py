"""In-process metrics registry: counters, gauges, and timers.

The registry is the aggregate side of the telemetry plane: event emission
(:mod:`repro.obs`) records *what happened*, metrics record *how much*.
Instrumented layers update named instruments; campaign drivers and
benchmarks call :meth:`MetricsRegistry.snapshot` to embed the totals into
their result files, and :meth:`MetricsRegistry.reset` between measured
sections.

Instruments are created on first use (``REGISTRY.counter("engine.ok")``)
and live for the process.  Creation is lock-protected so concurrent
threads registering the same name share one instrument; the per-operation
updates themselves are single bytecode-level attribute mutations, which is
adequate for the coarse-grained (per-task / per-chunk / per-run) call
sites this plane instruments.  Worker *processes* do not share a registry
- cross-process totals travel through the event bus instead.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-written value of a quantity that can move both ways."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = None

    def set(self, value) -> None:
        self.value = value


class Timer:
    """Duration histogram: count, total, min, max (seconds)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if self.min is None or seconds < self.min:
            self.min = seconds
        if self.max is None or seconds > self.max:
            self.max = seconds

    @contextmanager
    def time(self):
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - t0)

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": round(self.total, 6),
            "min_s": round(self.min, 6) if self.min is not None else None,
            "max_s": round(self.max, 6) if self.max is not None else None,
            "mean_s": round(self.total / self.count, 6) if self.count else None,
        }


class MetricsRegistry:
    """Named instruments with one flat namespace per family."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: "dict[str, Counter]" = {}
        self._gauges: "dict[str, Gauge]" = {}
        self._timers: "dict[str, Timer]" = {}

    def _get(self, family: dict, name: str, cls):
        inst = family.get(name)
        if inst is None:
            with self._lock:
                inst = family.setdefault(name, cls())
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(self._counters, name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(self._gauges, name, Gauge)

    def timer(self, name: str) -> Timer:
        return self._get(self._timers, name, Timer)

    def snapshot(self) -> dict:
        """JSON-ready view of every instrument (stable key order)."""
        return {
            "counters": {k: self._counters[k].value for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "timers": {k: self._timers[k].as_dict() for k in sorted(self._timers)},
        }

    def reset(self) -> None:
        """Drop every instrument (names re-register on next use)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()


#: Process-wide default registry used by the instrumented layers.
REGISTRY = MetricsRegistry()
