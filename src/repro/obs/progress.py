"""Live campaign progress from a telemetry run directory.

``python -m repro.obs.progress <run-dir>`` tails ``events.jsonl`` — safely
against a writer appending concurrently — and tracks per-campaign
completion.  Two output modes:

* **TTY view** (default): one progress bar per campaign with completion,
  throughput (from event timestamps), and a rate-based ETA, re-rendered
  in place on every poll.
* **``--json``**: one machine-readable line per settlement, the contract
  the future campaign service streams to clients::

      {"campaign":"fig8","done":3,"failed":0,"total":24}

  Lines carry **only deterministic fields**: the campaign label (the
  supervisor's name, else ``campaign-<ordinal>`` in stream order), the
  running settled/failed counters, and the task total.  ``done`` counts
  settlements ``1..N`` in arrival order, so the byte stream is identical
  for serial and parallel runs of the same campaign even though tasks
  finish in different orders — throughput and ETA, which are not
  deterministic, appear only in the TTY view.

The follower tolerates torn lines anywhere in the stream (a concurrent
writer's in-flight append, a killed writer's half line) by buffering the
trailing partial line and warning-and-skipping undecodable interior ones,
and follows ``REPRO_OBS_MAX_BYTES`` rotations by detecting the inode
change and reopening the fresh generation.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.obs import EVENTS_FILE


class Follower:
    """Incremental, rotation-aware, torn-line-tolerant events.jsonl tailer."""

    def __init__(self, run_dir: "Path | str"):
        self.path = Path(run_dir) / EVENTS_FILE
        self._fh = None
        self._ino: "int | None" = None
        self._buf = b""
        self._lineno = 0  #: complete lines consumed in the current generation

    def _open(self) -> bool:
        try:
            fh = open(self.path, "rb")
        except OSError:
            return False
        self._fh = fh
        self._ino = os.fstat(fh.fileno()).st_ino
        self._buf = b""
        self._lineno = 0
        return True

    def _rotated(self) -> bool:
        try:
            return os.stat(self.path).st_ino != self._ino
        except OSError:
            return False

    def _drain(self) -> "list[dict]":
        assert self._fh is not None
        data = self._fh.read()
        if not data:
            return []
        self._buf += data
        events = []
        while True:
            nl = self._buf.find(b"\n")
            if nl < 0:
                break  # partial trailing line: a write in flight, keep it
            line, self._buf = self._buf[:nl], self._buf[nl + 1 :]
            self._lineno += 1
            if not line.strip():
                continue
            try:
                events.append(json.loads(line))
            except (json.JSONDecodeError, UnicodeDecodeError):
                print(
                    f"warning: {self.path}:{self._lineno}: skipping torn JSONL record",
                    file=sys.stderr,
                )
        return events

    def poll(self) -> "list[dict]":
        """Every complete event appended since the last poll."""
        if self._fh is None and not self._open():
            return []
        events = self._drain()
        if self._rotated():
            # Finish the old generation, then switch to the fresh file.
            events += self._drain()
            self._fh.close()
            self._fh = None
            if self._open():
                events += self._drain()
        return events

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class Tracker:
    """Reduce an event stream into per-campaign progress snapshots.

    :meth:`feed` returns one deterministic progress line (dict) per
    settlement-changing event; :attr:`campaigns` holds the running state
    (with first/last timestamps for the TTY view's rate estimates).
    """

    def __init__(self):
        self.campaigns: "list[dict]" = []
        self._by_trace: "dict[str, dict]" = {}
        self._pending_name: "str | None" = None

    def _campaign_for(self, event: "dict") -> "dict | None":
        trace = event.get("trace")
        if trace is not None and trace in self._by_trace:
            return self._by_trace[trace]
        for c in reversed(self.campaigns):
            if c["open"]:
                return c
        return None

    def feed(self, event: dict) -> "list[dict]":
        kind = event.get("kind", "")
        ts = event.get("ts")
        if kind == "supervisor.begin":
            # The next engine.start under this supervisor inherits its name.
            self._pending_name = event.get("name")
            return []
        if kind == "engine.start":
            label = self._pending_name or f"campaign-{len(self.campaigns) + 1}"
            self._pending_name = None
            c = {
                "campaign": label,
                "total": int(event.get("tasks", 0)),
                "done": 0,
                "failed": 0,
                "open": True,
                "first_ts": ts,
                "last_ts": ts,
            }
            self.campaigns.append(c)
            trace = event.get("trace")
            if trace is not None:
                self._by_trace[trace] = c
            return []
        if kind in ("engine.ok", "engine.fail"):
            c = self._campaign_for(event)
            if c is None:
                return []
            c["done" if kind == "engine.ok" else "failed"] += 1
            if ts is not None:
                c["last_ts"] = ts
            return [
                {
                    "campaign": c["campaign"],
                    "done": c["done"],
                    "failed": c["failed"],
                    "total": c["total"],
                }
            ]
        if kind == "engine.done":
            c = self._campaign_for(event)
            if c is not None:
                c["open"] = False
        return []


def json_lines(events: "list[dict]") -> "list[str]":
    """The full deterministic ``--json`` stream for an event list."""
    tracker = Tracker()
    out = []
    for e in events:
        for line in tracker.feed(e):
            out.append(json.dumps(line, separators=(",", ":"), sort_keys=True))
    return out


def _render(campaigns: "list[dict]", width: int = 28) -> "list[str]":
    lines = []
    for c in campaigns:
        total = max(c["total"], 1)
        settled = c["done"] + c["failed"]
        frac = min(1.0, settled / total)
        bar = "#" * round(frac * width)
        rate = eta = None
        if c["first_ts"] is not None and c["last_ts"] is not None and c["done"] > 0:
            span = c["last_ts"] - c["first_ts"]
            if span > 0:
                rate = c["done"] / span
                if rate > 0 and c["open"]:
                    eta = max(0.0, (c["total"] - settled) / rate)
        state = "done" if not c["open"] else (f"eta {eta:.1f}s" if eta is not None else "...")
        rate_s = f"{rate:.1f}/s" if rate is not None else "-"
        failed = f"  {c['failed']} failed" if c["failed"] else ""
        lines.append(
            f"{c['campaign']:<16} [{bar:<{width}}] "
            f"{settled}/{c['total']}  {rate_s:<8} {state}{failed}"
        )
    return lines


def main(argv: "list[str] | None" = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.progress",
        description="Per-campaign completion/throughput/ETA from events.jsonl.",
    )
    parser.add_argument("run_dir", help="directory holding events.jsonl")
    parser.add_argument(
        "--json", action="store_true", help="emit one machine-readable line per settlement"
    )
    parser.add_argument(
        "--follow", action="store_true", help="keep tailing the stream for a live writer"
    )
    parser.add_argument(
        "--poll", type=float, default=0.25, help="poll interval in seconds (with --follow)"
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="with --follow: exit after this many seconds without new events",
    )
    args = parser.parse_args(argv)

    follower = Follower(args.run_dir)
    tracker = Tracker()
    rendered = 0
    last_event = time.monotonic()

    def consume() -> bool:
        nonlocal rendered, last_event
        events = follower.poll()
        if events:
            last_event = time.monotonic()
        progressed = False
        for e in events:
            for line in tracker.feed(e):
                progressed = True
                if args.json:
                    print(json.dumps(line, separators=(",", ":"), sort_keys=True), flush=True)
        if not args.json and (progressed or events):
            lines = _render(tracker.campaigns)
            if sys.stdout.isatty() and rendered:
                sys.stdout.write(f"\x1b[{rendered}A")
            for text in lines:
                sys.stdout.write("\x1b[2K" + text + "\n" if sys.stdout.isatty() else text + "\n")
            sys.stdout.flush()
            rendered = len(lines)
        return progressed

    consume()
    if args.follow:
        try:
            while True:
                time.sleep(args.poll)
                consume()
                if (
                    args.idle_timeout is not None
                    and time.monotonic() - last_event > args.idle_timeout
                ):
                    break
        except KeyboardInterrupt:
            pass
    follower.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
