"""Causal span plane: cross-process traces on the JSONL event bus.

The event bus (:mod:`repro.obs`) records *what happened* as flat events;
this module adds *why it took that long*: every instrumented operation
runs inside a **span** — a ``(trace_id, span_id, parent_id)`` context
with monotonic start/end stamps and a category tag — emitted as a single
``trace.span`` event when the span closes.  Because spans ride the same
O_APPEND JSONL stream as ordinary events, one campaign reconstructs as a
single span forest (:mod:`repro.obs.spantree`) even through pool
rebuilds, worker retries, batched super-tasks, and crash/resume.

Design constraints, in order:

1. **Disarmed is free.**  ``REPRO_TRACE`` off (the default) keeps
   :func:`span` at one global load and one branch, returning a shared
   no-op singleton; :func:`repro.obs.emit` pays nothing because the
   span-provider hook stays ``None``.  ``bench_obs_overhead.py`` holds
   this to < 2% on both simulator kernels.
2. **Propagation is explicit and picklable.**  A span context crosses a
   process boundary as a plain ``(trace_id, span_id)`` tuple: the engine
   threads it through the task envelope (:func:`repro.obs.worker_config`),
   the supervisor persists it in journal ``begin`` records so a resumed
   campaign re-parents under the original root, and super-task spool
   frames carry the emitting span id (:mod:`repro.experiments.resultcodec`).
3. **Ambient by default, explicit when needed.**  Spans nest through a
   :class:`contextvars.ContextVar`; pass ``parent=`` to override (e.g.
   worker-side spans parent to the dispatch-time context shipped in the
   envelope, not to whatever the worker last ran).

Arming
------
``REPRO_TRACE=1`` (any of 1/true/on/yes) arms the plane at import time;
spans still only reach disk while the event bus itself is armed
(``REPRO_OBS``).  Tests and benchmarks arm programmatically with
:func:`arm` and restore the environment-driven state via
:func:`init_from_env`.

Span event schema (``kind == "trace.span"``)::

    trace   16-hex trace id shared by the whole forest
    span    16-hex span id (unique per span)
    parent  16-hex parent span id, or null for a root
    name    operation name, e.g. "engine.task"
    cat     attribution bucket: dispatch|compute|codec|retry|journal|...
    t0, t1  monotonic start/end seconds (same axis as event ``ts``)

plus any keyword fields given at start, :meth:`Span.annotate`, or end.
"""

from __future__ import annotations

import contextvars
import os
import time

from repro import obs

#: Attribution categories consumed by :mod:`repro.obs.spantree`.  Free-form
#: strings are allowed; these are the ones the wall-time buckets know.
CATEGORIES = ("dispatch", "compute", "codec", "retry", "journal", "mc", "sim")

_armed = False
_current: "contextvars.ContextVar[tuple[str, str] | None]" = contextvars.ContextVar(
    "repro_trace_span", default=None
)


def _provider() -> "tuple[str, str] | None":
    return _current.get()


def armed() -> bool:
    """Is the span plane armed (independent of the bus sink)?"""
    return _armed


def arm(on: bool = True) -> None:
    """(Dis)arm the span plane and install/clear the bus span-provider."""
    global _armed
    _armed = bool(on)
    obs._span_provider = _provider if _armed else None


def init_from_env() -> bool:
    """(Re)apply ``REPRO_TRACE``; returns the resulting armed state."""
    from repro.util import envcfg

    arm(envcfg.trace_enabled())
    return _armed


def enabled() -> bool:
    """True when spans actually reach disk: armed AND the bus has a sink."""
    return _armed and obs.enabled()


def new_id() -> str:
    """A fresh 64-bit id as 16 hex chars (collision odds are negligible)."""
    return os.urandom(8).hex()


def ctx() -> "tuple[str, str] | None":
    """The ambient picklable ``(trace_id, span_id)``, or None outside spans."""
    return _current.get()


def adopt(parent_ctx: "tuple[str, str] | None") -> None:
    """Install a shipped context as the ambient span (workers, resume).

    The tuple is what :func:`ctx` returned on the emitting side; ``None``
    clears the ambient so new spans become roots again.
    """
    _current.set(tuple(parent_ctx) if parent_ctx else None)


class _NoopSpan:
    """Shared do-nothing span returned while the plane is disarmed."""

    __slots__ = ()
    trace_id = None
    span_id = None
    parent_id = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **fields) -> None:
        pass

    def end(self, **extra) -> None:
        pass

    def ctx(self) -> None:
        return None


NOOP = _NoopSpan()


class Span:
    """A live span; use as a context manager or call :meth:`end` exactly once.

    The explicit :meth:`end` form exists for generator-shaped scopes
    (e.g. ``run_tasks`` yields mid-span): a :class:`~contextvars.ContextVar`
    token set inside a generator may not be resettable from the caller's
    context, so ``end`` falls back to re-installing the parent directly.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "cat",
        "fields",
        "t0",
        "_token",
        "_ended",
    )

    def __init__(self, name: str, cat: str, parent: "tuple[str, str] | None", fields: dict):
        if parent is not None:
            self.trace_id, self.parent_id = parent
        else:
            ambient = _current.get()
            if ambient is not None:
                self.trace_id, self.parent_id = ambient
            else:
                self.trace_id = new_id()
                self.parent_id = None
        self.span_id = new_id()
        self.name = name
        self.cat = cat
        self.fields = fields
        self._ended = False
        self.t0 = time.monotonic()
        self._token = _current.set((self.trace_id, self.span_id))

    def ctx(self) -> "tuple[str, str]":
        """This span's picklable ``(trace_id, span_id)`` for propagation."""
        return (self.trace_id, self.span_id)

    def annotate(self, **fields) -> None:
        """Attach fields to be emitted with the closing event."""
        self.fields.update(fields)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.end(error=repr(exc))
        else:
            self.end()
        return False

    def end(self, **extra) -> None:
        """Close the span and emit its ``trace.span`` record (idempotent)."""
        if self._ended:
            return
        self._ended = True
        t1 = time.monotonic()
        try:
            _current.reset(self._token)
        except ValueError:
            # Token minted in another context (generator/thread hand-off):
            # restore the parent by value instead.
            _current.set(
                (self.trace_id, self.parent_id) if self.parent_id else None
            )
        payload = dict(self.fields)
        payload.update(extra)
        payload.update(
            trace=self.trace_id,
            span=self.span_id,
            parent=self.parent_id,
            name=self.name,
            cat=self.cat,
            t0=round(self.t0, 6),
            t1=round(t1, 6),
        )
        obs.emit("trace.span", **payload)


def span(
    name: str,
    cat: str = "",
    parent: "tuple[str, str] | None" = None,
    **fields,
) -> "Span | _NoopSpan":
    """Open a span (the shared no-op singleton while disarmed/unsunk).

    *parent* overrides the ambient context; otherwise the span nests under
    the current one, or starts a new root trace.
    """
    if not _armed or obs._sink is None:
        return NOOP
    return Span(name, cat, parent, fields)


#: Alias for call sites that pair an explicit ``.end()`` (generators).
start_span = span


init_from_env()
