"""Render a campaign report from a telemetry run directory.

``python -m repro.obs.summarize <run-dir>`` reads ``manifest.json`` and
``events.jsonl`` and reconstructs what the campaign did — task outcomes
per index, retry/timeout/rebuild/degrade totals, a wall-clock throughput
timeline, and every chaos firing correlated with the recovery that
followed it — from the telemetry alone, with no access to the campaign's
in-process state.  :func:`summarize` returns the same reconstruction as a
dict for tests and tooling; ``--json`` prints it instead of the text
report.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.obs import EVENTS_FILE
from repro.obs.manifest import load_manifest

#: Throughput-timeline resolution (equal wall-clock buckets over the run).
TIMELINE_BUCKETS = 10


def read_events(run_dir: "Path | str") -> "list[dict]":
    """Parse ``events.jsonl`` (and a rotated ``events.jsonl.1`` before it).

    A torn line *anywhere* — the half-written append of a killed writer
    (ENOSPC, SIGKILL, power loss), or a record straddling an I/O fault —
    is skipped with a one-line warning on stderr naming the file and line
    number; one bad record must never cost the rest of the stream.  When
    ``REPRO_OBS_MAX_BYTES`` rotation has produced an ``events.jsonl.1``,
    that older generation is read first so the merged stream stays in
    append order.
    """
    run_dir = Path(run_dir)
    events = []
    for path in (run_dir / f"{EVENTS_FILE}.1", run_dir / EVENTS_FILE):
        if not path.exists():
            continue
        with path.open("r", encoding="utf-8", errors="replace") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except json.JSONDecodeError:
                    print(
                        f"warning: {path}:{lineno}: skipping torn JSONL record",
                        file=sys.stderr,
                    )
    events.sort(key=lambda e: e.get("ts", 0.0))
    return events


def _engine_summary(events: "list[dict]") -> dict:
    """Per-task outcomes and campaign totals from engine.* events."""
    tasks: "dict[int, dict]" = {}

    def task(index):
        return tasks.setdefault(
            int(index),
            {"attempts": 0, "status": "pending", "retries": 0, "timeouts": 0,
             "requeues": 0, "errors": [], "worker_pids": [], "wall_s": None},
        )

    totals = {"ok": 0, "failed": 0, "retries": 0, "timeouts": 0,
              "requeues": 0, "rebuilds": 0, "degrades": 0}
    start = done = None
    for e in events:
        kind = e.get("kind", "")
        if not kind.startswith("engine."):
            continue
        if kind == "engine.start":
            start = e
            continue
        if kind == "engine.done":
            done = e
            continue
        if kind == "engine.rebuild":
            totals["rebuilds"] += 1
            continue
        if kind == "engine.degrade":
            totals["degrades"] += 1
            continue
        if "index" not in e:
            continue
        t = task(e["index"])
        if kind == "engine.submit":
            t["attempts"] = max(t["attempts"], int(e.get("attempt", 0)) + 1)
        elif kind == "engine.ok":
            t["status"] = "ok"
            t["wall_s"] = e.get("wall_s")
            totals["ok"] += 1
            pid = e.get("worker_pid")
            if pid is not None and pid not in t["worker_pids"]:
                t["worker_pids"].append(pid)
        elif kind == "engine.error":
            t["errors"].append(e.get("error", ""))
        elif kind == "engine.retry":
            t["retries"] += 1
            totals["retries"] += 1
        elif kind == "engine.timeout":
            t["timeouts"] += 1
            totals["timeouts"] += 1
        elif kind == "engine.requeue":
            t["requeues"] += 1
            totals["requeues"] += 1
        elif kind == "engine.fail":
            t["status"] = "failed"
            totals["failed"] += 1
    return {
        "tasks": {k: tasks[k] for k in sorted(tasks)},
        "totals": totals,
        "start": start,
        "done": done,
    }


def _mc_summary(events: "list[dict]") -> "dict | None":
    chunks = [e for e in events if e.get("kind") == "mc.chunk"]
    if not chunks:
        return None
    rates = [c["trials_per_sec"] for c in chunks if c.get("trials_per_sec")]
    last = chunks[-1]
    return {
        "chunks": len(chunks),
        # Chunks from concurrent cells interleave, so total work is the sum
        # of per-chunk sizes, not any one sim's ``done`` cursor.
        "trials": sum(int(c.get("n", 0)) for c in chunks),
        "mean_trials_per_sec": round(sum(rates) / len(rates), 1) if rates else None,
        "final_running_mean": last.get("running_mean"),
    }


def _ecc_summary(events: "list[dict]") -> "dict | None":
    """Codec-time attribution from ``ecc.decode`` batch events.

    Answers "where did the campaign's decode time go": total words and
    dirty words pushed through the RS kernel, how much of the batch volume
    hit the compiled core versus the NumPy fallback, and the aggregate
    dirty-word decode rate.
    """
    batches = [e for e in events if e.get("kind") == "ecc.decode"]
    if not batches:
        return None
    words = sum(int(e.get("words", 0)) for e in batches)
    dirty = sum(int(e.get("dirty", 0)) for e in batches)
    wall = sum(float(e.get("wall_s", 0.0)) for e in batches)
    native = sum(1 for e in batches if e.get("native"))
    return {
        "batches": len(batches),
        "words": words,
        "dirty_words": dirty,
        "dirty_frac": round(dirty / words, 4) if words else 0.0,
        "native_batches": native,
        "native_frac": round(native / len(batches), 4),
        "wall_s": round(wall, 6),
        "dirty_words_per_sec": round(dirty / wall) if wall > 0 and dirty else None,
        "codes": sorted({e.get("code", "?") for e in batches}),
    }


def _sim_summary(events: "list[dict]") -> "dict | None":
    runs = [e for e in events if e.get("kind") == "sim.run"]
    if not runs:
        return None
    return {"runs": len(runs), "last": runs[-1]}


def _chaos_summary(events: "list[dict]") -> "list[dict]":
    """Each chaos firing, correlated with the recovery that followed it.

    A firing against task *index* is recovered when a later ``engine.ok``
    for the same index appears in the stream; the recovery record carries
    how the engine got there (which attempt succeeded).
    """
    out = []
    for i, e in enumerate(events):
        if e.get("kind") != "chaos.fire":
            continue
        fire = {k: e[k] for k in ("mode", "index", "attempt", "param") if k in e}
        fire["ts"] = e.get("ts")
        recovery = None
        for later in events[i + 1:]:
            if later.get("kind") == "engine.ok" and later.get("index") == e.get("index"):
                recovery = {
                    "attempt": later.get("attempt"),
                    "worker_pid": later.get("worker_pid"),
                    "after_s": (
                        round(later["ts"] - e["ts"], 6)
                        if later.get("ts") is not None and e.get("ts") is not None
                        else None
                    ),
                }
                break
        fire["recovered"] = recovery is not None
        fire["recovery"] = recovery
        out.append(fire)
    return out


def _supervisor_summary(events: "list[dict]") -> "dict | None":
    """Durability accounting from supervisor.* events.

    Answers the resume question directly from telemetry: how much of the
    campaign was replayed from the journal or salvaged from orphaned
    spools versus recomputed, and what the watchdog did about resources.
    """
    sup = [e for e in events if e.get("kind", "").startswith("supervisor.")]
    if not sup:
        return None

    def count(kind):
        return sum(1 for e in sup if e["kind"] == kind)

    begins = [e for e in sup if e["kind"] == "supervisor.begin"]
    return {
        "campaigns": len(begins),
        "last_begin": begins[-1] if begins else None,
        "replayed": sum(
            int(e.get("settled", 0)) for e in sup if e["kind"] == "supervisor.replay"
        ),
        "salvaged": sum(
            int(e.get("count", 0)) for e in sup if e["kind"] == "supervisor.salvage"
        ),
        "settled": count("supervisor.settle"),
        "memory_pressure": count("supervisor.memory_pressure"),
        "low_disk": count("supervisor.low_disk"),
        "pauses": count("supervisor.pause"),
        "interrupts": count("supervisor.interrupt"),
        "done": next((e for e in reversed(sup) if e["kind"] == "supervisor.done"), None),
    }


def _timeline(events: "list[dict]") -> "list[dict]":
    """Bucketed progress: completions and MC trials per wall-clock slice."""
    marks = [e for e in events if e.get("kind") in ("engine.ok", "mc.chunk") and "ts" in e]
    if len(marks) < 2:
        return []
    t0, t1 = marks[0]["ts"], marks[-1]["ts"]
    span = max(t1 - t0, 1e-9)
    buckets = [
        {"t_s": round(span * b / TIMELINE_BUCKETS, 3), "ok": 0, "mc_trials": 0}
        for b in range(TIMELINE_BUCKETS)
    ]
    for e in marks:
        b = min(int((e["ts"] - t0) / span * TIMELINE_BUCKETS), TIMELINE_BUCKETS - 1)
        if e["kind"] == "engine.ok":
            buckets[b]["ok"] += 1
        else:
            buckets[b]["mc_trials"] += int(e.get("n", 0))
    return buckets


def summarize(run_dir: "Path | str") -> dict:
    """Reconstruct the campaign from a run directory's telemetry alone."""
    from repro.obs.spantree import trace_summary

    run_dir = Path(run_dir)
    events = read_events(run_dir)
    kinds: "dict[str, int]" = {}
    for e in events:
        k = e.get("kind", "?")
        kinds[k] = kinds.get(k, 0) + 1
    return {
        "run_dir": str(run_dir),
        "manifest": load_manifest(run_dir),
        "events": len(events),
        "kinds": dict(sorted(kinds.items())),
        "engine": _engine_summary(events),
        "mc": _mc_summary(events),
        "ecc": _ecc_summary(events),
        "sim": _sim_summary(events),
        "supervisor": _supervisor_summary(events),
        "chaos": _chaos_summary(events),
        "timeline": _timeline(events),
        "trace": trace_summary(events),
    }


# -- text rendering --------------------------------------------------------------------


def _table(headers: "list[str]", rows: "list[list[str]]") -> "list[str]":
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    return [fmt.format(*headers), fmt.format(*("-" * w for w in widths))] + [
        fmt.format(*r) for r in rows
    ]


def render(summary: dict) -> str:
    lines = [f"telemetry report: {summary['run_dir']}", ""]

    man = summary["manifest"]
    if man:
        pkg = man.get("package", {})
        lines += [
            f"manifest: {pkg.get('name', '?')} {pkg.get('version', '?')}"
            f" on {man.get('hostname', '?')}"
            f" (python {man.get('python', '?')}, captured {man.get('captured_at', '?')})"
        ]
        env_knobs = {
            n: k["current"] for n, k in man.get("knobs", {}).items() if k.get("source") == "env"
        }
        if env_knobs:
            lines.append(
                "knobs from env: " + ", ".join(f"{n}={v}" for n, v in sorted(env_knobs.items()))
            )
    else:
        lines.append("manifest: (missing)")
    lines.append("")

    lines.append(f"events: {summary['events']}")
    for kind, n in summary["kinds"].items():
        lines.append(f"  {kind:<20} {n}")
    lines.append("")

    eng = summary["engine"]
    if eng["tasks"]:
        totals = eng["totals"]
        lines.append(
            "engine: {ok} ok, {failed} failed, {retries} retries, {timeouts} timeouts, "
            "{requeues} requeues, {rebuilds} rebuilds, {degrades} degrades".format(**totals)
        )
        rows = [
            [str(i), t["status"], str(t["attempts"]), str(t["retries"]),
             str(t["timeouts"]), str(t["requeues"]),
             ",".join(str(p) for p in t["worker_pids"]) or "-"]
            for i, t in eng["tasks"].items()
        ]
        lines += _table(
            ["task", "status", "attempts", "retries", "timeouts", "requeues", "workers"], rows
        )
        lines.append("")

    if summary["mc"]:
        mc = summary["mc"]
        lines.append(
            f"monte carlo: {mc['trials']} trials over {mc['chunks']} chunks, "
            f"mean {mc['mean_trials_per_sec']} trials/s, "
            f"final running mean {mc['final_running_mean']}"
        )
        lines.append("")

    if summary.get("ecc"):
        ecc = summary["ecc"]
        rate = ecc["dirty_words_per_sec"]
        lines.append(
            f"ecc codec: {ecc['words']} words over {ecc['batches']} decode batches "
            f"({ecc['dirty_words']} dirty, {ecc['dirty_frac']:.1%}), "
            f"native on {ecc['native_frac']:.0%} of batches"
            + (f", {rate:,} dirty words/s" if rate else "")
            + f" [{', '.join(ecc['codes'])}]"
        )
        lines.append("")

    if summary["sim"]:
        last = summary["sim"]["last"]
        lines.append(
            f"simulator: {summary['sim']['runs']} run(s); last: "
            f"{last.get('events_per_sec')} events/s, "
            f"llc {last.get('llc_hits')}/{last.get('llc_misses')} hit/miss, "
            f"{last.get('fast_picks')} fast picks / {last.get('issued_requests')} issues"
        )
        lines.append("")

    if summary.get("supervisor"):
        sup = summary["supervisor"]
        begin = sup["last_begin"] or {}
        done = sup["done"] or {}
        lines.append(
            f"supervisor: {sup['campaigns']} campaign(s), last "
            f"{begin.get('name', '?')!r}: {begin.get('total', '?')} tasks, "
            f"{sup['replayed']} replayed from journal, {sup['salvaged']} salvaged "
            f"from spools, {sup['settled']} settled live"
        )
        if done:
            lines.append(
                f"  finished: {done.get('settled', '?')} settled / "
                f"{done.get('total', '?')} total (recomputed {done.get('computed', '?')})"
            )
        watch = []
        if sup["memory_pressure"]:
            watch.append(f"{sup['memory_pressure']} memory-pressure degradation(s)")
        if sup["low_disk"]:
            watch.append(f"{sup['low_disk']} low-disk sample(s)")
        if sup["pauses"]:
            watch.append(f"{sup['pauses']} pause(s)")
        if sup["interrupts"]:
            watch.append(f"{sup['interrupts']} signal interrupt(s)")
        if watch:
            lines.append("  watchdog: " + ", ".join(watch))
        lines.append("")

    if summary["chaos"]:
        lines.append("chaos firings:")
        rows = []
        for c in summary["chaos"]:
            rec = c["recovery"]
            rows.append([
                c.get("mode", "?"),
                str(c.get("index", "?")),
                str(c.get("attempt", "?")),
                ("recovered on attempt "
                 f"{rec['attempt']} after {rec['after_s']}s") if c["recovered"] else "NOT RECOVERED",
            ])
        lines += _table(["mode", "task", "attempt", "outcome"], rows)
        lines.append("")

    if summary.get("trace"):
        tr = summary["trace"]
        lines.append(
            f"trace: {tr['spans']} span(s) in {tr['traces']} trace(s), "
            f"{tr['roots']} root(s)"
            + (f", {tr['synthetic']} synthesized (crashed parents)" if tr["synthetic"] else "")
        )
        if tr.get("root"):
            root = tr["root"]
            lines.append(
                f"  root: {root['name']} ({root['wall_s']}s wall, "
                f"coverage {tr['coverage']:.0%})"
            )
            buckets = tr["buckets"]
            wall = tr["wall_s"] or 1.0
            lines.append(
                "  attribution: "
                + ", ".join(
                    f"{b} {buckets[b]:.3f}s ({100.0 * buckets[b] / wall:.1f}%)"
                    for b in sorted(buckets, key=lambda b: -buckets[b])
                    if buckets[b] > 0
                )
            )
            lines.append(
                "  critical path: "
                + " > ".join(n["name"] for n in tr["critical_path"])
            )
        lines.append("")

    if summary["timeline"]:
        lines.append("throughput timeline (bucket start, completions, mc trials):")
        for b in summary["timeline"]:
            lines.append(f"  +{b['t_s']:>9.3f}s  ok={b['ok']:<4d}  mc={b['mc_trials']}")
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"


def main(argv: "list[str] | None" = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.summarize",
        description="Render a campaign report from a telemetry run directory.",
    )
    parser.add_argument("run_dir", help="directory holding events.jsonl / manifest.json")
    parser.add_argument("--json", action="store_true", help="print the summary dict as JSON")
    args = parser.parse_args(argv)
    summary = summarize(args.run_dir)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True, default=repr))
    else:
        print(render(summary), end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
