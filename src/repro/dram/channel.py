"""Event-driven model of one DDR3 memory channel under close-page policy.

The controller keeps a single request queue per channel and issues one
request per scheduling step (the command/data bus serializes issue anyway at
one BL8 burst per ``tBURST``), while bank occupancy, tRRD/tFAW activation
windows, write-to-read turnaround, and rank power-down wakeups pipeline
across banks and ranks.  Scheduling follows DRAMsim's ``Most_Pending``
policy: among issuable requests, pick the one whose (rank, bank, row) has
the most queued requests, oldest first on ties; reads outrank writes until
the write backlog crosses a drain threshold.

Per-rank energy counters (activates, bursts, state residency including
CKE-low power-down sleep) are accumulated incrementally so the power model
can integrate them after the run.

.. warning:: The scheduling rules in this module (earliest-start timing,
   Most_Pending pick order, write-drain hysteresis, refresh accounting)
   are mirrored by the epoch-batched kernel in ``repro.cpu.batchkernel``
   and its compiled core in ``repro.cpu.epochnative``, which are held to
   *bit-identical* results by ``tests/test_epoch_kernel.py``.  Any change
   here must be replicated in both mirrors or the identity tests will
   fail.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.dram.power import RankEnergyCounters
from repro.dram.timing import DDR3Timing


@dataclass(slots=True)
class MemRequest:
    """One line-sized memory request as seen by the channel."""

    rank: int
    bank: int
    row: int
    is_write: bool
    arrive: int
    tag: object = None  #: opaque cookie returned to the caller on completion
    #: True for latency-critical demand fills; write-backs and ECC-state
    #: read-modify-writes are background traffic the scheduler defers.
    demand: bool = False
    issue: int = -1
    complete: int = -1


@dataclass
class _RankState:
    """Bank readiness plus activation-window and residency bookkeeping."""

    banks: int
    timing: DDR3Timing
    bank_ready: "list[int]" = field(init=False)
    act_times: deque = field(default_factory=lambda: deque(maxlen=4))
    busy_until: int = 0
    accounted_to: int = 0
    next_refresh: int = 0
    refreshes: int = 0
    counters: RankEnergyCounters = field(default_factory=RankEnergyCounters)

    def __post_init__(self):
        self.bank_ready = [0] * self.banks


class Channel:
    """One logical memory channel: queue, scheduler, banks, power counters."""

    #: Idle cycles after which an all-precharged rank drops CKE (sleep).
    POWERDOWN_DELAY = 15
    #: Background-drain watermarks: start draining write-backs/ECC RMWs when
    #: the backlog reaches HIGH, return to serving demand at LOW.  The
    #: hysteresis bounds demand-read starvation to short drain bursts.
    WRITE_DRAIN = 16
    WRITE_DRAIN_LOW = 4
    #: Queue capacity.  Sized well above the worst-case in-flight population
    #: (blocking loads + posted stores + write-back cascades) because the
    #: cores self-throttle through read latency; ``can_accept`` still lets
    #: callers apply explicit backpressure if they want a tighter bound.
    QUEUE_DEPTH = 4096

    def __init__(self, ranks: int, banks_per_rank: int = 8, timing: "DDR3Timing | None" = None):
        self.timing = timing or DDR3Timing()
        self.ranks = [_RankState(banks_per_rank, self.timing) for _ in range(ranks)]
        # Stagger refresh deadlines across ranks so they do not all block at once.
        for i, r in enumerate(self.ranks):
            r.next_refresh = (i + 1) * self.timing.trefi // max(1, len(self.ranks))
        self.queue: "list[MemRequest]" = []
        self.bus_free = 0
        self.last_was_write = False
        self.issued_requests = 0
        #: Issues taken through the single-entry-queue fast path in
        #: :meth:`_pick`; with :data:`issued_requests` this gives the
        #: telemetry plane's channel-pick fast-path rate.
        self.fast_picks = 0
        self._draining = False
        # Incremental scheduler state, maintained on enqueue/pop so each
        # issue decision avoids the O(queue) rebuild of the pending map and
        # class census that dominated the profile.
        self._pending_counts: "dict[tuple[int, int, int], int]" = {}
        self._demand_count = 0
        self._background_count = 0
        # Earliest refresh deadline hint; 0 forces the first _service_refresh
        # through the slow path, which syncs it (and absorbs any deadline a
        # test mutated before the run started).
        self._refresh_due = 0

    def _service_refresh(self, now: int) -> None:
        """Execute due auto-refreshes: all banks of the rank block for tRFC.

        Refreshes are processed when their deadline passes the current
        scheduling time; a request already issued with a future start may
        overlap the next deadline slightly (documented approximation).
        The earliest deadline across ranks is tracked in ``_refresh_due``
        so the no-refresh-due common case is a single compare.
        """
        if now < self._refresh_due:
            return
        t = self.timing
        for r in self.ranks:
            while r.next_refresh <= now:
                start = max(r.next_refresh, 0)
                end = start + t.trfc
                ready = r.bank_ready
                for b in range(len(ready)):
                    if ready[b] < end:
                        ready[b] = end
                self._account_rank(r, start)
                if end > r.busy_until:
                    r.busy_until = end
                r.refreshes += 1
                r.next_refresh += t.trefi
        self._refresh_due = min(r.next_refresh for r in self.ranks)

    # -- queue interface ---------------------------------------------------------------

    def can_accept(self) -> bool:
        return len(self.queue) < self.QUEUE_DEPTH

    def enqueue(self, req: MemRequest) -> None:
        queue = self.queue
        if len(queue) >= self.QUEUE_DEPTH:
            raise RuntimeError("channel queue overflow; caller must respect can_accept()")
        queue.append(req)
        key = (req.rank, req.bank, req.row)
        counts = self._pending_counts
        counts[key] = counts.get(key, 0) + 1
        if req.demand:
            self._demand_count += 1
        else:
            self._background_count += 1

    def _pop_index(self, idx: int) -> MemRequest:
        """Remove queue[idx], keeping the incremental scheduler state in sync."""
        req = self.queue.pop(idx)
        key = (req.rank, req.bank, req.row)
        counts = self._pending_counts
        n = counts[key] - 1
        if n:
            counts[key] = n
        else:
            del counts[key]
        if req.demand:
            self._demand_count -= 1
        else:
            self._background_count -= 1
        return req

    @property
    def pending(self) -> int:
        return len(self.queue)

    # -- residency accounting ------------------------------------------------------------

    def _account_rank(self, r: _RankState, upto: int) -> None:
        """Advance rank residency counters to cycle *upto*."""
        t0 = r.accounted_to
        if upto <= t0:
            return
        busy = r.busy_until
        active_end = busy if busy < upto else upto
        if active_end > t0:
            r.counters.cycles_active += active_end - t0
        idle_start = t0 if t0 > busy else busy
        if upto > idle_start:
            pd_point = busy + self.POWERDOWN_DELAY
            standby_end = idle_start if idle_start > pd_point else pd_point
            if standby_end > upto:
                standby_end = upto
            if standby_end > idle_start:
                r.counters.cycles_precharge_standby += standby_end - idle_start
            if upto > standby_end:
                r.counters.cycles_powerdown += upto - standby_end
        r.accounted_to = upto

    def finalize(self, end_cycle: int) -> None:
        """Account residency through the end of the simulation."""
        for r in self.ranks:
            self._account_rank(r, end_cycle)

    def energy_counters(self) -> "list[RankEnergyCounters]":
        return [r.counters for r in self.ranks]

    # -- scheduling ---------------------------------------------------------------------

    def _earliest_start(self, req: MemRequest, now: int) -> int:
        """Earliest cycle the ACT for *req* could issue.

        Called once per issuable candidate per scheduling step - the
        innermost loop of the whole timing plane - so comparisons are
        written out instead of chaining ``max()`` calls.
        """
        t = self.timing
        r = self.ranks[req.rank]
        is_write = req.is_write
        start = r.bank_ready[req.bank]
        if now > start:
            start = now
        act_times = r.act_times
        if act_times:
            v = act_times[-1] + t.trrd
            if v > start:
                start = v
            if len(act_times) == 4:
                v = act_times[0] + t.tfaw
                if v > start:
                    start = v
        # Data-bus slot: data appears trcd + tcl/tcwl after ACT.  Turnaround
        # gaps apply only on direction changes (write->read pays tWTR,
        # read->write the small rank turnaround), so batched writes stream
        # back to back.
        if is_write:
            v = self.bus_free + (0 if self.last_was_write else t.trtrs) - t.trcd - t.tcwl
        else:
            v = self.bus_free + (t.twtr if self.last_was_write else 0) - t.trcd - t.tcl
        if v > start:
            start = v
        # Power-down exit: if the rank has dropped CKE by `start`, add tXP.
        if start >= r.busy_until + self.POWERDOWN_DELAY:
            start += t.txp
        return start

    def _pick(self, now: int) -> "tuple[int, MemRequest] | None":
        """Most-Pending choice: (start_cycle, request) or None if queue empty.

        Uses the incrementally-maintained pending map and demand/background
        census (see :meth:`enqueue` / :meth:`_pop_index`); the slow
        rebuild-from-scratch version survives as :meth:`_pick_reference` and
        the two are property-tested to pick identical sequences.
        """
        queue = self.queue
        if not queue:
            return None
        if len(queue) == 1:
            # Fast path for the common near-empty queue.
            q = self._pop_index(0)
            self._draining = not q.demand
            self.fast_picks += 1
            return self._earliest_start(q, now), q
        background = self._background_count
        demand = self._demand_count
        # Demand fills outrank background traffic (write-backs and ECC-state
        # RMWs).  Background drains in *batches* - entered on a full backlog
        # or an idle read queue, exited at the low watermark - so writes
        # stream back to back instead of interleaving a bus-turnaround
        # penalty into every demand read.
        if background == 0:
            self._draining = False
        elif background >= self.WRITE_DRAIN or demand == 0:
            self._draining = True
        elif background <= self.WRITE_DRAIN_LOW and demand > 0:
            self._draining = False
        want_demand = not (self._draining and background > 0)
        # The serviced class is never empty: drain mode implies queued
        # background work, non-drain mode implies a queued demand request.
        # Readiness comes first - issuing a request whose bank frees far in
        # the future would reserve the data bus and head-of-line-block ready
        # work - then Most-Pending row grouping, then age.
        pending = self._pending_counts
        earliest = self._earliest_start
        best = None
        for idx, q in enumerate(queue):
            if q.demand != want_demand:
                continue
            start = earliest(q, now)
            key = (start, -pending[(q.rank, q.bank, q.row)], q.arrive, idx)
            if best is None or key < best[0]:
                best = (key, start, idx)
        _, start, idx = best
        return start, self._pop_index(idx)

    def _pick_reference(self, now: int) -> "tuple[int, MemRequest] | None":
        """Reference Most-Pending implementation, O(queue) rebuild per call.

        This is the original scheduler kept verbatim as ground truth for the
        incremental :meth:`_pick`: it recomputes the class census and the
        per-(rank, bank, row) pending map from the queue on every decision.
        Pops still route through :meth:`_pop_index` so the incremental
        bookkeeping stays consistent when tests interleave the two.
        """
        if not self.queue:
            return None
        if len(self.queue) == 1:
            q = self._pop_index(0)
            self._draining = not q.demand
            self.fast_picks += 1
            return self._earliest_start(q, now), q
        background = sum(1 for q in self.queue if not q.demand)
        demand = len(self.queue) - background
        if background == 0:
            self._draining = False
        elif background >= self.WRITE_DRAIN or demand == 0:
            self._draining = True
        elif background <= self.WRITE_DRAIN_LOW and demand > 0:
            self._draining = False
        drain_background = self._draining and background > 0
        pending: "dict[tuple[int, int, int], int]" = {}
        for q in self.queue:
            key = (q.rank, q.bank, q.row)
            pending[key] = pending.get(key, 0) + 1
        best = None
        for idx, q in enumerate(self.queue):
            if q.demand != (not drain_background):
                continue
            start = self._earliest_start(q, now)
            key = (start, -pending[(q.rank, q.bank, q.row)], q.arrive, idx)
            if best is None or key < best[0]:
                best = (key, start, idx)
        _, start, idx = best
        return start, self._pop_index(idx)

    def advance(self, now: int) -> "tuple[list[MemRequest], int | None]":
        """Issue at most one request at/after *now*.

        Returns (completed-issue list, next wakeup cycle or None).  The
        caller re-invokes at the returned cycle to keep the pipeline fed.
        """
        self._service_refresh(now)
        if not self.queue:  # idle wakeup: half of all advance calls
            return [], None
        picked = self._pick(now)
        if picked is None:
            return [], None
        start, req = picked
        t = self.timing
        r = self.ranks[req.rank]
        is_write = req.is_write

        self._account_rank(r, start)
        data_start = start + t.trcd + (t.tcwl if is_write else t.tcl)
        data_end = data_start + t.tburst
        busy_end = start + (t.bank_busy_write if is_write else t.bank_busy_read)
        r.bank_ready[req.bank] = busy_end
        r.act_times.append(start)
        if busy_end > r.busy_until:
            r.busy_until = busy_end
        self.bus_free = data_end

        r.counters.activates += 1
        if is_write:
            r.counters.write_bursts += 1
        else:
            r.counters.read_bursts += 1
        self.last_was_write = is_write

        req.issue = start
        req.complete = data_end
        self.issued_requests += 1
        # Next issue decision once the bus slot is claimed.
        next_wakeup = max(start + 1, self.bus_free - (t.trcd + t.tcl))
        return [req], next_wakeup
