"""Event-driven model of one DDR3 memory channel under close-page policy.

The controller keeps a single request queue per channel and issues one
request per scheduling step (the command/data bus serializes issue anyway at
one BL8 burst per ``tBURST``), while bank occupancy, tRRD/tFAW activation
windows, write-to-read turnaround, and rank power-down wakeups pipeline
across banks and ranks.  Scheduling follows DRAMsim's ``Most_Pending``
policy: among issuable requests, pick the one whose (rank, bank, row) has
the most queued requests, oldest first on ties; reads outrank writes until
the write backlog crosses a drain threshold.

Per-rank energy counters (activates, bursts, state residency including
CKE-low power-down sleep) are accumulated incrementally so the power model
can integrate them after the run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.dram.power import RankEnergyCounters
from repro.dram.timing import DDR3Timing


@dataclass
class MemRequest:
    """One line-sized memory request as seen by the channel."""

    rank: int
    bank: int
    row: int
    is_write: bool
    arrive: int
    tag: object = None  #: opaque cookie returned to the caller on completion
    #: True for latency-critical demand fills; write-backs and ECC-state
    #: read-modify-writes are background traffic the scheduler defers.
    demand: bool = False
    issue: int = -1
    complete: int = -1


@dataclass
class _RankState:
    """Bank readiness plus activation-window and residency bookkeeping."""

    banks: int
    timing: DDR3Timing
    bank_ready: "list[int]" = field(init=False)
    act_times: deque = field(default_factory=lambda: deque(maxlen=4))
    busy_until: int = 0
    accounted_to: int = 0
    next_refresh: int = 0
    refreshes: int = 0
    counters: RankEnergyCounters = field(default_factory=RankEnergyCounters)

    def __post_init__(self):
        self.bank_ready = [0] * self.banks


class Channel:
    """One logical memory channel: queue, scheduler, banks, power counters."""

    #: Idle cycles after which an all-precharged rank drops CKE (sleep).
    POWERDOWN_DELAY = 15
    #: Background-drain watermarks: start draining write-backs/ECC RMWs when
    #: the backlog reaches HIGH, return to serving demand at LOW.  The
    #: hysteresis bounds demand-read starvation to short drain bursts.
    WRITE_DRAIN = 16
    WRITE_DRAIN_LOW = 4
    #: Queue capacity.  Sized well above the worst-case in-flight population
    #: (blocking loads + posted stores + write-back cascades) because the
    #: cores self-throttle through read latency; ``can_accept`` still lets
    #: callers apply explicit backpressure if they want a tighter bound.
    QUEUE_DEPTH = 4096

    def __init__(self, ranks: int, banks_per_rank: int = 8, timing: "DDR3Timing | None" = None):
        self.timing = timing or DDR3Timing()
        self.ranks = [_RankState(banks_per_rank, self.timing) for _ in range(ranks)]
        # Stagger refresh deadlines across ranks so they do not all block at once.
        for i, r in enumerate(self.ranks):
            r.next_refresh = (i + 1) * self.timing.trefi // max(1, len(self.ranks))
        self.queue: "list[MemRequest]" = []
        self.bus_free = 0
        self.last_was_write = False
        self.issued_requests = 0
        self._draining = False

    def _service_refresh(self, now: int) -> None:
        """Execute due auto-refreshes: all banks of the rank block for tRFC.

        Refreshes are processed when their deadline passes the current
        scheduling time; a request already issued with a future start may
        overlap the next deadline slightly (documented approximation).
        """
        t = self.timing
        for r in self.ranks:
            while r.next_refresh <= now:
                start = max(r.next_refresh, 0)
                end = start + t.trfc
                for b in range(len(r.bank_ready)):
                    r.bank_ready[b] = max(r.bank_ready[b], end)
                self._account_rank(r, start)
                r.busy_until = max(r.busy_until, end)
                r.refreshes += 1
                r.next_refresh += t.trefi

    # -- queue interface ---------------------------------------------------------------

    def can_accept(self) -> bool:
        return len(self.queue) < self.QUEUE_DEPTH

    def enqueue(self, req: MemRequest) -> None:
        if not self.can_accept():
            raise RuntimeError("channel queue overflow; caller must respect can_accept()")
        self.queue.append(req)

    @property
    def pending(self) -> int:
        return len(self.queue)

    # -- residency accounting ------------------------------------------------------------

    def _account_rank(self, r: _RankState, upto: int) -> None:
        """Advance rank residency counters to cycle *upto*."""
        t0 = r.accounted_to
        if upto <= t0:
            return
        active_end = min(upto, r.busy_until)
        if active_end > t0:
            r.counters.cycles_active += active_end - t0
        idle_start = max(t0, r.busy_until)
        if upto > idle_start:
            pd_point = r.busy_until + self.POWERDOWN_DELAY
            standby_end = min(upto, max(idle_start, pd_point))
            if standby_end > idle_start:
                r.counters.cycles_precharge_standby += standby_end - idle_start
            if upto > standby_end:
                r.counters.cycles_powerdown += upto - standby_end
        r.accounted_to = upto

    def finalize(self, end_cycle: int) -> None:
        """Account residency through the end of the simulation."""
        for r in self.ranks:
            self._account_rank(r, end_cycle)

    def energy_counters(self) -> "list[RankEnergyCounters]":
        return [r.counters for r in self.ranks]

    # -- scheduling ---------------------------------------------------------------------

    def _earliest_start(self, req: MemRequest, now: int) -> int:
        """Earliest cycle the ACT for *req* could issue."""
        t = self.timing
        r = self.ranks[req.rank]
        start = max(now, r.bank_ready[req.bank])
        if r.act_times:
            start = max(start, r.act_times[-1] + t.trrd)
            if len(r.act_times) == 4:
                start = max(start, r.act_times[0] + t.tfaw)
        # Data-bus slot: data appears trcd + tcl/tcwl after ACT.  Turnaround
        # gaps apply only on direction changes (write->read pays tWTR,
        # read->write the small rank turnaround), so batched writes stream
        # back to back.
        data_delay = t.trcd + (t.tcwl if req.is_write else t.tcl)
        if self.last_was_write and not req.is_write:
            gap = t.twtr
        elif not self.last_was_write and req.is_write:
            gap = t.trtrs
        else:
            gap = 0
        start = max(start, self.bus_free + gap - data_delay)
        # Power-down exit: if the rank has dropped CKE by `start`, add tXP.
        if start >= r.busy_until + self.POWERDOWN_DELAY:
            start += t.txp
        return start

    def _pick(self, now: int) -> "tuple[int, MemRequest] | None":
        """Most-Pending choice: (start_cycle, request) or None if queue empty."""
        if not self.queue:
            return None
        if len(self.queue) == 1:
            # Fast path for the common near-empty queue: no class or
            # pending-count bookkeeping needed.
            q = self.queue.pop()
            self._draining = not q.demand
            return self._earliest_start(q, now), q
        background = sum(1 for q in self.queue if not q.demand)
        demand = len(self.queue) - background
        # Demand fills outrank background traffic (write-backs and ECC-state
        # RMWs).  Background drains in *batches* - entered on a full backlog
        # or an idle read queue, exited at the low watermark - so writes
        # stream back to back instead of interleaving a bus-turnaround
        # penalty into every demand read.
        if background == 0:
            self._draining = False
        elif background >= self.WRITE_DRAIN or demand == 0:
            self._draining = True
        elif background <= self.WRITE_DRAIN_LOW and demand > 0:
            self._draining = False
        drain_background = self._draining and background > 0
        # Count queued requests per (rank, bank, row) for the pending metric.
        pending: "dict[tuple[int, int, int], int]" = {}
        for q in self.queue:
            key = (q.rank, q.bank, q.row)
            pending[key] = pending.get(key, 0) + 1
        # The serviced class is never empty: drain mode implies queued
        # background work, non-drain mode implies a queued demand request.
        # Readiness comes first - issuing a request whose bank frees far in
        # the future would reserve the data bus and head-of-line-block ready
        # work - then Most-Pending row grouping, then age.
        best = None
        for idx, q in enumerate(self.queue):
            if q.demand != (not drain_background):
                continue
            start = self._earliest_start(q, now)
            key = (start, -pending[(q.rank, q.bank, q.row)], q.arrive, idx)
            if best is None or key < best[0]:
                best = (key, start, idx)
        _, start, idx = best
        return start, self.queue.pop(idx)

    def advance(self, now: int) -> "tuple[list[MemRequest], int | None]":
        """Issue at most one request at/after *now*.

        Returns (completed-issue list, next wakeup cycle or None).  The
        caller re-invokes at the returned cycle to keep the pipeline fed.
        """
        self._service_refresh(now)
        picked = self._pick(now)
        if picked is None:
            return [], None
        start, req = picked
        t = self.timing
        r = self.ranks[req.rank]

        self._account_rank(r, start)
        data_start = start + t.trcd + (t.tcwl if req.is_write else t.tcl)
        data_end = data_start + t.tburst
        occupancy = t.bank_busy_write if req.is_write else t.bank_busy_read
        r.bank_ready[req.bank] = start + occupancy
        r.act_times.append(start)
        r.busy_until = max(r.busy_until, start + occupancy)
        self.bus_free = data_end

        r.counters.activates += 1
        if req.is_write:
            r.counters.write_bursts += 1
        else:
            r.counters.read_bursts += 1
        self.last_was_write = req.is_write

        req.issue = start
        req.complete = data_end
        self.issued_requests += 1
        # Next issue decision once the bus slot is claimed.
        next_wakeup = max(start + 1, self.bus_free - (t.trcd + t.tcl))
        return [req], next_wakeup
