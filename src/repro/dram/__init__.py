"""DDR3 memory-system substrate (the reproduction's stand-in for DRAMsim).

Timing (:mod:`~repro.dram.timing`), chip electricals
(:mod:`~repro.dram.chip`), TN-41-01 energy integration
(:mod:`~repro.dram.power`), the close-page Most-Pending channel model
(:mod:`~repro.dram.channel`), address mapping (:mod:`~repro.dram.mapping`),
and the multi-channel facade (:mod:`~repro.dram.system`).
"""

from repro.dram.channel import Channel, MemRequest
from repro.dram.chip import CHIP_POWER, ChipPower, chip_power_for_width
from repro.dram.mapping import AddressMapping, DramCoord
from repro.dram.power import EnergyBreakdown, RankEnergyCounters, RankPowerModel
from repro.dram.system import MemorySystem, MemorySystemConfig
from repro.dram.timing import DDR3_2000, DDR3Timing

__all__ = [
    "Channel",
    "MemRequest",
    "CHIP_POWER",
    "ChipPower",
    "chip_power_for_width",
    "AddressMapping",
    "DramCoord",
    "EnergyBreakdown",
    "RankEnergyCounters",
    "RankPowerModel",
    "MemorySystem",
    "MemorySystemConfig",
    "DDR3_2000",
    "DDR3Timing",
]
