"""Physical-address to DRAM-coordinate mapping.

Reproduces the paper's policy: adjacent physical pages interleave across
logical channels (balancing bandwidth), while within a channel consecutive
lines of a page spread across ranks and banks (DRAMsim's
``High_Performance_Map`` spirit) so close-page accesses pipeline across
banks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple


class DramCoord(NamedTuple):
    """Where a line lands: channel, rank, bank, and row (grouping key)."""

    channel: int
    rank: int
    bank: int
    row: int


#: Process-wide decode memos, keyed by the mapping's defining parameters.
#: The mapping is a pure function of those parameters, so every
#: ``AddressMapping`` (and hence every ``SimSystem``) with the same
#: geometry shares one coordinate table instead of re-decoding the
#: workload footprint per config cell of an evaluation matrix.
_SHARED_TABLES: "dict[tuple, dict]" = {}

#: Same idea for the epoch kernel's packed-decode memo
#: (addr -> (channel, global_rank, global_bank, packed_key)); keyed
#: additionally by the channel bank count because the flat global-bank
#: index depends on the memory system's geometry, not only the mapping's.
_PACKED_TABLES: "dict[tuple, dict]" = {}


@dataclass(frozen=True)
class AddressMapping:
    """Page-interleaved channel mapping with a configurable intra-channel policy.

    ``policy="interleave"`` (default, DRAMsim's High_Performance_Map spirit)
    spreads consecutive lines of a page across ranks and banks so close-page
    accesses pipeline; ``policy="sequential"`` keeps a page's lines in one
    bank (rotating per page), serializing them behind tRC - the ablation
    case showing why the high-performance map matters.
    """

    channels: int
    ranks_per_channel: int
    banks_per_rank: int = 8
    line_size: int = 64
    page_size: int = 4096
    policy: str = "interleave"
    #: Hot-page placement (Section VI-A): line addresses at or above
    #: ``hot_arena_base_line`` are routed to ranks ``[0, hot_ranks)``;
    #: everything else uses the remaining ranks.  None disables arenas.
    hot_arena_base_line: "int | None" = None
    hot_ranks: int = 1
    #: Decode memo: the mapping is a pure function of the address and the
    #: timing plane re-maps the same LLC-footprint lines millions of times.
    #: Shared across instances with identical parameters via
    #: :data:`_SHARED_TABLES` (see ``__post_init__``).
    _coord_cache: "dict[int, DramCoord]" = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self):
        if self.policy not in ("interleave", "sequential"):
            raise ValueError(f"unknown mapping policy {self.policy!r}")
        if self.hot_arena_base_line is not None and not (
            0 < self.hot_ranks < self.ranks_per_channel
        ):
            raise ValueError("hot_ranks must leave at least one cold rank")
        key = self._table_key()
        cache = _SHARED_TABLES.get(key)
        if cache is None:
            cache = _SHARED_TABLES[key] = {}
        object.__setattr__(self, "_coord_cache", cache)

    def _table_key(self) -> tuple:
        return (
            self.channels,
            self.ranks_per_channel,
            self.banks_per_rank,
            self.line_size,
            self.page_size,
            self.policy,
            self.hot_arena_base_line,
            self.hot_ranks,
        )

    def packed_cache(self, channel_banks: int) -> "dict[int, tuple]":
        """The shared packed-decode memo used by ``repro.cpu.batchkernel``.

        *channel_banks* (banks per rank of the owning memory system) is
        part of the key because the packed global-bank index depends on it.
        """
        key = self._table_key() + (channel_banks,)
        table = _PACKED_TABLES.get(key)
        if table is None:
            table = _PACKED_TABLES[key] = {}
        return table

    @property
    def lines_per_page(self) -> int:
        return self.page_size // self.line_size

    def map_line(self, line_addr: int) -> DramCoord:
        """Map a line-granularity address to its DRAM coordinates (memoized)."""
        coord = self._coord_cache.get(line_addr)
        if coord is None:
            coord = self._coord_cache[line_addr] = self._decode(line_addr)
        return coord

    def _decode(self, line_addr: int) -> DramCoord:
        page, offset = divmod(line_addr, self.lines_per_page)
        channel = page % self.channels
        page_in_chan = page // self.channels
        if self.hot_arena_base_line is not None:
            # The arena is bounded below the ECC-line regions (>= 1 << 40),
            # which stay with the cold ranks.
            hot = self.hot_arena_base_line <= line_addr < (1 << 40)
            rank_lo, rank_hi = (0, self.hot_ranks) if hot else (
                self.hot_ranks, self.ranks_per_channel
            )
        else:
            rank_lo, rank_hi = 0, self.ranks_per_channel
        n_ranks = rank_hi - rank_lo
        banks_total = n_ranks * self.banks_per_rank
        if self.policy == "interleave":
            # Rotate the bank stripe per page so bank 0 is not always hit first.
            bank_idx = (offset + page_in_chan) % banks_total
        else:  # sequential: the whole page lands in one bank
            bank_idx = page_in_chan % banks_total
        rank, bank = divmod(bank_idx, self.banks_per_rank)
        return DramCoord(channel, rank_lo + rank, bank, page_in_chan)

    def map_bytes(self, byte_addr: int) -> DramCoord:
        return self.map_line(byte_addr // self.line_size)
