"""DRAM chip electrical parameters (Micron 2 Gb DDR3 family).

IDD values are transcribed approximations of the public Micron 2 Gb DDR3
SDRAM datasheet (die revision D, fastest speed grade), per chip width.
Wider chips burn more dynamic current (more I/O, wider internal prefetch)
but a rank needs fewer of them - the trade at the heart of the paper's
energy results.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ChipPower:
    """IDD currents in mA and supply voltage for one DRAM chip."""

    width: int  #: data bus width in bits (4, 8, 16)
    vdd: float = 1.5
    idd0: float = 95.0  #: one-bank ACT-PRE current
    idd2p: float = 12.0  #: precharge power-down (slow exit)
    idd2n: float = 42.0  #: precharge standby
    idd3p: float = 35.0  #: active power-down
    idd3n: float = 45.0  #: active standby
    idd4r: float = 180.0  #: burst read
    idd4w: float = 185.0  #: burst write
    idd5b: float = 215.0  #: burst refresh

    #: Termination/IO energy per data bit transferred (pJ/bit), covering DQ
    #: switching and ODT per TN-41-01's termination budget.
    io_pj_per_bit: float = 5.0


#: Per-width parameter sets for 2 Gb DDR3 (die rev. D approximations).
CHIP_POWER = {
    4: ChipPower(width=4, idd0=95.0, idd2p=12.0, idd2n=42.0, idd3p=35.0, idd3n=45.0,
                 idd4r=180.0, idd4w=185.0, idd5b=215.0),
    8: ChipPower(width=8, idd0=95.0, idd2p=12.0, idd2n=42.0, idd3p=35.0, idd3n=45.0,
                 idd4r=190.0, idd4w=195.0, idd5b=215.0),
    16: ChipPower(width=16, idd0=110.0, idd2p=14.0, idd2n=47.0, idd3p=40.0, idd3n=52.0,
                  idd4r=240.0, idd4w=245.0, idd5b=240.0),
}


def chip_power_for_width(width: int) -> ChipPower:
    """Parameter set for a chip of *width* bits."""
    try:
        return CHIP_POWER[width]
    except KeyError:
        raise ValueError(f"no power model for X{width} chips") from None
