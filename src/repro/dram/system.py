"""Multi-channel DDR3 memory system: channels + mapping + power integration.

This is the timing/energy substrate standing in for DRAMsim: the LLC model
pushes line requests in, completion times come back through the simulation
event loop, and per-rank command/residency counters are integrated into an
:class:`~repro.dram.power.EnergyBreakdown` at the end of a run.

.. warning:: Enqueue/decode behaviour here (address mapping dispatch,
   64-byte access accounting, finalize-time residency flush) is mirrored
   by ``repro.cpu.batchkernel`` and ``repro.cpu.epochnative`` under the
   bit-identity contract enforced by ``tests/test_epoch_kernel.py``;
   changes must land in all three places together.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.channel import Channel, MemRequest
from repro.dram.mapping import AddressMapping
from repro.dram.power import EnergyBreakdown, RankEnergyCounters, RankPowerModel
from repro.dram.timing import DDR3Timing


@dataclass
class MemorySystemConfig:
    """Geometry and device parameters of one memory system."""

    channels: int
    ranks_per_channel: int
    chip_widths: "list[int]"  #: per-chip widths of one rank (mixed chips allowed)
    line_size: int = 64
    banks_per_rank: int = 8
    timing: DDR3Timing = field(default_factory=DDR3Timing)
    mapping_policy: str = "interleave"
    #: Section VI-A heterogeneous channels: one chip-width list per rank
    #: (length ``ranks_per_channel``), overriding ``chip_widths``; energy is
    #: then integrated with a per-rank power model.
    rank_chip_widths: "list[list[int]] | None" = None
    #: Hot-page arena routing (see AddressMapping).
    hot_arena_base_line: "int | None" = None
    hot_ranks: int = 1


class MemorySystem:
    """The paper's memory substrate: N logical channels of DDR3 ranks."""

    def __init__(self, config: MemorySystemConfig):
        self.config = config
        self.timing = config.timing
        self.channels = [
            Channel(config.ranks_per_channel, config.banks_per_rank, config.timing)
            for _ in range(config.channels)
        ]
        self.mapping = AddressMapping(
            channels=config.channels,
            ranks_per_channel=config.ranks_per_channel,
            line_size=config.line_size,
            policy=config.mapping_policy,
            hot_arena_base_line=config.hot_arena_base_line,
            hot_ranks=config.hot_ranks,
        )
        if config.rank_chip_widths is not None:
            if len(config.rank_chip_widths) != config.ranks_per_channel:
                raise ValueError("rank_chip_widths must list one entry per rank")
            self._power_models = [
                RankPowerModel(w, config.timing, config.line_size)
                for w in config.rank_chip_widths
            ]
        else:
            self._power_models = [
                RankPowerModel(config.chip_widths, config.timing, config.line_size)
            ] * config.ranks_per_channel
        #: 64B-granularity access counter (Fig. 16's metric: a 128B line
        #: transfer counts as two accesses).
        self.accesses_64b = 0
        self._units_64b = max(1, config.line_size // 64)

    # -- request interface ------------------------------------------------------------------

    def build_request(
        self, line_addr: int, is_write: bool, now: int, tag: object, demand: bool = False
    ) -> "tuple[int, MemRequest]":
        """Map an address and construct the channel request (not yet queued)."""
        coord = self.mapping.map_line(line_addr)
        req = MemRequest(
            rank=coord.rank,
            bank=coord.bank,
            row=coord.row,
            is_write=is_write,
            arrive=now,
            tag=tag,
            demand=demand,
        )
        return coord.channel, req

    def enqueue(
        self, line_addr: int, is_write: bool, now: int, tag: object, demand: bool = False
    ) -> int:
        """Queue a line request; returns the channel index it landed on.

        Open-codes :meth:`build_request` - this is the timing plane's
        request hot path (millions of calls per sweep).
        """
        coord = self.mapping.map_line(line_addr)
        ch = coord[0]
        self.channels[ch].enqueue(
            MemRequest(
                rank=coord[1],
                bank=coord[2],
                row=coord[3],
                is_write=is_write,
                arrive=now,
                tag=tag,
                demand=demand,
            )
        )
        self.accesses_64b += self._units_64b
        return ch

    def advance_channel(self, index: int, now: int) -> "tuple[list[MemRequest], int | None]":
        """Let channel *index* issue work at *now*; see :meth:`Channel.advance`."""
        return self.channels[index].advance(now)

    def pending(self) -> int:
        return sum(ch.pending for ch in self.channels)

    # -- energy -------------------------------------------------------------------------------

    def finalize(self, end_cycle: int) -> None:
        """Account residency through *end_cycle* (idempotent, resumable)."""
        for ch in self.channels:
            ch.finalize(end_cycle)

    def snapshot_counters(self, now: int) -> "list[list[RankEnergyCounters]]":
        """Deep copy of all rank counters as of *now* (for warm-up subtraction)."""
        import copy

        self.finalize(now)
        return [copy.deepcopy(ch.energy_counters()) for ch in self.channels]

    def energy_since(
        self, baseline: "list[list[RankEnergyCounters]] | None" = None
    ) -> EnergyBreakdown:
        """Integrate energy, optionally net of a warm-up *baseline* snapshot."""
        total = EnergyBreakdown()
        for ci, ch in enumerate(self.channels):
            for ri, counters in enumerate(ch.energy_counters()):
                if baseline is not None:
                    b = baseline[ci][ri]
                    counters = RankEnergyCounters(
                        activates=counters.activates - b.activates,
                        read_bursts=counters.read_bursts - b.read_bursts,
                        write_bursts=counters.write_bursts - b.write_bursts,
                        cycles_active=counters.cycles_active - b.cycles_active,
                        cycles_precharge_standby=counters.cycles_precharge_standby
                        - b.cycles_precharge_standby,
                        cycles_powerdown=counters.cycles_powerdown - b.cycles_powerdown,
                    )
                total = total + self._power_models[ri].integrate(counters)
        return total
