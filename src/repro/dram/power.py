"""DRAM energy integration following Micron TN-41-01.

The model charges, per rank:

* **activate energy** per ACT-PRE pair, from IDD0 net of the background
  current that would flow anyway during tRC;
* **burst energy** per read/write, from IDD4R/IDD4W net of active standby,
  for the burst duration, plus a per-bit I/O+termination term;
* **refresh energy**, amortized as (IDD5B - IDD3N) for tRFC every tREFI;
* **background energy** from the state-residency histogram the channel
  model records: active standby, precharge standby, and precharge
  power-down (the "sleep mode" the paper's close-page policy enables).

All energies are in nanojoules; the per-access dynamic terms scale with the
number and width of chips in the rank, which is the first-order effect
behind Figures 10-13.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.chip import ChipPower, chip_power_for_width
from repro.dram.timing import DDR3Timing


@dataclass
class RankEnergyCounters:
    """Raw event/residency tallies for one rank (filled by the channel model)."""

    activates: int = 0
    read_bursts: int = 0
    write_bursts: int = 0
    cycles_active: float = 0.0  #: cycles with >=1 bank open (standby, CKE high)
    cycles_precharge_standby: float = 0.0  #: all banks closed, CKE high
    cycles_powerdown: float = 0.0  #: all banks closed, CKE low


@dataclass
class EnergyBreakdown:
    """Energy in nJ, split the way Figures 12 and 13 report it."""

    activate: float = 0.0
    read: float = 0.0
    write: float = 0.0
    refresh: float = 0.0
    background: float = 0.0

    @property
    def dynamic(self) -> float:
        """Energy of read, write, and activate commands (paper's definition)."""
        return self.activate + self.read + self.write

    @property
    def total(self) -> float:
        return self.dynamic + self.refresh + self.background

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            self.activate + other.activate,
            self.read + other.read,
            self.write + other.write,
            self.refresh + other.refresh,
            self.background + other.background,
        )


@dataclass
class RankPowerModel:
    """Energy integration for one rank of (possibly mixed-width) chips."""

    chip_widths: "list[int]"
    timing: DDR3Timing = field(default_factory=DDR3Timing)
    line_bytes: int = 64

    def __post_init__(self):
        self._chips = [chip_power_for_width(w) for w in self.chip_widths]

    # -- per-chip primitives (nJ) ---------------------------------------------------------

    def _act_energy_chip(self, p: ChipPower) -> float:
        """ACT+PRE pair energy, net of background, per TN-41-01."""
        t = self.timing
        # IDD0 is measured cycling ACT-PRE at tRC with the bank active tRAS
        # then precharged; subtract the standby current of the same pattern.
        background_ma = (p.idd3n * t.tras + p.idd2n * (t.trc - t.tras)) / t.trc
        return (p.idd0 - background_ma) * p.vdd * t.trc * t.tck_ns * 1e-3  # mA*V*ns -> nJ

    def _burst_energy_chip(self, p: ChipPower, write: bool) -> float:
        t = self.timing
        idd = p.idd4w if write else p.idd4r
        core = (idd - p.idd3n) * p.vdd * t.tburst * t.tck_ns * 1e-3
        bits = p.width * 2 * t.tburst  # DDR: two beats per cycle
        io = p.io_pj_per_bit * bits * 1e-3  # pJ -> nJ
        return core + io

    def _refresh_power_chip(self, p: ChipPower) -> float:
        """Average refresh power in mW (added on top of background)."""
        t = self.timing
        return (p.idd5b - p.idd3n) * p.vdd * (t.trfc / t.trefi)

    # -- rank-level integration -------------------------------------------------------------

    def integrate(self, counters: RankEnergyCounters) -> EnergyBreakdown:
        """Total rank energy for the recorded events and residencies."""
        t = self.timing
        out = EnergyBreakdown()
        ns = t.tck_ns
        for p in self._chips:
            out.activate += counters.activates * self._act_energy_chip(p)
            out.read += counters.read_bursts * self._burst_energy_chip(p, write=False)
            out.write += counters.write_bursts * self._burst_energy_chip(p, write=True)
            total_cycles = (
                counters.cycles_active
                + counters.cycles_precharge_standby
                + counters.cycles_powerdown
            )
            out.refresh += self._refresh_power_chip(p) * total_cycles * ns * 1e-3  # mW*ns -> nJ
            out.background += (
                p.idd3n * counters.cycles_active
                + p.idd2n * counters.cycles_precharge_standby
                + p.idd2p * counters.cycles_powerdown
            ) * p.vdd * ns * 1e-3
        return out

    def energy_per_read(self) -> float:
        """Dynamic energy of one isolated close-page read (nJ), for quick math."""
        c = RankEnergyCounters(activates=1, read_bursts=1)
        e = self.integrate(c)
        return e.dynamic
