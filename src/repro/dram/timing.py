"""DDR3 timing parameters.

Values model the paper's setup: 2 Gb DDR3 chips with a 1 GHz memory clock
(2000 MT/s data rate), parameters following the Micron 2 Gb DDR3 datasheet
die revision D scaled to tCK = 1 ns.  All fields are integer cycle counts of
that clock; close-page operation means every access is an ACT - RD/WR with
auto-precharge - (implicit PRE) sequence.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DDR3Timing:
    """DDR3 device timing in memory-clock cycles (tCK = 1 ns at 1 GHz)."""

    tck_ns: float = 1.0
    #: ACT to internal read/write delay.
    trcd: int = 14
    #: CAS latency (read command to first data).
    tcl: int = 14
    #: CAS write latency.
    tcwl: int = 10
    #: Precharge to ACT delay.
    trp: int = 14
    #: ACT to PRE minimum (row active time).
    tras: int = 33
    #: ACT to ACT, same bank (tRAS + tRP).
    trc: int = 47
    #: Data burst occupancy of the bus (BL8 at DDR = 4 clock cycles).
    tburst: int = 4
    #: ACT to ACT, different banks of the same rank.
    trrd: int = 6
    #: Four-activate window per rank.
    tfaw: int = 32
    #: Write recovery (last write data to implicit precharge).
    twr: int = 15
    #: Read to precharge (folded into the auto-precharge point).
    trtp: int = 8
    #: Write-to-read turnaround, same rank.
    twtr: int = 8
    #: Rank-to-rank bus turnaround penalty.
    trtrs: int = 2
    #: Power-down exit latency.
    txp: int = 6
    #: Refresh cycle time and interval (energy accounting only).
    trfc: int = 160
    trefi: int = 7800

    @property
    def read_latency(self) -> int:
        """ACT to last data beat for a read on an idle, precharged bank."""
        return self.trcd + self.tcl + self.tburst

    @property
    def bank_busy_read(self) -> int:
        """ACT-to-ACT occupancy of a bank for a close-page read."""
        # Auto-precharge: max(tRAS, tRCD + tRTP) + tRP, floored by tRC.
        return max(self.trc, self.trcd + self.trtp + self.trp)

    @property
    def bank_busy_write(self) -> int:
        """ACT-to-ACT occupancy of a bank for a close-page write."""
        return max(self.trc, self.trcd + self.tcwl + self.tburst + self.twr + self.trp)


#: Default instance used throughout the evaluation.
DDR3_2000 = DDR3Timing()
