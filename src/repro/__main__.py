"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro list                 # available artifacts
    python -m repro table3               # capacity overheads
    python -m repro fig18                # scrub-window risk
    python -m repro fig10 [--dual]       # EPI reductions (runs/loads the sweep)
    python -m repro report               # quick deployment report
"""

from __future__ import annotations

import argparse
import sys


def _fig_table(args) -> str:
    from repro.experiments import (
        figure1_breakdown,
        figure2,
        figure8,
        figure18,
        format_table,
        table3,
    )

    name = args.artifact
    if name == "fig1":
        rows = figure1_breakdown()
        return format_table(
            ["scheme", "detection", "correction", "total"],
            [[r.label, f"{r.detection:.1%}", f"{r.correction:.1%}", f"{r.total:.1%}"] for r in rows],
            title="Figure 1: ECC capacity overhead breakdown",
        )
    if name == "fig2":
        rows = figure2()
        return format_table(
            ["FIT/chip", "MTBF (days)"],
            [[r.fit_per_chip, f"{r.mtbf_days:.0f}"] for r in rows],
            title="Figure 2: mean time between faults in different channels",
        )
    if name == "fig8":
        rows = figure8(trials=args.trials)
        return format_table(
            ["channels", "avg", "p99.9"],
            [[r.channels, f"{r.mean_fraction:.3%}", f"{r.p999_fraction:.2%}"] for r in rows],
            title="Figure 8: EOL fraction of memory with materialized ECC bits",
        )
    if name == "fig18":
        rows = figure18()
        return format_table(
            ["window (h)"] + [f"@{f} FIT" for f in (25, 50, 100)],
            [[r.window_hours] + [f"{r.probabilities[f]:.2e}" for f in (25, 50, 100)] for r in rows],
            title="Figure 18: P(multi-channel faults within one scrub window, 7 yr)",
        )
    if name == "table3":
        rows = table3(trials=args.trials)
        return format_table(
            ["scheme", "overhead", "EOL avg"],
            [[r.label, f"{r.total:.1%}",
              f"{r.eol_average:.1%}" if r.eol_average is not None else "-"] for r in rows],
            title="Table III: capacity overheads",
        )
    raise SystemExit(f"unknown artifact {name!r}; try 'python -m repro list'")


def _sweep_figure(args) -> str:
    from repro.experiments import epi_report, perf_report, traffic_report

    sc = "dual" if args.dual else "quad"
    name = args.artifact
    if name in ("fig10", "fig11", "fig12", "fig13"):
        metric = {"fig10": "total", "fig11": "total", "fig12": "dynamic", "fig13": "background"}[name]
        rep = epi_report("dual" if name == "fig11" else sc, metric=metric)
        avgs = rep.averages()
        lines = [f"{name}: EPI reduction averages ({rep.system_class}, metric={metric})"]
        for (bin_name, prop, base), v in sorted(avgs.items()):
            lines.append(f"  {bin_name:5s} {prop:12s} vs {base:12s}: {v:+.1%}")
        return "\n".join(lines)
    if name in ("fig14", "fig15"):
        rep = perf_report("dual" if name == "fig15" else sc)
    elif name in ("fig16", "fig17"):
        rep = traffic_report("dual" if name == "fig17" else sc)
    else:
        raise SystemExit(f"unknown artifact {name!r}")
    from repro.experiments import COMPARISONS

    lines = [f"{name}: normalized geomeans ({rep.system_class})"]
    for prop, base in COMPARISONS:
        lines.append(f"  {prop:12s} vs {base:12s}: {rep.average(prop, base):.3f}")
    return "\n".join(lines)


def _report(args) -> str:
    from repro.core import ECCParityScheme
    from repro.ecc import LotEcc5
    from repro.experiments import format_table
    from repro.faults import (
        EolCapacitySim,
        MemoryOrg,
        added_uncorrectable_interval_years,
        mean_time_between_channel_faults_days,
    )

    ep = ECCParityScheme(LotEcc5(), args.channels)
    eol = EolCapacitySim(MemoryOrg(channels=args.channels), seed=0).run(args.trials)
    return format_table(
        ["metric", "value"],
        [
            ["static capacity overhead", f"{ep.capacity_overhead:.2%}"],
            ["EOL average (7 yr)", f"{ep.eol_capacity_overhead(eol.mean):.2%}"],
            ["MTBF between channel faults", f"{mean_time_between_channel_faults_days(args.fit):,.0f} days"],
            ["added-UE interval (8h scrub)", f"{added_uncorrectable_interval_years(8.0, args.fit):,.0f} yr"],
        ],
        title=f"ECC Parity over LOT-ECC5, N={args.channels}, {args.fit:g} FIT/chip",
    )


ARTIFACTS = {
    "fig1": _fig_table, "fig2": _fig_table, "fig8": _fig_table,
    "fig18": _fig_table, "table3": _fig_table,
    "fig10": _sweep_figure, "fig11": _sweep_figure, "fig12": _sweep_figure,
    "fig13": _sweep_figure, "fig14": _sweep_figure, "fig15": _sweep_figure,
    "fig16": _sweep_figure, "fig17": _sweep_figure,
}


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures of the ECC Parity paper (SC'14).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available artifacts")

    p_all = sub.add_parser("all", help="render every artifact (slow on a cold cache)")
    p_all.add_argument("--trials", type=int, default=10000)
    p_all.add_argument("--dual", action="store_true")

    for name in ARTIFACTS:
        p = sub.add_parser(name, help=f"render {name}")
        p.add_argument("--dual", action="store_true", help="dual-channel-equivalent class")
        p.add_argument("--trials", type=int, default=10000, help="Monte Carlo trials")
        p.set_defaults(artifact=name)

    p_rep = sub.add_parser("report", help="quick ECC Parity deployment report")
    p_rep.add_argument("--channels", type=int, default=8)
    p_rep.add_argument("--fit", type=float, default=44.0)
    p_rep.add_argument("--trials", type=int, default=10000)

    args = parser.parse_args(argv)
    if args.command == "list":
        print("artifacts:", ", ".join(sorted(ARTIFACTS)), "+ report, all")
        return 0
    if args.command == "report":
        print(_report(args))
        return 0
    if args.command == "all":
        for name in sorted(ARTIFACTS):
            args.artifact = name
            print(ARTIFACTS[name](args))
            print()
        return 0
    print(ARTIFACTS[args.artifact](args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
