"""Synthetic workload profiles and reference-stream generators."""

from repro.workloads.generator import INSTANCE_STRIDE_LINES, make_core_traces
from repro.workloads.tracefile import load_traces, record, trace_summary
from repro.workloads.profiles import (
    ALL_WORKLOADS,
    PARSEC,
    SPEC,
    WORKLOADS_BY_NAME,
    WorkloadProfile,
)

__all__ = [
    "INSTANCE_STRIDE_LINES",
    "make_core_traces",
    "load_traces",
    "record",
    "trace_summary",
    "ALL_WORKLOADS",
    "PARSEC",
    "SPEC",
    "WORKLOADS_BY_NAME",
    "WorkloadProfile",
]
