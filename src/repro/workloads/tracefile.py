"""Trace recording and replay.

The timing plane consumes any iterator of ``(gap, line_addr, is_write)``
items, so real application traces (e.g. from a PIN/DynamoRIO tool or a
processor simulator) drop in wherever the synthetic generators go.  This
module provides a compact on-disk format for them:

* one ``.npz`` file per workload, with per-core arrays ``gap<i>`` (uint32
  instruction gaps), ``addr<i>`` (uint64 line addresses), ``write<i>``
  (bool);
* :func:`record` captures any iterator (synthetic generators included) for
  exact replay; :func:`load_traces` streams the file back as iterators.

Replaying a recorded trace reproduces a simulation bit-for-bit, which makes
cross-machine result comparison and regression pinning possible.
"""

from __future__ import annotations

import itertools
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np


def record(
    traces: "list[Iterator]",
    path: "str | Path",
    items_per_core: int,
) -> Path:
    """Capture *items_per_core* items from each trace and write one file."""
    path = Path(path)
    arrays = {}
    for cid, trace in enumerate(traces):
        items = list(itertools.islice(trace, items_per_core))
        if not items:
            raise ValueError(f"trace {cid} yielded no items")
        gaps, addrs, writes = zip(*items)
        arrays[f"gap{cid}"] = np.asarray(gaps, dtype=np.uint32)
        arrays[f"addr{cid}"] = np.asarray(addrs, dtype=np.uint64)
        arrays[f"write{cid}"] = np.asarray(writes, dtype=bool)
    np.savez_compressed(path, cores=np.int64(len(traces)), **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def _stream(gaps, addrs, writes, repeat: bool):
    while True:
        for g, a, w in zip(gaps, addrs, writes):
            yield int(g), int(a), bool(w)
        if not repeat:
            return


def load_traces(path: "str | Path", repeat: bool = False) -> "list[Iterator]":
    """Load a recorded trace file back into per-core iterators.

    ``repeat=True`` loops the trace forever (useful when the recorded
    window is shorter than the simulation budget).
    """
    with np.load(Path(path)) as f:
        cores = int(f["cores"])
        data = [
            (f[f"gap{c}"].copy(), f[f"addr{c}"].copy(), f[f"write{c}"].copy())
            for c in range(cores)
        ]
    return [_stream(g, a, w, repeat) for g, a, w in data]


def trace_summary(path: "str | Path") -> dict:
    """Quick statistics of a recorded trace (for sanity checks/reports)."""
    with np.load(Path(path)) as f:
        cores = int(f["cores"])
        out = {"cores": cores, "items": 0, "write_frac": 0.0, "mean_gap": 0.0}
        writes = gaps = items = 0
        for c in range(cores):
            g = f[f"gap{c}"]
            w = f[f"write{c}"]
            items += len(g)
            gaps += int(g.sum())
            writes += int(w.sum())
        out["items"] = items
        out["write_frac"] = writes / items if items else 0.0
        out["mean_gap"] = gaps / items if items else 0.0
        return out
