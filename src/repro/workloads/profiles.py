"""Synthetic workload profiles standing in for the paper's 16 workloads.

The paper evaluates 12 eight-core multiprogrammed SPEC CPU2006 workloads and
4 eight-core multithreaded PARSEC workloads, selected to consume at least 1%
of memory bandwidth, then bins them into the 8 lower-bandwidth (Bin1) and 8
higher-bandwidth (Bin2) workloads.  We cannot redistribute SPEC/PARSEC, so
each named workload becomes a parameterized reference-stream generator whose
knobs span the axes the paper's results actually depend on:

* ``apki`` - LLC accesses per kilo-instruction (post-L1 filtering), the
  memory-intensity knob behind the Bin1/Bin2 split;
* ``write_frac`` - store fraction, which drives ECC-update traffic;
* ``seq_run`` - mean sequential run length in lines, the spatial-locality
  knob (streamcluster's long runs are what make 128B-line baselines shine in
  Fig. 14);
* ``footprint_mb`` - working set vs the 8 MB LLC, setting the miss rate;
* ``hot_frac``/``hot_prob`` - a small hot region for temporal reuse.

Values are chosen to match each program's published memory character
qualitatively (pointer-chasing mcf/canneal/omnetpp, streaming
lbm/libquantum/streamcluster, compute-bound sjeng/gobmk/hmmer, ...).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bumped whenever profile parameters change; keys the evaluation cache so
#: stale simulation results are never reused across calibrations.
PROFILES_VERSION = 3


@dataclass(frozen=True)
class WorkloadProfile:
    """Knobs of one synthetic workload (see module docstring)."""

    name: str
    suite: str  # "spec" (multiprogrammed) or "parsec" (multithreaded, shared heap)
    apki: float
    write_frac: float
    seq_run: float
    footprint_mb: float
    hot_frac: float = 0.05
    hot_prob: float = 0.3

    @property
    def footprint_lines(self) -> int:
        return int(self.footprint_mb * (1 << 20) // 64)


#: The 12 SPEC CPU2006 profiles (each run as 8 instances of the same program).
SPEC = [
    WorkloadProfile("bwaves", "spec", apki=16.0, write_frac=0.28, seq_run=512.0, footprint_mb=28.0),
    WorkloadProfile("gcc", "spec", apki=7.0, write_frac=0.33, seq_run=5.0, footprint_mb=14.0),
    WorkloadProfile("gobmk", "spec", apki=3.5, write_frac=0.30, seq_run=3.0, footprint_mb=9.0, hot_prob=0.5),
    WorkloadProfile("hmmer", "spec", apki=4.5, write_frac=0.45, seq_run=48.0, footprint_mb=3.0, hot_prob=0.6),
    WorkloadProfile("sjeng", "spec", apki=2.5, write_frac=0.35, seq_run=2.0, footprint_mb=12.0),
    WorkloadProfile("libquantum", "spec", apki=28.0, write_frac=0.25, seq_run=2048.0, footprint_mb=24.0),
    WorkloadProfile("omnetpp", "spec", apki=12.0, write_frac=0.40, seq_run=2.5, footprint_mb=22.0, hot_prob=0.4),
    WorkloadProfile("astar", "spec", apki=9.0, write_frac=0.30, seq_run=3.0, footprint_mb=20.0, hot_prob=0.4),
    WorkloadProfile("mcf", "spec", apki=38.0, write_frac=0.25, seq_run=2.5, footprint_mb=80.0, hot_prob=0.4),
    WorkloadProfile("milc", "spec", apki=26.0, write_frac=0.30, seq_run=256.0, footprint_mb=56.0),
    WorkloadProfile("leslie3d", "spec", apki=22.0, write_frac=0.32, seq_run=384.0, footprint_mb=44.0),
    WorkloadProfile("lbm", "spec", apki=32.0, write_frac=0.45, seq_run=4096.0, footprint_mb=96.0),
]

#: The 4 PARSEC profiles (8 threads sharing one address space).
PARSEC = [
    WorkloadProfile("canneal", "parsec", apki=24.0, write_frac=0.22, seq_run=2.2, footprint_mb=72.0, hot_prob=0.4),
    WorkloadProfile("facesim", "parsec", apki=14.0, write_frac=0.35, seq_run=128.0, footprint_mb=36.0),
    WorkloadProfile("fluidanimate", "parsec", apki=10.0, write_frac=0.38, seq_run=64.0, footprint_mb=28.0),
    WorkloadProfile("streamcluster", "parsec", apki=30.0, write_frac=0.12, seq_run=2048.0, footprint_mb=20.0),
]

ALL_WORKLOADS = SPEC + PARSEC
WORKLOADS_BY_NAME = {w.name: w for w in ALL_WORKLOADS}
