"""Reference-stream generators for the synthetic workloads.

Produces an infinite stream of ``(instruction_gap, line_address, is_write)``
tuples per core.  Addresses follow a run-and-jump model: sequential runs of
geometric mean length ``seq_run`` (spatial locality), with jumps landing in
a small hot region with probability ``hot_prob`` (temporal locality) or
uniformly in the footprint otherwise.  Gaps are geometric with mean
``1000 / apki`` instructions.

SPEC workloads are multiprogrammed: each of the 8 instances gets a disjoint
address-space slice (and the paper's 10M-instruction skews are emulated by
independent RNG streams).  PARSEC workloads are multithreaded: all cores
share one footprint and one hot region, so they genuinely share LLC lines.

Items are drawn from precomputed NumPy batches so the per-item Python cost
stays at a couple of hundred nanoseconds (the timing plane consumes tens of
millions of items per experiment sweep).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.util.rng import make_rng
from repro.workloads.profiles import WorkloadProfile

#: Line-address stride between multiprogrammed instances (1 TiB apart).
INSTANCE_STRIDE_LINES = (1 << 40) // 64

#: Line-address base of the shared hot arena used for Section VI-A hot-page
#: placement experiments: above every instance's footprint, below the ECC
#: region (1 << 40 lines).
HOT_ARENA_BASE_LINE = 1 << 38


def _batched_stream(
    profile: WorkloadProfile,
    rng: np.random.Generator,
    base_line: int,
    lines_per_llc_block: int,
    footprint_scale: float = 1.0,
    batch: int = 4096,
    hot_base: "int | None" = None,
) -> Iterator:
    """Yield (gap, line_addr, is_write) forever, batch-generating randomness.

    When *hot_base* is set, the hot region lives at that separate address
    (an OS that segregated hot pages); sequential runs continue inside
    whichever region the last jump landed in.
    """
    footprint = max(int(profile.footprint_lines / footprint_scale), 64)
    hot_lines = max(int(footprint * profile.hot_frac), 16)
    mean_gap = 1000.0 / profile.apki
    pos = int(rng.integers(0, footprint))
    region_base = base_line  # where `pos` is currently relative to
    region_span = footprint
    while True:
        gaps = rng.geometric(min(1.0, 1.0 / mean_gap), size=batch)
        writes = rng.random(size=batch) < profile.write_frac
        jumps = rng.random(size=batch) < (1.0 / profile.seq_run)
        hot = rng.random(size=batch) < profile.hot_prob
        targets_hot = rng.integers(0, hot_lines, size=batch)
        targets_all = rng.integers(0, footprint, size=batch)
        for i in range(batch):
            if jumps[i]:
                if hot[i]:
                    pos = int(targets_hot[i])
                    region_base = hot_base if hot_base is not None else base_line
                    region_span = hot_lines if hot_base is not None else footprint
                else:
                    pos = int(targets_all[i])
                    region_base = base_line
                    region_span = footprint
            else:
                pos += 1
                if pos >= region_span:
                    pos = 0
            # Addresses are LLC-block granular: with 128B blocks two adjacent
            # 64B references coalesce, which is the large-line spatial benefit.
            line = (region_base + pos) // lines_per_llc_block
            yield int(gaps[i]), int(line), bool(writes[i])


def make_core_traces(
    profile: WorkloadProfile,
    cores: int = 8,
    llc_block_bytes: int = 64,
    seed: "int | None" = 0,
    footprint_scale: float = 1.0,
    hot_arena: bool = False,
) -> "list[Iterator]":
    """Build one reference stream per core for *profile*.

    ``llc_block_bytes`` is the memory-system line size (64 or 128); the
    generator emits block-granular addresses so the LLC model sees coalesced
    references for large-line systems.  ``footprint_scale`` shrinks working
    sets in lockstep with a shrunken LLC (the standard cache-scaling trick
    that keeps miss rates while cutting warm-up cost).
    """
    lines_per_block = max(1, llc_block_bytes // 64)
    parent = make_rng(seed)
    children = parent.spawn(cores)
    footprint = max(int(profile.footprint_lines / footprint_scale), 64)
    hot_span = max(int(footprint * profile.hot_frac), 16)
    traces = []
    for cid in range(cores):
        if profile.suite == "parsec":
            base = 0  # shared address space
            hot_base = HOT_ARENA_BASE_LINE if hot_arena else None
        else:
            base = cid * INSTANCE_STRIDE_LINES
            hot_base = HOT_ARENA_BASE_LINE + cid * hot_span if hot_arena else None
        traces.append(
            _batched_stream(
                profile, children[cid], base, lines_per_block, footprint_scale,
                hot_base=hot_base,
            )
        )
    return traces
