"""Reference-stream generators for the synthetic workloads.

Produces an infinite stream of ``(instruction_gap, line_address, is_write)``
tuples per core.  Addresses follow a run-and-jump model: sequential runs of
geometric mean length ``seq_run`` (spatial locality), with jumps landing in
a small hot region with probability ``hot_prob`` (temporal locality) or
uniformly in the footprint otherwise.  Gaps are geometric with mean
``1000 / apki`` instructions.

SPEC workloads are multiprogrammed: each of the 8 instances gets a disjoint
address-space slice (and the paper's 10M-instruction skews are emulated by
independent RNG streams).  PARSEC workloads are multithreaded: all cores
share one footprint and one hot region, so they genuinely share LLC lines.

Items are drawn from precomputed NumPy batches so the per-item Python cost
stays at a couple of hundred nanoseconds (the timing plane consumes tens of
millions of items per experiment sweep).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.util.rng import make_rng
from repro.workloads.profiles import WorkloadProfile

#: Line-address stride between multiprogrammed instances (1 TiB apart).
INSTANCE_STRIDE_LINES = (1 << 40) // 64

#: Line-address base of the shared hot arena used for Section VI-A hot-page
#: placement experiments: above every instance's footprint, below the ECC
#: region (1 << 40 lines).
HOT_ARENA_BASE_LINE = 1 << 38


class TraceStream:
    """Reference stream: iterator of ``(gap, line_addr, is_write)`` forever.

    The per-item protocol (``next()``) serves the event-driven simulation
    kernel; :meth:`take_batch` hands the epoch-batched kernel the remainder
    of the current randomness batch as whole arrays, with the run-and-jump
    position recurrence resolved by a vectorized segmented scan instead of
    the per-item state machine.  Both paths consume the same RNG draws in
    the same order and produce identical items, so a simulation is
    bit-identical regardless of which kernel (or mix) pulls the trace.

    When *hot_base* is set, the hot region lives at that separate address
    (an OS that segregated hot pages); sequential runs continue inside
    whichever region the last jump landed in.
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        rng: np.random.Generator,
        base_line: int,
        lines_per_llc_block: int,
        footprint_scale: float = 1.0,
        batch: int = 4096,
        hot_base: "int | None" = None,
    ):
        footprint = max(int(profile.footprint_lines / footprint_scale), 64)
        self._footprint = footprint
        self._hot_lines = max(int(footprint * profile.hot_frac), 16)
        mean_gap = 1000.0 / profile.apki
        self._p_gap = min(1.0, 1.0 / mean_gap)
        self._write_frac = profile.write_frac
        self._p_jump = 1.0 / profile.seq_run
        self._hot_prob = profile.hot_prob
        self._base = base_line
        self._hot_base = hot_base
        self._lpb = lines_per_llc_block
        self._rng = rng
        self._batch = batch
        self._pos = int(rng.integers(0, footprint))
        self._region_base = base_line  # where `pos` is currently relative to
        self._region_span = footprint
        self._i = 0
        self._n = 0

    def _draw(self) -> None:
        """Generate the next randomness batch (one block of RNG draws)."""
        rng = self._rng
        batch = self._batch
        self._gaps = rng.geometric(self._p_gap, size=batch)
        self._writes = rng.random(size=batch) < self._write_frac
        self._jumps = rng.random(size=batch) < self._p_jump
        self._hot = rng.random(size=batch) < self._hot_prob
        self._targets_hot = rng.integers(0, self._hot_lines, size=batch)
        self._targets_all = rng.integers(0, self._footprint, size=batch)
        self._i = 0
        self._n = batch

    def __iter__(self) -> "TraceStream":
        return self

    def __next__(self) -> "tuple[int, int, bool]":
        if self._i >= self._n:
            self._draw()
        i = self._i
        self._i = i + 1
        pos = self._pos
        if self._jumps[i]:
            hot_sep = self._hot_base is not None
            if self._hot[i]:
                pos = int(self._targets_hot[i])
                self._region_base = self._hot_base if hot_sep else self._base
                self._region_span = self._hot_lines if hot_sep else self._footprint
            else:
                pos = int(self._targets_all[i])
                self._region_base = self._base
                self._region_span = self._footprint
        else:
            pos += 1
            if pos >= self._region_span:
                pos = 0
        self._pos = pos
        # Addresses are LLC-block granular: with 128B blocks two adjacent
        # 64B references coalesce, which is the large-line spatial benefit.
        line = (self._region_base + pos) // self._lpb
        return int(self._gaps[i]), int(line), bool(self._writes[i])

    def take_batch(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Consume the rest of the current batch as ``(gaps, lines, writes)``.

        Draws a fresh batch when the current one is exhausted; returns
        int64/int64/bool arrays covering exactly the items ``next()`` would
        have produced.  The position recurrence ``pos+1 mod span`` between
        jumps is a segmented ramp, so each segment (carry-in state, then
        one per jump) is resolved with whole-array arithmetic.
        """
        if self._i >= self._n:
            self._draw()
        i0 = self._i
        self._i = self._n
        jump = self._jumps[i0:]
        n = len(jump)
        jpos = np.flatnonzero(jump)
        hot_sep = self._hot_base is not None
        is_hot = self._hot[i0:][jpos]
        jstart = np.where(is_hot, self._targets_hot[i0:][jpos], self._targets_all[i0:][jpos])
        if hot_sep:
            jbase = np.where(is_hot, self._hot_base, self._base)
            jspan = np.where(is_hot, self._hot_lines, self._footprint)
        else:
            jbase = np.full(len(jpos), self._base, dtype=np.int64)
            jspan = np.full(len(jpos), self._footprint, dtype=np.int64)
        # Segment 0 carries the pre-batch position (its "jump" sits at -1,
        # so the first non-jump item advances the carry position by one).
        starts = np.concatenate(([self._pos], jstart)).astype(np.int64)
        bases = np.concatenate(([self._region_base], jbase)).astype(np.int64)
        spans = np.concatenate(([self._region_span], jspan)).astype(np.int64)
        seg_at = np.concatenate(([-1], jpos)).astype(np.int64)
        seg = np.cumsum(jump)
        offset = np.arange(n, dtype=np.int64) - seg_at[seg]
        pos = (starts[seg] + offset) % spans[seg]
        lines = (bases[seg] + pos) // self._lpb
        if n:
            self._pos = int(pos[-1])
            last = int(seg[-1])
            self._region_base = int(bases[last])
            self._region_span = int(spans[last])
        return (
            self._gaps[i0:].astype(np.int64, copy=False),
            lines,
            self._writes[i0:],
        )


def make_core_traces(
    profile: WorkloadProfile,
    cores: int = 8,
    llc_block_bytes: int = 64,
    seed: "int | None" = 0,
    footprint_scale: float = 1.0,
    hot_arena: bool = False,
) -> "list[Iterator]":
    """Build one reference stream per core for *profile*.

    ``llc_block_bytes`` is the memory-system line size (64 or 128); the
    generator emits block-granular addresses so the LLC model sees coalesced
    references for large-line systems.  ``footprint_scale`` shrinks working
    sets in lockstep with a shrunken LLC (the standard cache-scaling trick
    that keeps miss rates while cutting warm-up cost).
    """
    lines_per_block = max(1, llc_block_bytes // 64)
    parent = make_rng(seed)
    children = parent.spawn(cores)
    footprint = max(int(profile.footprint_lines / footprint_scale), 64)
    hot_span = max(int(footprint * profile.hot_frac), 16)
    traces = []
    for cid in range(cores):
        if profile.suite == "parsec":
            base = 0  # shared address space
            hot_base = HOT_ARENA_BASE_LINE if hot_arena else None
        else:
            base = cid * INSTANCE_STRIDE_LINES
            hot_base = HOT_ARENA_BASE_LINE + cid * hot_span if hot_arena else None
        traces.append(
            TraceStream(
                profile, children[cid], base, lines_per_block, footprint_scale,
                hot_base=hot_base,
            )
        )
    return traces
