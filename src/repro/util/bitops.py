"""Vectorized bit- and symbol-manipulation helpers.

All routines operate on :class:`numpy.ndarray` inputs and avoid per-element
Python loops; they form the hot path of the bit-true ECC codecs.
"""

from __future__ import annotations

import numpy as np

_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def bytes_to_bits(data: np.ndarray) -> np.ndarray:
    """Expand a uint8 array into a uint8 array of 0/1 bits (MSB first).

    The output has shape ``data.shape + (8,)`` flattened on the last axis,
    i.e. ``(..., n)`` becomes ``(..., 8*n)``.
    """
    data = np.asarray(data, dtype=np.uint8)
    bits = np.unpackbits(data.reshape(*data.shape[:-1], -1), axis=-1)
    return bits


def bits_to_bytes(bits: np.ndarray) -> np.ndarray:
    """Inverse of :func:`bytes_to_bits`; last axis length must be a multiple of 8."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.shape[-1] % 8:
        raise ValueError(f"bit count {bits.shape[-1]} is not a multiple of 8")
    return np.packbits(bits, axis=-1)


def xor_reduce(arrays: "list[np.ndarray] | np.ndarray", axis: int = 0) -> np.ndarray:
    """Bitwise XOR of a stack of equal-shape uint8 arrays.

    Accepts either a list of arrays or a single stacked array; reduces along
    *axis* using ufunc reduction (no Python loop).
    """
    if isinstance(arrays, (list, tuple)):
        if not arrays:
            raise ValueError("xor_reduce of an empty sequence")
        stacked = np.stack([np.asarray(a, dtype=np.uint8) for a in arrays], axis=0)
        axis = 0
    else:
        stacked = np.asarray(arrays, dtype=np.uint8)
    return np.bitwise_xor.reduce(stacked, axis=axis)


def popcount(data: np.ndarray) -> int:
    """Total number of set bits in a uint8 array."""
    data = np.asarray(data, dtype=np.uint8)
    return int(_POPCOUNT_TABLE[data].sum())


def interleave_symbols(chunks: np.ndarray) -> np.ndarray:
    """Interleave symbols from ``k`` sources: shape ``(k, n)`` -> ``(n*k,)``.

    Used to lay words out across DRAM chips: chip ``i`` supplies symbol
    position ``i`` of every word.
    """
    chunks = np.asarray(chunks)
    return chunks.T.reshape(-1)


def deinterleave_symbols(flat: np.ndarray, k: int) -> np.ndarray:
    """Inverse of :func:`interleave_symbols`: ``(n*k,)`` -> ``(k, n)``."""
    flat = np.asarray(flat)
    if flat.shape[-1] % k:
        raise ValueError(f"length {flat.shape[-1]} not divisible by {k}")
    return flat.reshape(-1, k).T
