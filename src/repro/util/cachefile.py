"""Atomic, corruption-tolerant JSON result caches.

Shared by the evaluation-matrix sweep and the Monte Carlo campaign drivers:
a cache is a flat ``{key: value}`` JSON object rewritten atomically (temp
file + same-directory ``os.replace``) after every finished cell, so
interrupted sweeps resume where they stopped, concurrent sweeps never tear
the file, and a corrupt/truncated cache is recomputed rather than crashing.
"""

from __future__ import annotations

import json
import os
from pathlib import Path


def load_json_cache(path: Path) -> "dict[str, object]":
    """Read a cache file, treating missing/corrupt content as empty."""
    try:
        cache = json.loads(path.read_text())
    except FileNotFoundError:
        return {}
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return {}
    return cache if isinstance(cache, dict) else {}


def write_json_cache_atomic(path: Path, cache: "dict[str, object]") -> None:
    """Replace the cache file atomically (temp file + rename, same dir)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    tmp.write_text(json.dumps(cache))
    os.replace(tmp, path)
