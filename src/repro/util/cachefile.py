"""Atomic, corruption-tolerant, merge-on-write JSON result caches.

Shared by the evaluation-matrix sweep and the Monte Carlo campaign drivers:
a cache is a flat ``{key: value}`` JSON object rewritten atomically (temp
file + same-directory ``os.replace``) after every finished cell, so
interrupted or crashed sweeps resume where they stopped and a
corrupt/truncated cache is recomputed rather than crashing.

Hardening layers protecting concurrent and crashing campaigns:

* **fsync before rename** — the temp file is flushed and fsynced (and the
  directory entry synced, best-effort) before ``os.replace``, so a machine
  crash immediately after a checkpoint cannot leave a zero-length or
  truncated file where the rename landed.
* **merge-on-write** — by default the on-disk cache is reloaded and
  unioned under the new entries before every rewrite, so two concurrent
  campaigns sharing a cache file don't silently drop each other's finished
  cells (for identical keys the writer's value wins).
* **schema stamp + quarantine** — every cache carries a reserved
  ``__meta__`` entry recording :data:`SCHEMA_VERSION`.  A cache whose
  stamp is missing or wrong (written by an incompatible format), or whose
  content is corrupt/truncated, is moved aside into a sibling
  ``<name>.quarantine/`` directory and treated as empty: the campaign
  recomputes rather than half-merging foreign entries, and the original
  bytes survive for post-mortems.
* **stale-temp sweep** — temp files are named ``<name>.tmp<pid>``; the
  first write into a directory removes temp files whose writer pid is
  dead (an ENOSPC or SIGKILL mid-write strands them), and every failed
  write unlinks its own temp file on the way out.

Chaos instrumentation: the write path calls
:func:`repro.util.chaos.io_fire` at the ``cache.write`` (temp-file write,
torn-capable) and ``cache.rename`` (atomic replace) sites, so the
supervisor test-suite can inject ENOSPC/EIO/torn-write faults here and
assert the recovery contract.  Disarmed, the hooks are early-return no-ops.
"""

from __future__ import annotations

import itertools
import json
import os
import re
import warnings
from pathlib import Path

from repro.util import chaos

#: Format version stamped into every cache under :data:`META_KEY`.  Bump it
#: when the cache encoding changes incompatibly; older files quarantine.
SCHEMA_VERSION = 1

#: Reserved top-level key holding the stamp; never returned to callers.
META_KEY = "__meta__"

_TMP_RE = re.compile(r"\.tmp(\d+)$")
_swept_dirs: "set[str]" = set()
_quarantine_seq = itertools.count()


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        # PermissionError and friends: the pid exists (or we can't tell) —
        # never treat an uncertain writer as dead.
        return True
    return True


def sweep_stale_tmps(directory: Path) -> "list[Path]":
    """Remove ``*.tmp<pid>`` files whose writer process is dead.

    An atomic write interrupted *after* creating its temp file but before
    the replace (ENOSPC, SIGKILL, power loss) strands the temp; this sweep
    reclaims them.  Live writers (including this process) are left alone.
    Returns the removed paths.
    """
    removed = []
    try:
        names = os.listdir(directory)
    except OSError:
        return removed
    for name in names:
        match = _TMP_RE.search(name)
        if match is None:
            continue
        pid = int(match.group(1))
        if pid == os.getpid() or _pid_alive(pid):
            continue
        victim = Path(directory) / name
        try:
            os.unlink(victim)
        except OSError:
            continue
        removed.append(victim)
    return removed


def _sweep_once(directory: Path) -> None:
    key = str(directory)
    if key not in _swept_dirs:
        _swept_dirs.add(key)
        sweep_stale_tmps(directory)


def quarantine_path(path: Path) -> Path:
    """The quarantine directory a bad *path* would be moved into."""
    return path.with_name(f"{path.name}.quarantine")


def quarantine_file(path: Path, reason: str) -> "Path | None":
    """Move a corrupt/incompatible file into ``<name>.quarantine/``.

    Best-effort (a read-only tree just leaves the file in place); returns
    the new location or ``None``.  The move uses ``os.replace`` so a
    concurrent quarantine of the same file cannot duplicate it.  Shared by
    the JSON caches here and the supervisor's binary journals.
    """
    qdir = quarantine_path(path)
    dest = qdir / f"{path.name}.{os.getpid()}.{next(_quarantine_seq)}"
    try:
        qdir.mkdir(parents=True, exist_ok=True)
        os.replace(path, dest)
    except OSError:
        return None
    warnings.warn(
        f"cache {path} quarantined to {dest} ({reason}); it will be recomputed",
        RuntimeWarning,
        stacklevel=3,
    )
    return dest


def load_json_cache(
    path: Path, *, schema: bool = True, quarantine: bool = True
) -> "dict[str, object]":
    """Read a cache file, treating missing/corrupt content as empty.

    Corrupt (undecodable/non-object) files, and — with ``schema=True`` —
    files missing the :data:`SCHEMA_VERSION` stamp or carrying a different
    one, are quarantined (unless ``quarantine=False``) and reported empty,
    so an incompatible cache is recomputed rather than half-merged.  The
    stamp itself is stripped from the returned dict.
    """
    try:
        cache = json.loads(path.read_text())
    except FileNotFoundError:
        return {}
    except (json.JSONDecodeError, UnicodeDecodeError):
        if quarantine:
            quarantine_file(path, "corrupt or truncated JSON")
        return {}
    except OSError:
        return {}
    if not isinstance(cache, dict):
        if quarantine:
            quarantine_file(path, "not a JSON object")
        return {}
    meta = cache.pop(META_KEY, None)
    if schema:
        stamped = isinstance(meta, dict) and meta.get("schema") == SCHEMA_VERSION
        if not stamped:
            if quarantine:
                found = meta.get("schema") if isinstance(meta, dict) else None
                quarantine_file(
                    path,
                    f"schema {found!r} incompatible with version {SCHEMA_VERSION}",
                )
            return {}
    return cache


def write_json_cache_atomic(
    path: Path, cache: "dict[str, object]", merge: bool = True
) -> None:
    """Replace the cache file atomically; by default merge with the disk copy.

    With ``merge=True`` the current file is reloaded and the union (disk
    entries under *cache* entries) is written, preserving cells finished by
    a concurrent campaign between our loads; ``merge=False`` restores plain
    replacement.  The written file always carries the schema stamp.  The
    caller's *cache* dict is never mutated.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    _sweep_once(path.parent)
    if merge:
        on_disk = load_json_cache(path)
        if on_disk:
            cache = {**on_disk, **cache}
    payload = {k: v for k, v in cache.items() if k != META_KEY}
    payload[META_KEY] = {"schema": SCHEMA_VERSION}
    data = json.dumps(payload)
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    try:
        torn = chaos.io_fire("cache.write", size=len(data))
        with open(tmp, "w", encoding="utf-8") as fh:
            if torn is not None and torn < len(data):
                fh.write(data[:torn])
                fh.flush()
                raise OSError(5, f"chaos: torn write after {torn} bytes [{tmp}]")
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        chaos.io_fire("cache.rename")
        os.replace(tmp, path)
    except BaseException:
        # Any failure mid-write (Ctrl-C, ENOSPC, a torn write, a crash
        # being raised through us) must not litter the cache dir with temp
        # files; the previous cache file is still intact.
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    try:
        # Best-effort directory sync so the rename itself survives a crash.
        dfd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dfd)
        finally:
            os.close(dfd)
    except OSError:
        pass
