"""Atomic, corruption-tolerant, merge-on-write JSON result caches.

Shared by the evaluation-matrix sweep and the Monte Carlo campaign drivers:
a cache is a flat ``{key: value}`` JSON object rewritten atomically (temp
file + same-directory ``os.replace``) after every finished cell, so
interrupted or crashed sweeps resume where they stopped and a
corrupt/truncated cache is recomputed rather than crashing.

Two hardening layers protect concurrent and crashing campaigns:

* **fsync before rename** — the temp file is flushed and fsynced (and the
  directory entry synced, best-effort) before ``os.replace``, so a machine
  crash immediately after a checkpoint cannot leave a zero-length or
  truncated file where the rename landed.
* **merge-on-write** — by default the on-disk cache is reloaded and
  unioned under the new entries before every rewrite, so two concurrent
  campaigns sharing a cache file don't silently drop each other's finished
  cells (for identical keys the writer's value wins).
"""

from __future__ import annotations

import json
import os
from pathlib import Path


def load_json_cache(path: Path) -> "dict[str, object]":
    """Read a cache file, treating missing/corrupt content as empty."""
    try:
        cache = json.loads(path.read_text())
    except FileNotFoundError:
        return {}
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return {}
    return cache if isinstance(cache, dict) else {}


def write_json_cache_atomic(
    path: Path, cache: "dict[str, object]", merge: bool = True
) -> None:
    """Replace the cache file atomically; by default merge with the disk copy.

    With ``merge=True`` the current file is reloaded and the union (disk
    entries under *cache* entries) is written, preserving cells finished by
    a concurrent campaign between our loads; ``merge=False`` restores plain
    replacement.  The caller's *cache* dict is never mutated.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    if merge:
        on_disk = load_json_cache(path)
        if on_disk:
            cache = {**on_disk, **cache}
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(cache))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        # Ctrl-C (or a crash mid-write) must not litter the cache dir with
        # temp files; the previous cache file is still intact.
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    try:
        # Best-effort directory sync so the rename itself survives a crash.
        dfd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dfd)
        finally:
            os.close(dfd)
    except OSError:
        pass
