"""Shared low-level utilities: bit manipulation, units, deterministic RNG."""

from repro.util.bitops import (
    bytes_to_bits,
    bits_to_bytes,
    xor_reduce,
    popcount,
    interleave_symbols,
    deinterleave_symbols,
)
from repro.util.units import (
    KIB,
    MIB,
    GIB,
    TIB,
    CACHELINE_64B,
    HOURS,
    DAYS,
    YEARS,
    FIT_TO_PER_HOUR,
)
from repro.util.rng import make_rng, spawn_rngs

__all__ = [
    "bytes_to_bits",
    "bits_to_bytes",
    "xor_reduce",
    "popcount",
    "interleave_symbols",
    "deinterleave_symbols",
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "CACHELINE_64B",
    "HOURS",
    "DAYS",
    "YEARS",
    "FIT_TO_PER_HOUR",
    "make_rng",
    "spawn_rngs",
]
