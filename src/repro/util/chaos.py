"""Deterministic chaos harness for the campaign engine.

The resilience layer in :mod:`repro.experiments.parallel` (retries,
per-task timeouts, pool rebuilds, serial degradation) is only trustworthy
if its recovery paths are *exercised*, not just written.  This module
injects worker faults at precisely chosen task indices so tests can drive
every path deterministically and then assert that the recovered campaign
is bit-identical to a fault-free serial run.

A chaos spec is a comma-separated list of fault entries::

    mode[=param]@index[#attempt]

* ``mode`` — ``crash`` (the worker process dies via ``os._exit``; the
  executor surfaces this as ``BrokenProcessPool``), ``hang`` (the worker
  sleeps *param* seconds — default :data:`DEFAULT_HANG_S` — before doing
  its work, tripping the engine's per-task timeout), or ``corrupt`` (the
  result is wrapped in a :class:`Corrupted` marker, which the engine
  rejects and retries).
* ``param`` — exit code for ``crash`` (default :data:`DEFAULT_EXIT_CODE`),
  sleep seconds for ``hang``.
* ``index`` — the task's position in the campaign's payload list.
* ``attempt`` — which attempt the fault hits: an integer, or ``*`` for
  every attempt.  Default ``1``, so a retried task succeeds — the shape
  chaos tests use to prove recovery converges on the fault-free result.

Example: ``"crash@2,hang=30@5#1,corrupt@0#*"``.

Specs travel to workers as plain strings (via the engine) and are parsed
on both sides, so nothing unpicklable crosses the process boundary.  The
``REPRO_CHAOS`` environment variable arms the engine globally; faults are
injected **only into pool workers** — the serial in-process path (and the
engine's degraded-to-serial recovery path) stays the fault-free reference.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

#: Environment variable holding a chaos spec for the campaign engine.
ENV_VAR = "REPRO_CHAOS"

#: Default sleep for ``hang`` faults — long enough that any sane per-task
#: timeout fires first.
DEFAULT_HANG_S = 300.0

#: Default exit code for ``crash`` faults (arbitrary, recognizably chaotic).
DEFAULT_EXIT_CODE = 76

_MODES = ("crash", "hang", "corrupt")


class Corrupted:
    """Picklable marker a ``corrupt`` fault wraps a worker's result in.

    The campaign engine treats any :class:`Corrupted` result as a failed
    attempt (kind ``corrupt``) and retries the task, so the corruption
    never reaches the caller's merge step.
    """

    def __init__(self, original):
        self.original = original

    def __repr__(self):
        return f"Corrupted({self.original!r})"


@dataclass(frozen=True)
class ChaosFault:
    """One parsed fault entry."""

    mode: str  #: "crash" | "hang" | "corrupt"
    index: int  #: task index within the campaign's payload list
    attempt: "int | None"  #: attempt to hit; None = every attempt
    param: float  #: exit code (crash) or sleep seconds (hang)

    def matches(self, index: int, attempt: int) -> bool:
        return self.index == index and self.attempt in (None, attempt)


def parse(spec: str) -> "tuple[ChaosFault, ...]":
    """Parse a chaos spec string; malformed entries raise ``ValueError``."""
    faults = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        head, sep, tail = entry.partition("@")
        if not sep:
            raise ValueError(f"chaos entry {entry!r} must look like mode@index")
        mode, _, param = head.partition("=")
        mode = mode.strip()
        if mode not in _MODES:
            raise ValueError(f"chaos mode must be one of {_MODES}, got {mode!r}")
        if param and mode == "corrupt":
            raise ValueError(f"chaos mode 'corrupt' takes no parameter: {entry!r}")
        idx_s, _, att_s = tail.partition("#")
        try:
            index = int(idx_s)
        except ValueError:
            raise ValueError(f"chaos task index must be an integer: {entry!r}") from None
        if index < 0:
            raise ValueError(f"chaos task index must be >= 0: {entry!r}")
        att_s = att_s.strip()
        if att_s == "*":
            attempt = None
        else:
            try:
                attempt = int(att_s) if att_s else 1
            except ValueError:
                raise ValueError(f"chaos attempt must be an integer or '*': {entry!r}") from None
        if mode == "crash":
            value = float(param) if param else float(DEFAULT_EXIT_CODE)
        elif mode == "hang":
            value = float(param) if param else DEFAULT_HANG_S
        else:
            value = 0.0
        faults.append(ChaosFault(mode, index, attempt, value))
    return tuple(faults)


def from_env() -> "str | None":
    """The ``REPRO_CHAOS`` spec, validated eagerly so typos fail in the
    parent process rather than inside a worker; ``None`` when unset."""
    raw = os.environ.get(ENV_VAR, "").strip()
    if raw:
        parse(raw)
    return raw or None


def chaos_call(spec: str, worker, index: int, attempt: int, payload: tuple):
    """Worker-side wrapper: apply the first matching fault, then run the task.

    ``crash`` never returns; ``hang`` sleeps before doing the (correct)
    work, so a generous timeout just sees a slow task; ``corrupt`` does the
    work and wraps the result.  With no matching fault this is exactly
    ``worker(*payload)`` — the engine's determinism contract depends on
    that.
    """
    for fault in parse(spec):
        if fault.matches(index, attempt):
            _emit_fire(fault, index, attempt)
            if fault.mode == "crash":
                os._exit(int(fault.param))
            if fault.mode == "hang":
                time.sleep(fault.param)
            elif fault.mode == "corrupt":
                return Corrupted(worker(*payload))
            break
    return worker(*payload)


def _emit_fire(fault: ChaosFault, index: int, attempt: int) -> None:
    """Record a firing on the event bus (mode ``chaos``) before it applies.

    Emitted worker-side *before* the fault takes effect, so even a
    ``crash`` firing (the worker dies immediately after) reaches the
    JSONL — tests and ``repro.obs.summarize`` correlate each firing with
    the recovery that follows it in the stream.
    """
    from repro import obs  # local: chaos is imported by envcfg's resolver

    if obs.enabled("chaos"):
        obs.REGISTRY.counter("chaos.fire").inc()
        obs.emit(
            "chaos.fire", mode=fault.mode, index=index, attempt=attempt, param=fault.param
        )
