"""Deterministic chaos harness for the campaign engine.

The resilience layer in :mod:`repro.experiments.parallel` (retries,
per-task timeouts, pool rebuilds, serial degradation) is only trustworthy
if its recovery paths are *exercised*, not just written.  This module
injects worker faults at precisely chosen task indices so tests can drive
every path deterministically and then assert that the recovered campaign
is bit-identical to a fault-free serial run.

A chaos spec is a comma-separated list of fault entries::

    mode[=param]@index[#attempt]

* ``mode`` — ``crash`` (the worker process dies via ``os._exit``; the
  executor surfaces this as ``BrokenProcessPool``), ``hang`` (the worker
  sleeps *param* seconds — default :data:`DEFAULT_HANG_S` — before doing
  its work, tripping the engine's per-task timeout), or ``corrupt`` (the
  result is wrapped in a :class:`Corrupted` marker, which the engine
  rejects and retries).
* ``param`` — exit code for ``crash`` (default :data:`DEFAULT_EXIT_CODE`),
  sleep seconds for ``hang``.
* ``index`` — the task's position in the campaign's payload list.
* ``attempt`` — which attempt the fault hits: an integer, or ``*`` for
  every attempt.  Default ``1``, so a retried task succeeds — the shape
  chaos tests use to prove recovery converges on the fault-free result.

Example: ``"crash@2,hang=30@5#1,corrupt@0#*"``.

Specs travel to workers as plain strings (via the engine) and are parsed
on both sides, so nothing unpicklable crosses the process boundary.  The
``REPRO_CHAOS`` environment variable arms the engine globally; faults are
injected **only into pool workers** — the serial in-process path (and the
engine's degraded-to-serial recovery path) stays the fault-free reference.

Host/I-O chaos plane
--------------------

Worker faults exercise the *engine's* recovery paths; the supervisor layer
(:mod:`repro.experiments.supervisor`) also has to survive faults of the
*host* — a full disk, a dying filesystem, the driver itself being killed.
A second spec, armed via ``REPRO_CHAOS_IO`` (or :func:`arm_io` in tests),
injects those at named I/O sites::

    mode[=param]@op[#n]

* ``mode`` — ``enospc`` (the site raises ``OSError(ENOSPC)``), ``eio``
  (``OSError(EIO)``), ``torn`` (the site writes only the first *param*
  bytes — default :data:`DEFAULT_TORN_BYTES` — then fails, simulating a
  crash mid-write), ``kill`` (the *current process* dies via ``SIGKILL``
  — used with a subprocess harness to kill the driver at an exact
  journal record), or ``rss`` (the watchdog's next RSS sample reads
  *param* bytes instead of the real value).
* ``op`` — the dotted site name instrumented with :func:`io_fire` /
  :func:`io_override`: ``cache.write``, ``cache.rename``,
  ``journal.append``, ``supervisor.settle``, ``watchdog.rss``.
* ``n`` — which occurrence of the site fires the fault (1-based, counted
  per process; default ``1``; ``*`` = every occurrence).

Example: ``"enospc@journal.append#3,kill@supervisor.settle#2"``.

Sites call ``io_fire(op)`` which is a no-op (fast early return) unless a
spec is armed, so production code pays nothing.
"""

from __future__ import annotations

import errno
import os
import signal
import time
from dataclasses import dataclass

#: Environment variable holding a chaos spec for the campaign engine.
ENV_VAR = "REPRO_CHAOS"

#: Environment variable holding a host/I-O chaos spec for the supervisor.
IO_ENV_VAR = "REPRO_CHAOS_IO"

#: Default byte cap for ``torn`` faults — small enough to guarantee the
#: record/frame being written is visibly truncated.
DEFAULT_TORN_BYTES = 16.0

#: Default sleep for ``hang`` faults — long enough that any sane per-task
#: timeout fires first.
DEFAULT_HANG_S = 300.0

#: Default exit code for ``crash`` faults (arbitrary, recognizably chaotic).
DEFAULT_EXIT_CODE = 76

_MODES = ("crash", "hang", "corrupt")


class Corrupted:
    """Picklable marker a ``corrupt`` fault wraps a worker's result in.

    The campaign engine treats any :class:`Corrupted` result as a failed
    attempt (kind ``corrupt``) and retries the task, so the corruption
    never reaches the caller's merge step.
    """

    def __init__(self, original):
        self.original = original

    def __repr__(self):
        return f"Corrupted({self.original!r})"


@dataclass(frozen=True)
class ChaosFault:
    """One parsed fault entry."""

    mode: str  #: "crash" | "hang" | "corrupt"
    index: int  #: task index within the campaign's payload list
    attempt: "int | None"  #: attempt to hit; None = every attempt
    param: float  #: exit code (crash) or sleep seconds (hang)

    def matches(self, index: int, attempt: int) -> bool:
        return self.index == index and self.attempt in (None, attempt)


def parse(spec: str) -> "tuple[ChaosFault, ...]":
    """Parse a chaos spec string; malformed entries raise ``ValueError``."""
    faults = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        head, sep, tail = entry.partition("@")
        if not sep:
            raise ValueError(f"chaos entry {entry!r} must look like mode@index")
        mode, _, param = head.partition("=")
        mode = mode.strip()
        if mode not in _MODES:
            raise ValueError(f"chaos mode must be one of {_MODES}, got {mode!r}")
        if param and mode == "corrupt":
            raise ValueError(f"chaos mode 'corrupt' takes no parameter: {entry!r}")
        idx_s, _, att_s = tail.partition("#")
        try:
            index = int(idx_s)
        except ValueError:
            raise ValueError(f"chaos task index must be an integer: {entry!r}") from None
        if index < 0:
            raise ValueError(f"chaos task index must be >= 0: {entry!r}")
        att_s = att_s.strip()
        if att_s == "*":
            attempt = None
        else:
            try:
                attempt = int(att_s) if att_s else 1
            except ValueError:
                raise ValueError(f"chaos attempt must be an integer or '*': {entry!r}") from None
        if mode == "crash":
            value = float(param) if param else float(DEFAULT_EXIT_CODE)
        elif mode == "hang":
            value = float(param) if param else DEFAULT_HANG_S
        else:
            value = 0.0
        faults.append(ChaosFault(mode, index, attempt, value))
    return tuple(faults)


def from_env() -> "str | None":
    """The ``REPRO_CHAOS`` spec, validated eagerly so typos fail in the
    parent process rather than inside a worker; ``None`` when unset."""
    raw = os.environ.get(ENV_VAR, "").strip()
    if raw:
        parse(raw)
    return raw or None


def chaos_call(spec: str, worker, index: int, attempt: int, payload: tuple):
    """Worker-side wrapper: apply the first matching fault, then run the task.

    ``crash`` never returns; ``hang`` sleeps before doing the (correct)
    work, so a generous timeout just sees a slow task; ``corrupt`` does the
    work and wraps the result.  With no matching fault this is exactly
    ``worker(*payload)`` — the engine's determinism contract depends on
    that.
    """
    for fault in parse(spec):
        if fault.matches(index, attempt):
            _emit_fire(fault, index, attempt)
            if fault.mode == "crash":
                os._exit(int(fault.param))
            if fault.mode == "hang":
                time.sleep(fault.param)
            elif fault.mode == "corrupt":
                return Corrupted(worker(*payload))
            break
    return worker(*payload)


def _emit_fire(fault: ChaosFault, index: int, attempt: int) -> None:
    """Record a firing on the event bus (mode ``chaos``) before it applies.

    Emitted worker-side *before* the fault takes effect, so even a
    ``crash`` firing (the worker dies immediately after) reaches the
    JSONL — tests and ``repro.obs.summarize`` correlate each firing with
    the recovery that follows it in the stream.
    """
    from repro import obs  # local: chaos is imported by envcfg's resolver

    if obs.enabled("chaos"):
        obs.REGISTRY.counter("chaos.fire").inc()
        obs.emit(
            "chaos.fire", mode=fault.mode, index=index, attempt=attempt, param=fault.param
        )


# --------------------------------------------------------------------------
# Host/I-O chaos plane
# --------------------------------------------------------------------------

_IO_MODES = ("enospc", "eio", "torn", "kill", "rss")


@dataclass(frozen=True)
class IOFault:
    """One parsed host/I-O fault entry."""

    mode: str  #: "enospc" | "eio" | "torn" | "kill" | "rss"
    op: str  #: dotted site name, e.g. "journal.append"
    occurrence: "int | None"  #: 1-based occurrence to hit; None = every
    param: float  #: byte cap (torn) or simulated RSS bytes (rss)

    def matches(self, op: str, count: int) -> bool:
        return self.op == op and self.occurrence in (None, count)


def parse_io(spec: str) -> "tuple[IOFault, ...]":
    """Parse an I/O chaos spec string; malformed entries raise ``ValueError``."""
    faults = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        head, sep, tail = entry.partition("@")
        if not sep:
            raise ValueError(f"io chaos entry {entry!r} must look like mode@op")
        mode, _, param = head.partition("=")
        mode = mode.strip()
        if mode not in _IO_MODES:
            raise ValueError(f"io chaos mode must be one of {_IO_MODES}, got {mode!r}")
        if param and mode not in ("torn", "rss"):
            raise ValueError(f"io chaos mode {mode!r} takes no parameter: {entry!r}")
        op, _, occ_s = tail.partition("#")
        op = op.strip()
        if not op or any(not part for part in op.split(".")):
            raise ValueError(f"io chaos op must be a dotted site name: {entry!r}")
        occ_s = occ_s.strip()
        if occ_s == "*":
            occurrence = None
        else:
            try:
                occurrence = int(occ_s) if occ_s else 1
            except ValueError:
                raise ValueError(
                    f"io chaos occurrence must be an integer or '*': {entry!r}"
                ) from None
            if occurrence < 1:
                raise ValueError(f"io chaos occurrence must be >= 1: {entry!r}")
        if mode == "torn":
            value = float(param) if param else DEFAULT_TORN_BYTES
            if value < 0:
                raise ValueError(f"io chaos torn byte cap must be >= 0: {entry!r}")
        elif mode == "rss":
            if not param:
                raise ValueError(f"io chaos mode 'rss' needs a byte value: {entry!r}")
            value = float(param)
        else:
            value = 0.0
        faults.append(IOFault(mode, op, occurrence, value))
    return tuple(faults)


def io_from_env() -> "str | None":
    """The ``REPRO_CHAOS_IO`` spec, validated eagerly; ``None`` when unset."""
    raw = os.environ.get(IO_ENV_VAR, "").strip()
    if raw:
        parse_io(raw)
    return raw or None


# None = not yet initialised from the environment; () = armed with nothing
# (disarmed).  Counters are per-process and per-site.
_io_faults: "tuple[IOFault, ...] | None" = None
_io_counts: "dict[str, int]" = {}


def arm_io(spec: "str | None") -> None:
    """Arm (or, with ``None``/empty, disarm) the I/O plane process-locally.

    Resets the per-site occurrence counters, so tests get deterministic
    firing regardless of what ran before.
    """
    global _io_faults
    _io_faults = parse_io(spec) if spec else ()
    _io_counts.clear()


def _io_active() -> "tuple[IOFault, ...]":
    global _io_faults
    if _io_faults is None:
        _io_faults = parse_io(io_from_env() or "")
    return _io_faults


def io_counts() -> "dict[str, int]":
    """Per-site occurrence counters (a copy) — test/debug introspection."""
    return dict(_io_counts)


def io_fire(op: str, size: "int | None" = None) -> "int | None":
    """Instrumentation point for an I/O site named *op*.

    Disarmed (the common case) this returns ``None`` without touching the
    counters.  Armed, it counts the occurrence and applies the first
    matching fault: ``enospc``/``eio`` raise the corresponding ``OSError``,
    ``kill`` SIGKILLs the current process (never returns), and ``torn``
    returns the byte cap — the caller writes only that prefix of its
    *size*-byte payload and then fails its write, simulating a crash
    mid-write.  ``rss`` faults are ignored here (see :func:`io_override`).
    """
    faults = _io_faults
    if faults is None:
        faults = _io_active()
    if not faults:
        return None
    count = _io_counts.get(op, 0) + 1
    _io_counts[op] = count
    for fault in faults:
        if fault.mode != "rss" and fault.matches(op, count):
            _emit_io_fire(fault, op, count)
            if fault.mode == "enospc":
                raise OSError(errno.ENOSPC, f"chaos: no space left on device [{op}]")
            if fault.mode == "eio":
                raise OSError(errno.EIO, f"chaos: input/output error [{op}]")
            if fault.mode == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
                time.sleep(60)  # pragma: no cover - delivery is immediate
            if fault.mode == "torn":
                cap = int(fault.param)
                return cap if size is None else min(cap, size)
    return None


def io_override(op: str) -> "float | None":
    """Armed ``rss`` override for a sampling site; ``None`` when clean.

    Counted separately from :func:`io_fire` faults only in the sense that
    a site is instrumented with exactly one of the two — samplers use
    ``io_override``, write paths use ``io_fire``.
    """
    faults = _io_faults
    if faults is None:
        faults = _io_active()
    if not faults:
        return None
    count = _io_counts.get(op, 0) + 1
    _io_counts[op] = count
    for fault in faults:
        if fault.mode == "rss" and fault.matches(op, count):
            _emit_io_fire(fault, op, count)
            return fault.param
    return None


def _emit_io_fire(fault: IOFault, op: str, count: int) -> None:
    """Record an I/O firing on the event bus (mode ``chaos``) before it applies.

    The bus appends with a single ``O_APPEND`` write, so even a ``kill``
    firing reaches the JSONL before the process dies — resume tests
    correlate each firing with the recovery that follows.
    """
    from repro import obs

    if obs.enabled("chaos"):
        obs.REGISTRY.counter("chaos.io_fire").inc()
        obs.emit(
            "chaos.io_fire", mode=fault.mode, op=op, occurrence=count, param=fault.param
        )
