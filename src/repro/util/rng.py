"""Deterministic random-number-generator helpers.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  Routing all construction through
:func:`make_rng` keeps experiments reproducible and lets callers share one
generator when they want correlated streams.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` yields a fresh OS-seeded generator; an existing generator is
    passed through unchanged so callers can share streams.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive *n* independent child generators from *seed*.

    Uses ``Generator.spawn`` so the children's streams are statistically
    independent regardless of how many are requested.
    """
    parent = make_rng(seed)
    return parent.spawn(n)
