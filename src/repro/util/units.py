"""Physical and architectural unit constants used across the library.

Time constants are expressed in hours, the natural unit for FIT-rate
arithmetic (1 FIT = 1 failure per 10^9 device-hours).
"""

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

#: Size in bytes of the data payload of one cache line in 64B-line systems.
CACHELINE_64B = 64

#: One hour, in hours.  Defined for symmetry with DAYS/YEARS.
HOURS = 1.0
DAYS = 24.0 * HOURS
YEARS = 365.0 * DAYS

#: Multiply a FIT rate by this to obtain a per-hour failure rate.
FIT_TO_PER_HOUR = 1e-9
