"""Environment-variable knobs shared by the campaign drivers.

One switch flips a whole plane of the reproduction between a quick CI pass
and a full-scale run:

* ``REPRO_MC_TRIALS`` — default trial count of every Monte Carlo driver
  (Figure 8 end-of-life, the coverage study, the collision study), e.g.
  ``REPRO_MC_TRIALS=1000000`` for converged tail statistics.
* ``REPRO_JOBS`` — worker-process count of every campaign fan-out
  (``repro.experiments.parallel``); ``1`` forces the serial reference path.
* ``REPRO_TASK_TIMEOUT`` — per-task timeout in seconds for pooled campaign
  tasks; a worker that produces no result within the window is presumed
  hung, its pool is rebuilt, and the task is retried.  Unset (the default)
  disables the timeout; ``0`` disables it explicitly.
* ``REPRO_TASK_RETRIES`` — how many times a failing campaign task is
  retried (with exponential backoff) before it is recorded as a structured
  failure.  Default 2.

All knobs share one parser (:func:`positive_int` / :func:`positive_float`):
blank or unset falls back to the default, malformed or out-of-range values
raise ``ValueError`` eagerly in the parent process.  An explicit argument
at a call site always wins over the environment.
"""

from __future__ import annotations

import os

#: Default retry budget per campaign task (attempts = retries + 1).
DEFAULT_TASK_RETRIES = 2


def _env_number(name: str, cast, kind: str):
    """Parse ``os.environ[name]`` via *cast*; blank/unset returns ``None``."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return cast(raw)
    except ValueError:
        raise ValueError(f"{name} must be {kind}, got {raw!r}") from None


def positive_int(name: str, default: int, minimum: int = 1) -> int:
    """Shared positive-int knob: env var *name* if set, else *default*."""
    value = _env_number(name, int, "an integer")
    if value is None:
        return default
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def positive_float(name: str, default: "float | None") -> "float | None":
    """Shared positive-float knob: env var *name* if set, else *default*."""
    value = _env_number(name, float, "a number")
    if value is None:
        return default
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def mc_trials(explicit: "int | None", default: int) -> int:
    """Resolve a Monte Carlo trial count.

    Priority: an explicit caller argument, then ``REPRO_MC_TRIALS``, then
    the driver's own *default*.
    """
    if explicit is not None:
        return explicit
    return positive_int("REPRO_MC_TRIALS", default)


def jobs(default: int) -> int:
    """Resolve the campaign worker count: ``REPRO_JOBS`` if set, else
    *default* (callers pass the machine's CPU count)."""
    return positive_int("REPRO_JOBS", default)


def task_timeout(explicit: "float | None" = None) -> "float | None":
    """Resolve the per-task timeout in seconds; ``None`` means disabled.

    An explicit argument wins (``0`` explicitly disables); otherwise
    ``REPRO_TASK_TIMEOUT`` applies (``0`` disables there too); the default
    is no timeout, preserving pre-resilience behaviour.
    """
    if explicit is not None:
        explicit = float(explicit)
        if explicit < 0:
            raise ValueError(f"task timeout must be >= 0, got {explicit}")
        return explicit or None
    value = _env_number("REPRO_TASK_TIMEOUT", float, "a number")
    if value is None:
        return None
    if value < 0:
        raise ValueError(f"REPRO_TASK_TIMEOUT must be >= 0, got {value}")
    return value or None


def task_retries(explicit: "int | None" = None) -> int:
    """Resolve the per-task retry budget (``REPRO_TASK_RETRIES``, default
    :data:`DEFAULT_TASK_RETRIES`).  ``0`` means a single attempt."""
    if explicit is not None:
        explicit = int(explicit)
        if explicit < 0:
            raise ValueError(f"task retries must be >= 0, got {explicit}")
        return explicit
    return positive_int("REPRO_TASK_RETRIES", DEFAULT_TASK_RETRIES, minimum=0)
