"""Environment-variable knobs shared by the campaign drivers.

One switch flips a whole plane of the reproduction between a quick CI pass
and a full-scale run:

* ``REPRO_MC_TRIALS`` — default trial count of every Monte Carlo driver
  (Figure 8 end-of-life, the coverage study, the collision study), e.g.
  ``REPRO_MC_TRIALS=1000000`` for converged tail statistics.
* ``REPRO_JOBS`` — worker-process count of every campaign fan-out
  (``repro.experiments.parallel``); ``1`` forces the serial reference path.
* ``REPRO_TASK_TIMEOUT`` — per-task timeout in seconds for pooled campaign
  tasks; a worker that produces no result within the window is presumed
  hung, its pool is rebuilt, and the task is retried.  Unset (the default)
  disables the timeout; ``0`` disables it explicitly.
* ``REPRO_TASK_RETRIES`` — how many times a failing campaign task is
  retried (with exponential backoff) before it is recorded as a structured
  failure.  Default 2.

All knobs share one parser (:func:`positive_int` / :func:`positive_float`):
blank or unset falls back to the default, malformed or out-of-range values
raise ``ValueError`` eagerly in the parent process.  An explicit argument
at a call site always wins over the environment.

Every ``REPRO_*`` knob is additionally registered in :data:`KNOBS`, the
single source of truth for documentation and telemetry: run
``python -m repro.util.envcfg`` to print each knob's parser, default, and
current effective value (``--markdown`` emits the README table), and
:mod:`repro.obs.manifest` embeds the same registry into every run
manifest so a campaign records exactly the knobs it ran under.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

#: Default retry budget per campaign task (attempts = retries + 1).
DEFAULT_TASK_RETRIES = 2

#: Default Monte Carlo chunk size (trials per whole-array chunk): bounds
#: peak memory (a few MB of event arrays) while keeping array draws long
#: enough to amortize NumPy dispatch.  ``repro.faults.montecarlo`` re-exports
#: this as ``DEFAULT_CHUNK``.
DEFAULT_MC_CHUNK = 1 << 16

#: Default exponential-tilt factor of the importance-sampling estimator
#: (``repro.faults.rareevent``): the smallest-blast-radius fault modes'
#: Poisson rates are multiplied by this factor (heavier modes tilt harder,
#: scaled by banks materialized per event), pushing trials toward the
#: fault-heavy trajectories that resolve the 99.9th-percentile tail.
#: Tuned on the fig8 default organization: effective speedup at the p999
#: tail peaks (and plateaus) around tilt 4-6.
DEFAULT_MC_TILT = 6.0

#: Variance-reduction modes accepted by ``REPRO_MC_VR``.
MC_VR_MODES = ("off", "is", "strat", "auto")

#: Default supervisor journal directory (crash-safe campaign state).
DEFAULT_SUPERVISOR_DIR = "./.repro_supervisor"

#: Default resource-watchdog sampling period (seconds).
DEFAULT_SUPERVISOR_POLL = 0.5

#: Default free-disk floor (bytes) under which the watchdog pauses a
#: campaign instead of letting the next checkpoint hit ENOSPC.
DEFAULT_SUPERVISOR_MIN_DISK = 64 << 20

_SIZE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30, "t": 1 << 40}


def parse_bytes(raw: str) -> int:
    """Parse a byte size: a plain integer, or with a binary suffix
    (``512m``, ``2g``, ``64k``; optional trailing ``b`` / ``ib``)."""
    text = raw.strip().lower()
    for tail in ("ib", "b"):
        if text.endswith(tail) and text[: -len(tail)][-1:] in _SIZE_SUFFIXES:
            text = text[: -len(tail)]
            break
    scale = 1
    if text[-1:] in _SIZE_SUFFIXES:
        scale = _SIZE_SUFFIXES[text[-1]]
        text = text[:-1]
    return int(float(text) * scale) if "." in text else int(text) * scale


def _env_number(name: str, cast, kind: str):
    """Parse ``os.environ[name]`` via *cast*; blank/unset returns ``None``."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return cast(raw)
    except ValueError:
        raise ValueError(f"{name} must be {kind}, got {raw!r}") from None


def positive_int(name: str, default: int, minimum: int = 1) -> int:
    """Shared positive-int knob: env var *name* if set, else *default*."""
    value = _env_number(name, int, "an integer")
    if value is None:
        return default
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def positive_float(name: str, default: "float | None") -> "float | None":
    """Shared positive-float knob: env var *name* if set, else *default*."""
    value = _env_number(name, float, "a number")
    if value is None:
        return default
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def mc_trials(explicit: "int | None", default: int) -> int:
    """Resolve a Monte Carlo trial count.

    Priority: an explicit caller argument, then ``REPRO_MC_TRIALS``, then
    the driver's own *default*.
    """
    if explicit is not None:
        return explicit
    return positive_int("REPRO_MC_TRIALS", default)


def mc_chunk(explicit: "int | None" = None) -> int:
    """Resolve the Monte Carlo chunk size (trials per whole-array chunk).

    Priority: an explicit caller argument, then ``REPRO_MC_CHUNK``, then
    :data:`DEFAULT_MC_CHUNK`.  The chunk size slices the shared draw stream,
    so two runs agree bit-for-bit only at a matched chunk size; campaign
    cache keys therefore record the resolved value.
    """
    if explicit is not None:
        explicit = int(explicit)
        if explicit < 1:
            raise ValueError(f"mc chunk size must be >= 1, got {explicit}")
        return explicit
    return positive_int("REPRO_MC_CHUNK", DEFAULT_MC_CHUNK)


def mc_vr(explicit: "str | None" = None) -> str:
    """Resolve the rare-event variance-reduction mode of the MC plane.

    ``off`` (default) keeps plain Monte Carlo; ``is`` arms the
    exponential-tilt importance sampler; ``strat`` arms fault-count
    stratification; ``auto`` lets the driver pick per target (importance
    sampling for tail/threshold targets, stratification for means).  An
    explicit caller argument wins over ``REPRO_MC_VR``.
    """
    value = explicit if explicit is not None else os.environ.get("REPRO_MC_VR", "")
    value = value.strip() or "off"
    if value not in MC_VR_MODES:
        raise ValueError(
            f"REPRO_MC_VR must be one of {'|'.join(MC_VR_MODES)}, got {value!r}"
        )
    return value


def mc_tilt(explicit: "float | None" = None) -> float:
    """Resolve the importance-sampling tilt factor (``REPRO_MC_TILT``).

    Saturating-mode Poisson rates are multiplied by this factor under the
    proposal measure; ``1`` degenerates to plain MC (weights all one).
    Values below 1 would tilt *away* from faults and are rejected.
    """
    if explicit is not None:
        explicit = float(explicit)
        if explicit < 1:
            raise ValueError(f"mc tilt factor must be >= 1, got {explicit}")
        return explicit
    value = _env_number("REPRO_MC_TILT", float, "a number")
    if value is None:
        return DEFAULT_MC_TILT
    if value < 1:
        raise ValueError(f"REPRO_MC_TILT must be >= 1, got {value}")
    return value


def mc_target_rci(explicit: "float | None" = None) -> "float | None":
    """Resolve the early-stop target relative CI (``REPRO_MC_TARGET_RCI``).

    A rare-event campaign stops drawing once the 95% relative CI half-width
    of its primary estimator falls to this fraction (e.g. ``0.05`` = ±5%).
    ``None``/unset disables early stopping; ``0`` disables it explicitly.
    """
    if explicit is not None:
        explicit = float(explicit)
        if explicit < 0:
            raise ValueError(f"mc target rci must be >= 0, got {explicit}")
        return explicit or None
    value = _env_number("REPRO_MC_TARGET_RCI", float, "a number")
    if value is None:
        return None
    if value < 0:
        raise ValueError(f"REPRO_MC_TARGET_RCI must be >= 0, got {value}")
    return value or None


#: Truthy tokens accepted by flag-style knobs (``REPRO_TRACE``).
_FLAG_ON = frozenset({"1", "true", "on", "yes"})
_FLAG_OFF = frozenset({"", "0", "false", "off", "no"})


def trace_enabled(explicit: "bool | None" = None) -> bool:
    """Resolve the causal-trace knob (``REPRO_TRACE``).

    When on (and the telemetry bus is armed), span records
    (``trace.span``) are emitted on the JSONL event bus and every other
    event is stamped with the enclosing span, so a campaign reconstructs
    as a single span forest (:mod:`repro.obs.spantree`).  Off (the
    default) keeps the span plane a no-op.
    """
    if explicit is not None:
        return bool(explicit)
    raw = os.environ.get("REPRO_TRACE", "").strip().lower()
    if raw in _FLAG_ON:
        return True
    if raw in _FLAG_OFF:
        return False
    raise ValueError(f"REPRO_TRACE must be a flag (1/on/0/off), got {raw!r}")


def obs_max_bytes(explicit: "int | None" = None) -> "int | None":
    """Resolve the telemetry-stream size cap (``REPRO_OBS_MAX_BYTES``).

    When ``events.jsonl`` would exceed the cap, the sink rotates it to
    ``events.jsonl.1`` on a line boundary (every append is one whole-line
    write) and emits an ``obs.rotate`` event into the fresh stream, so
    week-long campaigns cannot fill the disk.  ``None``/unset disables
    rotation; ``0`` disables it explicitly.  Accepts byte-size suffixes
    (``64m``, ``2g``).
    """
    if explicit is not None:
        explicit = int(explicit)
        if explicit < 0:
            raise ValueError(f"obs max bytes must be >= 0, got {explicit}")
        return explicit or None
    value = _env_number("REPRO_OBS_MAX_BYTES", parse_bytes, "a byte size (e.g. 64m, 2g)")
    if value is None:
        return None
    if value < 0:
        raise ValueError(f"REPRO_OBS_MAX_BYTES must be >= 0, got {value}")
    return value or None


def jobs(default: int) -> int:
    """Resolve the campaign worker count: ``REPRO_JOBS`` if set, else
    *default* (callers pass the machine's CPU count)."""
    return positive_int("REPRO_JOBS", default)


def task_timeout(explicit: "float | None" = None) -> "float | None":
    """Resolve the per-task timeout in seconds; ``None`` means disabled.

    An explicit argument wins (``0`` explicitly disables); otherwise
    ``REPRO_TASK_TIMEOUT`` applies (``0`` disables there too); the default
    is no timeout, preserving pre-resilience behaviour.
    """
    if explicit is not None:
        explicit = float(explicit)
        if explicit < 0:
            raise ValueError(f"task timeout must be >= 0, got {explicit}")
        return explicit or None
    value = _env_number("REPRO_TASK_TIMEOUT", float, "a number")
    if value is None:
        return None
    if value < 0:
        raise ValueError(f"REPRO_TASK_TIMEOUT must be >= 0, got {value}")
    return value or None


def sim_kernel(explicit: "str | None" = None) -> str:
    """Resolve the timing-simulation kernel: ``epoch`` (batched, default)
    or ``event`` (the event-driven reference loop).

    An explicit caller argument wins; otherwise ``REPRO_SIM_KERNEL``
    applies.  Anything else raises eagerly.
    """
    value = explicit if explicit is not None else os.environ.get("REPRO_SIM_KERNEL", "")
    value = value.strip() or "epoch"
    if value not in ("event", "epoch"):
        raise ValueError(f"REPRO_SIM_KERNEL must be 'event' or 'epoch', got {value!r}")
    return value


def sim_native(explicit: "str | None" = None) -> str:
    """Resolve the epoch kernel's compiled-core policy: ``auto`` (default,
    use the cffi core when the configuration is eligible and a compiler is
    available), ``off`` (always the Python epoch loop), or ``on`` (require
    the compiled core; error out rather than fall back).
    """
    value = explicit if explicit is not None else os.environ.get("REPRO_SIM_NATIVE", "")
    value = value.strip() or "auto"
    if value not in ("auto", "off", "on"):
        raise ValueError(f"REPRO_SIM_NATIVE must be 'auto', 'off' or 'on', got {value!r}")
    return value


def gf_native(explicit: "str | None" = None) -> str:
    """Resolve the RS codec's compiled-core policy: ``auto`` (default, use
    the cffi GF core when the code is eligible and a compiler is
    available), ``off`` (always the NumPy batch kernel), or ``on``
    (require the compiled core; error out rather than fall back).
    """
    value = explicit if explicit is not None else os.environ.get("REPRO_GF_NATIVE", "")
    value = value.strip() or "auto"
    if value not in ("auto", "off", "on"):
        raise ValueError(f"REPRO_GF_NATIVE must be 'auto', 'off' or 'on', got {value!r}")
    return value


def task_batch(explicit: "str | int | None" = None) -> "str | int":
    """Resolve the super-task batching policy of the campaign engine.

    ``auto`` (default) sizes batches from measured per-task cost so
    dispatch overhead stays a small fraction of work; ``off`` submits
    every task individually (the pre-batching engine); an integer ``N >= 1``
    pins the batch size.  An explicit caller argument wins over
    ``REPRO_TASK_BATCH``.
    """
    value = explicit if explicit is not None else os.environ.get("REPRO_TASK_BATCH", "")
    if isinstance(value, int):
        if value < 1:
            raise ValueError(f"task batch size must be >= 1, got {value}")
        return value
    value = value.strip() or "auto"
    if value in ("auto", "off"):
        return value
    try:
        size = int(value)
    except ValueError:
        raise ValueError(
            f"REPRO_TASK_BATCH must be 'auto', 'off' or an integer >= 1, got {value!r}"
        ) from None
    if size < 1:
        raise ValueError(f"REPRO_TASK_BATCH must be >= 1, got {size}")
    return size


def mem_budget(explicit: "int | None" = None) -> "int | None":
    """Resolve the driver's RSS budget in bytes (``REPRO_MEM_BUDGET``).

    When the supervisor's watchdog sees RSS above this budget it degrades
    gracefully — halving the super-task batch cap and shrinking
    ``REPRO_MC_CHUNK`` for campaigns not yet keyed — instead of letting
    the OOM killer pick a victim.  Accepts byte-size suffixes (``512m``,
    ``2g``).  ``None``/unset disables the memory watchdog; ``0`` disables
    it explicitly.
    """
    if explicit is not None:
        explicit = int(explicit)
        if explicit < 0:
            raise ValueError(f"memory budget must be >= 0, got {explicit}")
        return explicit or None
    value = _env_number("REPRO_MEM_BUDGET", parse_bytes, "a byte size (e.g. 512m, 2g)")
    if value is None:
        return None
    if value < 0:
        raise ValueError(f"REPRO_MEM_BUDGET must be >= 0, got {value}")
    return value or None


def supervisor_dir(explicit: "str | None" = None) -> str:
    """Resolve the supervisor state directory (``REPRO_SUPERVISOR_DIR``):
    write-ahead journals and salvageable super-task spools live here."""
    if explicit:
        return str(explicit)
    return os.environ.get("REPRO_SUPERVISOR_DIR", "").strip() or DEFAULT_SUPERVISOR_DIR


def supervisor_poll(explicit: "float | None" = None) -> float:
    """Resolve the watchdog sampling period in seconds
    (``REPRO_SUPERVISOR_POLL``, default :data:`DEFAULT_SUPERVISOR_POLL`)."""
    if explicit is not None:
        explicit = float(explicit)
        if explicit <= 0:
            raise ValueError(f"supervisor poll period must be > 0, got {explicit}")
        return explicit
    return positive_float("REPRO_SUPERVISOR_POLL", DEFAULT_SUPERVISOR_POLL)


def supervisor_min_disk(explicit: "int | None" = None) -> int:
    """Resolve the free-disk floor in bytes (``REPRO_SUPERVISOR_MIN_DISK``,
    default :data:`DEFAULT_SUPERVISOR_MIN_DISK`; ``0`` disables the check).

    Below the floor the supervisor pauses-and-checkpoints rather than
    letting journal appends and cache renames start failing with ENOSPC.
    """
    if explicit is not None:
        explicit = int(explicit)
        if explicit < 0:
            raise ValueError(f"supervisor min disk must be >= 0, got {explicit}")
        return explicit
    value = _env_number(
        "REPRO_SUPERVISOR_MIN_DISK", parse_bytes, "a byte size (e.g. 64m, 1g)"
    )
    if value is None:
        return DEFAULT_SUPERVISOR_MIN_DISK
    if value < 0:
        raise ValueError(f"REPRO_SUPERVISOR_MIN_DISK must be >= 0, got {value}")
    return value


def task_retries(explicit: "int | None" = None) -> int:
    """Resolve the per-task retry budget (``REPRO_TASK_RETRIES``, default
    :data:`DEFAULT_TASK_RETRIES`).  ``0`` means a single attempt."""
    if explicit is not None:
        explicit = int(explicit)
        if explicit < 0:
            raise ValueError(f"task retries must be >= 0, got {explicit}")
        return explicit
    return positive_int("REPRO_TASK_RETRIES", DEFAULT_TASK_RETRIES, minimum=0)


# -- knob registry / introspection -----------------------------------------------------


@dataclass(frozen=True)
class Knob:
    """One registered REPRO_* environment knob."""

    name: str  #: environment variable name
    parser: str  #: human-readable parser/constraint ("int >= 1", "flag", ...)
    default: str  #: rendered default (what an unset variable means)
    description: str  #: one-line purpose
    resolve: Callable[[], str]  #: current *effective* value, rendered

    def current(self) -> str:
        """Rendered effective value; parser errors render as INVALID."""
        try:
            return self.resolve()
        except ValueError as exc:
            return f"INVALID ({exc})"


#: Registry of every REPRO_* knob, keyed by variable name.
KNOBS: "dict[str, Knob]" = {}


def register(name, parser, default, description, resolve) -> None:
    KNOBS[name] = Knob(name, parser, default, description, resolve)


def _resolve_chaos() -> str:
    from repro.util import chaos  # lazy: chaos -> obs -> envcfg

    return chaos.from_env() or "(off)"


def _resolve_obs_modes() -> str:
    from repro.obs import parse_modes  # lazy: obs -> envcfg

    modes = parse_modes(os.environ.get("REPRO_OBS"))
    return ",".join(sorted(modes)) if modes else "(off)"


register(
    "REPRO_JOBS",
    "int >= 1",
    "CPU count",
    "worker-process count of every campaign fan-out (1 = serial reference path)",
    lambda: str(jobs(os.cpu_count() or 1)),
)
register(
    "REPRO_MC_TRIALS",
    "int >= 1",
    "per driver (fig8: 20000)",
    "default trial count of every Monte Carlo driver; explicit trials= wins",
    lambda: str(positive_int("REPRO_MC_TRIALS", 0) or "(per-driver default)"),
)
register(
    "REPRO_MC_CHUNK",
    "int >= 1",
    str(DEFAULT_MC_CHUNK),
    "trials per whole-array Monte Carlo chunk; slices the draw stream, so cache keys record it",
    lambda: str(mc_chunk()),
)
register(
    "REPRO_MC_VR",
    "off|is|strat|auto",
    "off",
    "rare-event variance reduction: importance sampling, count stratification, or per-target auto",
    lambda: mc_vr(),
)
register(
    "REPRO_MC_TILT",
    "float >= 1",
    str(DEFAULT_MC_TILT),
    "exponential-tilt factor of the importance sampler (1 = plain MC weights)",
    lambda: f"{mc_tilt():g}",
)
register(
    "REPRO_MC_TARGET_RCI",
    "float >= 0",
    "disabled",
    "early-stop a rare-event campaign once the 95% relative CI reaches this fraction (0 = off)",
    lambda: (lambda v: f"{v:g}" if v else "(disabled)")(mc_target_rci()),
)
register(
    "REPRO_TASK_TIMEOUT",
    "float >= 0 (s)",
    "disabled",
    "per-task timeout for pooled campaign tasks; hung workers trigger a pool rebuild",
    lambda: (lambda v: f"{v:g}s" if v else "(disabled)")(task_timeout()),
)
register(
    "REPRO_TASK_RETRIES",
    "int >= 0",
    str(DEFAULT_TASK_RETRIES),
    "retry budget per campaign task beyond the first attempt (0 = single attempt)",
    lambda: str(task_retries()),
)
register(
    "REPRO_TASK_BATCH",
    "auto|off|int >= 1",
    "auto",
    "super-task batching of small campaign tasks: cost-based auto, off, or a fixed size",
    lambda: str(task_batch()),
)
register(
    "REPRO_CHAOS",
    "chaos spec",
    "(off)",
    "deterministic fault injection into pool workers: mode[=param]@index[#attempt],...",
    _resolve_chaos,
)
def _resolve_chaos_io() -> str:
    from repro.util import chaos  # lazy: chaos -> obs -> envcfg

    return chaos.io_from_env() or "(off)"


register(
    "REPRO_CHAOS_IO",
    "io chaos spec",
    "(off)",
    "host/I-O fault injection for the supervisor: mode[=param]@op[#n],... "
    "(enospc|eio|torn|kill|rss)",
    _resolve_chaos_io,
)
register(
    "REPRO_MEM_BUDGET",
    "bytes (512m, 2g)",
    "disabled",
    "driver RSS budget; above it the watchdog shrinks batch caps and MC chunks (0 = off)",
    lambda: (lambda v: str(v) if v else "(disabled)")(mem_budget()),
)
register(
    "REPRO_SUPERVISOR_DIR",
    "path",
    DEFAULT_SUPERVISOR_DIR,
    "supervisor state directory: write-ahead campaign journals + salvageable spools",
    lambda: supervisor_dir(),
)
register(
    "REPRO_SUPERVISOR_POLL",
    "float > 0 (s)",
    str(DEFAULT_SUPERVISOR_POLL),
    "resource-watchdog sampling period for RSS and free-disk gauges",
    lambda: f"{supervisor_poll():g}s",
)
register(
    "REPRO_SUPERVISOR_MIN_DISK",
    "bytes (64m, 1g)",
    "64m",
    "free-disk floor under which a supervised campaign pauses-and-checkpoints (0 = off)",
    lambda: str(supervisor_min_disk()),
)
register(
    "REPRO_CACHE_DIR",
    "path",
    "./.repro_cache",
    "directory of the evaluation-matrix and Monte Carlo checkpoint caches",
    lambda: os.environ.get("REPRO_CACHE_DIR", "./.repro_cache"),
)
register(
    "REPRO_FULL",
    "flag",
    "unset (quick fidelity)",
    "select the full-fidelity evaluation preset used for EXPERIMENTS.md numbers",
    lambda: "full" if os.environ.get("REPRO_FULL") else "quick",
)
register(
    "REPRO_BENCH_QUICK",
    "flag",
    "unset (full budgets)",
    "shrink benchmark budgets so benchmarks/ finishes in CI-scale time",
    lambda: "quick" if os.environ.get("REPRO_BENCH_QUICK") else "full",
)
register(
    "REPRO_SIM_KERNEL",
    "event|epoch",
    "epoch",
    "timing-simulation kernel: epoch-batched fast path or the event-driven reference",
    lambda: sim_kernel(),
)
register(
    "REPRO_SIM_NATIVE",
    "auto|off|on",
    "auto",
    "epoch kernel's compiled core: auto-detect, disable, or require (no fallback)",
    lambda: sim_native(),
)
register(
    "REPRO_GF_NATIVE",
    "auto|off|on",
    "auto",
    "RS codec's compiled GF core: auto-detect, disable, or require (no fallback)",
    lambda: gf_native(),
)
register(
    "REPRO_OBS",
    "mode list",
    "(telemetry off)",
    "arm the telemetry plane: comma-separated modes engine,mc,sim,chaos,supervisor,ecc (or 'all')",
    _resolve_obs_modes,
)
register(
    "REPRO_OBS_DIR",
    "path",
    "./.repro_obs",
    "run directory for telemetry events.jsonl + manifest.json",
    lambda: os.environ.get("REPRO_OBS_DIR", "./.repro_obs"),
)
register(
    "REPRO_TRACE",
    "flag",
    "off",
    "causal span plane: emit trace.span records and stamp events with the enclosing span",
    lambda: "on" if trace_enabled() else "off",
)
register(
    "REPRO_OBS_MAX_BYTES",
    "bytes (64m, 2g)",
    "disabled",
    "rotate events.jsonl to events.jsonl.1 on a line boundary past this size (0 = off)",
    lambda: (lambda v: str(v) if v else "(disabled)")(obs_max_bytes()),
)


def describe() -> "list[dict]":
    """Introspect every registered knob (name order).

    Returns dicts with ``name``, ``parser``, ``default``, ``current``
    (effective value, env or default), ``source`` (``env``/``default``),
    and ``description`` — the feed for the CLI table, the README knob
    table, and run manifests.
    """
    out = []
    for name in sorted(KNOBS):
        k = KNOBS[name]
        out.append(
            {
                "name": k.name,
                "parser": k.parser,
                "default": k.default,
                "current": k.current(),
                "source": "env" if os.environ.get(k.name, "").strip() else "default",
                "description": k.description,
            }
        )
    return out


def render_knobs(markdown: bool = False, defaults_only: bool = False) -> str:
    """Render the knob table (plain text, or a Markdown table for README).

    *defaults_only* drops the machine-specific ``current`` column so the
    output is stable enough to commit into documentation.
    """
    rows = describe()
    headers = ["knob", "parser", "default", "current", "description"]
    cells = [
        [r["name"], r["parser"], r["default"],
         r["current"] + (" *" if r["source"] == "env" else ""), r["description"]]
        for r in rows
    ]
    if defaults_only:
        headers = headers[:3] + headers[4:]
        cells = [c[:3] + c[4:] for c in cells]
    if markdown:
        lines = ["| " + " | ".join(["`" + c[0] + "`"] + c[1:]) + " |" for c in cells]
        return "\n".join(
            ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"] + lines
        )
    widths = [max(len(h), *(len(c[i]) for c in cells)) for i, h in enumerate(headers)]
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*("-" * w for w in widths))]
    lines += [fmt.format(*c) for c in cells]
    if not defaults_only:
        lines.append("(* = set in the environment)")
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    """``python -m repro.util.envcfg``: print every registered knob."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.util.envcfg",
        description="List every REPRO_* knob: parser, default, current value.",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="emit the README-ready Markdown table"
    )
    parser.add_argument(
        "--defaults",
        action="store_true",
        help="omit the machine-specific 'current' column (for committed docs)",
    )
    args = parser.parse_args(argv)
    print(render_knobs(markdown=args.markdown, defaults_only=args.defaults))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
