"""Environment-variable knobs shared by the reliability-plane drivers.

``REPRO_MC_TRIALS`` overrides the default trial count of every Monte Carlo
driver (Figure 8 end-of-life, the coverage study, the collision study) so
one switch flips the whole reliability plane between a quick CI pass and a
full-scale run (e.g. ``REPRO_MC_TRIALS=1000000`` for converged tail
statistics).  An explicit ``trials=`` argument always wins over the
environment.
"""

from __future__ import annotations

import os


def mc_trials(explicit: "int | None", default: int) -> int:
    """Resolve a Monte Carlo trial count.

    Priority: an explicit caller argument, then ``REPRO_MC_TRIALS``, then
    the driver's own *default*.
    """
    if explicit is not None:
        return explicit
    raw = os.environ.get("REPRO_MC_TRIALS", "").strip()
    if raw:
        try:
            trials = int(raw)
        except ValueError:
            raise ValueError(f"REPRO_MC_TRIALS must be an integer, got {raw!r}") from None
        if trials < 1:
            raise ValueError(f"REPRO_MC_TRIALS must be >= 1, got {trials}")
        return trials
    return default
