"""Last-level cache model with ECC-aware line kinds.

An 8 MB, 16-way, write-back, write-allocate LLC (Table I) whose lines carry
a *kind*: ordinary data, an ECC line (LOT-ECC's GEC lines), or a XOR line
(the delta-compacting cachelines of Multi-ECC and ECC Parity, Section
III-D).  ECC-related lines share the insertion and replacement policy with
data lines, exactly as the paper models them (Section IV-C); what differs is
their fill/eviction traffic, which the simulation layer charges per kind.

Implementation note (profiled per the HPC guide): the timing plane performs
tens of millions of single-line accesses, so lookups use a flat dict
(address -> flat slot index) with flat Python lists for tag/LRU/dirty/kind
state - an order of magnitude faster here than per-set NumPy compares,
whose per-call overhead dwarfs 16-element work.  The dominant case by far
is a hit, so ``access`` resolves it from the single dict probe alone
(no set arithmetic, no victim scan, no allocation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class LineKind(enum.IntEnum):
    """What a cached line holds (drives eviction traffic)."""

    DATA = 0
    ECC = 1  #: actual ECC correction bits (LOT-ECC GEC lines); evict = 1 write
    XOR = 2  #: compacted parity delta; evict = 1 read + 1 write


@dataclass
class Eviction:
    """A victim pushed out by an insertion."""

    addr: int
    kind: LineKind
    dirty: bool


@dataclass
class LLCStats:
    hits: int = 0
    misses: int = 0
    evictions_dirty: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class LLC:
    """Set-associative write-back cache over line-granularity addresses."""

    def __init__(self, size_bytes: int = 8 << 20, assoc: int = 16, line_size: int = 64):
        self.line_size = line_size
        self.assoc = assoc
        self.n_sets = size_bytes // (assoc * line_size)
        if self.n_sets & (self.n_sets - 1):
            raise ValueError("set count must be a power of two")
        slots = self.n_sets * assoc
        self._set_mask = self.n_sets - 1
        # Flat slot-indexed state (slot = set * assoc + way): one indexing
        # level instead of two on every touch.
        self._tags = [-1] * slots
        self._lru = [0] * slots
        self._dirty = [False] * slots
        self._kind: "list[LineKind]" = [LineKind.DATA] * slots
        self._where: "dict[int, int]" = {}  # addr -> flat slot index
        # Ways fill strictly left to right (victims reuse their slot), so a
        # set's occupancy count locates the next free way without scanning.
        self._fill = [0] * self.n_sets
        self._clock = 0
        self._hits = 0
        self._misses = 0
        self._evictions_dirty = 0
        #: Pristine copies of the flat arrays, built lazily on first reset
        #: so repeated resets slice-assign instead of reallocating.
        self._reset_templates: "tuple | None" = None

    def reset(self) -> None:
        """Return to the post-construction state, reusing the flat arrays.

        Lets an evaluation-matrix cell recycle one LLC across the
        ``SimSystem`` instances it builds instead of reallocating the
        ~0.5M-element slot arrays per config.
        """
        tmpl = self._reset_templates
        if tmpl is None:
            slots = self.n_sets * self.assoc
            tmpl = self._reset_templates = (
                [-1] * slots,
                [0] * slots,
                [False] * slots,
                [LineKind.DATA] * slots,
                [0] * self.n_sets,
            )
        self._tags[:] = tmpl[0]
        self._lru[:] = tmpl[1]
        self._dirty[:] = tmpl[2]
        self._kind[:] = tmpl[3]
        self._fill[:] = tmpl[4]
        self._where.clear()
        self._clock = 0
        self._hits = 0
        self._misses = 0
        self._evictions_dirty = 0

    @property
    def stats(self) -> LLCStats:
        """Counter snapshot (kept as plain ints internally for hot-path speed)."""
        return LLCStats(
            hits=self._hits, misses=self._misses, evictions_dirty=self._evictions_dirty
        )

    def _set_of(self, line_addr: int) -> int:
        return line_addr & self._set_mask

    def probe(self, line_addr: int) -> bool:
        """Presence check without any state change."""
        return line_addr in self._where

    def access(
        self,
        line_addr: int,
        kind: LineKind = LineKind.DATA,
        make_dirty: bool = False,
    ) -> "tuple[bool, Eviction | None]":
        """Reference a line; allocate on miss.

        Returns ``(hit, eviction)``; *eviction* is the displaced line (only
        meaningful traffic-wise when dirty, but always reported).
        """
        slot = self._where.get(line_addr)
        if slot is not None:
            # Hit fast path: the dict probe resolves the slot directly.
            self._clock = clock = self._clock + 1
            self._lru[slot] = clock
            if make_dirty:
                self._dirty[slot] = True
            self._hits += 1
            return True, None

        self._clock = clock = self._clock + 1
        self._misses += 1
        assoc = self.assoc
        s = line_addr & self._set_mask
        base = s * assoc
        tags = self._tags
        evicted = None
        filled = self._fill[s]
        if filled < assoc:  # free way available: no victim scan, no eviction
            victim = base + filled
            self._fill[s] = filled + 1
        else:
            lru = self._lru
            victim = base
            best = lru[base]
            for i in range(base + 1, base + assoc):
                v = lru[i]
                if v < best:
                    best = v
                    victim = i
            old = tags[victim]
            evicted = Eviction(addr=old, kind=self._kind[victim], dirty=self._dirty[victim])
            if evicted.dirty:
                self._evictions_dirty += 1
            del self._where[old]
        tags[victim] = line_addr
        self._lru[victim] = clock
        self._dirty[victim] = make_dirty
        self._kind[victim] = kind
        self._where[line_addr] = victim
        return False, evicted

    def flush_dirty(self) -> "list[Eviction]":
        """Drain every dirty line (end-of-run accounting helper)."""
        out = []
        dirty = self._dirty
        for slot in range(len(dirty)):
            if dirty[slot]:
                out.append(Eviction(addr=self._tags[slot], kind=self._kind[slot], dirty=True))
                dirty[slot] = False
        return out
