"""Last-level cache model with ECC-aware line kinds.

An 8 MB, 16-way, write-back, write-allocate LLC (Table I) whose lines carry
a *kind*: ordinary data, an ECC line (LOT-ECC's GEC lines), or a XOR line
(the delta-compacting cachelines of Multi-ECC and ECC Parity, Section
III-D).  ECC-related lines share the insertion and replacement policy with
data lines, exactly as the paper models them (Section IV-C); what differs is
their fill/eviction traffic, which the simulation layer charges per kind.

Implementation note (profiled per the HPC guide): the timing plane performs
tens of millions of single-line accesses, so lookups use a flat dict
(address -> way slot) with small per-set Python lists for LRU/dirty state -
an order of magnitude faster here than per-set NumPy compares, whose
per-call overhead dwarfs 16-element work.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class LineKind(enum.IntEnum):
    """What a cached line holds (drives eviction traffic)."""

    DATA = 0
    ECC = 1  #: actual ECC correction bits (LOT-ECC GEC lines); evict = 1 write
    XOR = 2  #: compacted parity delta; evict = 1 read + 1 write


@dataclass
class Eviction:
    """A victim pushed out by an insertion."""

    addr: int
    kind: LineKind
    dirty: bool


@dataclass
class LLCStats:
    hits: int = 0
    misses: int = 0
    evictions_dirty: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class LLC:
    """Set-associative write-back cache over line-granularity addresses."""

    def __init__(self, size_bytes: int = 8 << 20, assoc: int = 16, line_size: int = 64):
        self.line_size = line_size
        self.assoc = assoc
        self.n_sets = size_bytes // (assoc * line_size)
        if self.n_sets & (self.n_sets - 1):
            raise ValueError("set count must be a power of two")
        n = self.n_sets
        self._tags = [[-1] * assoc for _ in range(n)]
        self._lru = [[0] * assoc for _ in range(n)]
        self._dirty = [[False] * assoc for _ in range(n)]
        self._kind = [[0] * assoc for _ in range(n)]
        self._where: "dict[int, int]" = {}  # addr -> way (set is addr & mask)
        self._clock = 0
        self.stats = LLCStats()

    def _set_of(self, line_addr: int) -> int:
        return line_addr & (self.n_sets - 1)

    def probe(self, line_addr: int) -> bool:
        """Presence check without any state change."""
        return line_addr in self._where

    def access(
        self,
        line_addr: int,
        kind: LineKind = LineKind.DATA,
        make_dirty: bool = False,
    ) -> "tuple[bool, Eviction | None]":
        """Reference a line; allocate on miss.

        Returns ``(hit, eviction)``; *eviction* is the displaced line (only
        meaningful traffic-wise when dirty, but always reported).
        """
        self._clock += 1
        s = self._set_of(line_addr)
        w = self._where.get(line_addr)
        if w is not None:
            self._lru[s][w] = self._clock
            if make_dirty:
                self._dirty[s][w] = True
            self.stats.hits += 1
            return True, None

        self.stats.misses += 1
        tags = self._tags[s]
        lru = self._lru[s]
        victim_way = -1
        best = None
        for i in range(self.assoc):
            if tags[i] == -1:
                victim_way = i
                break
            if best is None or lru[i] < best:
                best = lru[i]
                victim_way = i
        evicted = None
        old = tags[victim_way]
        if old != -1:
            evicted = Eviction(
                addr=old,
                kind=LineKind(self._kind[s][victim_way]),
                dirty=self._dirty[s][victim_way],
            )
            if evicted.dirty:
                self.stats.evictions_dirty += 1
            del self._where[old]
        tags[victim_way] = line_addr
        lru[victim_way] = self._clock
        self._dirty[s][victim_way] = make_dirty
        self._kind[s][victim_way] = int(kind)
        self._where[line_addr] = victim_way
        return False, evicted

    def flush_dirty(self) -> "list[Eviction]":
        """Drain every dirty line (end-of-run accounting helper)."""
        out = []
        for s in range(self.n_sets):
            dirty = self._dirty[s]
            for w in range(self.assoc):
                if dirty[w]:
                    out.append(
                        Eviction(
                            addr=self._tags[s][w],
                            kind=LineKind(self._kind[s][w]),
                            dirty=True,
                        )
                    )
                    dirty[w] = False
        return out
