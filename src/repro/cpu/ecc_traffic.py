"""Mapping from data lines to their ECC-related cachelines (Section IV-C).

Each resilience scheme that keeps correction state out-of-band owns a region
of ECC/XOR lines; the address functions here decide which data lines share
one, which is what determines the LLC hit rate of ECC-related lines and
therefore the scheme's bandwidth overhead:

* LOT-ECC: one ECC line per 4 (LOT-ECC5) or 8 (LOT-ECC9) logically adjacent
  data lines.
* Multi-ECC: one XOR line per 16 adjacent data lines.
* ECC Parity: one XOR line per "same group of adjacent lines in N-1
  logically adjacent physical pages" - coverage grows with the channel
  count, which is why the dual-channel-equivalent systems see higher
  overheads (Fig. 17 vs Fig. 16).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ecc.base import ECCScheme, EccTraffic

#: Line-address offset isolating ECC lines from data (they live in reserved
#: rows physically; any disjoint region works for the traffic model).
ECC_REGION_BASE = 1 << 40


@dataclass(frozen=True)
class EccTrafficModel:
    """How a scheme's correction-state updates turn into LLC/memory traffic."""

    kind: EccTraffic
    #: Data lines sharing one ECC/XOR cacheline (0 for INLINE schemes).
    coverage: int
    #: For ECC Parity: lines covered within one page; grouping then spans
    #: ``parity_channels - 1`` adjacent pages.  None for per-page schemes.
    per_page_coverage: "int | None" = None
    parity_channels: "int | None" = None
    lines_per_page: int = 64
    #: Section III-D optimization switch.  When False, every data write-back
    #: pays the unoptimized Figure 6 cost up front: step E is a 3-access
    #: read-modify-write of the parity line (old-value read + parity read +
    #: parity write); an ECC line costs its read-modify-write immediately.
    cache_ecc_lines: bool = True

    @classmethod
    def for_scheme(cls, scheme: ECCScheme, ecc_parity_channels: "int | None" = None) -> "EccTrafficModel":
        """Build the model for *scheme*, optionally wrapped in ECC Parity."""
        if ecc_parity_channels is not None:
            per_page = scheme.ecc_line_coverage or 1
            return cls(
                kind=EccTraffic.XOR_LINE,
                coverage=per_page * (ecc_parity_channels - 1),
                per_page_coverage=per_page,
                parity_channels=ecc_parity_channels,
                lines_per_page=4096 // scheme.line_size,
            )
        return cls(
            kind=scheme.traffic,
            coverage=scheme.ecc_line_coverage,
            lines_per_page=4096 // scheme.line_size,
        )

    def ecc_addr(self, line_addr: int) -> "int | None":
        """The ECC/XOR line a data line maps to, or None for inline schemes."""
        if self.kind == EccTraffic.INLINE:
            return None
        if self.parity_channels is not None:
            page, offset = divmod(line_addr, self.lines_per_page)
            groups_per_page = max(1, self.lines_per_page // self.per_page_coverage)
            page_group = page // (self.parity_channels - 1)
            group_in_page = offset // self.per_page_coverage
            return ECC_REGION_BASE + page_group * groups_per_page + group_in_page
        return ECC_REGION_BASE + line_addr // max(1, self.coverage)
