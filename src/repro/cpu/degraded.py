"""Degraded-mode operation: traffic rules for faulty bank pairs.

After a bank pair's error counter saturates, its actual ECC correction bits
live in memory (Section III-B) and every application access to those banks
takes the Figure 6 side paths:

* **reads** (step B): the ECC line holding the line's correction bits is
  read in parallel with the data - cacheable in the LLC per the VECC-style
  optimization of Section III-D, so repeated reads to lines sharing an ECC
  line hit on chip;
* **writes** (step D): the line's correction bits are recomputed and the
  ECC line updated - again through the LLC, with a memory fetch on miss
  (unlike parity XOR-lines, materialized correction bits must be read
  before they can be partially updated) and a write-back on eviction.

The paper calls step B "the most expensive step among the added steps";
:mod:`repro.experiments.degraded` quantifies exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Line-address base for materialized-ECC lines (disjoint from data and
#: from the parity-region base in repro.cpu.ecc_traffic).
MATERIALIZED_BASE = 1 << 41


@dataclass(frozen=True)
class DegradedMode:
    """Which (channel, rank, bank) triples are recorded as faulty.

    ``ecc_line_coverage`` is how many data lines one materialized-ECC line
    covers: ``line_size // (2 * correction_bytes_per_line)`` under the
    paper's doubled allocation (e.g. two 64B lines per ECC line for
    LOT-ECC5's 16B payloads).
    """

    faulty_banks: "frozenset[tuple[int, int, int]]"
    ecc_line_coverage: int = 2

    @classmethod
    def for_scheme(cls, scheme, faulty_banks) -> "DegradedMode":
        cov = max(1, scheme.line_size // (2 * max(1, scheme.correction_bytes_per_line)))
        return cls(frozenset(faulty_banks), cov)

    def is_faulty(self, channel: int, rank: int, bank: int) -> bool:
        """Step A1/A2: the on-chip bank-health SRAM lookup."""
        return (channel, rank, bank) in self.faulty_banks

    def ecc_addr(self, line_addr: int) -> int:
        """The materialized-ECC line covering a data line."""
        return MATERIALIZED_BASE + line_addr // self.ecc_line_coverage
