"""Compiled core loop for the epoch kernel (``REPRO_SIM_NATIVE``).

The pure-Python epoch loop in :mod:`repro.cpu.batchkernel` executes the
reference discrete-event semantics at roughly 2 microseconds per event -
an op-for-op floor set by the interpreter, since every branch of the loop
is already flat integer arithmetic over lists.  This module compiles the
identical loop to machine code with :mod:`cffi` (the toolchain ships in
the base image; nothing is downloaded) and runs it over flat int64 NumPy
state, dropping per-event cost by more than an order of magnitude.

Scope: the native loop covers the common simulation shapes including
patrol scrubbing and degraded (faulty-bank) mode - excluded are one-shot
bursts, per-window IPC tracking, uncached ECC state, and mappings whose
geometry differs from the memory system.  Anything else falls back to
the Python epoch loop, which handles every configuration.  Both paths
are bit-identical to the event-driven reference;
``tests/test_epoch_kernel.py`` pins each against the oracle.

Build model: the C source below is compiled once per source hash into
``src/repro/cpu/_native/`` (gitignored) and memoized process-wide.
Compilation failures (no compiler, sandboxed build dir) degrade silently
to the Python loop - ``REPRO_SIM_NATIVE=on`` turns that into a hard
error, ``off`` disables the native path outright, and the default
``auto`` uses it when available and eligible.

Identity-critical conventions shared with the Python loop:

* events are ``(time, seq, kind, payload)`` with ``seq`` incremented at
  exactly the reference push sites, so heap order replays exactly;
* DRAM decode is recomputed arithmetically per address (positive int64
  division matches Python floor division);
* pending-request counts are recounted from the queue at pick time,
  which equals the reference's incremental pending map for every key.
"""

from __future__ import annotations

import hashlib
import os
from itertools import islice
from time import perf_counter

import numpy as np

from repro import obs
from repro.cpu.llc import LineKind
from repro.cpu.system import (
    TAG_FILL,
    TAG_POSTFILL,
    TAG_SHIFT,
    AccessCounters,
    SimResult,
)
from repro.dram.channel import MemRequest
from repro.dram.power import RankEnergyCounters
from repro.ecc.base import EccTraffic

#: Max cores the native loop supports (fixed-size trace-buffer slots).
MAX_CORES = 64

#: Event-heap capacity (entries).  Live events are bounded by a few per
#: core plus queue occupancy and in-flight channel wakeups - observed
#: peaks are in the hundreds; overflow raises rather than truncates.
HEAP_CAP = 1 << 17

_CDEF = """
typedef struct {
    /* geometry */
    int64_t C, R, B, MB, n_ranks, n_cores;
    int64_t lpp, map_channels, map_ranks, seq_policy;
    int64_t hot_base, hot_ranks;
    /* timing */
    int64_t trcd, tcl, tcwl, tburst, trrd, tfaw, twtr, trtrs, txp;
    int64_t trfc, trefi, bb_read, bb_write, trcd_tcl, PD;
    int64_t WRITE_DRAIN, WRITE_DRAIN_LOW, QUEUE_DEPTH;
    int64_t HIT, POSTED_CAP, load_mlp, units_64b;
    /* ecc: mode 0=inline (no state), 1=parity formula, 2=simple */
    int64_t ecc_mode, ecc_insert_kind;
    int64_t eb, lpp_e, ppc, gpp, pc1, cov;
    /* llc flat state */
    int64_t set_mask, assoc, n_sets;
    int64_t *l_tags; int64_t *l_lru; uint8_t *l_dirty; uint8_t *l_kind;
    int64_t *l_fill;
    int64_t clock, hits, misses, evictions_dirty;
    /* llc address -> slot open-addressing map */
    int64_t *wh_keys; int64_t *wh_vals; int64_t wh_mask, wh_used, wh_tomb;
    /* per global-rank state */
    int64_t *bank_ready, *busy_until, *accounted_to, *next_refresh, *refreshes;
    int64_t *c_act, *c_rd, *c_wr, *c_active, *c_standby, *c_pdown;
    int64_t *act_ring, *act_len, *act_head;
    /* per channel state; queue entries are 7 int64 fields */
    int64_t *qes, *q_len;
    int64_t *dem_cnt, *bg_cnt, *draining, *bus_free, *last_w;
    int64_t *fast_picks, *issued, *refresh_due;
    /* per core state */
    uint8_t *done, *waiting, *has_pend, *pend_wr;
    int64_t *posted, *loads, *instr, *pend_addr;
    int64_t done_cnt;
    /* trace buffers (per-core pointers owned by Python) */
    int64_t *buf_gap[64]; int64_t *buf_addr[64];
    uint8_t *buf_wr[64]; int64_t *buf_dt[64];
    int64_t buf_i[64], buf_n[64];
    /* event heap: 4 int64 per entry */
    int64_t *h; int64_t h_len, h_cap, seq;
    /* run control */
    int64_t now, total, limit, target;
    int64_t resume_cid, resume_now, refill_ok;
    int64_t snap_taken, error;
    int64_t *snap_cnt;            /* 6 * n_ranks */
    int64_t snap_scalars[9], end_scalars[9];
    /* counters */
    int64_t accesses_64b, n_data_r, n_data_w, n_ecc_r, n_ecc_w;
    /* patrol scrub */
    int64_t scrub_interval, scrub_region, scrub_cursor, scrub_reads;
    /* degraded mode: faulty-bank bitmap + materialized-ECC constants */
    int64_t mat_on, mat_cov, mat_base;
    uint8_t *faulty;
} KS;

void push_event(KS *k, int64_t t, int64_t kind, int64_t payload);
void wh_bulk(KS *k, int64_t *keys, int64_t *vals, int64_t n);
int64_t epoch_run(KS *k);
"""

_CSRC = r"""
#include <stdint.h>
#include <string.h>

typedef struct {
    /* geometry */
    int64_t C, R, B, MB, n_ranks, n_cores;
    int64_t lpp, map_channels, map_ranks, seq_policy;
    int64_t hot_base, hot_ranks;
    /* timing */
    int64_t trcd, tcl, tcwl, tburst, trrd, tfaw, twtr, trtrs, txp;
    int64_t trfc, trefi, bb_read, bb_write, trcd_tcl, PD;
    int64_t WRITE_DRAIN, WRITE_DRAIN_LOW, QUEUE_DEPTH;
    int64_t HIT, POSTED_CAP, load_mlp, units_64b;
    int64_t ecc_mode, ecc_insert_kind;
    int64_t eb, lpp_e, ppc, gpp, pc1, cov;
    int64_t set_mask, assoc, n_sets;
    int64_t *l_tags; int64_t *l_lru; uint8_t *l_dirty; uint8_t *l_kind;
    int64_t *l_fill;
    int64_t clock, hits, misses, evictions_dirty;
    int64_t *wh_keys; int64_t *wh_vals; int64_t wh_mask, wh_used, wh_tomb;
    int64_t *bank_ready, *busy_until, *accounted_to, *next_refresh, *refreshes;
    int64_t *c_act, *c_rd, *c_wr, *c_active, *c_standby, *c_pdown;
    int64_t *act_ring, *act_len, *act_head;
    int64_t *qes, *q_len;
    int64_t *dem_cnt, *bg_cnt, *draining, *bus_free, *last_w;
    int64_t *fast_picks, *issued, *refresh_due;
    uint8_t *done, *waiting, *has_pend, *pend_wr;
    int64_t *posted, *loads, *instr, *pend_addr;
    int64_t done_cnt;
    int64_t *buf_gap[64]; int64_t *buf_addr[64];
    uint8_t *buf_wr[64]; int64_t *buf_dt[64];
    int64_t buf_i[64], buf_n[64];
    int64_t *h; int64_t h_len, h_cap, seq;
    int64_t now, total, limit, target;
    int64_t resume_cid, resume_now, refill_ok;
    int64_t snap_taken, error;
    int64_t *snap_cnt;
    int64_t snap_scalars[9], end_scalars[9];
    int64_t accesses_64b, n_data_r, n_data_w, n_ecc_r, n_ecc_w;
    int64_t scrub_interval, scrub_region, scrub_cursor, scrub_reads;
    int64_t mat_on, mat_cov, mat_base;
    uint8_t *faulty;
} KS;

/* tag codes (mirror repro.cpu.system) */
#define TAG_SHIFT_   4
#define TAG_MASK_    ((1 << TAG_SHIFT_) - 1)
#define TAG_FILL_    1
#define TAG_POSTFILL_ 2
#define TAG_POSTLOAD_ 3
#define TAG_WB_      4
#define TAG_ECCWB_   5
#define TAG_ECCRMW_  6
#define TAG_ECCFILL_ 7
#define TAG_SCRUB_   8

#define EV_CORE_   0
#define EV_ACCESS_ 1
#define EV_SCRUB_  3
#define EV_CHAN_   4

#define KIND_DATA_ 0
#define KIND_ECC_  1

#define ERR_QUEUE_   1
#define ERR_CASCADE_ 2
#define ERR_HEAP_    3

/* -- event heap: (time, seq) ordered, 4 int64 per entry -------------------- */

static void hpush(KS *k, int64_t t, int64_t kind, int64_t payload) {
    int64_t *h = k->h;
    int64_t i = k->h_len;
    if (i >= k->h_cap) { k->error = ERR_HEAP_; return; }
    k->h_len = i + 1;
    int64_t s = k->seq++;
    while (i > 0) {
        int64_t par = (i - 1) >> 1;
        int64_t *pe = h + par * 4;
        if (pe[0] < t || (pe[0] == t && pe[1] < s)) break;
        int64_t *ie = h + i * 4;
        ie[0] = pe[0]; ie[1] = pe[1]; ie[2] = pe[2]; ie[3] = pe[3];
        i = par;
    }
    int64_t *ie = h + i * 4;
    ie[0] = t; ie[1] = s; ie[2] = kind; ie[3] = payload;
}

static void hpop(KS *k, int64_t *t, int64_t *kind, int64_t *payload) {
    int64_t *h = k->h;
    *t = h[0]; *kind = h[2]; *payload = h[3];
    int64_t n = --k->h_len;
    if (!n) return;
    int64_t lt = h[n*4], ls = h[n*4+1], lk = h[n*4+2], lp = h[n*4+3];
    int64_t i = 0;
    for (;;) {
        int64_t c = 2 * i + 1;
        if (c >= n) break;
        int64_t c2 = c + 1;
        if (c2 < n && (h[c2*4] < h[c*4] ||
                       (h[c2*4] == h[c*4] && h[c2*4+1] < h[c*4+1]))) c = c2;
        if (h[c*4] > lt || (h[c*4] == lt && h[c*4+1] > ls)) break;
        int64_t *ie = h + i * 4, *ce = h + c * 4;
        ie[0] = ce[0]; ie[1] = ce[1]; ie[2] = ce[2]; ie[3] = ce[3];
        i = c;
    }
    int64_t *ie = h + i * 4;
    ie[0] = lt; ie[1] = ls; ie[2] = lk; ie[3] = lp;
}

void push_event(KS *k, int64_t t, int64_t kind, int64_t payload) {
    hpush(k, t, kind, payload);
}

/* -- LLC address -> slot map (open addressing, -1 empty / -2 tombstone) ---- */

static inline uint64_t wh_hash(int64_t key) {
    return (uint64_t)key * 0x9E3779B97F4A7C15ull;
}

static int64_t wh_get(KS *k, int64_t key) {
    int64_t mask = k->wh_mask;
    uint64_t i = wh_hash(key) & (uint64_t)mask;
    for (;;) {
        int64_t kk = k->wh_keys[i];
        if (kk == key) return k->wh_vals[i];
        if (kk == -1) return -1;
        i = (i + 1) & (uint64_t)mask;
    }
}

static void wh_rehash(KS *k) {
    int64_t cap = k->wh_mask + 1;
    int64_t *keys = k->wh_keys, *vals = k->wh_vals;
    /* compact in place via a second pass buffer on the C stack is unsafe
       for large caps; instead mark-and-reinsert using the slot arrays as
       the source of truth (every live key is a cached line tag). */
    for (int64_t i = 0; i < cap; i++) keys[i] = -1;
    k->wh_used = 0; k->wh_tomb = 0;
    int64_t slots = k->n_sets * k->assoc;
    for (int64_t s = 0; s < k->n_sets; s++) {
        int64_t fill = k->l_fill[s];
        for (int64_t w = 0; w < fill; w++) {
            int64_t slot = s * k->assoc + w;
            int64_t key = k->l_tags[slot];
            uint64_t i = wh_hash(key) & (uint64_t)k->wh_mask;
            while (keys[i] != -1) i = (i + 1) & (uint64_t)k->wh_mask;
            keys[i] = key; vals[i] = slot;
            k->wh_used++;
        }
    }
    (void)slots;
}

static void wh_put(KS *k, int64_t key, int64_t val) {
    if ((k->wh_used + k->wh_tomb) * 2 >= k->wh_mask + 1) wh_rehash(k);
    int64_t mask = k->wh_mask;
    uint64_t i = wh_hash(key) & (uint64_t)mask;
    for (;;) {
        int64_t kk = k->wh_keys[i];
        if (kk == key) { k->wh_vals[i] = val; return; }
        if (kk < 0) {  /* empty or tombstone */
            if (kk == -2) k->wh_tomb--;
            k->wh_keys[i] = key; k->wh_vals[i] = val;
            k->wh_used++;
            return;
        }
        i = (i + 1) & (uint64_t)mask;
    }
}

static void wh_del(KS *k, int64_t key) {
    int64_t mask = k->wh_mask;
    uint64_t i = wh_hash(key) & (uint64_t)mask;
    for (;;) {
        int64_t kk = k->wh_keys[i];
        if (kk == key) {
            k->wh_keys[i] = -2;
            k->wh_used--; k->wh_tomb++;
            return;
        }
        if (kk == -1) return;
        i = (i + 1) & (uint64_t)mask;
    }
}

void wh_bulk(KS *k, int64_t *keys, int64_t *vals, int64_t n) {
    for (int64_t i = 0; i < n; i++) wh_put(k, keys[i], vals[i]);
}

/* -- DRAM decode (AddressMapping._decode, positive arithmetic) ------------- */

static inline void decode(KS *k, int64_t addr, int64_t *ci, int64_t *gr,
                          int64_t *gb, int64_t *pk) {
    int64_t page = addr / k->lpp, off = addr % k->lpp;
    int64_t ch = page % k->map_channels, pic = page / k->map_channels;
    int64_t rank_lo = 0, nr = k->map_ranks;
    if (k->hot_base >= 0) {
        if (addr >= k->hot_base && addr < (1LL << 40)) {
            nr = k->hot_ranks;
        } else {
            rank_lo = k->hot_ranks;
            nr = k->map_ranks - k->hot_ranks;
        }
    }
    int64_t bt = nr * k->MB;
    int64_t bidx = k->seq_policy ? pic % bt : (off + pic) % bt;
    int64_t rank = rank_lo + bidx / k->MB, bank = bidx % k->MB;
    *ci = ch;
    *gr = ch * k->R + rank;
    *gb = *gr * k->B + bank;
    *pk = ((rank << 5 | bank) << 44) | pic;
}

static inline int64_t ecc_addr(KS *k, int64_t a) {
    if (k->ecc_mode == 1) {
        int64_t page = a / k->lpp_e, off = a % k->lpp_e;
        return k->eb + (page / k->pc1) * k->gpp + off / k->ppc;
    }
    return k->eb + a / k->cov;
}

/* -- residency accounting + refresh ---------------------------------------- */

static void account(KS *k, int64_t gr, int64_t upto) {
    int64_t t0 = k->accounted_to[gr];
    if (upto <= t0) return;
    int64_t busy = k->busy_until[gr];
    int64_t active_end = busy < upto ? busy : upto;
    if (active_end > t0) k->c_active[gr] += active_end - t0;
    int64_t idle_start = t0 > busy ? t0 : busy;
    if (upto > idle_start) {
        int64_t pd_point = busy + k->PD;
        int64_t standby_end = idle_start > pd_point ? idle_start : pd_point;
        if (standby_end > upto) standby_end = upto;
        if (standby_end > idle_start) k->c_standby[gr] += standby_end - idle_start;
        if (upto > standby_end) k->c_pdown[gr] += upto - standby_end;
    }
    k->accounted_to[gr] = upto;
}

static void service_refresh(KS *k, int64_t ci, int64_t now) {
    int64_t base_gr = ci * k->R;
    int64_t due = INT64_MAX;
    for (int64_t g = base_gr; g < base_gr + k->R; g++) {
        int64_t nr = k->next_refresh[g];
        while (nr <= now) {
            int64_t start = nr > 0 ? nr : 0;
            int64_t end = start + k->trfc;
            int64_t b0 = g * k->B;
            for (int64_t b = b0; b < b0 + k->B; b++)
                if (k->bank_ready[b] < end) k->bank_ready[b] = end;
            account(k, g, start);
            if (end > k->busy_until[g]) k->busy_until[g] = end;
            k->refreshes[g]++;
            nr += k->trefi;
        }
        k->next_refresh[g] = nr;
        if (nr < due) due = nr;
    }
    k->refresh_due[ci] = due;
}

/* -- memory enqueue (SimSystem._enqueue_mem + MemorySystem.enqueue) -------- */

/* queue entry layout: gr, gb, pk, wr, arrive, tag, dem */
#define QF 7

static void enqueue(KS *k, int64_t addr, int64_t is_write, int64_t tag,
                    int64_t now) {
    int64_t code = tag & TAG_MASK_;
    int64_t ci, gr, gb, pk;
    decode(k, addr, &ci, &gr, &gb, &pk);
    int64_t ql = k->q_len[ci];
    if (ql >= k->QUEUE_DEPTH) { k->error = ERR_QUEUE_; return; }
    int64_t *e = k->qes + (ci * k->QUEUE_DEPTH + ql) * QF;
    int64_t dem = (code == TAG_FILL_ || code == TAG_POSTFILL_);
    e[0] = gr; e[1] = gb; e[2] = pk; e[3] = is_write;
    e[4] = now; e[5] = tag; e[6] = dem;
    k->q_len[ci] = ql + 1;
    if (dem) k->dem_cnt[ci]++; else k->bg_cnt[ci]++;
    k->accesses_64b += k->units_64b;
    if (is_write) {
        if (code == TAG_ECCWB_ || code == TAG_ECCRMW_) k->n_ecc_w++;
        else k->n_data_w++;
    } else {
        if (code == TAG_ECCFILL_ || code == TAG_ECCRMW_) k->n_ecc_r++;
        else k->n_data_r++;
    }
    hpush(k, now, EV_CHAN_, ci);
}

/* -- LLC access (LLC.access, flat state) ----------------------------------- */
/* returns 1 hit, 0 miss without victim, -1 miss with victim (filled) */

static int64_t llc_access(KS *k, int64_t addr, int64_t kind, int64_t make_dirty,
                          int64_t *ev_addr, int64_t *ev_kind, int64_t *ev_dirty) {
    int64_t slot = wh_get(k, addr);
    k->clock++;
    if (slot >= 0) {
        k->l_lru[slot] = k->clock;
        if (make_dirty) k->l_dirty[slot] = 1;
        k->hits++;
        return 1;
    }
    k->misses++;
    int64_t s = addr & k->set_mask, base = s * k->assoc;
    int64_t victim, has_ev = 0;
    int64_t filled = k->l_fill[s];
    if (filled < k->assoc) {
        victim = base + filled;
        k->l_fill[s] = filled + 1;
    } else {
        victim = base;
        int64_t best = k->l_lru[base];
        for (int64_t i = base + 1; i < base + k->assoc; i++)
            if (k->l_lru[i] < best) { best = k->l_lru[i]; victim = i; }
        *ev_addr = k->l_tags[victim];
        *ev_kind = k->l_kind[victim];
        *ev_dirty = k->l_dirty[victim];
        if (*ev_dirty) k->evictions_dirty++;
        wh_del(k, *ev_addr);
        has_ev = 1;
    }
    k->l_tags[victim] = addr;
    k->l_lru[victim] = k->clock;
    k->l_dirty[victim] = (uint8_t)make_dirty;
    k->l_kind[victim] = (uint8_t)kind;
    wh_put(k, addr, victim);
    return has_ev ? -1 : 0;
}

/* -- degraded mode (faulty banks -> materialized ECC lines) ---------------- */

static inline int is_faulty(KS *k, int64_t addr) {
    if (!k->mat_on) return 0;
    int64_t ci, gr, gb, pk;
    decode(k, addr, &ci, &gr, &gb, &pk);
    return k->faulty[gb];
}

/* DegradedMode materialized-ECC line touch: LLC access (KIND_ECC) plus an
   ECCFILL memory read on miss; returns the llc_access result so the caller
   can cascade the (dirty) victim exactly like the Python oracle. */
static int64_t touch_mat(KS *k, int64_t addr, int64_t dirty, int64_t now,
                         int64_t *ev_a, int64_t *ev_k, int64_t *ev_d) {
    int64_t ea = k->mat_base + addr / k->mat_cov;
    int64_t r = llc_access(k, ea, KIND_ECC_, dirty, ev_a, ev_k, ev_d);
    if (r != 1) enqueue(k, ea, 0, TAG_ECCFILL_, now);
    return r;
}

/* -- eviction cascade (SimSystem._handle_eviction) ------------------------- */

static void cascade(KS *k, int64_t va, int64_t vk, int64_t vd, int64_t now) {
    int64_t st_a[66], st_k[66], st_d[66];
    int sp = 0, guard = 0;
    st_a[0] = va; st_k[0] = vk; st_d[0] = vd; sp = 1;
    while (sp) {
        if (++guard > 64) { k->error = ERR_CASCADE_; return; }
        sp--;
        int64_t a = st_a[sp], kk = st_k[sp], dd = st_d[sp];
        if (!dd) continue;
        if (kk == KIND_DATA_) {
            enqueue(k, a, 1, TAG_WB_, now);
            if (k->error) return;
            if (is_faulty(k, a)) {
                int64_t ev_a, ev_k, ev_d;
                int64_t r = touch_mat(k, a, 1, now, &ev_a, &ev_k, &ev_d);
                if (k->error) return;
                if (r == -1) {
                    st_a[sp] = ev_a; st_k[sp] = ev_k; st_d[sp] = ev_d; sp++;
                }
            } else if (k->ecc_mode != 0) {
                int64_t ea = ecc_addr(k, a);
                int64_t ev_a, ev_k, ev_d;
                if (llc_access(k, ea, k->ecc_insert_kind, 1,
                               &ev_a, &ev_k, &ev_d) == -1) {
                    st_a[sp] = ev_a; st_k[sp] = ev_k; st_d[sp] = ev_d; sp++;
                }
            }
        } else if (kk == KIND_ECC_) {
            enqueue(k, a, 1, TAG_ECCWB_, now);
        } else {  /* XOR line: delta read-modify-write of the parity line */
            enqueue(k, a, 0, TAG_ECCRMW_, now);
            if (k->error) return;
            enqueue(k, a, 1, TAG_ECCRMW_, now);
        }
        if (k->error) return;
    }
}

/* -- earliest start for one candidate (Channel timing rules) --------------- */

static inline int64_t earliest_start(KS *k, int64_t now, int64_t ci, int64_t gr,
                                     int64_t gb, int64_t is_write,
                                     int64_t wcand, int64_t rcand) {
    int64_t st = k->bank_ready[gb];
    if (now > st) st = now;
    int64_t al = k->act_len[gr];
    if (al) {
        int64_t head = k->act_head[gr];
        int64_t v = k->act_ring[gr * 4 + ((head + al - 1) & 3)] + k->trrd;
        if (v > st) st = v;
        if (al == 4) {
            v = k->act_ring[gr * 4 + head] + k->tfaw;
            if (v > st) st = v;
        }
    }
    int64_t v = is_write ? wcand : rcand;
    if (v > st) st = v;
    if (st >= k->busy_until[gr] + k->PD) st += k->txp;
    return st;
}

static inline void act_append(KS *k, int64_t gr, int64_t v) {
    int64_t al = k->act_len[gr], head = k->act_head[gr];
    if (al < 4) {
        k->act_ring[gr * 4 + ((head + al) & 3)] = v;
        k->act_len[gr] = al + 1;
    } else {  /* deque(maxlen=4): drop the oldest */
        k->act_ring[gr * 4 + head] = v;
        k->act_head[gr] = (head + 1) & 3;
    }
}

/* -- event handlers --------------------------------------------------------- */

static void core_event(KS *k, int64_t now, int64_t cid) {
    int64_t bi = k->buf_i[cid];
    int64_t gap = k->buf_gap[cid][bi];
    k->buf_i[cid] = bi + 1;
    k->instr[cid] += gap;
    k->total += gap;
    k->pend_addr[cid] = k->buf_addr[cid][bi];
    k->pend_wr[cid] = k->buf_wr[cid][bi];
    k->has_pend[cid] = 1;
    hpush(k, now + k->buf_dt[cid][bi], EV_ACCESS_, cid);
}

static void access_event(KS *k, int64_t now, int64_t cid) {
    int64_t addr = k->pend_addr[cid];
    int64_t is_write = k->pend_wr[cid];
    k->has_pend[cid] = 0;
    int64_t ev_a, ev_k, ev_d;
    int64_t r = llc_access(k, addr, KIND_DATA_, is_write, &ev_a, &ev_k, &ev_d);
    if (r == 1) {
        hpush(k, now + k->HIT, EV_CORE_, cid);
        return;
    }
    if (r == -1 && ev_d) {
        cascade(k, ev_a, ev_k, ev_d, now);
        if (k->error) return;
    }
    if (is_faulty(k, addr)) {
        int64_t ma, mk, md;
        int64_t mr = touch_mat(k, addr, 0, now, &ma, &mk, &md);
        if (k->error) return;
        if (mr == -1 && md) {
            cascade(k, ma, mk, md, now);
            if (k->error) return;
        }
    }
    int64_t tag, wake;
    if (is_write && k->posted[cid] < k->POSTED_CAP) {
        k->posted[cid]++;
        tag = TAG_POSTFILL_ | cid << TAG_SHIFT_;
        wake = 1;
    } else if (!is_write && k->loads[cid] + 1 < k->load_mlp) {
        k->loads[cid]++;
        tag = TAG_POSTLOAD_ | cid << TAG_SHIFT_;
        wake = 1;
    } else {
        k->waiting[cid] = 1;
        tag = TAG_FILL_ | cid << TAG_SHIFT_;
        wake = 0;
    }
    enqueue(k, addr, 0, tag, now);
    if (wake) hpush(k, now + k->HIT, EV_CORE_, cid);
}

static void chan_event(KS *k, int64_t now, int64_t ci) {
    if (now >= k->refresh_due[ci]) service_refresh(k, ci, now);
    int64_t ql = k->q_len[ci];
    if (!ql) return;
    int64_t *qs = k->qes + ci * k->QUEUE_DEPTH * QF;
    int64_t gr, gb, is_write, tag, dem, start;
    if (ql == 1) {
        gr = qs[0]; gb = qs[1]; is_write = qs[3]; tag = qs[5]; dem = qs[6];
        k->q_len[ci] = 0;
        if (dem) k->dem_cnt[ci]--; else k->bg_cnt[ci]--;
        k->draining[ci] = !dem;
        k->fast_picks[ci]++;
        int64_t wcand = k->bus_free[ci] + (k->last_w[ci] ? 0 : k->trtrs)
                        - k->trcd - k->tcwl;
        int64_t rcand = k->bus_free[ci] + (k->last_w[ci] ? k->twtr : 0)
                        - k->trcd - k->tcl;
        start = earliest_start(k, now, ci, gr, gb, is_write, wcand, rcand);
    } else {
        int64_t bg = k->bg_cnt[ci], dm = k->dem_cnt[ci];
        if (bg == 0) k->draining[ci] = 0;
        else if (bg >= k->WRITE_DRAIN || dm == 0) k->draining[ci] = 1;
        else if (bg <= k->WRITE_DRAIN_LOW && dm > 0) k->draining[ci] = 0;
        int64_t want = !(k->draining[ci] && bg > 0);
        int64_t wcand = k->bus_free[ci] + (k->last_w[ci] ? 0 : k->trtrs)
                        - k->trcd - k->tcwl;
        int64_t rcand = k->bus_free[ci] + (k->last_w[ci] ? k->twtr : 0)
                        - k->trcd - k->tcl;
        int64_t best_st = 0, best_pm = 0, best_arr = 0, idx = -1;
        for (int64_t qi = 0; qi < ql; qi++) {
            int64_t *e = qs + qi * QF;
            if (e[6] != want) continue;
            int64_t st = earliest_start(k, now, ci, e[0], e[1], e[3],
                                        wcand, rcand);
            if (idx >= 0 && st > best_st) continue;
            int64_t pm = 0, pk = e[2];
            for (int64_t j = 0; j < ql; j++)
                if (qs[j * QF + 2] == pk) pm++;
            /* reference key: (start, -pending, arrive, queue index) */
            if (idx < 0 || st < best_st || pm > best_pm ||
                (pm == best_pm && e[4] < best_arr)) {
                best_st = st; best_pm = pm; best_arr = e[4]; idx = qi;
            }
        }
        int64_t *e = qs + idx * QF;
        gr = e[0]; gb = e[1]; is_write = e[3]; tag = e[5]; dem = e[6];
        start = best_st;
        memmove(e, e + QF, (ql - idx - 1) * QF * sizeof(int64_t));
        k->q_len[ci] = ql - 1;
        if (dem) k->dem_cnt[ci]--; else k->bg_cnt[ci]--;
    }
    /* -- issue -- */
    account(k, gr, start);
    int64_t data_end, busy_end;
    if (is_write) {
        data_end = start + k->trcd + k->tcwl + k->tburst;
        busy_end = start + k->bb_write;
        k->c_wr[gr]++;
    } else {
        data_end = start + k->trcd_tcl + k->tburst;
        busy_end = start + k->bb_read;
        k->c_rd[gr]++;
    }
    k->c_act[gr]++;
    k->bank_ready[gb] = busy_end;
    act_append(k, gr, start);
    if (busy_end > k->busy_until[gr]) k->busy_until[gr] = busy_end;
    k->bus_free[ci] = data_end;
    k->last_w[ci] = is_write;
    k->issued[ci]++;
    int64_t nxt = start + 1, v = data_end - k->trcd_tcl;
    if (v > nxt) nxt = v;
    hpush(k, nxt, EV_CHAN_, ci);
    /* -- completion -- */
    int64_t code = tag & TAG_MASK_;
    if (code == TAG_FILL_) {
        int64_t cid = tag >> TAG_SHIFT_;
        k->waiting[cid] = 0;
        hpush(k, data_end + 1, EV_CORE_, cid);
    } else if (code == TAG_POSTFILL_) {
        k->posted[tag >> TAG_SHIFT_]--;
    } else if (code == TAG_POSTLOAD_) {
        k->loads[tag >> TAG_SHIFT_]--;
    }
}

static void scrub_event(KS *k, int64_t now) {
    if (k->done_cnt < k->n_cores) {
        int64_t addr = k->scrub_cursor % k->scrub_region;
        k->scrub_cursor++;
        k->scrub_reads++;
        enqueue(k, addr, 0, TAG_SCRUB_, now);
        if (k->error) return;
        hpush(k, now + k->scrub_interval, EV_SCRUB_, 0);
    }
}

/* -- snapshots -------------------------------------------------------------- */

static void take_counts(KS *k, int64_t *dst, int64_t upto, int64_t do_account) {
    int64_t n = k->n_ranks;
    if (do_account)
        for (int64_t g = 0; g < n; g++) account(k, g, upto);
    memcpy(dst + 0 * n, k->c_act, n * sizeof(int64_t));
    memcpy(dst + 1 * n, k->c_rd, n * sizeof(int64_t));
    memcpy(dst + 2 * n, k->c_wr, n * sizeof(int64_t));
    memcpy(dst + 3 * n, k->c_active, n * sizeof(int64_t));
    memcpy(dst + 4 * n, k->c_standby, n * sizeof(int64_t));
    memcpy(dst + 5 * n, k->c_pdown, n * sizeof(int64_t));
}

static void take_scalars(KS *k, int64_t *dst) {
    dst[0] = k->total; dst[1] = k->now; dst[2] = k->accesses_64b;
    dst[3] = k->hits; dst[4] = k->misses;
    dst[5] = k->n_data_r; dst[6] = k->n_data_w;
    dst[7] = k->n_ecc_r; dst[8] = k->n_ecc_w;
}

/* -- main loop -------------------------------------------------------------- */
/* returns: >=0 refill needed for that core, -1 heap empty, -2 target hit,
   -10-err on internal error */

int64_t epoch_run(KS *k) {
    if (k->resume_cid >= 0) {
        int64_t cid = k->resume_cid;
        k->resume_cid = -1;
        if (k->refill_ok) {
            core_event(k, k->resume_now, cid);
        } else {
            k->done[cid] = 1;
            k->done_cnt++;
        }
        if (k->error) return -10 - k->error;
    }
    while (k->h_len) {
        int64_t t, kind, payload;
        hpop(k, &t, &kind, &payload);
        k->now = t;
        if (k->total >= k->limit) {
            if (!k->snap_taken) {
                take_counts(k, k->snap_cnt, t, 1);
                take_scalars(k, k->snap_scalars);
                k->snap_taken = 1;
                k->limit = k->target;
            }
            if (k->total >= k->target) {
                take_scalars(k, k->end_scalars);
                return -2;
            }
        }
        if (kind == EV_CHAN_) {
            chan_event(k, t, payload);
        } else if (kind == EV_CORE_) {
            if (k->done[payload]) continue;
            if (k->buf_i[payload] == k->buf_n[payload]) {
                k->resume_cid = payload;
                k->resume_now = t;
                return payload;
            }
            core_event(k, t, payload);
        } else if (kind == EV_ACCESS_) {
            access_event(k, t, payload);
        } else {  /* EV_SCRUB_ */
            scrub_event(k, t);
        }
        if (k->error) return -10 - k->error;
    }
    return -1;
}
"""

_BUILD_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_native")

#: LineKind values exported back as enum members (C stores raw ints).
_KINDS = (LineKind.DATA, LineKind.ECC, LineKind.XOR)

_lib = None
_ffi = None
_load_attempted = False


def _source_tag() -> str:
    return hashlib.sha1((_CDEF + _CSRC).encode()).hexdigest()[:12]


def _load():
    """Compile (once) and import the native core; None when unavailable."""
    global _lib, _ffi, _load_attempted
    if _load_attempted:
        return _lib
    _load_attempted = True
    try:
        import importlib.util

        from cffi import FFI

        modname = f"_epochcore_{_source_tag()}"
        sofile = None
        if os.path.isdir(_BUILD_DIR):
            for fn in os.listdir(_BUILD_DIR):
                if fn.startswith(modname) and fn.endswith(".so"):
                    sofile = os.path.join(_BUILD_DIR, fn)
                    break
        ffi = FFI()
        ffi.cdef(_CDEF)
        if sofile is None:
            # Build in a per-process scratch dir, then publish atomically so
            # concurrent workers never import a half-written extension.
            tmpdir = os.path.join(_BUILD_DIR, f"build-{os.getpid()}")
            os.makedirs(tmpdir, exist_ok=True)
            ffi.set_source(modname, _CSRC, extra_compile_args=["-O2"])
            built = ffi.compile(tmpdir=tmpdir)
            final = os.path.join(_BUILD_DIR, os.path.basename(built))
            os.replace(built, final)
            sofile = final
        spec = importlib.util.spec_from_file_location(modname, sofile)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        _ffi = mod.ffi
        _lib = mod.lib
    except Exception:  # no compiler / sandboxed build dir / import failure
        _lib = None
    return _lib


def available() -> bool:
    """True when the compiled core is importable (builds on first call)."""
    return _load() is not None


def native_mode() -> str:
    from repro.util.envcfg import sim_native

    return sim_native()


def eligible(sim) -> bool:
    """True when *sim*'s configuration fits the native loop's scope."""
    if sim._bursts or sim.ipc_window:
        return False
    eccm = sim.ecc_model
    if eccm.kind != EccTraffic.INLINE and not eccm.cache_ecc_lines:
        return False
    mem = sim.mem
    chans = mem.channels
    C = len(chans)
    R = len(chans[0].ranks)
    B = chans[0].ranks[0].banks
    mapping = mem.mapping
    if mapping.channels != C or mapping.ranks_per_channel != R:
        return False
    if max(B, mapping.banks_per_rank) >= 32:
        return False
    if len(sim.cores) > MAX_CORES:
        return False
    for ch in chans:
        for q in ch.queue:
            if type(q.tag) is not int:
                return False
    return True


def wants_native(sim) -> bool:
    """Policy gate for :func:`repro.cpu.batchkernel.run_epoch`."""
    mode = native_mode()
    if mode == "off":
        return False
    if not eligible(sim):
        if mode == "on":
            raise RuntimeError(
                "REPRO_SIM_NATIVE=on but this configuration needs the "
                "Python epoch loop (bursts/uncached-ECC/ipc_window or "
                "mismatched mapping geometry)"
            )
        return False
    if not available():
        if mode == "on":
            raise RuntimeError(
                "REPRO_SIM_NATIVE=on but the native core failed to build "
                "(compiler or cffi unavailable)"
            )
        return False
    return True


def run_native(sim, warmup_instructions: int, measure_instructions: int) -> SimResult:
    """Run the compiled epoch loop; same contract as ``run_epoch``."""
    lib = _load()
    ffi = _ffi
    obs_armed = obs.enabled("sim")
    wall0 = perf_counter() if obs_armed else 0.0

    mem = sim.mem
    llc = sim.llc
    eccm = sim.ecc_model
    mapping = mem.mapping
    t = mem.timing
    chans = mem.channels
    C = len(chans)
    R = len(chans[0].ranks)
    B = chans[0].ranks[0].banks
    n_ranks = C * R
    cores = sim.cores
    n_cores = len(cores)
    QUEUE_DEPTH = type(chans[0]).QUEUE_DEPTH
    IPC = sim.IPC
    seq0 = sim._seq

    ks = ffi.new("KS *")
    hold = []  # keep every backing NumPy array alive for the run

    def i64(arr):
        a = np.ascontiguousarray(arr, dtype=np.int64)
        hold.append(a)
        return a, ffi.cast("int64_t *", a.ctypes.data)

    def u8(arr):
        a = np.ascontiguousarray(arr, dtype=np.uint8)
        hold.append(a)
        return a, ffi.cast("uint8_t *", a.ctypes.data)

    # -- geometry / timing / policy constants -------------------------------------------
    ks.C, ks.R, ks.B, ks.MB = C, R, B, mapping.banks_per_rank
    ks.n_ranks, ks.n_cores = n_ranks, n_cores
    ks.lpp = mapping.lines_per_page
    ks.map_channels = mapping.channels
    ks.map_ranks = mapping.ranks_per_channel
    ks.seq_policy = 1 if mapping.policy == "sequential" else 0
    ks.hot_base = -1 if mapping.hot_arena_base_line is None else mapping.hot_arena_base_line
    ks.hot_ranks = mapping.hot_ranks
    ks.trcd, ks.tcl, ks.tcwl, ks.tburst = t.trcd, t.tcl, t.tcwl, t.tburst
    ks.trrd, ks.tfaw, ks.twtr, ks.trtrs, ks.txp = t.trrd, t.tfaw, t.twtr, t.trtrs, t.txp
    ks.trfc, ks.trefi = t.trfc, t.trefi
    ks.bb_read, ks.bb_write = t.bank_busy_read, t.bank_busy_write
    ks.trcd_tcl = t.trcd + t.tcl
    ks.PD = type(chans[0]).POWERDOWN_DELAY
    ks.WRITE_DRAIN = type(chans[0]).WRITE_DRAIN
    ks.WRITE_DRAIN_LOW = type(chans[0]).WRITE_DRAIN_LOW
    ks.QUEUE_DEPTH = QUEUE_DEPTH
    ks.HIT = sim.HIT_LATENCY
    ks.POSTED_CAP = sim.POSTED_CAP
    ks.load_mlp = sim.load_mlp
    ks.units_64b = mem._units_64b

    # -- ECC formula constants ----------------------------------------------------------
    from repro.cpu.ecc_traffic import ECC_REGION_BASE

    if eccm.kind == EccTraffic.INLINE:
        ks.ecc_mode = 0
        ks.lpp_e = ks.ppc = ks.gpp = ks.pc1 = ks.cov = 1
        ks.eb = 0
    elif eccm.parity_channels is not None:
        ks.ecc_mode = 1
        ks.eb = ECC_REGION_BASE
        ks.lpp_e = eccm.lines_per_page
        ks.ppc = eccm.per_page_coverage
        ks.gpp = max(1, eccm.lines_per_page // eccm.per_page_coverage)
        ks.pc1 = eccm.parity_channels - 1
        ks.cov = 1
    else:
        ks.ecc_mode = 2
        ks.eb = ECC_REGION_BASE
        ks.cov = max(1, eccm.coverage)
        ks.lpp_e = ks.ppc = ks.gpp = ks.pc1 = 1
    ks.ecc_insert_kind = int(
        LineKind.ECC if eccm.kind == EccTraffic.ECC_LINE else LineKind.XOR
    )

    # -- patrol scrub / degraded-mode state ---------------------------------------------
    scrub = sim.scrub
    if scrub is not None:
        ks.scrub_interval = scrub.interval_cycles
        ks.scrub_region = scrub.region_lines
    else:
        ks.scrub_interval = ks.scrub_region = 1
    ks.scrub_cursor = sim._scrub_cursor
    ks.scrub_reads = sim.scrub_reads
    degraded = sim.degraded
    faulty_gb = set()
    if degraded is not None:
        faulty_gb = {
            (c * R + r) * B + b
            for (c, r, b) in degraded.faulty_banks
            if c < C and r < R and b < B
        }
    if faulty_gb:
        from repro.cpu.degraded import MATERIALIZED_BASE

        ks.mat_on = 1
        ks.mat_cov = degraded.ecc_line_coverage
        ks.mat_base = MATERIALIZED_BASE
    else:
        ks.mat_on = 0
        ks.mat_cov = 1
        ks.mat_base = 0
    # Sized so every decodable global-bank id (gr * B + bank, bank < the
    # mapping's banks_per_rank) indexes in bounds, matching the oracle's
    # set-membership test over (c*R+r)*B+b ids.
    faulty_map = np.zeros(n_ranks * B + mapping.banks_per_rank + 1, dtype=np.uint8)
    for gb in faulty_gb:
        faulty_map[gb] = 1
    hold.append(faulty_map)
    ks.faulty = ffi.cast("uint8_t *", faulty_map.ctypes.data)

    # -- LLC flat state -----------------------------------------------------------------
    ks.set_mask = llc._set_mask
    ks.assoc = llc.assoc
    ks.n_sets = llc.n_sets
    l_tags, ks.l_tags = i64(llc._tags)
    l_lru, ks.l_lru = i64(llc._lru)
    l_dirty, ks.l_dirty = u8(llc._dirty)
    l_kind, ks.l_kind = u8([int(v) for v in llc._kind])
    l_fill, ks.l_fill = i64(llc._fill)
    ks.clock, ks.hits, ks.misses = llc._clock, llc._hits, llc._misses
    ks.evictions_dirty = llc._evictions_dirty
    slots = llc.n_sets * llc.assoc
    wh_cap = 1 << max(6, (4 * slots - 1).bit_length())
    wh_keys = np.full(wh_cap, -1, dtype=np.int64)
    hold.append(wh_keys)
    ks.wh_keys = ffi.cast("int64_t *", wh_keys.ctypes.data)
    wh_vals, ks.wh_vals = i64(np.zeros(wh_cap, dtype=np.int64))
    ks.wh_mask = wh_cap - 1
    ks.wh_used = ks.wh_tomb = 0
    if llc._where:
        keys, ks_keys = i64(np.fromiter(llc._where.keys(), dtype=np.int64))
        vals, ks_vals = i64(np.fromiter(llc._where.values(), dtype=np.int64))
        lib.wh_bulk(ks, ks_keys, ks_vals, len(keys))

    # -- rank state ---------------------------------------------------------------------
    bank_ready = []
    busy_until, accounted_to, next_refresh, refreshes = [], [], [], []
    c_act, c_rd, c_wr, c_active, c_standby, c_pdown = [], [], [], [], [], []
    act_ring = np.zeros(n_ranks * 4, dtype=np.int64)
    act_len = np.zeros(n_ranks, dtype=np.int64)
    gr = 0
    for ch in chans:
        for r in ch.ranks:
            bank_ready.extend(r.bank_ready)
            for i, v in enumerate(r.act_times):
                act_ring[gr * 4 + i] = v
            act_len[gr] = len(r.act_times)
            busy_until.append(r.busy_until)
            accounted_to.append(r.accounted_to)
            next_refresh.append(r.next_refresh)
            refreshes.append(r.refreshes)
            rc = r.counters
            c_act.append(rc.activates)
            c_rd.append(rc.read_bursts)
            c_wr.append(rc.write_bursts)
            c_active.append(rc.cycles_active)
            c_standby.append(rc.cycles_precharge_standby)
            c_pdown.append(rc.cycles_powerdown)
            gr += 1
    a_bank_ready, ks.bank_ready = i64(bank_ready)
    a_busy, ks.busy_until = i64(busy_until)
    a_acct, ks.accounted_to = i64(accounted_to)
    a_nref, ks.next_refresh = i64(next_refresh)
    a_refs, ks.refreshes = i64(refreshes)
    a_cact, ks.c_act = i64(c_act)
    a_crd, ks.c_rd = i64(c_rd)
    a_cwr, ks.c_wr = i64(c_wr)
    a_cactive, ks.c_active = i64(c_active)
    a_cstandby, ks.c_standby = i64(c_standby)
    a_cpdown, ks.c_pdown = i64(c_pdown)
    hold.append(act_ring)
    ks.act_ring = ffi.cast("int64_t *", act_ring.ctypes.data)
    a_actlen, ks.act_len = i64(act_len)
    a_acthead, ks.act_head = i64(np.zeros(n_ranks, dtype=np.int64))

    # -- channel state ------------------------------------------------------------------
    qes = np.zeros(C * QUEUE_DEPTH * 7, dtype=np.int64)
    q_len = np.zeros(C, dtype=np.int64)
    dem_cnt, bg_cnt, draining = [], [], []
    bus_free, last_w, fastp, issued, refresh_due = [], [], [], [], []
    from repro.cpu.batchkernel import _pack_key, _unpack_key

    for ci, ch in enumerate(chans):
        for j, q in enumerate(ch.queue):
            grq = ci * R + q.rank
            base = (ci * QUEUE_DEPTH + j) * 7
            qes[base + 0] = grq
            qes[base + 1] = grq * B + q.bank
            qes[base + 2] = _pack_key(q.rank, q.bank, q.row)
            qes[base + 3] = 1 if q.is_write else 0
            qes[base + 4] = q.arrive
            qes[base + 5] = q.tag
            qes[base + 6] = 1 if q.demand else 0
        q_len[ci] = len(ch.queue)
        dem_cnt.append(ch._demand_count)
        bg_cnt.append(ch._background_count)
        draining.append(1 if ch._draining else 0)
        bus_free.append(ch.bus_free)
        last_w.append(1 if ch.last_was_write else 0)
        fastp.append(ch.fast_picks)
        issued.append(ch.issued_requests)
        refresh_due.append(ch._refresh_due)
    hold.append(qes)
    ks.qes = ffi.cast("int64_t *", qes.ctypes.data)
    a_qlen, ks.q_len = i64(q_len)
    a_dem, ks.dem_cnt = i64(dem_cnt)
    a_bg, ks.bg_cnt = i64(bg_cnt)
    a_drain, ks.draining = i64(draining)
    a_busf, ks.bus_free = i64(bus_free)
    a_lastw, ks.last_w = i64(last_w)
    a_fastp, ks.fast_picks = i64(fastp)
    a_issued, ks.issued = i64(issued)
    a_rdue, ks.refresh_due = i64(refresh_due)

    # -- core state ---------------------------------------------------------------------
    a_done, ks.done = u8([1 if c.done else 0 for c in cores])
    a_wait, ks.waiting = u8([1 if c.waiting else 0 for c in cores])
    a_haspend, ks.has_pend = u8([1 if c.pending is not None else 0 for c in cores])
    a_pendwr, ks.pend_wr = u8(
        [1 if (c.pending is not None and c.pending[1]) else 0 for c in cores]
    )
    a_posted, ks.posted = i64([c.outstanding_posted for c in cores])
    a_loads, ks.loads = i64([c.outstanding_loads for c in cores])
    a_instr, ks.instr = i64([c.instructions for c in cores])
    a_pendaddr, ks.pend_addr = i64(
        [c.pending[0] if c.pending is not None else 0 for c in cores]
    )
    ks.done_cnt = sum(1 for c in cores if c.done)

    # -- trace buffers ------------------------------------------------------------------
    traces = [c.trace for c in cores]
    chunk = [512] * n_cores  # doubling prefetch for plain-iterator traces

    def refill(cid):
        tr = traces[cid]
        tb = getattr(tr, "take_batch", None)
        if tb is not None:
            gaps, lines, writes = tb()
            if not len(gaps):
                return False
            gaps = gaps.astype(np.int64, copy=False)
            deltas = np.maximum(1, np.ceil(gaps / IPC)).astype(np.int64)
            wr8 = np.ascontiguousarray(writes, dtype=np.uint8)
            lines = np.ascontiguousarray(lines, dtype=np.int64)
        else:
            items = list(islice(tr, chunk[cid]))
            if chunk[cid] < 4096:
                chunk[cid] *= 2
            if not items:
                return False
            g, a, w = zip(*items)
            gaps = np.asarray(g, dtype=np.int64)
            lines = np.asarray(a, dtype=np.int64)
            wr8 = np.asarray(w, dtype=np.uint8)
            deltas = np.maximum(1, np.ceil(gaps / IPC)).astype(np.int64)
        hold_bufs[cid] = (gaps, lines, wr8, deltas)
        ks.buf_gap[cid] = ffi.cast("int64_t *", gaps.ctypes.data)
        ks.buf_addr[cid] = ffi.cast("int64_t *", lines.ctypes.data)
        ks.buf_wr[cid] = ffi.cast("uint8_t *", wr8.ctypes.data)
        ks.buf_dt[cid] = ffi.cast("int64_t *", deltas.ctypes.data)
        ks.buf_i[cid] = 0
        ks.buf_n[cid] = len(gaps)
        return True

    hold_bufs = [None] * n_cores
    for cid in range(n_cores):
        ks.buf_i[cid] = 0
        ks.buf_n[cid] = 0

    # -- heap / snapshots / control -----------------------------------------------------
    heap_arr = np.zeros(HEAP_CAP * 4, dtype=np.int64)
    hold.append(heap_arr)
    ks.h = ffi.cast("int64_t *", heap_arr.ctypes.data)
    ks.h_len, ks.h_cap = 0, HEAP_CAP
    ks.seq = sim._seq
    snap_cnt = np.zeros(6 * n_ranks, dtype=np.int64)
    hold.append(snap_cnt)
    ks.snap_cnt = ffi.cast("int64_t *", snap_cnt.ctypes.data)
    ks.now = sim.now
    ks.total = 0
    ks.limit = warmup_instructions
    ks.target = warmup_instructions + measure_instructions
    ks.resume_cid = -1
    ks.resume_now = 0
    ks.refill_ok = 0
    ks.snap_taken = 0
    ks.error = 0
    ks.accesses_64b = mem.accesses_64b
    ks.n_data_r = sim.counters.data_reads
    ks.n_data_w = sim.counters.data_writes
    ks.n_ecc_r = sim.counters.ecc_reads
    ks.n_ecc_w = sim.counters.ecc_writes

    # Initial events: one EV_CORE per core, then the first scrub tick,
    # in reference push order.
    for cid in range(n_cores):
        lib.push_event(ks, 0, 0, cid)
    if scrub is not None:
        lib.push_event(ks, scrub.interval_cycles, 3, 0)

    # -- run, servicing refill requests -------------------------------------------------
    rc = lib.epoch_run(ks)
    while rc >= 0:
        ks.refill_ok = 1 if refill(int(rc)) else 0
        rc = lib.epoch_run(ks)
    if rc == -11:
        raise RuntimeError("channel queue overflow; caller must respect can_accept()")
    if rc == -12:
        raise RuntimeError("runaway eviction cascade")
    if rc == -13:
        raise RuntimeError("epoch native event heap overflow")

    # -- wind-down: mirror the reference's snapshot/finalize order ----------------------
    now = int(ks.now)
    if ks.snap_taken:
        snap = [snap_cnt[i * n_ranks : (i + 1) * n_ranks].tolist() for i in range(6)]
        ss = list(ks.snap_scalars)
        snap_state = dict(
            instructions=ss[0], cycles=ss[1], accesses=ss[2], hits=ss[3],
            misses=ss[4], counters=(ss[5], ss[6], ss[7], ss[8]),
        )
    else:  # trace shorter than warm-up: measure everything
        snap = [
            a_cact.tolist(), a_crd.tolist(), a_cwr.tolist(),
            a_cactive.tolist(), a_cstandby.tolist(), a_cpdown.tolist(),
        ]
        snap_state = dict(
            instructions=0, cycles=0, accesses=0, hits=0, misses=0,
            counters=(0, 0, 0, 0),
        )
    if rc == -2:
        es = list(ks.end_scalars)
    else:
        es = [
            int(ks.total), now, int(ks.accesses_64b), int(ks.hits),
            int(ks.misses), int(ks.n_data_r), int(ks.n_data_w),
            int(ks.n_ecc_r), int(ks.n_ecc_w),
        ]
    end_state = dict(
        instructions=es[0], cycles=es[1], accesses=es[2], hits=es[3],
        misses=es[4], counters=(es[5], es[6], es[7], es[8]),
    )

    # -- export flat state back into the live objects -----------------------------------
    llc._clock = int(ks.clock)
    llc._hits = int(ks.hits)
    llc._misses = int(ks.misses)
    llc._evictions_dirty = int(ks.evictions_dirty)
    llc._tags[:] = l_tags.tolist()
    llc._lru[:] = l_lru.tolist()
    llc._dirty[:] = l_dirty.view(bool).tolist()
    llc._kind[:] = [_KINDS[v] for v in l_kind.tolist()]
    llc._fill[:] = l_fill.tolist()
    llc._where.clear()
    live = wh_keys >= 0
    llc._where.update(zip(wh_keys[live].tolist(), wh_vals[live].tolist()))

    from collections import deque

    gr = 0
    for ci, ch in enumerate(chans):
        for r in ch.ranks:
            r.bank_ready[:] = a_bank_ready[gr * B : (gr + 1) * B].tolist()
            al, head = int(act_len[gr]), int(a_acthead[gr])
            r.act_times = deque(
                (int(act_ring[gr * 4 + ((head + i) & 3)]) for i in range(al)),
                maxlen=4,
            )
            r.busy_until = int(a_busy[gr])
            r.accounted_to = int(a_acct[gr])
            r.next_refresh = int(a_nref[gr])
            r.refreshes = int(a_refs[gr])
            rcnt = r.counters
            rcnt.activates = int(a_cact[gr])
            rcnt.read_bursts = int(a_crd[gr])
            rcnt.write_bursts = int(a_cwr[gr])
            rcnt.cycles_active = int(a_cactive[gr])
            rcnt.cycles_precharge_standby = int(a_cstandby[gr])
            rcnt.cycles_powerdown = int(a_cpdown[gr])
            gr += 1
        ql = int(a_qlen[ci])
        queue = []
        pend: "dict[tuple, int]" = {}
        for j in range(ql):
            base = (ci * QUEUE_DEPTH + j) * 7
            rank, bank, row = _unpack_key(int(qes[base + 2]))
            key = (rank, bank, row)
            queue.append(
                MemRequest(
                    rank=rank, bank=bank, row=row,
                    is_write=bool(qes[base + 3]),
                    arrive=int(qes[base + 4]),
                    tag=int(qes[base + 5]),
                    demand=bool(qes[base + 6]),
                )
            )
            pend[key] = pend.get(key, 0) + 1
        ch.queue = queue
        ch._pending_counts = pend
        ch._demand_count = int(a_dem[ci])
        ch._background_count = int(a_bg[ci])
        ch._draining = bool(a_drain[ci])
        ch.bus_free = int(a_busf[ci])
        ch.last_was_write = bool(a_lastw[ci])
        ch.fast_picks = int(a_fastp[ci])
        ch.issued_requests = int(a_issued[ci])
        ch._refresh_due = int(a_rdue[ci])
    mem.accesses_64b = int(ks.accesses_64b)
    sim.now = now
    sim._seq = int(ks.seq)
    sim.total_instructions = int(ks.total)
    sim.counters = AccessCounters(
        int(ks.n_data_r), int(ks.n_data_w), int(ks.n_ecc_r), int(ks.n_ecc_w)
    )
    sim._scrub_cursor = int(ks.scrub_cursor)
    sim.scrub_reads = int(ks.scrub_reads)
    for cid, core in enumerate(cores):
        core.done = bool(a_done[cid])
        core.waiting = bool(a_wait[cid])
        core.outstanding_posted = int(a_posted[cid])
        core.outstanding_loads = int(a_loads[cid])
        core.instructions = int(a_instr[cid])
        core.pending = (
            (int(a_pendaddr[cid]), bool(a_pendwr[cid]))
            if a_haspend[cid]
            else None
        )

    mem.finalize(now)
    baseline = [
        [
            RankEnergyCounters(
                activates=snap[0][ci * R + ri],
                read_bursts=snap[1][ci * R + ri],
                write_bursts=snap[2][ci * R + ri],
                cycles_active=snap[3][ci * R + ri],
                cycles_precharge_standby=snap[4][ci * R + ri],
                cycles_powerdown=snap[5][ci * R + ri],
            )
            for ri in range(R)
        ]
        for ci in range(C)
    ]
    energy = mem.energy_since(baseline)
    if obs_armed:
        sim._emit_run_telemetry(perf_counter() - wall0, int(ks.seq) - seq0)
    c0 = snap_state["counters"]
    c1 = end_state["counters"]
    return SimResult(
        instructions=end_state["instructions"] - snap_state["instructions"],
        cycles=end_state["cycles"] - snap_state["cycles"],
        energy=energy,
        accesses_64b=end_state["accesses"] - snap_state["accesses"],
        counters=AccessCounters(
            data_reads=c1[0] - c0[0],
            data_writes=c1[1] - c0[1],
            ecc_reads=c1[2] - c0[2],
            ecc_writes=c1[3] - c0[3],
        ),
        llc_hits=end_state["hits"] - snap_state["hits"],
        llc_misses=end_state["misses"] - snap_state["misses"],
    )
