"""Processor-side timing plane: LLC, ECC-traffic rules, and the core model."""

from repro.cpu.degraded import MATERIALIZED_BASE, DegradedMode
from repro.cpu.ecc_traffic import ECC_REGION_BASE, EccTrafficModel
from repro.cpu.llc import LLC, Eviction, LineKind, LLCStats
from repro.cpu.system import (
    AccessCounters,
    CoreState,
    ScrubConfig,
    SimResult,
    SimSystem,
)

__all__ = [
    "MATERIALIZED_BASE",
    "DegradedMode",
    "ECC_REGION_BASE",
    "EccTrafficModel",
    "LLC",
    "Eviction",
    "LineKind",
    "LLCStats",
    "AccessCounters",
    "CoreState",
    "ScrubConfig",
    "SimResult",
    "SimSystem",
]
