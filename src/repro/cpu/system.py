"""Trace-driven multi-core timing simulation (the GEM5 stand-in).

Eight cores replay memory-reference traces through the shared LLC and the
DDR3 memory system.  Loads that miss block their core until the line
returns; stores post through a bounded write buffer; dirty evictions write
back and trigger the scheme's ECC-state updates (ECC lines, XOR lines) with
the exact fill/eviction traffic rules of Section IV-C.

The model deliberately omits core microarchitecture below the LLC-access
stream: every metric the paper reports (memory EPI, accesses per
instruction, relative performance) is a function of the LLC-filtered
request stream and the DRAM system's response to it.
"""

from __future__ import annotations

import copy
import heapq
import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Iterator

from repro import obs
from repro.obs import trace
from repro.cpu.degraded import DegradedMode
from repro.util import envcfg
from repro.cpu.ecc_traffic import EccTrafficModel
from repro.cpu.llc import LLC, Eviction, LineKind
from repro.dram.power import EnergyBreakdown
from repro.dram.system import MemorySystem
from repro.ecc.base import EccTraffic

#: A trace element: (instruction gap since last access, line address, is_write).
TraceItem = "tuple[int, int, bool]"

#: Memory-request tag codes.  Requests carry ``code | (core_id << TAG_SHIFT)``
#: as a single small int: the completion handler and the counter dispatch in
#: the enqueue hot path decode it with one mask/shift instead of the old
#: per-request ``isinstance(tag, tuple)`` + string compares.
TAG_SHIFT = 4
TAG_FILL = 1  #: blocking demand fill; completion wakes the stalled core
TAG_POSTFILL = 2  #: write-allocate fill posted through the write buffer
TAG_POSTLOAD = 3  #: non-blocking load fill within the MLP window
TAG_WB = 4  #: dirty data write-back
TAG_ECCWB = 5  #: LOT-ECC GEC-line eviction write
TAG_ECCRMW = 6  #: parity/XOR-line read-modify-write half
TAG_ECCFILL = 7  #: ECC-line (or step-E old-data) memory read
TAG_SCRUB = 8  #: patrol-scrub read

_TAG_MASK = (1 << TAG_SHIFT) - 1

#: Tags whose requests are latency-critical demand traffic in the channel
#: scheduler (everything else is deferrable background work).
_DEMAND_TAGS = frozenset({TAG_FILL, TAG_POSTFILL})

#: Event kinds for the simulation heap (ints compare faster than strings).
EV_CORE = 0
EV_ACCESS = 1
EV_BURST = 2
EV_SCRUB = 3
EV_CHAN = 4


@dataclass(frozen=True)
class ScrubConfig:
    """Hardware scrubber traffic: one patrol read every *interval* cycles.

    The scrubber sweeps *region_lines* round-robin; patrol reads bypass the
    LLC (scrubbers do not install lines) and travel as background requests.
    The paper's Section VI-C trades scrub rate against the multi-channel
    fault window; this adds the bandwidth/energy side of that trade.
    """

    interval_cycles: int
    region_lines: int


@dataclass
class CoreState:
    """Per-core progress and blocking state."""

    cid: int
    trace: Iterator
    instructions: int = 0
    outstanding_posted: int = 0
    outstanding_loads: int = 0
    waiting: bool = False
    done: bool = False
    #: The reference scheduled to issue at the pending "access" event.
    pending: "tuple[int, bool] | None" = None


@dataclass
class AccessCounters:
    """Memory-request tallies by category (64B-access units tracked in DRAM)."""

    data_reads: int = 0
    data_writes: int = 0
    ecc_reads: int = 0
    ecc_writes: int = 0

    @property
    def total(self) -> int:
        return self.data_reads + self.data_writes + self.ecc_reads + self.ecc_writes


@dataclass
class SimResult:
    """Measured-phase outcome of one simulation run."""

    instructions: int
    cycles: int
    energy: EnergyBreakdown
    accesses_64b: int
    counters: AccessCounters
    llc_hits: int
    llc_misses: int

    # Derived metrics guard their denominators: a zero-instruction run (a
    # warmup-only budget, or a trace shorter than the warm-up) yields 0.0
    # for every rate instead of raising or reporting the warm-up residue
    # as if it were one instruction's worth.

    @property
    def epi_nj(self) -> float:
        """Memory energy per instruction, nJ."""
        return self.energy.total / self.instructions if self.instructions else 0.0

    @property
    def dynamic_epi_nj(self) -> float:
        return self.energy.dynamic / self.instructions if self.instructions else 0.0

    @property
    def background_epi_nj(self) -> float:
        if not self.instructions:
            return 0.0
        return (self.energy.background + self.energy.refresh) / self.instructions

    @property
    def accesses_per_instruction(self) -> float:
        """Fig. 16's metric: 64B accesses per instruction."""
        return self.accesses_64b / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def bandwidth_gbps(self) -> float:
        """Measured data bandwidth in GB/s (1 cycle = 1 ns)."""
        return self.accesses_64b * 64 / self.cycles if self.cycles else 0.0


class SimSystem:
    """Co-simulation of cores, LLC, ECC-state traffic, and DRAM."""

    HIT_LATENCY = 10  # L2 latency, Table I
    IPC = 2.0  # issue width, Table I
    POSTED_CAP = 8  # per-core write-buffer entries

    def __init__(
        self,
        mem: MemorySystem,
        traces: "list[Iterator]",
        ecc_model: EccTrafficModel,
        llc: "LLC | None" = None,
        degraded: "DegradedMode | None" = None,
        scrub: "ScrubConfig | None" = None,
        load_mlp: int = 1,
    ):
        #: Outstanding load misses each core may overlap.  1 models a
        #: blocking core (the default); >1 approximates the ROB/LSQ-driven
        #: memory-level parallelism of the paper's out-of-order cores
        #: (Table I: 32-entry load queue) - the core only stalls when its
        #: miss window fills.
        self.load_mlp = load_mlp
        self.mem = mem
        self.llc = llc or LLC(line_size=mem.config.line_size)
        self.ecc_model = ecc_model
        self.degraded = degraded
        self.scrub = scrub
        self._scrub_cursor = 0
        self.scrub_reads = 0
        self.cores = [CoreState(cid=i, trace=t) for i, t in enumerate(traces)]
        self.counters = AccessCounters()
        self._heap: "list[tuple[int, int, int, int]]" = []
        self._seq = 0
        self.now = 0
        #: Optional IPC timeline: (window_cycles, [instructions per window]).
        self.ipc_window: "int | None" = None
        self._window_instr: "list[int]" = []
        #: One-shot background bursts: (cycle, n_reads, n_writes, base_addr).
        self._bursts: "list[tuple[int, int, int, int]]" = []

    def schedule_burst(self, cycle: int, reads: int, writes: int, base_addr: int = 0) -> None:
        """Inject a one-shot background traffic burst at *cycle*.

        Models maintenance storms such as materializing a bank pair's ECC
        correction bits (Section III-B: read every line of the pair, write
        the ECC lines) without simulating the bytes.
        """
        self._bursts.append((cycle, reads, writes, base_addr))

    # -- event helpers -----------------------------------------------------------------

    def _push(self, time: int, kind: int, payload: int) -> None:
        heapq.heappush(self._heap, (time, self._seq, kind, payload))
        self._seq += 1

    @property
    def events_scheduled(self) -> int:
        """Total events pushed onto the simulation heap (throughput metric)."""
        return self._seq

    def _enqueue_mem(self, line_addr: int, is_write: bool, tag: int) -> None:
        code = tag & _TAG_MASK
        ch = self.mem.enqueue(
            line_addr, is_write, self.now, tag, demand=code in _DEMAND_TAGS
        )
        counters = self.counters
        if is_write:
            if code == TAG_ECCWB or code == TAG_ECCRMW:
                counters.ecc_writes += 1
            else:
                counters.data_writes += 1
        else:
            if code == TAG_ECCFILL or code == TAG_ECCRMW:
                counters.ecc_reads += 1
            else:
                counters.data_reads += 1
        self._push(self.now, EV_CHAN, ch)

    # -- write-back / ECC-state cascade ----------------------------------------------------

    def _handle_eviction_list(self, evictions: "list[Eviction]") -> None:
        for ev in evictions:
            self._handle_eviction(ev)

    def _handle_eviction(self, ev: "Eviction | None") -> None:
        """Process an LLC victim, cascading through ECC-state insertions."""
        stack = [ev] if ev is not None else []
        guard = 0
        while stack:
            guard += 1
            if guard > 64:  # a cascade this deep indicates a modelling bug
                raise RuntimeError("runaway eviction cascade")
            victim = stack.pop()
            if not victim.dirty:
                continue
            if victim.kind == LineKind.DATA:
                self._enqueue_mem(victim.addr, True, TAG_WB)
                if self._bank_faulty(victim.addr):
                    # Step D: update the materialized ECC line instead of
                    # the parity/ECC state.
                    stack.extend(self._touch_materialized(victim.addr, dirty=True))
                else:
                    stack.extend(self._update_ecc_state(victim.addr))
            elif victim.kind == LineKind.ECC:
                # LOT-ECC GEC line: recomputable from the written data, so
                # eviction costs exactly one memory write (Section IV-C).
                self._enqueue_mem(victim.addr, True, TAG_ECCWB)
            else:  # XOR line: apply the compacted delta to the parity line
                self._enqueue_mem(victim.addr, False, TAG_ECCRMW)
                self._enqueue_mem(victim.addr, True, TAG_ECCRMW)

    def _update_ecc_state(self, data_addr: int) -> "list[Eviction]":
        """Touch the ECC/XOR cacheline covering a written-back data line.

        Misses insert without a memory fill: ECC lines are recomputed from
        the data, XOR lines start as a zero delta.  With the Section III-D
        caching disabled, the update instead hits memory immediately.
        """
        if self.ecc_model.kind == EccTraffic.INLINE:
            return []
        addr = self.ecc_model.ecc_addr(data_addr)
        if not self.ecc_model.cache_ecc_lines:
            if self.ecc_model.kind == EccTraffic.XOR_LINE:
                # Unoptimized step E: read old line value, then RMW the
                # parity line (3 additional accesses, Section III-C).
                self._enqueue_mem(data_addr, False, TAG_ECCFILL)
            self._enqueue_mem(addr, False, TAG_ECCRMW)
            self._enqueue_mem(addr, True, TAG_ECCRMW)
            return []
        kind = LineKind.ECC if self.ecc_model.kind == EccTraffic.ECC_LINE else LineKind.XOR
        _, ev = self.llc.access(addr, kind=kind, make_dirty=True)
        return [ev] if ev is not None else []

    # -- degraded-mode paths (faulty bank pairs, Section III-B) ----------------------------

    def _bank_faulty(self, line_addr: int) -> bool:
        """Step A1/A2 bank-health lookup for the timing plane."""
        if self.degraded is None:
            return False
        c = self.mem.mapping.map_line(line_addr)
        return self.degraded.is_faulty(c.channel, c.rank, c.bank)

    def _touch_materialized(self, line_addr: int, dirty: bool) -> "list[Eviction]":
        """Access the materialized-ECC line for a faulty-bank data line.

        Unlike parity XOR lines, correction bits must be fetched from
        memory on an LLC miss (they cannot be recomputed locally for
        reads, and partial updates need the rest of the line).
        """
        addr = self.degraded.ecc_addr(line_addr)
        hit, ev = self.llc.access(addr, kind=LineKind.ECC, make_dirty=dirty)
        if not hit:
            self._enqueue_mem(addr, False, TAG_ECCFILL)
        return [ev] if ev is not None else []

    # -- core stepping --------------------------------------------------------------------

    def _step_core(self, core: CoreState) -> None:
        """Draw the core's next reference and schedule its LLC access.

        The instruction gap executes first (gap / IPC cycles); the access
        itself is handled at the scheduled "access" event so that memory
        requests enter the queue at the right cycle.
        """
        try:
            gap, addr, is_write = next(core.trace)
        except StopIteration:
            core.done = True
            return
        core.instructions += gap
        self.total_instructions += gap
        if self.ipc_window:
            idx = self.now // self.ipc_window
            while len(self._window_instr) <= idx:
                self._window_instr.append(0)
            self._window_instr[idx] += gap
        t_access = self.now + max(1, math.ceil(gap / self.IPC))
        core.pending = (addr, is_write)
        self._push(t_access, EV_ACCESS, core.cid)

    def _issue_access(self, core: CoreState) -> None:
        """Perform the scheduled LLC access at the current time."""
        addr, is_write = core.pending
        core.pending = None
        hit, ev = self.llc.access(addr, LineKind.DATA, make_dirty=is_write)
        if ev is not None:
            self._handle_eviction(ev)
        if hit:
            self._push(self.now + self.HIT_LATENCY, EV_CORE, core.cid)
            return
        if self._bank_faulty(addr):
            # Step B: the ECC line is read alongside every memory read to a
            # faulty bank (LLC-cached, so sharers hit on chip).
            self._handle_eviction_list(self._touch_materialized(addr, dirty=False))
        if is_write and core.outstanding_posted < self.POSTED_CAP:
            # Write-allocate fill posted through the write buffer.
            core.outstanding_posted += 1
            self._enqueue_mem(addr, False, TAG_POSTFILL | core.cid << TAG_SHIFT)
            self._push(self.now + self.HIT_LATENCY, EV_CORE, core.cid)
        elif not is_write and core.outstanding_loads + 1 < self.load_mlp:
            # Non-blocking load: overlap within the core's miss window.
            core.outstanding_loads += 1
            self._enqueue_mem(addr, False, TAG_POSTLOAD | core.cid << TAG_SHIFT)
            self._push(self.now + self.HIT_LATENCY, EV_CORE, core.cid)
        else:
            core.waiting = True
            self._enqueue_mem(addr, False, TAG_FILL | core.cid << TAG_SHIFT)

    # -- main loop ----------------------------------------------------------------------------

    def run(
        self,
        warmup_instructions: int,
        measure_instructions: int,
        kernel: "str | None" = None,
    ) -> SimResult:
        """Simulate until the instruction budget is spent; return measured stats.

        *kernel* selects the execution engine: ``"epoch"`` (the batched
        kernel in :mod:`repro.cpu.batchkernel`, the default) or
        ``"event"`` (the event-driven reference loop).  Unset, the
        ``REPRO_SIM_KERNEL`` knob decides.  Both produce bit-identical
        results; a system whose event heap is already populated (an
        interrupted or resumed run) always takes the reference loop, the
        one serialization the batched kernel does not model.
        """
        kernel = envcfg.sim_kernel(kernel)
        with trace.span("sim.run", "sim", kernel=kernel):
            if kernel == "epoch" and not self._heap:
                from repro.cpu import batchkernel  # lazy: batchkernel imports this module

                return batchkernel.run_epoch(self, warmup_instructions, measure_instructions)
            return self._run_reference(warmup_instructions, measure_instructions)

    def _run_reference(self, warmup_instructions: int, measure_instructions: int) -> SimResult:
        """The event-driven oracle loop (``REPRO_SIM_KERNEL=event``).

        With ``REPRO_OBS=sim`` armed, one ``sim.run`` event (events/sec,
        LLC hit/miss, channel fast-pick rate) is emitted per run — the
        gate is checked once here, so the event loop itself carries no
        telemetry cost.
        """
        obs_armed = obs.enabled("sim")
        wall0 = perf_counter() if obs_armed else 0.0
        seq0 = self._seq
        self.total_instructions = 0
        target = warmup_instructions + measure_instructions
        for core in self.cores:
            self._push(0, EV_CORE, core.cid)
        if self.scrub is not None:
            self._push(self.scrub.interval_cycles, EV_SCRUB, 0)
        for i, (cycle, _, _, _) in enumerate(self._bursts):
            self._push(cycle, EV_BURST, i)

        snap = None
        snap_state = None
        end_state = None

        heap = self._heap
        heappop = heapq.heappop
        cores = self.cores
        channels = self.mem.channels
        while heap:
            time, _, kind, payload = heappop(heap)
            # Events are never scheduled in the past (every producer pushes at
            # >= self.now), so heap pops are monotone and `now` needs no max().
            assert time >= self.now, "non-monotonic event pop"
            self.now = time

            if snap is None and self.total_instructions >= warmup_instructions:
                snap = self.mem.snapshot_counters(time)
                snap_state = self._state_snapshot()

            if self.total_instructions >= target:
                end_state = self._state_snapshot()
                break

            # Dispatch most-frequent kind first: channel wakeups outnumber
            # every other event class roughly two to one.
            if kind == EV_CHAN:
                done, nxt = channels[payload].advance(time)
                for req in done:
                    self._on_complete(req)
                if nxt is not None:
                    self._push(nxt, EV_CHAN, payload)
            elif kind == EV_CORE:
                core = cores[payload]
                if not core.done:
                    self._step_core(core)
            elif kind == EV_ACCESS:
                self._issue_access(cores[payload])
            elif kind == EV_BURST:
                _, reads, writes, base = self._bursts[payload]
                for i in range(reads):
                    self._enqueue_mem(base + i, False, TAG_SCRUB)
                for i in range(writes):
                    self._enqueue_mem(base + i, True, TAG_WB)
            elif kind == EV_SCRUB:
                # Stop patrolling once every core has retired its trace, or
                # the self-rescheduling event would keep the heap alive.
                if not all(c.done for c in self.cores):
                    addr = self._scrub_cursor % self.scrub.region_lines
                    self._scrub_cursor += 1
                    self.scrub_reads += 1
                    self._enqueue_mem(addr, False, TAG_SCRUB)
                    self._push(self.now + self.scrub.interval_cycles, EV_SCRUB, 0)

        if snap is None:  # trace shorter than warm-up: measure everything
            snap = self.mem.snapshot_counters(0)
            snap_state = dict(instructions=0, cycles=0, accesses=0, hits=0, misses=0,
                              counters=AccessCounters())
        if end_state is None:
            end_state = self._state_snapshot()

        self.mem.finalize(self.now)
        energy = self.mem.energy_since(snap)
        if obs_armed:
            self._emit_run_telemetry(perf_counter() - wall0, self._seq - seq0)
        c0, c1 = snap_state["counters"], end_state["counters"]
        return SimResult(
            instructions=end_state["instructions"] - snap_state["instructions"],
            cycles=end_state["cycles"] - snap_state["cycles"],
            energy=energy,
            accesses_64b=end_state["accesses"] - snap_state["accesses"],
            counters=AccessCounters(
                data_reads=c1.data_reads - c0.data_reads,
                data_writes=c1.data_writes - c0.data_writes,
                ecc_reads=c1.ecc_reads - c0.ecc_reads,
                ecc_writes=c1.ecc_writes - c0.ecc_writes,
            ),
            llc_hits=end_state["hits"] - snap_state["hits"],
            llc_misses=end_state["misses"] - snap_state["misses"],
        )

    def _emit_run_telemetry(self, wall_s: float, events: int) -> None:
        """One ``sim.run`` event + registry update per completed run."""
        issued = sum(ch.issued_requests for ch in self.mem.channels)
        fast = sum(ch.fast_picks for ch in self.mem.channels)
        events_per_sec = round(events / wall_s, 1) if wall_s > 0 else None
        reg = obs.REGISTRY
        reg.counter("sim.runs").inc()
        reg.counter("sim.events").inc(events)
        reg.gauge("sim.events_per_sec").set(events_per_sec)
        stats = self.llc.stats
        obs.emit(
            "sim.run",
            instructions=self.total_instructions,
            cycles=self.now,
            events_scheduled=events,
            events_per_sec=events_per_sec,
            llc_hits=stats.hits,
            llc_misses=stats.misses,
            issued_requests=issued,
            fast_picks=fast,
            fast_pick_rate=round(fast / issued, 4) if issued else None,
            wall_s=round(wall_s, 6),
        )

    def _state_snapshot(self) -> dict:
        return dict(
            instructions=self.total_instructions,
            cycles=self.now,
            accesses=self.mem.accesses_64b,
            hits=self.llc.stats.hits,
            misses=self.llc.stats.misses,
            counters=copy.copy(self.counters),
        )

    def _on_complete(self, req) -> None:
        tag = req.tag
        if type(tag) is not int:  # foreign requests (direct MemorySystem users)
            return
        code = tag & _TAG_MASK
        if code == TAG_FILL:
            core = self.cores[tag >> TAG_SHIFT]
            core.waiting = False
            self._push(req.complete + 1, EV_CORE, core.cid)
        elif code == TAG_POSTFILL:
            self.cores[tag >> TAG_SHIFT].outstanding_posted -= 1
        elif code == TAG_POSTLOAD:
            self.cores[tag >> TAG_SHIFT].outstanding_loads -= 1
