"""Epoch-batched timing-simulation kernel (``REPRO_SIM_KERNEL=epoch``).

The event-driven loop in :meth:`repro.cpu.system.SimSystem._run_reference`
is the last major unvectorized hot path: every LLC reference costs a heap
push/pop per core step, access, and channel wakeup, plus a cascade of
method calls and dataclass allocations per memory request.  This module
re-executes *exactly the same* discrete-event semantics through batched
machinery:

* **Lean event heap** — the reference heap orders events by
  ``(time, seq)`` where ``seq`` is push order; this kernel pushes bare
  ``(time, seq, kind, payload)`` int tuples (no event-object allocation,
  no bound-method dispatch), replaying the identical order because the
  ``(time, seq)`` prefix is unique.
* **Lockstep trace epochs** — each core's reference stream is prefetched
  in whole-array chunks (starting small and doubling, so an early stop
  has not over-pulled the shared generators); the ``ceil(gap/IPC)``
  issue deltas are computed for the entire chunk with NumPy and the
  chunk's unseen addresses are pre-decoded to DRAM coordinates in one
  vectorized pass.
* **Flat channel/rank state** — bank readiness, activation windows, bus
  state, and the per-rank energy counters live in flat Python lists
  indexed by global rank id; the ``Most_Pending`` scheduler runs inline
  over tuple-valued queue entries (no ``MemRequest`` allocation until
  state is exported back at the end of the run).
* **Vectorized pick for deep queues** — when a channel's serviced class
  holds :data:`VECTOR_PICK_MIN` or more candidates (write-drain batches,
  scrub bursts, materialization storms), the earliest-start computation
  and the ``(start, -pending, arrive, idx)`` argmin run as whole-array
  NumPy operations; small queues keep the cheaper scalar scan.  Both
  produce the identical pick.

Rare, genuinely serial cases — scrub patrol ticks, one-shot burst
injection, degraded-mode (faulty-bank) accesses, non-default address
mappings — fall back to the scalar helpers inside the same loop.

The contract is *bit identity*: for any ``SimSystem`` state, this kernel
produces the same :class:`~repro.cpu.system.SimResult` (instructions,
cycles, energy floats, access counters, LLC hits/misses) and leaves the
same externally observable state (LLC contents, channel queues and energy
counters, core progress, telemetry counters) as the event-driven
reference.  ``tests/test_epoch_kernel.py`` property-tests that invariant
across workload profiles, channel counts, fault states, and seeds.

The one intentional difference is invisible to results: trace iterators
are prefetched in chunks, so after an early stop (instruction target hit)
the shared iterator may have advanced further than the reference would
have.  Nothing reads a trace iterator after ``run()``.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from itertools import islice
from time import perf_counter

import numpy as np

from repro import obs
from repro.obs import trace
from repro.cpu.llc import LineKind
from repro.cpu.system import (
    TAG_ECCFILL,
    TAG_ECCRMW,
    TAG_ECCWB,
    TAG_FILL,
    TAG_POSTFILL,
    TAG_POSTLOAD,
    TAG_SCRUB,
    TAG_SHIFT,
    TAG_WB,
    AccessCounters,
    SimResult,
)
from repro.dram.channel import MemRequest
from repro.dram.power import RankEnergyCounters
from repro.ecc.base import EccTraffic

#: Trace items prefetched per core per refill: the first pull is small and
#: each refill doubles up to the cap, so short runs (and the tail past the
#: instruction target) do not pay for thousands of unconsumed trace items.
TRACE_CHUNK_MIN = 512
TRACE_CHUNK = 4096

#: Serviced-class size at which the scheduler switches from the scalar
#: scan to the whole-array NumPy earliest-start/argmin path.  Below this,
#: NumPy's per-call overhead exceeds the loop it replaces.
VECTOR_PICK_MIN = 48

_TAG_MASK = (1 << TAG_SHIFT) - 1

#: Event kinds (match the reference loop's dispatch frequency ordering).
_EV_CORE = 0
_EV_ACCESS = 1
_EV_BURST = 2
_EV_SCRUB = 3
_EV_CHAN = 4

#: pk packing: (rank << 5 | bank) << 44 | row.  Rows stay far below 2**44
#: (the largest mapped region base is 1 << 41) and banks below 32.
_PK_ROW_BITS = 44
_PK_BANK_BITS = 5

_LOW = -(1 << 60)  # "no constraint" sentinel for vectorized maxima


def _pack_key(rank: int, bank: int, row: int) -> int:
    return ((rank << _PK_BANK_BITS | bank) << _PK_ROW_BITS) | row


def _unpack_key(pk: int) -> "tuple[int, int, int]":
    row = pk & ((1 << _PK_ROW_BITS) - 1)
    bank = (pk >> _PK_ROW_BITS) & ((1 << _PK_BANK_BITS) - 1)
    return pk >> (_PK_ROW_BITS + _PK_BANK_BITS), bank, row


def run_epoch(sim, warmup_instructions: int, measure_instructions: int) -> SimResult:
    """Execute ``sim`` to the instruction budget with the epoch kernel.

    Drop-in replacement for :meth:`SimSystem._run_reference`; see the
    module docstring for the identity contract.

    Common-case configurations dispatch to the compiled core in
    :mod:`repro.cpu.epochnative` (same semantics, ~10x faster); this
    Python loop covers every configuration and doubles as the fallback
    when no compiler is available (``REPRO_SIM_NATIVE`` controls it).
    """
    from repro.cpu import epochnative  # deferred: avoids an import cycle

    native = epochnative.wants_native(sim)
    with trace.span("sim.epoch", "sim", native=native):
        if native:
            return epochnative.run_native(sim, warmup_instructions, measure_instructions)
        return _run_epoch_py(sim, warmup_instructions, measure_instructions)


def _run_epoch_py(sim, warmup_instructions: int, measure_instructions: int) -> SimResult:
    obs_armed = obs.enabled("sim")
    wall0 = perf_counter() if obs_armed else 0.0

    mem = sim.mem
    llc = sim.llc
    eccm = sim.ecc_model
    degraded = sim.degraded
    scrub = sim.scrub
    mapping = mem.mapping
    t = mem.timing

    # -- timing/geometry constants ------------------------------------------------------
    trcd, tcl, tcwl, tburst = t.trcd, t.tcl, t.tcwl, t.tburst
    trrd, tfaw, twtr, trtrs, txp = t.trrd, t.tfaw, t.twtr, t.trtrs, t.txp
    trfc, trefi = t.trfc, t.trefi
    bank_busy_read, bank_busy_write = t.bank_busy_read, t.bank_busy_write
    trcd_tcl = trcd + tcl

    chans = mem.channels
    C = len(chans)
    R = len(chans[0].ranks)
    B = chans[0].ranks[0].banks
    if max(B, mem.mapping.banks_per_rank) >= (1 << _PK_BANK_BITS):
        raise ValueError(f"epoch kernel supports < {1 << _PK_BANK_BITS} banks per rank")
    PD = type(chans[0]).POWERDOWN_DELAY
    WRITE_DRAIN = type(chans[0]).WRITE_DRAIN
    WRITE_DRAIN_LOW = type(chans[0]).WRITE_DRAIN_LOW
    QUEUE_DEPTH = type(chans[0]).QUEUE_DEPTH

    HIT = sim.HIT_LATENCY
    IPC = sim.IPC
    POSTED_CAP = sim.POSTED_CAP
    load_mlp = sim.load_mlp

    # -- import flat rank/channel state -------------------------------------------------
    n_ranks = C * R
    bank_ready: "list[int]" = []
    acts: "list[deque]" = []
    busy_until: "list[int]" = []
    accounted_to: "list[int]" = []
    next_refresh: "list[int]" = []
    refreshes: "list[int]" = []
    c_act: "list[int]" = []
    c_rd: "list[int]" = []
    c_wr: "list[int]" = []
    c_active: "list[int]" = []
    c_standby: "list[int]" = []
    c_pdown: "list[int]" = []
    for ch in chans:
        for r in ch.ranks:
            bank_ready.extend(r.bank_ready)
            acts.append(deque(r.act_times, maxlen=4))
            busy_until.append(r.busy_until)
            accounted_to.append(r.accounted_to)
            next_refresh.append(r.next_refresh)
            refreshes.append(r.refreshes)
            rc = r.counters
            c_act.append(rc.activates)
            c_rd.append(rc.read_bursts)
            c_wr.append(rc.write_bursts)
            c_active.append(rc.cycles_active)
            c_standby.append(rc.cycles_precharge_standby)
            c_pdown.append(rc.cycles_powerdown)

    # Queue entries: (gr, gb, pk, is_write, arrive, tag, demand) where
    # gr = global rank id, gb = gr * B + bank, pk = packed (rank,bank,row).
    queues: "list[list]" = []
    pendmaps: "list[dict]" = []
    dem_cnt: "list[int]" = []
    bg_cnt: "list[int]" = []
    draining: "list[bool]" = []
    bus_free: "list[int]" = []
    last_w: "list[bool]" = []
    fast_picks: "list[int]" = []
    issued: "list[int]" = []
    refresh_due: "list[int]" = []
    for ci, ch in enumerate(chans):
        entries = []
        pmap: "dict[int, int]" = {}
        for q in ch.queue:
            gr = ci * R + q.rank
            pk = _pack_key(q.rank, q.bank, q.row)
            entries.append((gr, gr * B + q.bank, pk, q.is_write, q.arrive, q.tag, q.demand))
            pmap[pk] = pmap.get(pk, 0) + 1
        queues.append(entries)
        pendmaps.append(pmap)
        dem_cnt.append(ch._demand_count)
        bg_cnt.append(ch._background_count)
        draining.append(ch._draining)
        bus_free.append(ch.bus_free)
        last_w.append(ch.last_was_write)
        fast_picks.append(ch.fast_picks)
        issued.append(ch.issued_requests)
        refresh_due.append(ch._refresh_due)

    # -- address decode memo (shared across SimSystem instances) ------------------------
    pmemo = mapping.packed_cache(B)
    lpp = mapping.lines_per_page
    # The mapping's bank modulus is its own banks_per_rank (MemorySystem
    # leaves it at the default), independent of the channel's bank count.
    MB = mapping.banks_per_rank
    banks_total = mapping.ranks_per_channel * MB
    vector_decode = (
        mapping.hot_arena_base_line is None
        and mapping.channels == C
        and mapping.ranks_per_channel == R
    )
    seq_policy = mapping.policy == "sequential"
    map_line = mapping.map_line

    def _coord(addr):
        """(channel, gr, gb, pk) for one line address, memoized."""
        v = pmemo.get(addr)
        if v is None:
            c = map_line(addr)
            gr = c.channel * R + c.rank
            v = pmemo[addr] = (c.channel, gr, gr * B + c.bank, _pack_key(c.rank, c.bank, c.row))
        return v

    def _bulk_decode(addrs) -> None:
        """Vector-decode every unseen address of a trace chunk into the memo."""
        missing = [a for a in set(addrs) if a not in pmemo]
        if not missing:
            return
        arr = np.asarray(missing, dtype=np.int64)
        page, off = np.divmod(arr, lpp)
        chv, pic = page % C, page // C
        if seq_policy:
            bidx = pic % banks_total
        else:
            bidx = (off + pic) % banks_total
        rank, bank = np.divmod(bidx, MB)
        gr = chv * R + rank
        gb = gr * B + bank
        pk = ((rank << _PK_BANK_BITS | bank) << _PK_ROW_BITS) | pic
        pmemo.update(
            zip(missing, zip(chv.tolist(), gr.tolist(), gb.tolist(), pk.tolist()))
        )

    # -- degraded-mode / ECC-state constants --------------------------------------------
    if degraded is not None:
        faulty_gb = {
            (c * R + r) * B + b
            for (c, r, b) in degraded.faulty_banks
            if c < C and r < R and b < B
        }
        mat_cov = degraded.ecc_line_coverage
        from repro.cpu.degraded import MATERIALIZED_BASE as _MAT_BASE
    else:
        faulty_gb = frozenset()
        mat_cov = 1
        _MAT_BASE = 0
    ecc_kind = eccm.kind
    ecc_inline = ecc_kind == EccTraffic.INLINE
    ecc_cached = eccm.cache_ecc_lines
    ecc_is_xor = ecc_kind == EccTraffic.XOR_LINE
    KIND_DATA, KIND_ECC, KIND_XOR = LineKind.DATA, LineKind.ECC, LineKind.XOR
    ecc_insert_kind = KIND_ECC if ecc_kind == EccTraffic.ECC_LINE else KIND_XOR
    # EccTrafficModel.ecc_addr with the per-scheme constants hoisted so the
    # write-back cascade computes ECC-line addresses without a method call.
    _ep = False
    _lpp_e = _ppc = _gpp = _pc1 = _cov = 1
    _EB = 0
    if ecc_inline:
        ecc_addr_of = eccm.ecc_addr
    elif eccm.parity_channels is not None:
        from repro.cpu.ecc_traffic import ECC_REGION_BASE as _EB

        _ep = True
        _lpp_e = eccm.lines_per_page
        _ppc = eccm.per_page_coverage
        _gpp = max(1, eccm.lines_per_page // _ppc)
        _pc1 = eccm.parity_channels - 1

        def ecc_addr_of(a):
            page, off = divmod(a, _lpp_e)
            return _EB + (page // _pc1) * _gpp + off // _ppc

    else:
        from repro.cpu.ecc_traffic import ECC_REGION_BASE as _EB

        _cov = max(1, eccm.coverage)

        def ecc_addr_of(a):
            return _EB + a // _cov

    #: The EV_ACCESS miss path may fold the whole victim cascade inline:
    #: only when the ECC state either needs no touch (inline codes) or is a
    #: single cached-line update; uncached schemes take the helper.
    ecc_fast = ecc_inline or ecc_cached

    # -- LLC flat state (the llc's own lists, mutated in place) -------------------------
    where = llc._where
    where_get = where.get
    l_tags = llc._tags
    l_lru = llc._lru
    l_dirty = llc._dirty
    l_kind = llc._kind
    l_fill = llc._fill
    set_mask = llc._set_mask
    assoc = llc.assoc
    clock = llc._clock
    hits = llc._hits
    misses = llc._misses
    evictions_dirty = llc._evictions_dirty

    def _llc_access(addr, kind, make_dirty):
        """Inline LLC.access: returns (hit, (victim_addr, kind, dirty) | None)."""
        nonlocal clock, hits, misses, evictions_dirty
        slot = where_get(addr)
        clock += 1
        if slot is not None:
            l_lru[slot] = clock
            if make_dirty:
                l_dirty[slot] = True
            hits += 1
            return True, None
        misses += 1
        s = addr & set_mask
        base = s * assoc
        evicted = None
        filled = l_fill[s]
        if filled < assoc:
            victim = base + filled
            l_fill[s] = filled + 1
        else:
            # LRU clock values are strictly unique, so min()/index() over a
            # C-level slice finds the same victim as the reference scan.
            sl = l_lru[base : base + assoc]
            victim = base + sl.index(min(sl))
            old = l_tags[victim]
            evicted = (old, l_kind[victim], l_dirty[victim])
            if evicted[2]:
                evictions_dirty += 1
            del where[old]
        l_tags[victim] = addr
        l_lru[victim] = clock
        l_dirty[victim] = make_dirty
        l_kind[victim] = kind
        where[addr] = victim
        return False, evicted

    # -- event machinery ----------------------------------------------------------------
    heap: "list[tuple]" = []
    seq = sim._seq
    seq0 = seq

    # Counters (exported back to sim/mem at the end).
    total = 0
    accesses_64b = mem.accesses_64b
    units_64b = mem._units_64b
    n_data_r = sim.counters.data_reads
    n_data_w = sim.counters.data_writes
    n_ecc_r = sim.counters.ecc_reads
    n_ecc_w = sim.counters.ecc_writes
    scrub_cursor = sim._scrub_cursor
    scrub_reads = sim.scrub_reads

    def _push(when, kind, payload):
        nonlocal seq
        heappush(heap, (when, seq, kind, payload))
        seq += 1

    def _enqueue(addr, is_write, tag, now):
        """Inline MemorySystem.enqueue + SimSystem._enqueue_mem."""
        nonlocal accesses_64b, n_data_r, n_data_w, n_ecc_r, n_ecc_w, seq
        code = tag & _TAG_MASK
        v = pmemo.get(addr)
        if v is None:
            v = _coord(addr)
        ci, gr, gb, pk = v
        q = queues[ci]
        if len(q) >= QUEUE_DEPTH:
            raise RuntimeError("channel queue overflow; caller must respect can_accept()")
        demand = code == TAG_FILL or code == TAG_POSTFILL
        q.append((gr, gb, pk, is_write, now, tag, demand))
        pm = pendmaps[ci]
        pm[pk] = pm.get(pk, 0) + 1
        if demand:
            dem_cnt[ci] += 1
        else:
            bg_cnt[ci] += 1
        accesses_64b += units_64b
        if is_write:
            if code == TAG_ECCWB or code == TAG_ECCRMW:
                n_ecc_w += 1
            else:
                n_data_w += 1
        else:
            if code == TAG_ECCFILL or code == TAG_ECCRMW:
                n_ecc_r += 1
            else:
                n_data_r += 1
        heappush(heap, (now, seq, _EV_CHAN, ci))
        seq += 1

    # -- residency accounting -----------------------------------------------------------
    def _account(gr, upto):
        t0 = accounted_to[gr]
        if upto <= t0:
            return
        busy = busy_until[gr]
        active_end = busy if busy < upto else upto
        if active_end > t0:
            c_active[gr] += active_end - t0
        idle_start = t0 if t0 > busy else busy
        if upto > idle_start:
            pd_point = busy + PD
            standby_end = idle_start if idle_start > pd_point else pd_point
            if standby_end > upto:
                standby_end = upto
            if standby_end > idle_start:
                c_standby[gr] += standby_end - idle_start
            if upto > standby_end:
                c_pdown[gr] += upto - standby_end
        accounted_to[gr] = upto

    def _service_refresh(ci, now):
        base_gr = ci * R
        due = None
        for gr in range(base_gr, base_gr + R):
            nr = next_refresh[gr]
            while nr <= now:
                start = nr if nr > 0 else 0
                end = start + trfc
                b0 = gr * B
                for bi in range(b0, b0 + B):
                    if bank_ready[bi] < end:
                        bank_ready[bi] = end
                _account(gr, start)
                if end > busy_until[gr]:
                    busy_until[gr] = end
                refreshes[gr] += 1
                nr += trefi
            next_refresh[gr] = nr
            if due is None or nr < due:
                due = nr
        refresh_due[ci] = due

    # -- ECC-state / degraded-mode cascade ----------------------------------------------
    def _touch_materialized(addr, dirty, now):
        """Degraded-mode materialized-ECC line access; returns eviction or None."""
        eaddr = _MAT_BASE + addr // mat_cov
        hit, ev = _llc_access(eaddr, KIND_ECC, dirty)
        if not hit:
            _enqueue(eaddr, False, TAG_ECCFILL, now)
        return ev

    def _update_ecc_state(data_addr, now):
        """Touch the ECC/XOR line covering a written-back data line."""
        if ecc_inline:
            return None
        eaddr = ecc_addr_of(data_addr)
        if not ecc_cached:
            if ecc_is_xor:
                _enqueue(data_addr, False, TAG_ECCFILL, now)
            _enqueue(eaddr, False, TAG_ECCRMW, now)
            _enqueue(eaddr, True, TAG_ECCRMW, now)
            return None
        _, ev = _llc_access(eaddr, ecc_insert_kind, True)
        return ev

    def _handle_eviction(ev, now):
        """The reference's write-back / ECC-state cascade over tuple victims."""
        stack = [ev]
        guard = 0
        while stack:
            guard += 1
            if guard > 64:
                raise RuntimeError("runaway eviction cascade")
            vaddr, vkind, vdirty = stack.pop()
            if not vdirty:
                continue
            if vkind == KIND_DATA:
                _enqueue(vaddr, True, TAG_WB, now)
                if faulty_gb and _coord(vaddr)[2] in faulty_gb:
                    nxt = _touch_materialized(vaddr, True, now)
                else:
                    nxt = _update_ecc_state(vaddr, now)
                if nxt is not None:
                    stack.append(nxt)
            elif vkind == KIND_ECC:
                _enqueue(vaddr, True, TAG_ECCWB, now)
            else:  # XOR line: delta read-modify-write of the parity line
                _enqueue(vaddr, False, TAG_ECCRMW, now)
                _enqueue(vaddr, True, TAG_ECCRMW, now)

    # -- core trace epochs --------------------------------------------------------------
    cores = sim.cores
    n_cores = len(cores)
    done = [c.done for c in cores]
    done_cnt = sum(done)
    waiting = [c.waiting for c in cores]
    posted = [c.outstanding_posted for c in cores]
    loads = [c.outstanding_loads for c in cores]
    instr = [c.instructions for c in cores]
    pend_addr = [c.pending[0] if c.pending else 0 for c in cores]
    pend_wr = [c.pending[1] if c.pending else False for c in cores]
    has_pend = [c.pending is not None for c in cores]
    traces = [c.trace for c in cores]

    buf_gap: "list" = [()] * n_cores
    buf_addr: "list" = [()] * n_cores
    buf_wr: "list" = [()] * n_cores
    buf_dt: "list" = [()] * n_cores
    buf_i = [0] * n_cores
    buf_n = [0] * n_cores
    buf_chunk = [TRACE_CHUNK_MIN] * n_cores
    take = [getattr(tr, "take_batch", None) for tr in traces]

    def _refill(cid) -> bool:
        """Prefetch the next trace epoch for one core; False when exhausted."""
        tb = take[cid]
        if tb is not None:
            # TraceStream hands over its whole randomness batch as arrays;
            # the per-item iterator protocol never runs on this path.
            gaps, lines, writes = tb()
            if not len(gaps):
                return False
            deltas = np.maximum(1, np.ceil(gaps / IPC)).astype(np.int64).tolist()
            addrs = lines.tolist()
            if vector_decode:
                _bulk_decode(addrs)
            buf_gap[cid] = gaps.tolist()
            buf_addr[cid] = addrs
            buf_wr[cid] = writes.tolist()
            buf_dt[cid] = deltas
            buf_i[cid] = 0
            buf_n[cid] = len(addrs)
            return True
        # Plain-iterator traces (synthetic test streams): pull a chunk at a
        # time, starting small so short traces don't over-pull.
        chunk = buf_chunk[cid]
        if chunk < TRACE_CHUNK:
            buf_chunk[cid] = chunk * 2
        items = list(islice(traces[cid], chunk))
        if not items:
            return False
        gaps, addrs, writes = zip(*items)
        deltas = np.maximum(
            1, np.ceil(np.asarray(gaps, dtype=np.float64) / IPC)
        ).astype(np.int64).tolist()
        if vector_decode:
            _bulk_decode(addrs)
        buf_gap[cid] = gaps
        buf_addr[cid] = addrs
        buf_wr[cid] = writes
        buf_dt[cid] = deltas
        buf_i[cid] = 0
        buf_n[cid] = len(items)
        return True

    ipc_window = sim.ipc_window
    window_instr = sim._window_instr
    bursts = sim._bursts

    # -- initial events (reference push order) ------------------------------------------
    for cid in range(n_cores):
        _push(0, _EV_CORE, cid)
    if scrub is not None:
        _push(scrub.interval_cycles, _EV_SCRUB, 0)
        scrub_interval = scrub.interval_cycles
        scrub_region = scrub.region_lines
    for i, (cycle, _, _, _) in enumerate(bursts):
        _push(cycle, _EV_BURST, i)

    target = warmup_instructions + measure_instructions
    now = sim.now
    snap = None
    snap_state = None
    end_state = None

    def _counter_snapshot(upto):
        for gr in range(n_ranks):
            _account(gr, upto)
        return (c_act[:], c_rd[:], c_wr[:], c_active[:], c_standby[:], c_pdown[:])

    def _state_snapshot():
        return dict(
            instructions=total,
            cycles=now,
            accesses=accesses_64b,
            hits=hits,
            misses=misses,
            counters=(n_data_r, n_data_w, n_ecc_r, n_ecc_w),
        )

    # -- main loop ----------------------------------------------------------------------
    # ``limit`` is the next instruction threshold that needs per-event
    # attention (first the warm-up snapshot, then the stop target), so the
    # common case pays one comparison instead of two.
    limit = warmup_instructions
    while heap:
        now, _, kind, payload = heappop(heap)

        if total >= limit:
            if snap is None:
                snap = _counter_snapshot(now)
                snap_state = _state_snapshot()
                limit = target
            if total >= target:
                end_state = _state_snapshot()
                break

        if kind == _EV_CHAN:
            ci = payload
            if now >= refresh_due[ci]:
                _service_refresh(ci, now)
            q = queues[ci]
            if not q:
                continue
            pm = pendmaps[ci]
            if len(q) == 1:
                e = q.pop()
                gr, gb, pk, is_write, arrive, tag, demand = e
                n = pm[pk] - 1
                if n:
                    pm[pk] = n
                else:
                    del pm[pk]
                if demand:
                    dem_cnt[ci] -= 1
                else:
                    bg_cnt[ci] -= 1
                draining[ci] = not demand
                fast_picks[ci] += 1
                # earliest start, inline
                start = bank_ready[gb]
                if now > start:
                    start = now
                ats = acts[gr]
                if ats:
                    v = ats[-1] + trrd
                    if v > start:
                        start = v
                    if len(ats) == 4:
                        v = ats[0] + tfaw
                        if v > start:
                            start = v
                if is_write:
                    v = bus_free[ci] + (0 if last_w[ci] else trtrs) - trcd - tcwl
                else:
                    v = bus_free[ci] + (twtr if last_w[ci] else 0) - trcd - tcl
                if v > start:
                    start = v
                if start >= busy_until[gr] + PD:
                    start += txp
            else:
                background = bg_cnt[ci]
                demand_n = dem_cnt[ci]
                if background == 0:
                    draining[ci] = False
                elif background >= WRITE_DRAIN or demand_n == 0:
                    draining[ci] = True
                elif background <= WRITE_DRAIN_LOW and demand_n > 0:
                    draining[ci] = False
                want = not (draining[ci] and background > 0)
                n_want = demand_n if want else background
                busf = bus_free[ci]
                lastw = last_w[ci]
                wcand = busf + (0 if lastw else trtrs) - trcd - tcwl
                rcand = busf + (twtr if lastw else 0) - trcd - tcl
                if n_want >= VECTOR_PICK_MIN:
                    idx, start = _vector_pick(
                        q, pm, want, now, wcand, rcand,
                        bank_ready, acts, busy_until,
                        trrd, tfaw, txp, PD, R, B, ci,
                    )
                else:
                    best_key = None
                    idx = -1
                    start = 0
                    for qi, e in enumerate(q):
                        if e[6] != want:
                            continue
                        gr = e[0]
                        st = bank_ready[e[1]]
                        if now > st:
                            st = now
                        ats = acts[gr]
                        if ats:
                            v = ats[-1] + trrd
                            if v > st:
                                st = v
                            if len(ats) == 4:
                                v = ats[0] + tfaw
                                if v > st:
                                    st = v
                        v = wcand if e[3] else rcand
                        if v > st:
                            st = v
                        if st >= busy_until[gr] + PD:
                            st += txp
                        key = (st, -pm[e[2]], e[4], qi)
                        if best_key is None or key < best_key:
                            best_key = key
                            idx = qi
                            start = st
                e = q.pop(idx)
                gr, gb, pk, is_write, arrive, tag, demand = e
                n = pm[pk] - 1
                if n:
                    pm[pk] = n
                else:
                    del pm[pk]
                if demand:
                    dem_cnt[ci] -= 1
                else:
                    bg_cnt[ci] -= 1

            # -- issue ---------------------------------------------------------
            # _account(gr, start), inline (the per-issue hot path).
            t0a = accounted_to[gr]
            if start > t0a:
                busy = busy_until[gr]
                active_end = busy if busy < start else start
                if active_end > t0a:
                    c_active[gr] += active_end - t0a
                idle_start = t0a if t0a > busy else busy
                if start > idle_start:
                    pd_point = busy + PD
                    standby_end = idle_start if idle_start > pd_point else pd_point
                    if standby_end > start:
                        standby_end = start
                    if standby_end > idle_start:
                        c_standby[gr] += standby_end - idle_start
                    if start > standby_end:
                        c_pdown[gr] += start - standby_end
                accounted_to[gr] = start
            if is_write:
                data_end = start + trcd + tcwl + tburst
                busy_end = start + bank_busy_write
                c_wr[gr] += 1
            else:
                data_end = start + trcd_tcl + tburst
                busy_end = start + bank_busy_read
                c_rd[gr] += 1
            c_act[gr] += 1
            bank_ready[gb] = busy_end
            acts[gr].append(start)
            if busy_end > busy_until[gr]:
                busy_until[gr] = busy_end
            bus_free[ci] = data_end
            last_w[ci] = is_write
            issued[ci] += 1
            nxt = start + 1
            v = data_end - trcd_tcl
            if v > nxt:
                nxt = v
            heappush(heap, (nxt, seq, _EV_CHAN, ci))
            seq += 1
            # -- completion ----------------------------------------------------
            if type(tag) is int:
                code = tag & _TAG_MASK
                if code == TAG_FILL:
                    cid = tag >> TAG_SHIFT
                    waiting[cid] = False
                    heappush(heap, (data_end + 1, seq, _EV_CORE, cid))
                    seq += 1
                elif code == TAG_POSTFILL:
                    posted[tag >> TAG_SHIFT] -= 1
                elif code == TAG_POSTLOAD:
                    loads[tag >> TAG_SHIFT] -= 1

        elif kind == _EV_CORE:
            cid = payload
            if done[cid]:
                continue
            bi = buf_i[cid]
            if bi == buf_n[cid]:
                if not _refill(cid):
                    done[cid] = True
                    done_cnt += 1
                    continue
                bi = 0
            gap = buf_gap[cid][bi]
            buf_i[cid] = bi + 1
            instr[cid] += gap
            total += gap
            if ipc_window:
                widx = now // ipc_window
                while len(window_instr) <= widx:
                    window_instr.append(0)
                window_instr[widx] += gap
            pend_addr[cid] = buf_addr[cid][bi]
            pend_wr[cid] = buf_wr[cid][bi]
            has_pend[cid] = True
            heappush(heap, (now + buf_dt[cid][bi], seq, _EV_ACCESS, cid))
            seq += 1

        elif kind == _EV_ACCESS:
            cid = payload
            addr = pend_addr[cid]
            is_write = pend_wr[cid]
            has_pend[cid] = False
            # inline LLC data-access hit fast path
            slot = where_get(addr)
            clock += 1
            if slot is not None:
                l_lru[slot] = clock
                if is_write:
                    l_dirty[slot] = True
                hits += 1
                heappush(heap, (now + HIT, seq, _EV_CORE, cid))
                seq += 1
                continue
            misses += 1
            s = addr & set_mask
            base = s * assoc
            filled = l_fill[s]
            ev = None
            if filled < assoc:
                victim = base + filled
                l_fill[s] = filled + 1
            else:
                sl = l_lru[base : base + assoc]
                victim = base + sl.index(min(sl))
                old = l_tags[victim]
                ev = (old, l_kind[victim], l_dirty[victim])
                if ev[2]:
                    evictions_dirty += 1
                del where[old]
            l_tags[victim] = addr
            l_lru[victim] = clock
            l_dirty[victim] = is_write
            l_kind[victim] = KIND_DATA
            where[addr] = victim
            if ev is not None and ev[2]:  # clean victims are cascade no-ops
                if ev[1] == KIND_DATA and ecc_fast and not faulty_gb:
                    # Dominant cascade case, fully inline: dirty data victim
                    # -> write-back enqueue + one cached ECC/XOR-line touch.
                    vaddr = ev[0]
                    v = pmemo.get(vaddr)
                    if v is None:
                        v = _coord(vaddr)
                    vci, vgr, vgb, vpk = v
                    q = queues[vci]
                    if len(q) >= QUEUE_DEPTH:
                        raise RuntimeError(
                            "channel queue overflow; caller must respect can_accept()"
                        )
                    q.append((vgr, vgb, vpk, True, now, TAG_WB, False))
                    pm = pendmaps[vci]
                    n = pm.get(vpk)
                    pm[vpk] = 1 if n is None else n + 1
                    bg_cnt[vci] += 1
                    accesses_64b += units_64b
                    n_data_w += 1
                    heappush(heap, (now, seq, _EV_CHAN, vci))
                    seq += 1
                    if not ecc_inline:
                        # _update_ecc_state, inline: dirty-touch the covering
                        # ECC/XOR line (delta accumulation; no fill on miss).
                        if _ep:
                            page, off = divmod(vaddr, _lpp_e)
                            eaddr = _EB + (page // _pc1) * _gpp + off // _ppc
                        else:
                            eaddr = ecc_addr_of(vaddr)
                        slot = where_get(eaddr)
                        clock += 1
                        if slot is not None:
                            l_lru[slot] = clock
                            l_dirty[slot] = True
                            hits += 1
                        else:
                            misses += 1
                            s = eaddr & set_mask
                            base = s * assoc
                            ev2 = None
                            filled = l_fill[s]
                            if filled < assoc:
                                victim = base + filled
                                l_fill[s] = filled + 1
                            else:
                                sl = l_lru[base : base + assoc]
                                victim = base + sl.index(min(sl))
                                old = l_tags[victim]
                                ev2 = (old, l_kind[victim], l_dirty[victim])
                                if ev2[2]:
                                    evictions_dirty += 1
                                del where[old]
                            l_tags[victim] = eaddr
                            l_lru[victim] = clock
                            l_dirty[victim] = True
                            l_kind[victim] = ecc_insert_kind
                            where[eaddr] = victim
                            if ev2 is not None and ev2[2]:
                                _handle_eviction(ev2, now)
                else:
                    _handle_eviction(ev, now)
            if faulty_gb and _coord(addr)[2] in faulty_gb:
                ev = _touch_materialized(addr, False, now)
                if ev is not None and ev[2]:
                    _handle_eviction(ev, now)
            # Classify the fill, then run _enqueue's body inline (this is
            # the dominant enqueue site; same push/seq order as the helper).
            if is_write and posted[cid] < POSTED_CAP:
                posted[cid] += 1
                tag = TAG_POSTFILL | cid << TAG_SHIFT
                demand = True
                wake = True
            elif not is_write and loads[cid] + 1 < load_mlp:
                loads[cid] += 1
                tag = TAG_POSTLOAD | cid << TAG_SHIFT
                demand = False
                wake = True
            else:
                waiting[cid] = True
                tag = TAG_FILL | cid << TAG_SHIFT
                demand = True
                wake = False
            v = pmemo.get(addr)
            if v is None:
                v = _coord(addr)
            ci, gr, gb, pk = v
            q = queues[ci]
            if len(q) >= QUEUE_DEPTH:
                raise RuntimeError("channel queue overflow; caller must respect can_accept()")
            q.append((gr, gb, pk, False, now, tag, demand))
            pm = pendmaps[ci]
            n = pm.get(pk)
            pm[pk] = 1 if n is None else n + 1
            if demand:
                dem_cnt[ci] += 1
            else:
                bg_cnt[ci] += 1
            accesses_64b += units_64b
            n_data_r += 1
            heappush(heap, (now, seq, _EV_CHAN, ci))
            seq += 1
            if wake:
                heappush(heap, (now + HIT, seq, _EV_CORE, cid))
                seq += 1

        elif kind == _EV_BURST:
            _, reads, writes, base_addr = bursts[payload]
            for j in range(reads):
                _enqueue(base_addr + j, False, TAG_SCRUB, now)
            for j in range(writes):
                _enqueue(base_addr + j, True, TAG_WB, now)

        else:  # _EV_SCRUB
            if done_cnt < n_cores:
                addr = scrub_cursor % scrub_region
                scrub_cursor += 1
                scrub_reads += 1
                _enqueue(addr, False, TAG_SCRUB, now)
                _push(now + scrub_interval, _EV_SCRUB, 0)

    # -- wind-down: mirror the reference's snapshot/finalize order ----------------------
    if snap is None:  # trace shorter than warm-up: measure everything
        snap = _counter_snapshot(0)
        snap_state = dict(
            instructions=0, cycles=0, accesses=0, hits=0, misses=0, counters=(0, 0, 0, 0)
        )
    if end_state is None:
        end_state = _state_snapshot()

    # Export the flat state back into the live objects.
    llc._clock = clock
    llc._hits = hits
    llc._misses = misses
    llc._evictions_dirty = evictions_dirty
    gr = 0
    for ci, ch in enumerate(chans):
        for r in ch.ranks:
            r.bank_ready[:] = bank_ready[gr * B : (gr + 1) * B]
            r.act_times = acts[gr]
            r.busy_until = busy_until[gr]
            r.accounted_to = accounted_to[gr]
            r.next_refresh = next_refresh[gr]
            r.refreshes = refreshes[gr]
            rc = r.counters
            rc.activates = c_act[gr]
            rc.read_bursts = c_rd[gr]
            rc.write_bursts = c_wr[gr]
            rc.cycles_active = c_active[gr]
            rc.cycles_precharge_standby = c_standby[gr]
            rc.cycles_powerdown = c_pdown[gr]
            gr += 1
        ch.queue = [
            MemRequest(
                rank=(rk := _unpack_key(e[2]))[0],
                bank=rk[1],
                row=rk[2],
                is_write=e[3],
                arrive=e[4],
                tag=e[5],
                demand=e[6],
            )
            for e in queues[ci]
        ]
        ch._pending_counts = {
            _unpack_key(pk): n for pk, n in pendmaps[ci].items()
        }
        ch._demand_count = dem_cnt[ci]
        ch._background_count = bg_cnt[ci]
        ch._draining = draining[ci]
        ch.bus_free = bus_free[ci]
        ch.last_was_write = last_w[ci]
        ch.fast_picks = fast_picks[ci]
        ch.issued_requests = issued[ci]
        ch._refresh_due = refresh_due[ci]
    mem.accesses_64b = accesses_64b
    sim.now = now
    sim._seq = seq
    sim.total_instructions = total
    sim.counters = AccessCounters(n_data_r, n_data_w, n_ecc_r, n_ecc_w)
    sim._scrub_cursor = scrub_cursor
    sim.scrub_reads = scrub_reads
    for cid, core in enumerate(cores):
        core.done = done[cid]
        core.waiting = waiting[cid]
        core.outstanding_posted = posted[cid]
        core.outstanding_loads = loads[cid]
        core.instructions = instr[cid]
        core.pending = (pend_addr[cid], pend_wr[cid]) if has_pend[cid] else None

    mem.finalize(now)
    baseline = [
        [
            RankEnergyCounters(
                activates=snap[0][ci * R + ri],
                read_bursts=snap[1][ci * R + ri],
                write_bursts=snap[2][ci * R + ri],
                cycles_active=snap[3][ci * R + ri],
                cycles_precharge_standby=snap[4][ci * R + ri],
                cycles_powerdown=snap[5][ci * R + ri],
            )
            for ri in range(R)
        ]
        for ci in range(C)
    ]
    energy = mem.energy_since(baseline)
    if obs_armed:
        sim._emit_run_telemetry(perf_counter() - wall0, seq - seq0)
    c0 = snap_state["counters"]
    c1 = end_state["counters"]
    return SimResult(
        instructions=end_state["instructions"] - snap_state["instructions"],
        cycles=end_state["cycles"] - snap_state["cycles"],
        energy=energy,
        accesses_64b=end_state["accesses"] - snap_state["accesses"],
        counters=AccessCounters(
            data_reads=c1[0] - c0[0],
            data_writes=c1[1] - c0[1],
            ecc_reads=c1[2] - c0[2],
            ecc_writes=c1[3] - c0[3],
        ),
        llc_hits=end_state["hits"] - snap_state["hits"],
        llc_misses=end_state["misses"] - snap_state["misses"],
    )


def _vector_pick(q, pm, want, now, wcand, rcand, bank_ready, acts, busy_until,
                 trrd, tfaw, txp, PD, R, B, ci):
    """Whole-array Most-Pending pick over a deep serviced class.

    Computes every candidate's earliest start with NumPy and minimizes the
    exact reference key ``(start, -pending, arrive, idx)`` via lexsort.
    Returns ``(queue_index, start)`` — identical to the scalar scan.
    """
    rows = [
        (qi, e[0], e[1], e[3], e[4], pm[e[2]])
        for qi, e in enumerate(q)
        if e[6] == want
    ]
    arr = np.asarray(rows, dtype=np.int64)
    qidx, gra, gba, wa, arrive, pending = arr.T
    lo = ci * R
    hi = lo + R
    br = np.asarray(bank_ready[lo * B : hi * B], dtype=np.int64)
    act_rrd = np.empty(R, dtype=np.int64)
    act_faw = np.empty(R, dtype=np.int64)
    bu = np.asarray(busy_until[lo:hi], dtype=np.int64)
    for ri in range(R):
        ats = acts[lo + ri]
        act_rrd[ri] = ats[-1] + trrd if ats else _LOW
        act_faw[ri] = ats[0] + tfaw if len(ats) == 4 else _LOW
    gr_local = gra - lo
    st = br[gba - lo * B]
    st = np.maximum(st, now)
    st = np.maximum(st, act_rrd[gr_local])
    st = np.maximum(st, act_faw[gr_local])
    st = np.maximum(st, np.where(wa != 0, wcand, rcand))
    st = st + np.where(st >= bu[gr_local] + PD, txp, 0)
    order = np.lexsort((qidx, arrive, -pending, st))
    j = order[0]
    return int(qidx[j]), int(st[j])
