"""Intra-chip checksum primitives used by LOT-ECC and Multi-ECC.

LOT-ECC's tier-1 detection is a per-chip checksum of the bytes that chip
contributes to a line: a mismatch both detects the error and localizes it to
one chip, which turns the inter-chip parity tier into an erasure code.
"""

from __future__ import annotations

import numpy as np


def ones_complement_checksum16(data: np.ndarray) -> np.ndarray:
    """16-bit one's-complement checksum over the last axis of a byte array.

    Input shape ``(..., 2k)`` (byte count must be even); output shape
    ``(..., 2)`` - the complemented end-around-carry sum, big-endian.
    """
    data = np.asarray(data, dtype=np.uint8)
    if data.shape[-1] % 2:
        raise ValueError("byte count must be even for a 16-bit checksum")
    words = (data[..., 0::2].astype(np.uint32) << 8) | data[..., 1::2].astype(np.uint32)
    total = words.sum(axis=-1, dtype=np.uint64)
    # Fold carries back in until the sum fits in 16 bits.
    while np.any(total >> 16):
        total = (total & 0xFFFF) + (total >> 16)
    csum = (~total.astype(np.uint32)) & 0xFFFF
    out = np.empty(csum.shape + (2,), dtype=np.uint8)
    out[..., 0] = (csum >> 8) & 0xFF
    out[..., 1] = csum & 0xFF
    return out


def xor_checksum8(data: np.ndarray) -> np.ndarray:
    """Position-rotated additive 8-bit checksum; output shape ``(..., 1)``.

    Each byte is rotated left by its position before a mod-256 sum.  The
    rotation makes the sum sensitive to byte order, and the addition avoids
    the linear-cancellation blind spots of a plain XOR fold (e.g. the same
    delta applied to every byte).  Any single-byte change is detected
    (rotation is a bijection, so the summand always changes).  Used where
    only one byte of budget exists (LOT-ECC9's per-chip checksums) - weaker
    than the 16-bit one's-complement sum, as in the original LOT-ECC tiers.
    """
    data = np.asarray(data, dtype=np.uint8)
    n = data.shape[-1]
    shifts = (np.arange(n) % 8).astype(np.uint16)
    wide = data.astype(np.uint16)
    rotated = ((wide << shifts) | (wide >> (8 - shifts))) & 0xFF
    total = rotated.sum(axis=-1) & 0xFF
    return total[..., None].astype(np.uint8)
