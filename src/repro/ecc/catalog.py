"""Table II of the paper: the evaluated memory-system configurations.

Every row pairs an ECC scheme with its geometry in the two evaluated system
classes: systems *equivalent in physical bandwidth and size* to a
dual-channel or a quad-channel commercial-ECC memory system.  "Equivalent"
means the same total memory I/O pin count and the same total physical DRAM
capacity; schemes with narrower ranks therefore get more logical channels
and/or more ranks per channel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ecc.base import ECCScheme
from repro.ecc.chipkill import Chipkill18, Chipkill36
from repro.ecc.lot_ecc import LotEcc5, LotEcc9
from repro.ecc.multi_ecc import MultiEcc
from repro.ecc.raim import Raim18EP, Raim45


@dataclass(frozen=True)
class SystemConfig:
    """One evaluated memory-system configuration (a cell of Table II).

    Attributes
    ----------
    scheme_key:
        Key into :data:`SCHEMES`.
    channels:
        Logical channel count in this system class.
    ranks_per_channel:
        Ranks on each logical channel.
    ecc_parity:
        True when the scheme's correction bits are stored as cross-channel
        ECC parity (the paper's proposal) rather than directly.
    total_pins:
        Total memory I/O pin count (sanity anchor from Table II).
    """

    scheme_key: str
    channels: int
    ranks_per_channel: int
    ecc_parity: bool
    total_pins: int

    def make_scheme(self) -> ECCScheme:
        """Instantiate a fresh scheme object for this configuration."""
        return SCHEMES[self.scheme_key]()

    @property
    def label(self) -> str:
        suffix = " + ECC Parity" if self.ecc_parity else ""
        return f"{SCHEMES[self.scheme_key]().name}{suffix}"


#: Scheme registry: constructor per key.
SCHEMES = {
    "chipkill36": Chipkill36,
    "chipkill18": Chipkill18,
    "lot_ecc5": LotEcc5,
    "lot_ecc9": LotEcc9,
    "multi_ecc": MultiEcc,
    "raim": Raim45,
    "raim18": Raim18EP,
}

#: Table II, "dual-channel commercial ECC equivalent" system class.
DUAL_EQUIVALENT = {
    "chipkill36": SystemConfig("chipkill36", channels=2, ranks_per_channel=1, ecc_parity=False, total_pins=288),
    "chipkill18": SystemConfig("chipkill18", channels=4, ranks_per_channel=1, ecc_parity=False, total_pins=288),
    "lot_ecc5": SystemConfig("lot_ecc5", channels=4, ranks_per_channel=4, ecc_parity=False, total_pins=288),
    "lot_ecc9": SystemConfig("lot_ecc9", channels=4, ranks_per_channel=2, ecc_parity=False, total_pins=288),
    "multi_ecc": SystemConfig("multi_ecc", channels=4, ranks_per_channel=2, ecc_parity=False, total_pins=288),
    "lot_ecc5_ep": SystemConfig("lot_ecc5", channels=4, ranks_per_channel=4, ecc_parity=True, total_pins=288),
    "raim": SystemConfig("raim", channels=2, ranks_per_channel=1, ecc_parity=False, total_pins=360),
    "raim_ep": SystemConfig("raim18", channels=5, ranks_per_channel=1, ecc_parity=True, total_pins=360),
}

#: Table II, "quad-channel commercial ECC equivalent" system class.
QUAD_EQUIVALENT = {
    "chipkill36": SystemConfig("chipkill36", channels=4, ranks_per_channel=1, ecc_parity=False, total_pins=576),
    "chipkill18": SystemConfig("chipkill18", channels=8, ranks_per_channel=1, ecc_parity=False, total_pins=576),
    "lot_ecc5": SystemConfig("lot_ecc5", channels=8, ranks_per_channel=4, ecc_parity=False, total_pins=576),
    "lot_ecc9": SystemConfig("lot_ecc9", channels=8, ranks_per_channel=2, ecc_parity=False, total_pins=576),
    "multi_ecc": SystemConfig("multi_ecc", channels=8, ranks_per_channel=2, ecc_parity=False, total_pins=576),
    "lot_ecc5_ep": SystemConfig("lot_ecc5", channels=8, ranks_per_channel=4, ecc_parity=True, total_pins=576),
    "raim": SystemConfig("raim", channels=4, ranks_per_channel=1, ecc_parity=False, total_pins=720),
    "raim_ep": SystemConfig("raim18", channels=10, ranks_per_channel=1, ecc_parity=True, total_pins=720),
}

SYSTEM_CLASSES = {"dual": DUAL_EQUIVALENT, "quad": QUAD_EQUIVALENT}


def pin_count(config: SystemConfig) -> int:
    """Recompute the total memory I/O pins implied by a configuration."""
    scheme = config.make_scheme()
    pins_per_rank = sum(scheme.chip_widths())
    return pins_per_rank * config.channels


def total_physical_gbits(config: SystemConfig, chip_gbits: int = 2) -> float:
    """Total physical DRAM capacity (data + ECC chips), in gigabits.

    Half-width chips (LOT-ECC5's X8 companion) carry half the capacity, per
    the paper's rank description.
    """
    scheme = config.make_scheme()
    base = max(scheme.chip_widths())
    per_rank = sum(chip_gbits * (w / base if w != base else 1.0) for w in scheme.chip_widths())
    return per_rank * config.ranks_per_channel * config.channels
