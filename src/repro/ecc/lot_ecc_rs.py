"""Section VI-D's modified LOT-ECC5 encoding: inter-chip Reed-Solomon.

Plain LOT-ECC detects errors with *intra-chip* checksums, so a DRAM address
decoder fault - the chip coherently returning the wrong row - escapes
detection: the data and its chip-local checksum are self-consistent.  The
paper fixes this for banks not marked faulty by replacing LOT-ECC's
inter-device parity with a Reed-Solomon code over GF(2^16):

* each 16-byte word is eight 16-bit data symbols interleaved evenly across
  the four X16 chips (two symbols per chip per word);
* RS(10, 8) over GF(2^16) appends two check symbols;
* check symbol #1 is stored in the X8 ECC chip and checked on the fly -
  being computed from *different* chips, it catches address errors;
* check symbol #2 plus the intra-chip checksums form the correction
  payload (stored via ECC parity), keeping R = 0.25 like plain LOT-ECC5;
* correction localizes the faulty chip with the checksums and then
  erasure-decodes the chip's two symbols per word with both check symbols.
"""

from __future__ import annotations

import numpy as np

from repro.ecc.base import (
    BatchCorrectResult,
    CorrectResult,
    DetectResult,
    ECCScheme,
    EccTraffic,
)
from repro.ecc.checksum import ones_complement_checksum16
from repro.gf import GF65536, ReedSolomon


def _bytes_to_symbols(data: np.ndarray) -> np.ndarray:
    """Big-endian byte pairs -> uint16 symbols, over the last axis."""
    data = np.asarray(data, dtype=np.uint8)
    return (data[..., 0::2].astype(np.uint16) << 8) | data[..., 1::2]


def _symbols_to_bytes(sym: np.ndarray) -> np.ndarray:
    sym = np.asarray(sym, dtype=np.uint16)
    out = np.empty(sym.shape[:-1] + (sym.shape[-1] * 2,), dtype=np.uint8)
    out[..., 0::2] = (sym >> 8) & 0xFF
    out[..., 1::2] = sym & 0xFF
    return out


class LotEcc5RS(ECCScheme):
    """LOT-ECC5 with the Section VI-D inter-chip RS(10,8) over GF(2^16)."""

    name = "LOT-ECC5/RS (VI-D)"
    line_size = 64
    chips_per_rank = 5
    data_chips = 4
    chip_width = 16
    traffic = EccTraffic.ECC_LINE
    ecc_line_coverage = 4
    #: symbols each chip contributes to one word
    SYMBOLS_PER_CHIP = 2
    WORDS = 4  # 64B line / 16B word

    def __init__(self):
        self._rs = ReedSolomon(GF65536, 10, 8)

    def chip_widths(self) -> "list[int]":
        return [16, 16, 16, 16, 8]

    # -- capacity (identical budget to plain LOT-ECC5) -------------------------------

    @property
    def detection_bytes_per_line(self) -> int:
        return 2 * self.WORDS  # check symbol #1 per word, in the X8 chip

    @property
    def correction_bytes_per_line(self) -> int:
        return 2 * self.WORDS + 2 * self.data_chips  # check #2 + checksums

    @property
    def detection_overhead(self) -> float:
        return 0.125  # the X8 chip, as in plain LOT-ECC5

    @property
    def correction_overhead(self) -> float:
        # Same ECC-line layout as LOT-ECC5: one 72B line per 4 data lines.
        return (self.line_size + 8) / (self.ecc_line_coverage * self.line_size)

    # -- symbol plumbing ------------------------------------------------------------------

    def _words_symbols(self, data: np.ndarray) -> np.ndarray:
        """Line(s) -> ``(..., WORDS, 8)`` uint16 data-symbol matrix.

        Word ``w`` takes bytes ``[4w, 4w+4)`` of every chip; chip ``c``
        supplies symbols ``2c`` and ``2c+1`` of the word (even interleave).
        """
        chips = self.split_to_chips(data)  # (..., 4, 16)
        lead = chips.shape[:-2]
        per_word = chips.reshape(*lead, self.data_chips, self.WORDS, 4)
        sym = _bytes_to_symbols(per_word)  # (..., 4 chips, 4 words, 2 sym)
        sym = np.swapaxes(sym, -3, -2)  # (..., words, chips, 2)
        return sym.reshape(*lead, self.WORDS, 8)

    def _symbols_to_chips(self, sym: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`_words_symbols`: ``(..., WORDS, 8)`` -> ``(..., 4, 16)``."""
        sym = np.asarray(sym, dtype=np.uint16)
        lead = sym.shape[:-2]
        per_word = sym.reshape(*lead, self.WORDS, self.data_chips, self.SYMBOLS_PER_CHIP)
        per_chip = np.swapaxes(per_word, -3, -2)  # (..., chips, words, 2)
        return _symbols_to_bytes(per_chip.reshape(*lead, self.data_chips, -1))

    def _check_symbols(self, data: np.ndarray) -> np.ndarray:
        """Both RS check symbols per word: ``(..., WORDS, 2)`` uint16."""
        return self._rs.encode(self._words_symbols(data))[..., 8:]

    # -- payloads --------------------------------------------------------------------------

    def compute_detection(self, data: np.ndarray) -> np.ndarray:
        checks = self._check_symbols(data)[..., 0]  # (..., WORDS)
        return _symbols_to_bytes(checks)

    def compute_correction(self, data: np.ndarray) -> np.ndarray:
        checks = _symbols_to_bytes(self._check_symbols(data)[..., 1])
        csums = ones_complement_checksum16(self.split_to_chips(data))
        csums = csums.reshape(*csums.shape[:-2], -1)
        return np.concatenate([checks, csums], axis=-1)

    # -- detection (inter-chip: catches address errors) -------------------------------------

    def detect_line(self, chips: np.ndarray, detection: np.ndarray) -> DetectResult:
        data = self.merge_from_chips(chips)
        expected = self.compute_detection(data)
        mismatch = not np.array_equal(
            expected, np.asarray(detection, dtype=np.uint8).reshape(-1)
        )
        return DetectResult(error=mismatch, chip=None)

    # -- correction --------------------------------------------------------------------------

    def _split_correction(self, correction: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        correction = np.asarray(correction, dtype=np.uint8).reshape(-1)
        check2 = _bytes_to_symbols(correction[: 2 * self.WORDS])
        csums = correction[2 * self.WORDS :].reshape(self.data_chips, 2)
        return check2, csums

    def correct_line(
        self,
        chips: np.ndarray,
        detection: np.ndarray,
        correction: np.ndarray,
        erasures: "set[int] | None" = None,
    ) -> CorrectResult:
        chips = np.asarray(chips, dtype=np.uint8)
        data = self.merge_from_chips(chips)
        det_stored = np.asarray(detection, dtype=np.uint8).reshape(-1)
        detected = not np.array_equal(self.compute_detection(data), det_stored)
        if not detected and not erasures:
            return CorrectResult(data=data, corrected=False, detected=False)

        check2, csums = self._split_correction(correction)
        # Localize: intra-chip checksums name the faulty chip.
        computed = ones_complement_checksum16(chips)
        bad = set(int(c) for c in np.nonzero(np.any(computed != csums, axis=1))[0])
        if erasures:
            bad |= {int(c) for c in erasures if c < self.data_chips}
        # An address error leaves the checksums consistent (the chip returns
        # coherent wrong-row data); fall back to RS error decoding then.
        words = self._words_symbols(data)  # (WORDS, 8)
        det_sym = _bytes_to_symbols(det_stored)  # (WORDS,)
        codewords = np.concatenate(
            [words, det_sym[:, None], check2[:, None]], axis=1
        )  # (WORDS, 10)
        if len(bad) > 1:
            return CorrectResult(data=None, corrected=False, detected=True)
        if bad:
            victim = bad.pop()
            positions = [victim * self.SYMBOLS_PER_CHIP + k for k in range(self.SYMBOLS_PER_CHIP)]
            # chip c holds word-symbol indices 2c, 2c+1 under the interleave
            res = self._rs.decode(codewords, erasures=positions)
        else:
            res = self._rs.decode(codewords)
        if not res.ok.all():
            return CorrectResult(data=None, corrected=False, detected=True)
        fixed_syms = res.corrected[:, :8]
        fixed_chips = self._symbols_to_chips(fixed_syms.astype(np.uint16))
        fixed = self.merge_from_chips(fixed_chips)
        # Final cross-check against the stored inter-chip detection symbol.
        if not np.array_equal(self.compute_detection(fixed), det_stored):
            return CorrectResult(data=None, corrected=False, detected=True)
        changed = bool(res.n_corrected.sum() > 0) or not np.array_equal(fixed, data)
        return CorrectResult(data=fixed, corrected=changed, detected=True)

    def correct_lines(
        self,
        chips: np.ndarray,
        detection: np.ndarray,
        correction: np.ndarray,
        erasures: "set[int] | None" = None,
    ) -> BatchCorrectResult:
        """Batched :meth:`correct_line`: localize every line's victim chip in
        one checksum pass, then group rows by victim signature so each group
        decodes through one batched RS call (the batched kernel sees
        ``group_rows * WORDS`` codewords at once, and the per-erasure-set
        solve cache is hit instead of rebuilt).  ``tests/test_correct_lines.py``
        holds this equal to the base per-line loop.
        """
        chips = np.asarray(chips, dtype=np.uint8)
        total = chips.shape[0]
        data = self.merge_from_chips(chips)
        det_stored = np.asarray(detection, dtype=np.uint8).reshape(total, -1)
        computed_det = np.asarray(self.compute_detection(data), dtype=np.uint8).reshape(
            total, -1
        )
        mismatch = np.any(computed_det != det_stored, axis=1)

        out = np.zeros((total, self.line_size), dtype=np.uint8)
        ok = np.zeros(total, dtype=bool)
        corrected = np.zeros(total, dtype=bool)
        detected = mismatch.copy()

        # Declared erasures force every line through the decode path.
        active = mismatch | bool(erasures)
        clean = ~active
        out[clean] = data[clean]
        ok[clean] = True
        act = np.flatnonzero(active)
        if act.size == 0:
            return BatchCorrectResult(data=out, ok=ok, corrected=corrected, detected=detected)
        detected[act] = True

        correction = np.asarray(correction, dtype=np.uint8).reshape(total, -1)
        check2 = _bytes_to_symbols(correction[:, : 2 * self.WORDS])  # (T, WORDS)
        csums = correction[:, 2 * self.WORDS :].reshape(total, self.data_chips, 2)
        badmask = np.any(ones_complement_checksum16(chips) != csums, axis=2)  # (T, 4)
        if erasures:
            era = sorted({int(c) for c in erasures if c < self.data_chips})
            if era:
                badmask[:, era] = True
        nbad = badmask[act].sum(axis=1)
        victim = np.argmax(badmask[act], axis=1)

        words = self._words_symbols(data[act])  # (A, WORDS, 8)
        det_sym = _bytes_to_symbols(det_stored[act])  # (A, WORDS)
        codewords = np.concatenate(
            [words, det_sym[:, :, None], check2[act][:, :, None]], axis=2
        )  # (A, WORDS, 10)

        # Group by victim signature: one batched decode per erasure set.
        # Multi-victim rows are never selected and stay failed+detected.
        for v in range(-1, self.data_chips):
            if v < 0:
                sel = np.flatnonzero(nbad == 0)
                era_pos = None
            else:
                sel = np.flatnonzero((nbad == 1) & (victim == v))
                era_pos = [v * self.SYMBOLS_PER_CHIP + k for k in range(self.SYMBOLS_PER_CHIP)]
            if not sel.size:
                continue
            res = self._rs.decode(codewords[sel].reshape(-1, self._rs.n), erasures=era_pos)
            ok_w = res.ok.reshape(sel.size, self.WORDS).all(axis=1)
            fixed_syms = res.corrected.reshape(sel.size, self.WORDS, self._rs.n)[:, :, :8]
            fixed_chips = self._symbols_to_chips(fixed_syms.astype(np.uint16))
            fixed = self.merge_from_chips(fixed_chips)
            recheck = np.asarray(self.compute_detection(fixed), dtype=np.uint8).reshape(
                sel.size, -1
            )
            good = ok_w & np.all(recheck == det_stored[act][sel], axis=1)
            rows = act[sel[good]]
            out[rows] = fixed[good]
            ok[rows] = True
            changed = (res.n_corrected.reshape(sel.size, self.WORDS).sum(axis=1) > 0) | np.any(
                fixed != data[act][sel], axis=1
            )
            corrected[rows] = changed[good]
        return BatchCorrectResult(data=out, ok=ok, corrected=corrected, detected=detected)
