"""LOT-ECC: localized and tiered chipkill correct [Udipi et al., ISCA'12].

LOT-ECC separates the two jobs a symbol code does at once:

* tier 1 (detection + localization): an *intra-chip* checksum of each chip's
  contribution to the line, stored in a dedicated narrow ECC chip and read
  with every access;
* tier 2 (correction): an *inter-chip* XOR parity of the data chips'
  segments (the "global error correction" / GEC data), stored in separate
  ECC lines elsewhere in data memory.

Because the checksum localizes the faulty chip, the XOR tier only ever has
to solve an erasure, so a plain parity suffices.  The price is the GEC
capacity: 40.6% total for the five-chip variant, which is what ECC Parity
amortizes across channels.

Two variants from the paper:

* :class:`LotEcc5` ("LOT-ECC II"): 4 X16 data chips + 1 half-capacity X8
  ECC chip; most energy-efficient, highest capacity overhead.
* :class:`LotEcc9` ("LOT-ECC I"): 8 X8 data chips + 1 X8 ECC chip.
"""

from __future__ import annotations

import numpy as np

from repro.ecc.base import (
    BatchCorrectResult,
    CorrectResult,
    DetectResult,
    ECCScheme,
    EccTraffic,
)
from repro.ecc.checksum import ones_complement_checksum16, xor_checksum8


class _LotEcc(ECCScheme):
    """Shared checksum + XOR-parity machinery for both LOT-ECC variants."""

    traffic = EccTraffic.ECC_LINE
    line_size = 64
    #: Bytes of checksum stored per data chip per line.
    checksum_bytes: int = 2

    # -- capacity -----------------------------------------------------------------

    @property
    def detection_bytes_per_line(self) -> int:
        return self.checksum_bytes * self.data_chips

    @property
    def correction_bytes_per_line(self) -> int:
        return self.chip_bytes  # one chip-segment of XOR parity

    @property
    def detection_overhead(self) -> float:
        return self.detection_bytes_per_line / self.line_size

    @property
    def correction_overhead(self) -> float:
        # Each (GEC payload + its own checksums) ECC line covers
        # ``ecc_line_coverage`` data lines: e.g. (64+8)/(4*64) for LOT-ECC5.
        ecc_line_bytes = self.line_size + self.detection_bytes_per_line
        return ecc_line_bytes / (self.ecc_line_coverage * self.line_size)

    # -- codec ---------------------------------------------------------------------

    def _checksum(self, segments: np.ndarray) -> np.ndarray:
        """Per-chip checksums: ``(..., chips, chip_bytes)`` -> ``(..., chips*cs_bytes)``."""
        if self.checksum_bytes == 2:
            out = ones_complement_checksum16(segments)
        else:
            out = xor_checksum8(segments)
        return out.reshape(*out.shape[:-2], -1)

    def compute_detection(self, data: np.ndarray) -> np.ndarray:
        return self._checksum(self.split_to_chips(data))

    def compute_correction(self, data: np.ndarray) -> np.ndarray:
        """GEC segment: bytewise XOR of all data chips' contributions."""
        return np.bitwise_xor.reduce(self.split_to_chips(data), axis=-2)

    def _mismatched_chips(self, chips: np.ndarray, detection: np.ndarray) -> np.ndarray:
        stored = np.asarray(detection, dtype=np.uint8).reshape(self.data_chips, self.checksum_bytes)
        computed = self._checksum(np.asarray(chips, dtype=np.uint8)).reshape(
            self.data_chips, self.checksum_bytes
        )
        return np.nonzero(np.any(stored != computed, axis=1))[0]

    def detect_line(self, chips: np.ndarray, detection: np.ndarray) -> DetectResult:
        bad = self._mismatched_chips(chips, detection)
        if bad.size == 0:
            return DetectResult(error=False)
        # A single mismatch localizes the faulty data chip; several mismatches
        # mean either the checksum chip itself failed or a multi-chip fault.
        return DetectResult(error=True, chip=int(bad[0]) if bad.size == 1 else None)

    def correct_line(
        self,
        chips: np.ndarray,
        detection: np.ndarray,
        correction: np.ndarray,
        erasures: "set[int] | None" = None,
    ) -> CorrectResult:
        chips = np.asarray(chips, dtype=np.uint8)
        bad = set(int(c) for c in self._mismatched_chips(chips, detection))
        if erasures:
            bad |= {int(c) for c in erasures}
        if not bad:
            return CorrectResult(data=self.merge_from_chips(chips), corrected=False, detected=False)
        if len(bad) > 1:
            # Several checksum mismatches usually mean the checksum chip
            # itself died (its whole segment goes at once).  Test that
            # hypothesis against the GEC parity: if the data chips still XOR
            # to the stored parity, the data is intact and only the stored
            # checksums are garbage.
            if erasures is None or all(e >= self.data_chips for e in erasures):
                gec = np.bitwise_xor.reduce(chips, axis=0)
                if np.array_equal(gec, np.asarray(correction, dtype=np.uint8)):
                    return CorrectResult(
                        data=self.merge_from_chips(chips), corrected=True, detected=True
                    )
            # Otherwise parity is a single-erasure code; more than one
            # suspect data chip is uncorrectable at this tier.
            return CorrectResult(data=None, corrected=False, detected=True)
        victim = bad.pop()
        others = np.bitwise_xor.reduce(np.delete(chips, victim, axis=0), axis=0)
        rebuilt = np.bitwise_xor(np.asarray(correction, dtype=np.uint8), others)
        fixed = chips.copy()
        fixed[victim] = rebuilt
        # Verify against the stored checksum of the rebuilt chip (guards
        # against a stale/corrupt GEC segment).
        if self._mismatched_chips(fixed, detection).size:
            return CorrectResult(data=None, corrected=False, detected=True)
        return CorrectResult(data=self.merge_from_chips(fixed), corrected=True, detected=True)

    def correct_lines(
        self,
        chips: np.ndarray,
        detection: np.ndarray,
        correction: np.ndarray,
        erasures: "set[int] | None" = None,
    ) -> BatchCorrectResult:
        """Batched correction as three vectorized cases by suspect count.

        Clean rows pass through; single-suspect rows XOR-rebuild the victim
        segment from the GEC parity and verify its checksum; multi-suspect
        rows test the checksum-chip-died hypothesis against the parity.
        Checksum-chip erasures (``e >= data_chips``) fall back to the scalar
        path - no caller batches those.
        """
        if erasures and any(e >= self.data_chips for e in erasures):
            return super().correct_lines(chips, detection, correction, erasures=erasures)
        chips = np.asarray(chips, dtype=np.uint8)
        total = chips.shape[0]
        detection = np.asarray(detection, dtype=np.uint8)
        correction = np.asarray(correction, dtype=np.uint8)
        stored = detection.reshape(total, self.data_chips, self.checksum_bytes)
        computed = self._checksum(chips).reshape(total, self.data_chips, self.checksum_bytes)
        bad = np.any(stored != computed, axis=2)  # (T, data_chips)
        if erasures:
            bad[:, sorted(erasures)] = True
        nbad = bad.sum(axis=1)

        data = np.zeros((total, self.line_size), dtype=np.uint8)
        ok = np.zeros(total, dtype=bool)
        corrected = np.zeros(total, dtype=bool)
        detected = nbad > 0

        clean = nbad == 0
        if clean.any():
            data[clean] = self.merge_from_chips(chips[clean])
            ok[clean] = True

        gec = np.bitwise_xor.reduce(chips, axis=1)  # (T, chip_bytes)

        single = np.flatnonzero(nbad == 1)
        if single.size:
            victim = np.argmax(bad[single], axis=1)
            victim_rows = chips[single, victim]
            # XOR of the other chips = XOR of all chips ^ the victim's row.
            rebuilt = correction[single] ^ gec[single] ^ victim_rows
            # Only the victim changed, so re-verification reduces to its own
            # stored checksum (the other chips' status is unchanged).
            cs = self._checksum(rebuilt[:, None, :]).reshape(single.size, self.checksum_bytes)
            good = np.all(cs == stored[single, victim], axis=1)
            fixed = chips[single].copy()
            fixed[np.arange(single.size), victim] = rebuilt
            idx = single[good]
            data[idx] = self.merge_from_chips(fixed[good])
            ok[idx] = True
            corrected[idx] = True

        multi = np.flatnonzero(nbad > 1)
        if multi.size and not erasures:
            # Checksum-chip-died hypothesis: data chips still XOR to the
            # stored GEC parity, so only the stored checksums are garbage.
            good = np.all(gec[multi] == correction[multi], axis=1)
            idx = multi[good]
            data[idx] = self.merge_from_chips(chips[idx])
            ok[idx] = True
            corrected[idx] = True
        return BatchCorrectResult(data=data, ok=ok, corrected=corrected, detected=detected)


class LotEcc5(_LotEcc):
    """LOT-ECC II: 4 X16 data chips + 1 X8 checksum chip, 64B lines.

    The X8 ECC chip has half the width and capacity of the X16 data chips;
    it carries a 16-bit checksum per data chip per line.  One 72B GEC line
    (64B parity + 8B checksums) covers four data lines, giving the 40.6%
    total overhead the paper quotes.
    """

    name = "LOT-ECC5"
    chips_per_rank = 5
    data_chips = 4
    chip_width = 16
    checksum_bytes = 2
    ecc_line_coverage = 4

    def chip_widths(self) -> "list[int]":
        return [16, 16, 16, 16, 8]


class LotEcc9(_LotEcc):
    """LOT-ECC I: 8 X8 data chips + 1 X8 checksum chip, 64B lines.

    One byte of checksum per data chip per line; one 72B GEC line covers
    eight data lines (26.5% total overhead).
    """

    name = "LOT-ECC9"
    chips_per_rank = 9
    data_chips = 8
    chip_width = 8
    checksum_bytes = 1
    ecc_line_coverage = 8
