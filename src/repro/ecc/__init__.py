"""Bit-true memory ECC schemes and the paper's evaluated configurations.

All schemes implement :class:`~repro.ecc.base.ECCScheme`: a geometry/cost
descriptor plus a functional codec over NumPy byte arrays.  The catalog
module reproduces Table II of the paper.
"""

from repro.ecc.base import CorrectResult, DetectResult, ECCScheme, EccTraffic
from repro.ecc.checksum import ones_complement_checksum16, xor_checksum8
from repro.ecc.chipkill import Chipkill18, Chipkill36
from repro.ecc.double_chipkill import DoubleChipkill40
from repro.ecc.lot_ecc import LotEcc5, LotEcc9
from repro.ecc.lot_ecc_rs import LotEcc5RS
from repro.ecc.multi_ecc import MultiEcc
from repro.ecc.raim import Raim18EP, Raim45
from repro.ecc.catalog import (
    DUAL_EQUIVALENT,
    QUAD_EQUIVALENT,
    SCHEMES,
    SYSTEM_CLASSES,
    SystemConfig,
    pin_count,
    total_physical_gbits,
)

__all__ = [
    "CorrectResult",
    "DetectResult",
    "ECCScheme",
    "EccTraffic",
    "ones_complement_checksum16",
    "xor_checksum8",
    "Chipkill18",
    "Chipkill36",
    "DoubleChipkill40",
    "LotEcc5",
    "LotEcc5RS",
    "LotEcc9",
    "MultiEcc",
    "Raim18EP",
    "Raim45",
    "DUAL_EQUIVALENT",
    "QUAD_EQUIVALENT",
    "SCHEMES",
    "SYSTEM_CLASSES",
    "SystemConfig",
    "pin_count",
    "total_physical_gbits",
]
