"""Commercial chipkill-correct ECC schemes (36-device and 18-device).

Both stripe each memory word one 8-bit symbol per DRAM chip and protect it
with a Reed-Solomon code over GF(2^8):

* **36-device** [AMD K8 BKDG]: 32 data + 4 check symbols per word, 128B
  lines.  Two check symbols suffice for detection; the other two are the
  correction payload (the split ECC Parity exploits).
* **18-device** [AMD Family 15h BKDG]: 16 data + 2 check symbols per word,
  64B lines.  The same two symbols serve detection *and* correction, so
  correcting a chip erasure consumes the entire detection margin - the
  "slightly impacts error detection coverage" caveat in the paper.

Both schemes decode entirely through the batched RS kernel: every
``ReedSolomon.decode`` / ``decode_erasures_batch`` call here hands the
codec *all* codewords of the line batch at once, so dirty words run the
lock-step solver (or the ``REPRO_GF_NATIVE`` compiled core) rather than
a per-word Python loop, and the per-erasure-set solve matrices are cached
on the codec across calls.
"""

from __future__ import annotations

import numpy as np

from repro.ecc.base import (
    BatchCorrectResult,
    CorrectResult,
    DetectResult,
    ECCScheme,
    EccTraffic,
)
from repro.gf import GF256, ReedSolomon


class _RsChipkill(ECCScheme):
    """Shared machinery for symbol-per-chip RS chipkill codes."""

    traffic = EccTraffic.INLINE
    chip_width = 4
    #: Check symbols per word reserved for detection (stored in ECC chips).
    detect_symbols: int = 0
    #: Check symbols per word reserved for correction.
    correct_symbols: int = 0

    def __init__(self):
        n = self.data_chips + self.detect_symbols + self.correct_symbols
        self._rs = ReedSolomon(GF256, n, self.data_chips)
        self._words = self.line_size // self.data_chips  # symbols each chip supplies

    # -- geometry / capacity ------------------------------------------------------

    @property
    def detection_bytes_per_line(self) -> int:
        return self.detect_symbols * self._words

    @property
    def correction_bytes_per_line(self) -> int:
        return self.correct_symbols * self._words

    @property
    def detection_overhead(self) -> float:
        return self.detect_symbols / self.data_chips

    @property
    def correction_overhead(self) -> float:
        return self.correct_symbols / self.data_chips

    # -- codec ---------------------------------------------------------------------

    def _check_symbols(self, data: np.ndarray) -> np.ndarray:
        """All RS check symbols for line(s): shape ``(..., words, n_check)``."""
        # Word w is symbol column w of the chip matrix: one byte per chip.
        words = np.swapaxes(self.split_to_chips(data), -1, -2)  # (..., words, data_chips)
        return self._rs.encode(words)[..., self.data_chips :]

    def compute_detection(self, data: np.ndarray) -> np.ndarray:
        checks = self._check_symbols(data)[..., : self.detect_symbols]
        return checks.reshape(*checks.shape[:-2], -1).copy()

    def compute_correction(self, data: np.ndarray) -> np.ndarray:
        checks = self._check_symbols(data)[..., self.detect_symbols :]
        return checks.reshape(*checks.shape[:-2], -1).copy()

    def _assemble(self, chips: np.ndarray, detection: np.ndarray, correction: np.ndarray) -> np.ndarray:
        """Rebuild full RS codewords from the stored pieces: ``(words, n)``."""
        det = np.asarray(detection, dtype=np.uint8).reshape(self._words, self.detect_symbols)
        parts = [np.asarray(chips, dtype=np.uint8).T, det]
        if self.correct_symbols:
            parts.append(np.asarray(correction, dtype=np.uint8).reshape(self._words, self.correct_symbols))
        return np.concatenate(parts, axis=1)

    def detect_line(self, chips: np.ndarray, detection: np.ndarray) -> DetectResult:
        data = self.merge_from_chips(chips)
        expected = self.compute_detection(data)
        mismatch = not np.array_equal(expected, np.asarray(detection, dtype=np.uint8).reshape(-1))
        return DetectResult(error=mismatch, chip=None)

    def correct_line(
        self,
        chips: np.ndarray,
        detection: np.ndarray,
        correction: np.ndarray,
        erasures: "set[int] | None" = None,
    ) -> CorrectResult:
        codewords = self._assemble(chips, detection, correction)
        erasure_pos = sorted(erasures) if erasures else None
        if erasure_pos:
            # Fast path: a known-dead chip erases the same symbol of every
            # word; the vectorized erasure solver handles the whole line at
            # once, falling back to the general errors-and-erasures decoder
            # only for words with additional corruption.
            res = self._rs.decode_erasures_batch(codewords, erasure_pos)
            if not res.ok.all():
                slow = self._rs.decode(codewords, erasures=erasure_pos)
                fixed = np.where(res.ok[:, None], res.corrected, slow.corrected)
                res = type(res)(
                    corrected=fixed.astype(res.corrected.dtype),
                    ok=res.ok | slow.ok,
                    had_errors=res.had_errors | slow.had_errors,
                    n_corrected=np.where(res.ok, res.n_corrected, slow.n_corrected),
                )
        else:
            res = self._rs.decode(codewords, erasures=erasure_pos)
        detected = bool(res.had_errors.any())
        if not res.ok.all():
            return CorrectResult(data=None, corrected=False, detected=True)
        fixed_chips = res.corrected[:, : self.data_chips].T  # (data_chips, words)
        data = self.merge_from_chips(fixed_chips)
        corrected = bool(res.n_corrected.sum() > 0)
        return CorrectResult(data=data, corrected=corrected, detected=detected)

    def correct_lines(
        self,
        chips: np.ndarray,
        detection: np.ndarray,
        correction: np.ndarray,
        erasures: "set[int] | None" = None,
    ) -> BatchCorrectResult:
        """Batched correction: all ``T * words`` codewords in one decode.

        Words are independent RS codewords, so flattening the line axis into
        the word axis preserves :meth:`correct_line`'s semantics exactly;
        with erasures, only the words the vectorized erasure solver rejects
        take the scalar errors-and-erasures path.
        """
        chips = np.asarray(chips, dtype=np.uint8)
        total = chips.shape[0]
        det = np.asarray(detection, dtype=np.uint8).reshape(total, self._words, self.detect_symbols)
        parts = [np.swapaxes(chips, -1, -2), det]  # (T, words, data_chips)
        if self.correct_symbols:
            parts.append(
                np.asarray(correction, dtype=np.uint8).reshape(
                    total, self._words, self.correct_symbols
                )
            )
        codewords = np.concatenate(parts, axis=2).reshape(total * self._words, self._rs.n)
        erasure_pos = sorted(erasures) if erasures else None
        if erasure_pos:
            res = self._rs.decode_erasures_batch(codewords, erasure_pos)
            ok_w, fixed_w, ncorr_w = res.ok, res.corrected, res.n_corrected
            if not ok_w.all():
                retry = np.flatnonzero(~ok_w)
                slow = self._rs.decode(codewords[retry], erasures=erasure_pos)
                fixed_w[retry] = slow.corrected
                ok_w = ok_w.copy()
                ok_w[retry] = slow.ok
                ncorr_w = ncorr_w.copy()
                ncorr_w[retry] = np.where(slow.ok, slow.n_corrected, ncorr_w[retry])
            had_w = np.ones_like(ok_w)  # declared erasures: every word suspected
        else:
            res = self._rs.decode(codewords)
            ok_w, fixed_w, ncorr_w, had_w = res.ok, res.corrected, res.n_corrected, res.had_errors

        ok = ok_w.reshape(total, self._words).all(axis=1)
        detected = had_w.reshape(total, self._words).any(axis=1) | ~ok
        corrected = ok & (ncorr_w.reshape(total, self._words).sum(axis=1) > 0)
        data = np.zeros((total, self.line_size), dtype=np.uint8)
        fixed_chips = np.swapaxes(
            fixed_w.reshape(total, self._words, self._rs.n)[ok, :, : self.data_chips], -1, -2
        )
        data[ok] = self.merge_from_chips(fixed_chips.astype(np.uint8))
        return BatchCorrectResult(data=data, ok=ok, corrected=corrected, detected=detected)


class Chipkill36(_RsChipkill):
    """36-device commercial chipkill correct: 36 X4 chips, 128B lines.

    Four check symbols per 32-symbol word (RS(36,32), d=5): corrects any
    single-chip failure as an erasure with detection margin to spare, or any
    two chip erasures.
    """

    name = "36-device commercial chipkill"
    line_size = 128
    chips_per_rank = 36
    data_chips = 32
    detect_symbols = 2
    correct_symbols = 2


class Chipkill18(_RsChipkill):
    """18-device commercial chipkill correct: 18 X4 chips, 64B lines.

    Two check symbols per 16-symbol word (RS(18,16), d=3): corrects a
    located chip failure (erasure) but with no remaining detection margin;
    the stored symbols are simultaneously the detection and correction bits,
    so ``correction_overhead`` is zero for capacity-accounting purposes.
    """

    name = "18-device commercial chipkill"
    line_size = 64
    chips_per_rank = 18
    data_chips = 16
    detect_symbols = 2
    correct_symbols = 0

    @property
    def correction_overhead(self) -> float:
        return 0.0  # the two check symbols are already counted as detection
