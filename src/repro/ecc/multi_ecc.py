"""Multi-ECC: multi-line error correction chipkill [Jian et al., SC'13].

Multi-ECC detects errors with a per-line checksum read alongside the data
and amortizes the *correction* state across a group of lines: one 64B parity
line is the bytewise XOR of the 16 data lines in its group, so the stored
correction cost is only ~0.4% on top of the 12.5% detection chips.  Updates
to the shared parity line use the XOR-cacheline technique that the ECC
Parity paper borrows (Section III-D of the reproduced paper).

Correction is therefore inherently a *group* operation - reconstructing a
damaged line requires reading its 15 group siblings - so this scheme exposes
:meth:`correct_group` instead of the per-line pure-function correction
interface (``compute_correction`` returns the line's XOR contribution to the
group parity).
"""

from __future__ import annotations

import numpy as np

from repro.ecc.base import CorrectResult, DetectResult, ECCScheme, EccTraffic
from repro.ecc.checksum import ones_complement_checksum16


class MultiEcc(ECCScheme):
    """Multi-ECC over a 9-chip X8 rank, 64B lines, 16-line parity groups."""

    name = "Multi-ECC"
    line_size = 64
    chips_per_rank = 9
    data_chips = 8
    chip_width = 8
    traffic = EccTraffic.XOR_LINE
    ecc_line_coverage = 16

    # -- capacity -----------------------------------------------------------------

    @property
    def detection_bytes_per_line(self) -> int:
        return 8  # one X8 chip's worth per line: per-chip 8-bit checksums

    @property
    def correction_bytes_per_line(self) -> int:
        return self.line_size  # full-line XOR contribution to the group parity

    @property
    def detection_overhead(self) -> float:
        return self.detection_bytes_per_line / self.line_size

    @property
    def correction_overhead(self) -> float:
        # Table III of the reproduced paper charges Multi-ECC 12.9% total,
        # i.e. 0.4% beyond its detection chips: [13] packs the correction
        # state far more compactly than its 16-line *update* granularity
        # (the group size only governs XOR-cacheline traffic, not storage).
        return 0.004

    # -- codec ---------------------------------------------------------------------

    def compute_detection(self, data: np.ndarray) -> np.ndarray:
        """Per-chip 16-bit checksums folded to one byte per chip (8B total)."""
        segs = self.split_to_chips(data)  # (..., 8, 8)
        c16 = ones_complement_checksum16(segs)  # (..., 8, 2)
        return np.bitwise_xor(c16[..., 0], c16[..., 1])

    def compute_correction(self, data: np.ndarray) -> np.ndarray:
        """The line's contribution to its group parity: the line itself."""
        return np.asarray(data, dtype=np.uint8).copy()

    def _mismatched_chips(self, chips: np.ndarray, detection: np.ndarray) -> np.ndarray:
        computed = self.compute_detection(self.merge_from_chips(chips))
        stored = np.asarray(detection, dtype=np.uint8).reshape(-1)
        return np.nonzero(computed != stored)[0]

    def detect_line(self, chips: np.ndarray, detection: np.ndarray) -> DetectResult:
        bad = self._mismatched_chips(chips, detection)
        if bad.size == 0:
            return DetectResult(error=False)
        return DetectResult(error=True, chip=int(bad[0]) if bad.size == 1 else None)

    def correct_line(
        self,
        chips: np.ndarray,
        detection: np.ndarray,
        correction: np.ndarray,
        erasures: "set[int] | None" = None,
    ) -> CorrectResult:
        """Correct one line given the XOR of its *group siblings* and parity.

        *correction* here must be ``group_parity XOR (all other group
        lines)``, i.e. the expected clean value of this line; callers that
        hold whole groups should use :meth:`correct_group`.
        """
        chips = np.asarray(chips, dtype=np.uint8)
        bad = self._mismatched_chips(chips, detection)
        if erasures:
            bad = np.union1d(bad, np.array(sorted(erasures), dtype=np.int64))
        if bad.size == 0:
            return CorrectResult(data=self.merge_from_chips(chips), corrected=False, detected=False)
        expected = np.asarray(correction, dtype=np.uint8)
        fixed_chips = self.split_to_chips(expected)
        fixed = chips.copy()
        fixed[bad] = fixed_chips[bad]
        if self._mismatched_chips(fixed, detection).size:
            return CorrectResult(data=None, corrected=False, detected=True)
        return CorrectResult(data=self.merge_from_chips(fixed), corrected=True, detected=True)

    def correct_group(
        self,
        group_lines: np.ndarray,
        detections: np.ndarray,
        parity_line: np.ndarray,
        bad_index: int,
    ) -> CorrectResult:
        """Reconstruct line *bad_index* from its group and the parity line.

        Parameters
        ----------
        group_lines:
            ``(ecc_line_coverage, line_size)`` byte matrix - the stored
            (possibly damaged) group contents.
        detections:
            ``(ecc_line_coverage, 8)`` stored detection bytes per line.
        parity_line:
            ``(line_size,)`` stored group parity.
        bad_index:
            Which group member to rebuild.
        """
        group_lines = np.asarray(group_lines, dtype=np.uint8)
        siblings = np.delete(group_lines, bad_index, axis=0)
        rebuilt = np.bitwise_xor(
            np.asarray(parity_line, dtype=np.uint8),
            np.bitwise_xor.reduce(siblings, axis=0),
        )
        chips = self.split_to_chips(rebuilt)
        if self._mismatched_chips(chips, detections[bad_index]).size:
            return CorrectResult(data=None, corrected=False, detected=True)
        return CorrectResult(data=rebuilt, corrected=True, detected=True)

    def group_parity(self, group_lines: np.ndarray) -> np.ndarray:
        """Compute the parity line of a full group: XOR over axis 0."""
        return np.bitwise_xor.reduce(np.asarray(group_lines, dtype=np.uint8), axis=0)
