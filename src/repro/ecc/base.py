"""Common interface for memory ECC schemes.

Every scheme plays two roles:

* **Functional codec** - bit-true ``encode_line`` / ``detect_line`` /
  ``correct_line`` over NumPy byte arrays, used by the fault-injection
  machinery to measure real correction coverage.  A line is represented by
  the per-data-chip payload matrix plus separately stored detection and
  correction payloads, mirroring how the bits live in DRAM.

* **Geometry / cost descriptor** - chips per rank, line size, capacity
  overhead split (detection vs correction), and the write-traffic behaviour
  of its ECC-related lines.  The timing/energy plane consumes only this
  descriptor.

The split between *detection* and *correction* payloads is the load-bearing
abstraction: ECC Parity (``repro.core``) stores detection bits per channel as
usual but replaces stored correction payloads with their cross-channel XOR.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass

import numpy as np


class EccTraffic(enum.Enum):
    """How a scheme's ECC bits generate extra memory traffic on writes.

    ``INLINE``    - ECC bits travel with the data burst (dedicated ECC chips);
                    no extra requests ever.
    ``ECC_LINE``  - correction bits live in separate ECC lines that must be
                    read-modified-written (cacheable in the LLC); an eviction
                    costs one memory write.
    ``XOR_LINE``  - correction state is maintained with the XOR-cacheline
                    technique [Multi-ECC / ECC Parity]; an eviction costs one
                    memory read plus one write.
    """

    INLINE = "inline"
    ECC_LINE = "ecc_line"
    XOR_LINE = "xor_line"


@dataclass(frozen=True)
class DetectResult:
    """Outcome of error detection on one line.

    ``error`` is True when any corruption was detected; ``chip`` localizes
    the faulty data chip when the scheme can do so (LOT-ECC checksums can,
    symbol codes report it only after correction), else ``None``.
    """

    error: bool
    chip: "int | None" = None


@dataclass
class CorrectResult:
    """Outcome of error correction on one line."""

    data: "np.ndarray | None"  #: recovered line payload, or None if uncorrectable
    corrected: bool  #: True when errors were present and fully repaired
    detected: bool  #: True when errors were present at all


@dataclass
class BatchCorrectResult:
    """Outcome of error correction on a batch of lines (see
    :meth:`ECCScheme.correct_lines`)."""

    data: np.ndarray  #: (T, line_size) recovered payloads; zeros where not ``ok``
    ok: np.ndarray  #: (T,) bool - row recovered (clean or corrected)
    corrected: np.ndarray  #: (T,) bool - errors were present and fully repaired
    detected: np.ndarray  #: (T,) bool - errors were present at all


class ECCScheme(abc.ABC):
    """Abstract memory ECC scheme (geometry + bit-true codec)."""

    #: Human-readable scheme name, matching the paper's terminology.
    name: str = "abstract"
    #: Data payload bytes delivered per memory access (64 or 128).
    line_size: int = 64
    #: Total DRAM chips activated per access (data + ECC chips).
    chips_per_rank: int = 0
    #: Number of chips holding data (the rest hold ECC bits).
    data_chips: int = 0
    #: DRAM chip data-bus width in bits (4, 8, or 16).  Mixed-width ranks
    #: override :meth:`chip_widths`.
    chip_width: int = 4
    #: How ECC updates hit memory on writes.
    traffic = EccTraffic.INLINE
    #: Data lines covered by one ECC/XOR cacheline (when traffic is not INLINE).
    ecc_line_coverage: int = 0

    # -- capacity ---------------------------------------------------------------

    @property
    @abc.abstractmethod
    def detection_overhead(self) -> float:
        """Capacity overhead fraction attributable to detection bits."""

    @property
    @abc.abstractmethod
    def correction_overhead(self) -> float:
        """Capacity overhead fraction attributable to correction bits."""

    @property
    def capacity_overhead(self) -> float:
        """Total ECC capacity overhead as a fraction of data capacity."""
        return self.detection_overhead + self.correction_overhead

    @property
    def correction_ratio(self) -> float:
        """``R``: stored correction-bit bytes per data byte (paper §III-E).

        This is what the ECC Parity capacity formula divides by ``N - 1``.
        """
        return self.correction_bytes_per_line / self.line_size

    @property
    @abc.abstractmethod
    def correction_bytes_per_line(self) -> int:
        """Bytes of correction payload computed per data line."""

    @property
    @abc.abstractmethod
    def detection_bytes_per_line(self) -> int:
        """Bytes of detection payload stored per data line."""

    def chip_widths(self) -> "list[int]":
        """Per-chip I/O widths for one rank (overridden by mixed ranks)."""
        return [self.chip_width] * self.chips_per_rank

    # -- functional codec ---------------------------------------------------------

    @property
    def chip_bytes(self) -> int:
        """Data bytes each data chip contributes to one line."""
        return self.line_size // self.data_chips

    def split_to_chips(self, data: np.ndarray) -> np.ndarray:
        """Reshape line payload(s) into the per-chip matrix.

        Layout is symbol-interleaved: consecutive bytes of the line rotate
        across chips, matching how a burst interleaves chip outputs.  Shape
        ``(..., line_size)`` -> ``(..., data_chips, chip_bytes)``.
        """
        data = np.asarray(data, dtype=np.uint8)
        if data.shape[-1] != self.line_size:
            raise ValueError(f"{self.name}: expected {self.line_size}B line, got {data.shape[-1]}")
        lead = data.shape[:-1]
        return np.swapaxes(data.reshape(*lead, self.chip_bytes, self.data_chips), -1, -2)

    def merge_from_chips(self, chips: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`split_to_chips` (batch-aware)."""
        chips = np.asarray(chips, dtype=np.uint8)
        lead = chips.shape[:-2]
        return np.swapaxes(chips, -1, -2).reshape(*lead, self.line_size)

    @abc.abstractmethod
    def compute_detection(self, data: np.ndarray) -> np.ndarray:
        """Detection payload for line(s): ``(..., line_size)`` ->
        ``(..., detection_bytes_per_line)`` uint8."""

    @abc.abstractmethod
    def compute_correction(self, data: np.ndarray) -> np.ndarray:
        """Correction payload for line(s): ``(..., line_size)`` ->
        ``(..., correction_bytes_per_line)`` uint8."""

    def encode_line(self, data: np.ndarray) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Encode a line: returns ``(chip_matrix, detection, correction)``."""
        data = np.asarray(data, dtype=np.uint8)
        return self.split_to_chips(data), self.compute_detection(data), self.compute_correction(data)

    @abc.abstractmethod
    def detect_line(self, chips: np.ndarray, detection: np.ndarray) -> DetectResult:
        """Check a (possibly corrupted) stored line against its detection bits."""

    @abc.abstractmethod
    def correct_line(
        self,
        chips: np.ndarray,
        detection: np.ndarray,
        correction: np.ndarray,
        erasures: "set[int] | None" = None,
    ) -> CorrectResult:
        """Detect and correct a stored line using its correction payload.

        *erasures* optionally names data-chip indices already known faulty
        (e.g. from the bank health table); schemes use them as symbol
        erasures, which doubles correction power versus unlocated errors.
        """

    def correct_lines(
        self,
        chips: np.ndarray,
        detection: np.ndarray,
        correction: np.ndarray,
        erasures: "set[int] | None" = None,
    ) -> BatchCorrectResult:
        """Batched :meth:`correct_line` over ``T`` independent lines.

        ``chips`` is ``(T, data_chips, chip_bytes)``, ``detection``
        ``(T, detection_bytes)``, ``correction`` ``(T, correction_bytes)``;
        *erasures* (one set, applied to every line) matches the common
        callers - a bank-sized batch shares its health-table erasures.  The
        base implementation loops :meth:`correct_line`; schemes override it
        with array programs that feed whole codeword batches to the RS
        codec's lock-step decode kernel, and ``tests/test_correct_lines.py``
        holds the two paths equal.  (The per-line loop doubles as the
        reference oracle, mirroring the scalar ``_decode_word`` retained
        inside the codec itself.)
        """
        chips = np.asarray(chips, dtype=np.uint8)
        total = chips.shape[0]
        data = np.zeros((total, self.line_size), dtype=np.uint8)
        ok = np.zeros(total, dtype=bool)
        corrected = np.zeros(total, dtype=bool)
        detected = np.zeros(total, dtype=bool)
        for i in range(total):
            res = self.correct_line(chips[i], detection[i], correction[i], erasures=erasures)
            if res.data is not None:
                data[i] = res.data
                ok[i] = True
            corrected[i] = res.corrected
            detected[i] = res.detected
        return BatchCorrectResult(data=data, ok=ok, corrected=corrected, detected=detected)

    # -- convenience --------------------------------------------------------------

    def roundtrip_ok(self, data: np.ndarray) -> bool:
        """Encode then correct an undamaged line; sanity helper for tests."""
        chips, det, cor = self.encode_line(data)
        res = self.correct_line(chips, det, cor)
        return res.data is not None and np.array_equal(res.data, np.asarray(data, dtype=np.uint8))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(name={self.name!r}, line={self.line_size}B, "
            f"chips={self.chips_per_rank}, overhead={self.capacity_overhead:.1%})"
        )
