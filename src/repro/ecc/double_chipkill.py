"""Double chipkill correct: tolerates two simultaneous chip failures.

The paper repeatedly lists "double chipkill correct" among the ECCs its
optimization applies to (Sections I, III, VII).  This implementation
extends the 36-device commercial organization to 40 X4 devices per rank
with eight RS check symbols per 32-symbol word (d = 9): four reserved for
on-the-fly detection, four as the correction payload, so any two chip
erasures are correctable with detection margin to spare - and the 12.5%
correction-bit overhead (R = 0.125) is exactly what ECC Parity amortizes
across channels.
"""

from __future__ import annotations

from repro.ecc.chipkill import _RsChipkill


class DoubleChipkill40(_RsChipkill):
    """40-device double chipkill: 32 data + 8 check symbols per word.

    RS(40, 32) over GF(2^8): minimum distance 9 corrects any 4 erasures or
    2 unlocated errors; splitting the check symbols 4/4 gives guaranteed
    double-chip-erasure correction from the correction payload alone while
    the detection half still catches up to 4 corrupted symbols per word.
    """

    name = "40-device double chipkill"
    line_size = 128
    chips_per_rank = 40
    data_chips = 32
    detect_symbols = 4
    correct_symbols = 4
