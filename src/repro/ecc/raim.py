"""RAIM: redundant array of independent memory (DIMM-kill correct) [IBM z196].

:class:`Raim45` is the commercial baseline: every 128B line is striped
across five DIMMs of nine X4 chips each - four data DIMMs plus one DIMM
holding their bytewise XOR - so a complete DIMM failure is survivable.  Each
DIMM also carries one ECC chip of within-DIMM detection bits, which both
flags errors on the fly and *localizes* them to a DIMM, turning the RAIM
parity into an erasure code.

:class:`Raim18EP` is the geometry the paper pairs with ECC Parity: a 64B
line confined to one rank of 18 X4 chips (two 9-chip DIMMs).  Detection
stays inline in the two per-DIMM ECC chips; the correction payload is the
XOR of the two DIMM halves' data (R = 0.5), which ECC Parity then stores
only as a cross-channel parity.
"""

from __future__ import annotations

import numpy as np

from repro.ecc.base import (
    BatchCorrectResult,
    CorrectResult,
    DetectResult,
    ECCScheme,
    EccTraffic,
)
from repro.gf import GF256, ReedSolomon


class _RaimBase(ECCScheme):
    """Shared per-DIMM detection machinery (RS(9,8) over GF(2^8) per word)."""

    chip_width = 4
    chips_per_dimm = 9
    data_chips_per_dimm = 8

    def __init__(self):
        self._det_rs = ReedSolomon(GF256, self.chips_per_dimm, self.data_chips_per_dimm)
        #: bytes each chip contributes to a line
        self._chip_bytes = self.line_size // self.data_chips
        #: words per DIMM segment (one symbol per chip per word)
        self._words = self._chip_bytes

    @property
    def n_data_dimms(self) -> int:
        return self.data_chips // self.data_chips_per_dimm

    @property
    def dimm_data_bytes(self) -> int:
        """Data bytes each DIMM contributes to one line."""
        return self.line_size // self.n_data_dimms

    def _dimm_segments(self, data: np.ndarray) -> np.ndarray:
        """Split line(s) into per-DIMM data: ``(..., n_data_dimms, 8, chip_bytes)``."""
        chips = self.split_to_chips(data)  # (..., data_chips, chip_bytes)
        lead = chips.shape[:-2]
        return chips.reshape(*lead, self.n_data_dimms, self.data_chips_per_dimm, self._chip_bytes)

    def compute_detection(self, data: np.ndarray) -> np.ndarray:
        """Per-DIMM RS check symbols: one symbol per word per DIMM."""
        segs = self._dimm_segments(data)  # (..., dimms, 8 chips, words)
        words = np.swapaxes(segs, -1, -2)  # (..., dimms, words, 8 symbols)
        checks = self._det_rs.encode(words)[..., self.data_chips_per_dimm :]
        return checks.reshape(*checks.shape[:-3], -1).copy()  # (..., dimms * words)

    def _detection_per_dimm(self, detection: np.ndarray) -> np.ndarray:
        return np.asarray(detection, dtype=np.uint8).reshape(self.n_data_dimms, self._words)

    def _bad_dimms(self, chips: np.ndarray, detection: np.ndarray) -> np.ndarray:
        """Indices of data DIMMs whose detection bits mismatch."""
        data = self.merge_from_chips(chips)
        computed = self._detection_per_dimm(self.compute_detection(data))
        stored = self._detection_per_dimm(detection)
        return np.nonzero(np.any(computed != stored, axis=1))[0]

    def detect_line(self, chips: np.ndarray, detection: np.ndarray) -> DetectResult:
        bad = self._bad_dimms(chips, detection)
        if bad.size == 0:
            return DetectResult(error=False)
        return DetectResult(error=True, chip=int(bad[0]) if bad.size == 1 else None)

    @property
    def detection_bytes_per_line(self) -> int:
        return self.n_data_dimms * self._words

    @property
    def detection_overhead(self) -> float:
        # One ECC chip per 8 data chips in every DIMM.
        return 1 / self.data_chips_per_dimm

    def _correct_via_dimm_parity(
        self,
        chips: np.ndarray,
        detection: np.ndarray,
        parity_of_dimms: np.ndarray,
        erasures: "set[int] | None",
    ) -> CorrectResult:
        """Erase-and-rebuild one DIMM segment using the XOR of all segments."""
        chips = np.asarray(chips, dtype=np.uint8)
        bad = set(int(d) for d in self._bad_dimms(chips, detection))
        if erasures:
            bad |= {int(c) // self.data_chips_per_dimm for c in erasures}
        if not bad:
            return CorrectResult(data=self.merge_from_chips(chips), corrected=False, detected=False)
        if len(bad) > 1:
            return CorrectResult(data=None, corrected=False, detected=True)
        victim = bad.pop()
        segs = self._dimm_segments(self.merge_from_chips(chips))
        flat = segs.reshape(self.n_data_dimms, -1)
        others = np.bitwise_xor.reduce(np.delete(flat, victim, axis=0), axis=0)
        rebuilt = np.bitwise_xor(np.asarray(parity_of_dimms, dtype=np.uint8), others)
        flat = flat.copy()
        flat[victim] = rebuilt
        fixed_chips = flat.reshape(self.data_chips, self._chip_bytes)
        # Verify the surviving DIMMs only: the victim's stored detection
        # bytes died with it and are regenerated from the rebuilt data.
        still_bad = set(int(d) for d in self._bad_dimms(fixed_chips, detection))
        if still_bad - {victim}:
            return CorrectResult(data=None, corrected=False, detected=True)
        return CorrectResult(data=self.merge_from_chips(fixed_chips), corrected=True, detected=True)

    def correct_lines(
        self,
        chips: np.ndarray,
        detection: np.ndarray,
        correction: np.ndarray,
        erasures: "set[int] | None" = None,
    ) -> BatchCorrectResult:
        """Batched erase-and-rebuild: :meth:`_correct_via_dimm_parity` as an
        array program (one batched detection pass localizes every line's bad
        DIMM; single-victim rows rebuild via one XOR; the surviving-DIMM
        recheck runs batched too).  ``tests/test_correct_lines.py`` holds
        this equal to the base per-line loop.
        """
        chips = np.asarray(chips, dtype=np.uint8)
        total = chips.shape[0]
        n_dimms = self.n_data_dimms
        data = self.merge_from_chips(chips)
        stored = np.asarray(detection, dtype=np.uint8).reshape(total, n_dimms, self._words)
        computed = np.asarray(self.compute_detection(data), dtype=np.uint8).reshape(
            total, n_dimms, self._words
        )
        bad = np.any(computed != stored, axis=2)  # (T, dimms)
        if erasures:
            era = sorted({int(c) // self.data_chips_per_dimm for c in erasures})
            bad[:, era] = True
        nbad = bad.sum(axis=1)

        out = np.zeros((total, self.line_size), dtype=np.uint8)
        ok = np.zeros(total, dtype=bool)
        corrected = np.zeros(total, dtype=bool)
        detected = nbad > 0

        clean = nbad == 0
        out[clean] = data[clean]
        ok[clean] = True

        rows = np.flatnonzero(nbad == 1)
        if rows.size:
            ar = np.arange(rows.size)
            victim = np.argmax(bad[rows], axis=1)
            segs = self.split_to_chips(data[rows]).reshape(
                rows.size, n_dimms, self.dimm_data_bytes
            )
            others = np.bitwise_xor.reduce(segs, axis=1) ^ segs[ar, victim]
            parity = np.asarray(correction, dtype=np.uint8).reshape(total, -1)[rows]
            segs[ar, victim] = parity ^ others
            fixed_chips = segs.reshape(rows.size, self.data_chips, self._chip_bytes)
            fixed = self.merge_from_chips(fixed_chips)
            recheck = np.asarray(self.compute_detection(fixed), dtype=np.uint8).reshape(
                rows.size, n_dimms, self._words
            )
            still_bad = np.any(recheck != stored[rows], axis=2)
            # The victim's stored detection bytes died with it.
            still_bad[ar, victim] = False
            good = ~still_bad.any(axis=1)
            sel = rows[good]
            out[sel] = fixed[good]
            ok[sel] = True
            corrected[sel] = True
        return BatchCorrectResult(data=out, ok=ok, corrected=corrected, detected=detected)


class Raim45(_RaimBase):
    """Commercial RAIM: 45 X4 chips (5 DIMMs), 128B lines, inline parity DIMM.

    The parity DIMM travels with every access, so no extra requests are ever
    needed (``EccTraffic.INLINE``) - the cost is activating 45 chips per
    access and a 40.6% capacity overhead (13 of 45 chips are redundancy).
    """

    name = "RAIM"
    line_size = 128
    chips_per_rank = 45
    data_chips = 32
    traffic = EccTraffic.INLINE

    @property
    def correction_bytes_per_line(self) -> int:
        return self.dimm_data_bytes  # the parity DIMM's 32B data image

    @property
    def correction_overhead(self) -> float:
        # The whole fifth DIMM: 9 chips per 32 data chips.
        return self.chips_per_dimm / self.data_chips

    def compute_correction(self, data: np.ndarray) -> np.ndarray:
        segs = self._dimm_segments(data)
        lead = segs.shape[:-3]
        flat = segs.reshape(*lead, self.n_data_dimms, self.dimm_data_bytes)
        return np.bitwise_xor.reduce(flat, axis=-2)

    def correct_line(self, chips, detection, correction, erasures=None):
        return self._correct_via_dimm_parity(chips, detection, correction, erasures)


class Raim18EP(_RaimBase):
    """RAIM geometry for ECC Parity: 18 X4 chips (2 DIMMs), 64B lines.

    Detection bits (one ECC chip per DIMM) stay inline; the correction
    payload - XOR of the two DIMM halves - is 32B per 64B line (R = 0.5) and
    is intended to be stored via cross-channel ECC parity rather than
    directly.  Updates to the (parity of the) correction bits use the
    XOR-cacheline path.
    """

    name = "RAIM-18 (EP base)"
    line_size = 64
    chips_per_rank = 18
    data_chips = 16
    traffic = EccTraffic.XOR_LINE
    ecc_line_coverage = 2  # one 64B ECC/XOR line holds correction for 2 data lines

    @property
    def correction_bytes_per_line(self) -> int:
        return self.dimm_data_bytes  # 32B: XOR of the two DIMM halves

    @property
    def correction_overhead(self) -> float:
        return self.correction_bytes_per_line / self.line_size

    def compute_correction(self, data: np.ndarray) -> np.ndarray:
        segs = self._dimm_segments(data)
        lead = segs.shape[:-3]
        flat = segs.reshape(*lead, self.n_data_dimms, self.dimm_data_bytes)
        return np.bitwise_xor.reduce(flat, axis=-2)

    def correct_line(self, chips, detection, correction, erasures=None):
        return self._correct_via_dimm_parity(chips, detection, correction, erasures)
