"""End-to-end integration tests: tiny timing-plane sweeps checking the
paper's qualitative claims, plus functional-machine campaigns."""

import numpy as np
import pytest

from repro.core.layout import Geometry
from repro.core.machine import Address, ECCParityMachine
from repro.ecc import LotEcc5
from repro.ecc.catalog import QUAD_EQUIVALENT
from repro.experiments.evaluation import Fidelity, evaluation_matrix
from repro.faults import FaultInjector, FaultMode
from repro.workloads import WORKLOADS_BY_NAME

#: Very small preset so the sweep stays in CI budget.
TINY = Fidelity("tiny", scale=64, access_target=6000)


@pytest.fixture(scope="module")
def mini_matrix(tmp_path_factory):
    """streamcluster + mcf across the main configs, quad class."""
    return evaluation_matrix(
        "quad",
        fidelity=TINY,
        workloads=["streamcluster", "mcf"],
        config_keys=["chipkill36", "chipkill18", "lot_ecc5", "lot_ecc5_ep", "raim", "raim_ep"],
        use_cache=False,
    )


class TestHeadlineShapes:
    """The qualitative results the paper's evaluation rests on."""

    @pytest.mark.parametrize("wl", ["streamcluster", "mcf"])
    def test_ep_beats_ck36_on_energy(self, mini_matrix, wl):
        ep = mini_matrix[(wl, "lot_ecc5_ep")].epi_nj
        ck = mini_matrix[(wl, "chipkill36")].epi_nj
        assert ep < ck * 0.75  # paper: ~50-60% reduction

    @pytest.mark.parametrize("wl", ["streamcluster", "mcf"])
    def test_ep_beats_ck18_on_energy(self, mini_matrix, wl):
        ep = mini_matrix[(wl, "lot_ecc5_ep")].epi_nj
        ck = mini_matrix[(wl, "chipkill18")].epi_nj
        assert ep < ck

    @pytest.mark.parametrize("wl", ["streamcluster", "mcf"])
    def test_ep_energy_close_to_lot5(self, mini_matrix, wl):
        """The point of ECC Parity: keep LOT-ECC5's energy at lower capacity."""
        ep = mini_matrix[(wl, "lot_ecc5_ep")].epi_nj
        lot = mini_matrix[(wl, "lot_ecc5")].epi_nj
        assert ep == pytest.approx(lot, rel=0.25)

    @pytest.mark.parametrize("wl", ["streamcluster", "mcf"])
    def test_raim_ep_beats_raim(self, mini_matrix, wl):
        ep = mini_matrix[(wl, "raim_ep")].epi_nj
        raim = mini_matrix[(wl, "raim")].epi_nj
        assert ep < raim

    def test_streamcluster_perf_gap_vs_128b_lines(self, mini_matrix):
        """High-spatial-locality workloads favor the 128B-line baseline
        (Fig. 14's streamcluster outlier)."""
        ep = mini_matrix[("streamcluster", "lot_ecc5_ep")]
        ck36 = mini_matrix[("streamcluster", "chipkill36")]
        assert ep.ipc < ck36.ipc

    def test_ck36_more_accesses_than_ep_for_random(self, mini_matrix):
        """128B lines waste bandwidth on low-locality workloads (Fig. 16)."""
        ep = mini_matrix[("mcf", "lot_ecc5_ep")]
        ck36 = mini_matrix[("mcf", "chipkill36")]
        assert ep.accesses_per_instruction < ck36.accesses_per_instruction

    def test_ep_has_traffic_overhead_vs_ck18(self, mini_matrix):
        """Parity updates cost bandwidth vs the no-overhead 18-dev baseline."""
        ep = mini_matrix[("mcf", "lot_ecc5_ep")]
        ck18 = mini_matrix[("mcf", "chipkill18")]
        assert ep.accesses_per_instruction > ck18.accesses_per_instruction

    def test_background_epi_reduced(self, mini_matrix):
        """Fewer chips per rank -> more sleep -> lower background EPI (Fig. 13)."""
        ep = mini_matrix[("mcf", "lot_ecc5_ep")]
        ck36 = mini_matrix[("mcf", "chipkill36")]
        assert ep.background_epi_nj < ck36.background_epi_nj

    def test_dynamic_epi_reduced(self, mini_matrix):
        ep = mini_matrix[("mcf", "lot_ecc5_ep")]
        ck36 = mini_matrix[("mcf", "chipkill36")]
        assert ep.dynamic_epi_nj < ck36.dynamic_epi_nj


class TestFunctionalCampaign:
    """Inject the full field fault-mode mix; everything must stay correct."""

    def test_mixed_fault_campaign(self):
        g = Geometry(channels=4, banks=4, rows_per_bank=12, lines_per_row=8)
        m = ECCParityMachine(LotEcc5(), g, seed=11)
        inj = FaultInjector(m, seed=13)
        inj.inject(FaultMode.SINGLE_BIT, location=(0, 0, 2))
        inj.inject(FaultMode.SINGLE_ROW, location=(1, 1, 0))
        inj.inject(FaultMode.SINGLE_BANK, location=(2, 2, 3))
        m.scrub()
        assert m.stats.uncorrectable == 0
        # Every line in the machine must still read back as golden data.
        bad = 0
        for c in range(g.channels):
            for b in range(g.banks):
                for r in range(g.rows_per_bank):
                    for l in range(g.lines_per_row):
                        if not m.readable_and_correct(Address(c, b, r, l)):
                            bad += 1
        assert bad == 0

    def test_sequential_channel_faults_with_scrubs(self):
        """Faults in two channels separated by a scrub stay correctable -
        the scenario Figure 18's scrub-interval analysis protects."""
        g = Geometry(channels=4, banks=2, rows_per_bank=6, lines_per_row=4)
        m = ECCParityMachine(LotEcc5(), g, seed=2)
        inj = FaultInjector(m, seed=3)
        inj.inject(FaultMode.SINGLE_BANK, location=(0, 0, 1))
        m.scrub()  # reacts: materializes pair in channel 0
        inj.inject(FaultMode.SINGLE_BANK, location=(1, 0, 2))
        m.scrub()
        assert m.stats.uncorrectable == 0
        res = m.read(Address(1, 0, 3, 1))
        assert np.array_equal(res.data, m.golden[1, 0, 3, 1])
