"""Golden-shape regression pins against the cached evaluation matrix.

These tests read whatever matrix cache exists (quick or full) and assert
the paper's qualitative conclusions with generous tolerances, so future
changes to the simulator that silently break a headline shape fail loudly.
They skip on a cold cache (CI machines regenerate via the benchmarks).
"""

import json

import pytest

from repro.experiments import COMPARISONS, epi_report, perf_report, traffic_report
from repro.experiments.evaluation import CONFIG_KEYS, FULL, QUICK, _cache_path
from repro.workloads import ALL_WORKLOADS


def _complete(path) -> bool:
    if not path.exists():
        return False
    cache = json.loads(path.read_text())
    return all(
        f"{wl.name}|{key}" in cache for wl in ALL_WORKLOADS for key in CONFIG_KEYS
    )


def _available_fidelity(system_class):
    for fid in (FULL, QUICK):
        if _complete(_cache_path(system_class, fid, 0)):
            return fid
    pytest.skip("no complete cached evaluation matrix; run the benchmarks first")


@pytest.fixture(scope="module")
def quad_epi():
    fid = _available_fidelity("quad")
    return epi_report("quad", fidelity=fid).averages()


@pytest.fixture(scope="module")
def quad_perf():
    fid = _available_fidelity("quad")
    return perf_report("quad", fidelity=fid)


@pytest.fixture(scope="module")
def quad_traffic():
    fid = _available_fidelity("quad")
    return traffic_report("quad", fidelity=fid)


class TestGoldenShapes:
    def test_headline_epi_win_vs_ck36(self, quad_epi):
        assert 0.35 < quad_epi[("All", "lot_ecc5_ep", "chipkill36")] < 0.65

    def test_epi_win_vs_ck18(self, quad_epi):
        assert 0.20 < quad_epi[("All", "lot_ecc5_ep", "chipkill18")] < 0.55

    def test_epi_win_vs_lot9(self, quad_epi):
        assert 0.0 < quad_epi[("All", "lot_ecc5_ep", "lot_ecc9")] < 0.30

    def test_epi_parity_with_lot5(self, quad_epi):
        assert abs(quad_epi[("All", "lot_ecc5_ep", "lot_ecc5")]) < 0.08

    def test_raim_ep_wins(self, quad_epi):
        assert quad_epi[("All", "raim_ep", "raim")] > 0.05

    def test_bin2_gains_exceed_bin1(self, quad_epi):
        """Memory-intensive workloads benefit more (the paper's key trend)."""
        for base in ("chipkill36", "chipkill18", "lot_ecc9"):
            assert (
                quad_epi[("Bin2", "lot_ecc5_ep", base)]
                > quad_epi[("Bin1", "lot_ecc5_ep", base)] - 0.03
            ), base

    def test_perf_near_parity_64b_baselines(self, quad_perf):
        for base in ("lot_ecc9", "multi_ecc", "lot_ecc5"):
            assert 0.88 < quad_perf.average("lot_ecc5_ep", base) < 1.12, base

    def test_traffic_overhead_vs_ck18(self, quad_traffic):
        assert 1.05 < quad_traffic.average("lot_ecc5_ep", "chipkill18") < 1.40

    def test_traffic_beats_128b_lines(self, quad_traffic):
        assert quad_traffic.average("lot_ecc5_ep", "chipkill36") < 1.0

    def test_all_comparisons_present(self, quad_epi):
        for prop, base in COMPARISONS:
            assert ("All", prop, base) in quad_epi
