"""Field-axiom and table-consistency tests for GF(2^m)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import GF16, GF256, GF65536, GF2m

FIELDS = {"GF16": GF16, "GF256": GF256, "GF65536": GF65536}


@pytest.fixture(params=list(FIELDS), ids=list(FIELDS))
def field(request):
    return FIELDS[request.param]


def elements(field, rng, n=500):
    return rng.integers(0, field.order, n)


def nonzero(field, rng, n=500):
    return rng.integers(1, field.order, n)


class TestFieldAxioms:
    def test_add_is_xor(self, field, rng):
        a, b = elements(field, rng), elements(field, rng)
        assert np.array_equal(field.add(a, b), (a ^ b).astype(field.dtype))

    def test_additive_inverse_is_self(self, field, rng):
        a = elements(field, rng)
        assert not field.add(a, a).any()

    def test_mul_commutative(self, field, rng):
        a, b = elements(field, rng), elements(field, rng)
        assert np.array_equal(field.mul(a, b), field.mul(b, a))

    def test_mul_associative(self, field, rng):
        a, b, c = (elements(field, rng) for _ in range(3))
        assert np.array_equal(field.mul(field.mul(a, b), c), field.mul(a, field.mul(b, c)))

    def test_distributive(self, field, rng):
        a, b, c = (elements(field, rng) for _ in range(3))
        left = field.mul(a, field.add(b, c))
        right = field.add(field.mul(a, b), field.mul(a, c))
        assert np.array_equal(left, right)

    def test_mul_identity(self, field, rng):
        a = elements(field, rng)
        assert np.array_equal(field.mul(a, 1), a.astype(field.dtype))

    def test_mul_zero(self, field, rng):
        a = elements(field, rng)
        assert not field.mul(a, 0).any()

    def test_inverse(self, field, rng):
        a = nonzero(field, rng)
        assert np.all(field.mul(a, field.inv(a)) == 1)

    def test_division(self, field, rng):
        a, b = elements(field, rng), nonzero(field, rng)
        assert np.array_equal(field.mul(field.div(a, b), b), a.astype(field.dtype))

    def test_div_by_zero_raises(self, field):
        with pytest.raises(ZeroDivisionError):
            field.div(np.array([1]), np.array([0]))

    def test_inv_zero_raises(self, field):
        with pytest.raises(ZeroDivisionError):
            field.inv(np.array([0]))

    def test_fermat(self, field, rng):
        """a^(2^m - 1) == 1 for nonzero a."""
        a = nonzero(field, rng, 200)
        assert np.all(field.pow(a, field.order - 1) == 1)

    def test_pow_zero_conventions(self, field):
        assert field.pow(np.array([0]), np.array([0]))[0] == 1
        assert field.pow(np.array([0]), np.array([3]))[0] == 0

    def test_alpha_generates_field(self, field):
        """Powers of alpha enumerate every nonzero element exactly once."""
        powers = field.alpha_pow(np.arange(field.order - 1))
        assert len(set(int(x) for x in powers)) == field.order - 1

    def test_log_alpha_inverts_alpha_pow(self, field, rng):
        e = rng.integers(0, field.order - 1, 100)
        assert np.array_equal(field.log_alpha(field.alpha_pow(e)), e)


class TestPolynomials:
    def test_poly_eval_constant(self, field):
        c = np.array([7 % field.order], dtype=field.dtype)
        assert field.poly_eval(c, np.array([0, 1, 2]))[1] == c[0]

    def test_poly_eval_linear(self, field, rng):
        # p(x) = 3 + 2x evaluated manually
        p = np.array([3, 2], dtype=field.dtype)
        x = nonzero(field, rng, 50)
        expected = field.add(3, field.mul(2, x))
        assert np.array_equal(field.poly_eval(p, x), expected)

    def test_poly_mul_degree(self, field):
        p = np.array([1, 1], dtype=field.dtype)  # x + 1
        q = field.poly_mul(p, p)  # x^2 + 1 over GF(2^m)
        assert len(q) == 3
        assert q[0] == 1 and q[1] == 0 and q[2] == 1

    def test_poly_mul_matches_eval(self, field, rng):
        p = np.array(rng.integers(0, field.order, 4), dtype=field.dtype)
        q = np.array(rng.integers(0, field.order, 3), dtype=field.dtype)
        x = nonzero(field, rng, 20)
        lhs = field.poly_eval(field.poly_mul(p, q), x)
        rhs = field.mul(field.poly_eval(p, x), field.poly_eval(q, x))
        assert np.array_equal(lhs, rhs)

    def test_poly_deriv_char2(self, field):
        # d/dx (a + bx + cx^2 + dx^3) = b + 3d x^2 = b + d x^2 in char 2
        p = np.array([5 % field.order, 7 % field.order, 11 % field.order, 13 % field.order],
                     dtype=field.dtype)
        d = field.poly_deriv(p)
        assert d[0] == p[1] and d[1] == 0 and d[2] == p[3]


class TestConstruction:
    def test_bad_poly_rejected(self):
        # x^8 + 1 is not primitive.
        with pytest.raises(ValueError):
            GF2m(8, 0b100000001)

    def test_unknown_degree_rejected(self):
        with pytest.raises(ValueError):
            GF2m(13)

    def test_dtype_selection(self):
        assert GF256.dtype == np.uint8
        assert GF65536.dtype == np.uint16

    @given(st.integers(1, 255), st.integers(1, 255))
    @settings(max_examples=50)
    def test_gf256_mul_matches_reference(self, a, b):
        """Cross-check table multiplication against shift-and-add."""
        ref = 0
        x, y = a, b
        while y:
            if y & 1:
                ref ^= x
            y >>= 1
            x <<= 1
            if x & 0x100:
                x ^= 0x11D
        assert int(GF256.mul(a, b)) == ref
