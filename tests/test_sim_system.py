"""Co-simulation tests: cores + LLC + ECC traffic + DRAM."""

import pytest

from repro.cpu.ecc_traffic import EccTrafficModel
from repro.cpu.llc import LLC
from repro.cpu.system import SimSystem
from repro.dram.system import MemorySystem, MemorySystemConfig
from repro.ecc import Chipkill18, LotEcc5


def synthetic_trace(pattern):
    """Replay a fixed list of (gap, addr, is_write) items."""
    return iter(pattern)


def make_system(traces, scheme=None, ecc_parity_channels=None, channels=2):
    scheme = scheme or Chipkill18()
    mem = MemorySystem(
        MemorySystemConfig(
            channels=channels,
            ranks_per_channel=1,
            chip_widths=scheme.chip_widths(),
            line_size=scheme.line_size,
        )
    )
    model = EccTrafficModel.for_scheme(scheme, ecc_parity_channels)
    llc = LLC(size_bytes=64 * 1024, line_size=scheme.line_size)
    return SimSystem(mem, traces, model, llc=llc)


class TestBasics:
    def test_empty_traces_finish(self):
        sys_ = make_system([synthetic_trace([])])
        res = sys_.run(0, 100)
        assert res.instructions == 0

    def test_single_read(self):
        sys_ = make_system([synthetic_trace([(10, 5, False)])])
        res = sys_.run(0, 100)
        assert res.llc_misses == 1
        assert res.counters.data_reads == 1
        assert res.accesses_64b == 1

    def test_hits_generate_no_memory_traffic(self):
        items = [(10, 5, False)] * 10
        sys_ = make_system([synthetic_trace(items)])
        res = sys_.run(0, 1000)
        assert res.llc_misses == 1 and res.llc_hits == 9
        assert res.accesses_64b == 1

    def test_instructions_accumulate(self):
        items = [(100, i, False) for i in range(10)]
        sys_ = make_system([synthetic_trace(items)])
        res = sys_.run(0, 10_000)
        assert res.instructions == 1000

    def test_cycles_respect_ipc_and_latency(self):
        """10 hits of gap 100 at IPC 2 need >= 10 * (50 + hit latency)."""
        items = [(100, 5, False)] * 10
        sys_ = make_system([synthetic_trace(items)])
        res = sys_.run(0, 10_000)
        assert res.cycles >= 10 * (50 + SimSystem.HIT_LATENCY) - 100
        assert res.ipc <= SimSystem.IPC

    def test_misses_stall(self):
        hit_items = [(10, 5, False)] * 50
        miss_items = [(10, i * 999, False) for i in range(50)]
        fast = make_system([synthetic_trace(hit_items)]).run(0, 10000)
        slow = make_system([synthetic_trace(miss_items)]).run(0, 10000)
        assert slow.cycles > fast.cycles

    def test_multicore_parallelism(self):
        items = [(50, i, False) for i in range(40)]
        one = make_system([synthetic_trace(list(items))]).run(0, 10_000)
        two_traces = [synthetic_trace(list(items)), synthetic_trace([(50, 10_000 + i, False) for i in range(40)])]
        two = make_system(two_traces).run(0, 10_000)
        assert two.instructions == 2 * one.instructions
        assert two.cycles < 2 * one.cycles  # overlap


class TestWritePath:
    def test_store_miss_fills_then_dirties(self):
        sys_ = make_system([synthetic_trace([(10, 5, True)])])
        res = sys_.run(0, 100)
        assert res.counters.data_reads == 1  # write-allocate fill
        assert res.counters.data_writes == 0  # not yet evicted

    def test_dirty_eviction_writes_back(self):
        # Fill one set beyond capacity with dirty lines: 16-way LLC of 1024
        # lines -> 64 sets; addresses i*64 all land in set 0.
        items = [(10, i * 64, True) for i in range(20)]
        sys_ = make_system([synthetic_trace(items)])
        res = sys_.run(0, 10_000)
        assert res.counters.data_writes >= 3

    def test_writeback_triggers_ecc_line_insert(self):
        items = [(10, i * 64, True) for i in range(20)]
        sys_ = make_system([synthetic_trace(items)], scheme=LotEcc5())
        sys_.run(0, 10_000)
        # ECC lines inserted dirty but not yet evicted: no reads ever.
        assert sys_.counters.ecc_reads == 0


class TestEccTrafficCharges:
    def _run_with_pressure(self, scheme, ecc_parity_channels=None):
        """Generate enough set pressure to evict ECC/XOR lines."""
        items = []
        for rep in range(6):
            for i in range(600):
                items.append((5, i * 16 + rep, True))
        sys_ = make_system(
            [synthetic_trace(items)], scheme=scheme, ecc_parity_channels=ecc_parity_channels
        )
        res = sys_.run(0, 100_000)
        return res

    def test_ecc_line_eviction_costs_one_write(self):
        res = self._run_with_pressure(LotEcc5())
        assert res.counters.ecc_writes > 0
        assert res.counters.ecc_reads == 0  # LOT ECC lines never read

    def test_xor_line_eviction_costs_read_plus_write(self):
        res = self._run_with_pressure(LotEcc5(), ecc_parity_channels=4)
        assert res.counters.ecc_writes > 0
        assert res.counters.ecc_reads == res.counters.ecc_writes

    def test_inline_scheme_no_ecc_traffic(self):
        res = self._run_with_pressure(Chipkill18())
        assert res.counters.ecc_reads == 0 and res.counters.ecc_writes == 0


class TestDeterminism:
    def test_same_trace_same_result(self):
        items = [(13, (i * 37) % 500, i % 3 == 0) for i in range(300)]
        a = make_system([synthetic_trace(list(items))]).run(100, 1000)
        b = make_system([synthetic_trace(list(items))]).run(100, 1000)
        assert a.cycles == b.cycles
        assert a.energy.total == pytest.approx(b.energy.total)
        assert a.accesses_64b == b.accesses_64b


class TestMlpCores:
    def _run(self, mlp, items=None):
        items = items or [(10, i * 997, False) for i in range(200)]
        scheme = Chipkill18()
        mem = MemorySystem(
            MemorySystemConfig(channels=2, ranks_per_channel=1, chip_widths=scheme.chip_widths())
        )
        sys_ = SimSystem(
            mem,
            [iter(list(items))],
            EccTrafficModel.for_scheme(scheme),
            llc=LLC(size_bytes=64 * 1024),
            load_mlp=mlp,
        )
        return sys_.run(0, 100_000)

    def test_mlp_overlaps_misses(self):
        blocking = self._run(1)
        mlp = self._run(4)
        assert mlp.instructions == blocking.instructions
        assert mlp.cycles < blocking.cycles  # overlap shortens the run

    def test_mlp_same_traffic(self):
        blocking = self._run(1)
        mlp = self._run(4)
        assert mlp.accesses_64b == blocking.accesses_64b

    def test_mlp_one_equals_blocking(self):
        a = self._run(1)
        b = self._run(1)
        assert a.cycles == b.cycles  # determinism sanity under the default
