"""Property tests holding the batched machine hot paths equal to their
per-line references: scrub vs ``_scrub_reference``, ``read_lines`` vs
sequential ``read``, and the vectorized parity rebuild invariant."""

from dataclasses import asdict

import numpy as np
import pytest

from repro.core.layout import Geometry
from repro.core.machine import Address, ECCParityMachine
from repro.ecc.lot_ecc import LotEcc5, LotEcc9
from repro.faults.fit_rates import FaultMode
from repro.faults.injector import FaultInjector


def _geometry():
    return Geometry(channels=4, banks=4, rows_per_bank=12, lines_per_row=8)


def _faulted_machine(scheme_cls, seed=7):
    """A machine with a mixed fault load (deterministic at *seed*)."""
    m = ECCParityMachine(scheme_cls(), _geometry(), seed=seed)
    inj = FaultInjector(m, seed=seed + 100)
    inj.inject(FaultMode.SINGLE_BANK, location=(0, 1, 2))
    inj.inject(FaultMode.SINGLE_ROW, location=(1, 2, 0))
    inj.inject(FaultMode.SINGLE_COLUMN, location=(2, 3, 1))
    inj.inject(FaultMode.SINGLE_WORD, location=(3, 0, 3), transient=True)
    return m


def _assert_machines_equal(a: ECCParityMachine, b: ECCParityMachine):
    assert asdict(a.stats) == asdict(b.stats)
    assert np.array_equal(a.data, b.data)
    assert np.array_equal(a.detection, b.detection)
    assert np.array_equal(a.parity, b.parity)
    assert a.excluded == b.excluded
    assert a.health._faulty_pairs == b.health._faulty_pairs
    assert a.health._retired_pages == b.health._retired_pages
    assert a.health._counters == b.health._counters
    assert sorted(a.materialized) == sorted(b.materialized)
    for key in a.materialized:
        assert np.array_equal(a.materialized[key], b.materialized[key])


class TestScrubMatchesReference:
    @pytest.mark.parametrize("scheme_cls", [LotEcc5, LotEcc9])
    @pytest.mark.parametrize("repair", [False, True])
    def test_two_passes_identical(self, scheme_cls, repair):
        fast = _faulted_machine(scheme_cls)
        ref = _faulted_machine(scheme_cls)
        # Two passes: the first drives retirement/materialization, the
        # second exercises the materialized faulty-bank batch path.
        for _ in range(2):
            assert fast.scrub(repair=repair) == ref._scrub_reference(repair=repair)
            _assert_machines_equal(fast, ref)

    def test_clean_machine_scrubs_nothing(self):
        m = ECCParityMachine(LotEcc5(), _geometry(), seed=1)
        assert m.scrub() == 0
        assert m.stats.detected_errors == 0


class TestScrubRepairSemantics:
    """Repair semantics on a materialized (faulty) bank pair.

    Outside a faulty pair, any counted error immediately retires its page
    and its parity sharers, which masks the heal/re-assert distinction; on
    a faulty pair ``record_error`` is a no-op, so repaired lines stay in
    play and the two fault kinds behave observably differently.
    """

    def _machine_with_faulty_pair(self):
        m = ECCParityMachine(LotEcc5(), _geometry(), seed=3)
        m.health._faulty_pairs.add((1, 0))
        m._materialize_pair(1, 0)
        return m

    def test_transients_heal_permanently(self):
        m = self._machine_with_faulty_pair()
        FaultInjector(m, seed=5).inject(
            FaultMode.SINGLE_ROW, location=(1, 0, 2), transient=True
        )
        assert m.scrub(repair=True) > 0
        assert m.scrub(repair=True) == 0  # healed: nothing left to find
        # Repaired content is the pre-fault content.
        assert np.array_equal(m.data[1, 0], m.golden[1, 0])

    def test_permanents_reassert_after_repair(self):
        m = self._machine_with_faulty_pair()
        FaultInjector(m, seed=5).inject(FaultMode.SINGLE_ROW, location=(1, 0, 2))
        first = m.scrub(repair=True)
        assert first > 0
        # The device is still broken: the repaired region re-corrupts at the
        # end of the pass, so the next scrub finds the same lines dirty.
        second = m.scrub(repair=True)
        assert second == first

    def test_repair_stats_match_reference(self):
        fast = _faulted_machine(LotEcc5, seed=21)
        ref = _faulted_machine(LotEcc5, seed=21)
        fast.scrub(repair=True)
        ref._scrub_reference(repair=True)
        _assert_machines_equal(fast, ref)


class TestReadLinesMatchesSequentialRead:
    def _all_addresses(self, g):
        return [
            Address(c, b, r, l)
            for c in range(g.channels)
            for b in range(g.banks)
            for r in range(g.rows_per_bank)
            for l in range(g.lines_per_row)
        ]

    @pytest.mark.parametrize("scheme_cls", [LotEcc5, LotEcc9])
    def test_batched_equals_sequential(self, scheme_cls):
        batched = _faulted_machine(scheme_cls, seed=13)
        seq = _faulted_machine(scheme_cls, seed=13)
        addrs = self._all_addresses(batched.geom)[:256]
        res = batched.read_lines(addrs)
        for i, addr in enumerate(addrs):
            r = seq.read(addr)
            if r.data is None:
                assert not res.ok[i]
            else:
                assert res.ok[i]
                assert np.array_equal(res.data[i], r.data)
            assert res.detected[i] == r.detected
            assert res.corrected[i] == r.corrected
            assert res.uncorrectable[i] == r.uncorrectable
        _assert_machines_equal(batched, seq)

    def test_empty_batch(self):
        m = ECCParityMachine(LotEcc5(), _geometry(), seed=0)
        res = m.read_lines([])
        assert res.data.shape == (0, m.scheme.line_size)
        assert m.stats.app_reads == 0

    def test_count_errors_false_leaves_health_alone(self):
        m = _faulted_machine(LotEcc5, seed=13)
        addrs = self._all_addresses(m.geom)
        m.read_lines(addrs, count_errors=False)
        assert not m.health._faulty_pairs
        assert not m.health._retired_pages


class TestVectorizedParityRebuild:
    def test_fresh_machine_parity_consistent(self):
        m = ECCParityMachine(LotEcc5(), _geometry(), seed=2)
        assert m.audit_parity() == 0

    def test_rebuild_is_idempotent(self):
        m = ECCParityMachine(LotEcc9(), _geometry(), seed=2)
        before = m.parity.copy()
        m._rebuild_all_parity()
        assert np.array_equal(m.parity, before)

    def test_rebuild_with_exclusions_consistent(self):
        # Excluding a pair switches _rebuild_all_parity to the per-bank path
        # and drops the pair's rows from every group; the audit (which skips
        # excluded banks the same way) must still see zero inconsistencies.
        m = ECCParityMachine(LotEcc5(), _geometry(), seed=2)
        m.excluded.update({(1, 0), (1, 1)})
        m._rebuild_all_parity()
        assert m.audit_parity() == 0

    def test_single_bank_rebuild_matches_full(self):
        m = ECCParityMachine(LotEcc5(), _geometry(), seed=4)
        # Perturb one bank's parity, rebuild just that bank, compare with a
        # freshly built machine.
        pristine = m.parity.copy()
        m.parity[:, 2] ^= 0xFF
        m._rebuild_parity_bank(2)
        assert np.array_equal(m.parity, pristine)

    def test_writes_keep_parity_consistent(self):
        m = ECCParityMachine(LotEcc5(), _geometry(), seed=6)
        rng = np.random.default_rng(0)
        for _ in range(16):
            addr = Address(
                int(rng.integers(m.geom.channels)),
                int(rng.integers(m.geom.banks)),
                int(rng.integers(m.geom.rows_per_bank)),
                int(rng.integers(m.geom.lines_per_row)),
            )
            m.write(addr, rng.integers(0, 256, m.scheme.line_size, dtype=np.uint8))
        assert m.audit_parity() == 0
