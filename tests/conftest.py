"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core.layout import Geometry
from repro.ecc.chipkill import Chipkill18, Chipkill36
from repro.ecc.lot_ecc import LotEcc5, LotEcc9
from repro.ecc.multi_ecc import MultiEcc
from repro.ecc.raim import Raim18EP, Raim45


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


#: Schemes implementing the full per-line pure-function codec interface.
PER_LINE_SCHEMES = [Chipkill36, Chipkill18, LotEcc5, LotEcc9, Raim45, Raim18EP]
ALL_SCHEMES = PER_LINE_SCHEMES + [MultiEcc]


@pytest.fixture(params=PER_LINE_SCHEMES, ids=lambda c: c.__name__)
def scheme(request):
    return request.param()


@pytest.fixture(params=ALL_SCHEMES, ids=lambda c: c.__name__)
def any_scheme(request):
    return request.param()


@pytest.fixture
def small_geometry():
    """A compact machine geometry: 4 channels, 4 banks, 12 rows, 8 lines."""
    return Geometry(channels=4, banks=4, rows_per_bank=12, lines_per_row=8)
