"""Double chipkill correct tests, including under ECC Parity."""

import numpy as np
import pytest

from repro.core.layout import Geometry
from repro.core.machine import Address, ECCParityMachine, PermanentFault
from repro.core.scheme import ECCParityScheme
from repro.ecc.double_chipkill import DoubleChipkill40


@pytest.fixture
def s():
    return DoubleChipkill40()


def line(rng, s):
    return rng.integers(0, 256, s.line_size, dtype=np.uint8)


class TestGeometryAndCapacity:
    def test_overheads(self, s):
        assert s.detection_overhead == 0.125
        assert s.correction_overhead == 0.125
        assert s.capacity_overhead == 0.25

    def test_correction_ratio(self, s):
        assert s.correction_ratio == 0.125

    def test_under_ecc_parity_overhead(self, s):
        """EP shrinks the 12.5% correction share to 2% in 8 channels."""
        ep = ECCParityScheme(s, 8)
        assert ep.parity_overhead == pytest.approx(1.125 * 0.125 / 7)
        assert ep.capacity_overhead < 0.15


class TestCorrection:
    def test_roundtrip(self, s, rng):
        assert s.roundtrip_ok(line(rng, s))

    def test_single_chip_kill(self, s, rng):
        data = line(rng, s)
        chips, det, cor = s.encode_line(data)
        bad = chips.copy()
        bad[11] = rng.integers(0, 256, s.chip_bytes)
        res = s.correct_line(bad, det, cor)
        assert res.data is not None and np.array_equal(res.data, data)

    def test_double_chip_kill(self, s, rng):
        """The defining capability: two dead chips, fully recovered."""
        data = line(rng, s)
        chips, det, cor = s.encode_line(data)
        for pair in ((0, 1), (5, 20), (30, 31)):
            bad = chips.copy()
            for victim in pair:
                bad[victim] = rng.integers(0, 256, s.chip_bytes)
            res = s.correct_line(bad, det, cor)
            assert res.data is not None and np.array_equal(res.data, data), pair

    def test_double_kill_with_erasure_hints(self, s, rng):
        data = line(rng, s)
        chips, det, cor = s.encode_line(data)
        bad = chips.copy()
        bad[3] ^= 0x55
        bad[17] ^= 0xAA
        res = s.correct_line(bad, det, cor, erasures={3, 17})
        assert res.data is not None and np.array_equal(res.data, data)

    def test_triple_unlocated_flagged(self, s, rng):
        data = line(rng, s)
        chips, det, cor = s.encode_line(data)
        bad = chips.copy()
        for victim in (2, 9, 27, 14, 6):
            bad[victim] ^= 0x10 + victim
        res = s.correct_line(bad, det, cor)
        if res.data is not None:  # either flagged or truly corrected
            assert np.array_equal(res.data, data)

    def test_detection(self, s, rng):
        data = line(rng, s)
        chips, det, _ = s.encode_line(data)
        bad = chips.copy()
        bad[0, 0] ^= 1
        assert s.detect_line(bad, det).error


class TestUnderEccParityMachine:
    def test_two_chip_fault_in_one_channel(self):
        g = Geometry(channels=4, banks=2, rows_per_bank=6, lines_per_row=4)
        m = ECCParityMachine(DoubleChipkill40(), g, seed=0)
        # two chips die in the same bank of one channel
        m.add_permanent_fault(PermanentFault(1, 0, (2, 3), (0, 4), 4, seed=1))
        m.add_permanent_fault(PermanentFault(1, 0, (2, 3), (0, 4), 19, seed=2))
        res = m.read(Address(1, 0, 2, 1))
        assert res.data is not None
        assert np.array_equal(res.data, m.golden[1, 0, 2, 1])
        assert res.corrected and res.used_parity_reconstruction
