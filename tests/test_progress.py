"""Live progress follower: tailing, torn lines, rotation, determinism.

The ``--json`` stream is a contract: one line per settlement carrying
only deterministic fields, so a serial and a parallel run of the same
campaign produce *byte-identical* streams even though tasks finish in
different orders.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.experiments import parallel, supervisor
from repro.obs.progress import Follower, Tracker, json_lines
from repro.obs.summarize import read_events


def _square(x):
    return x * x


PAYLOADS = [(i,) for i in range(8)]


def _subprocess_env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


@pytest.fixture
def armed(tmp_path):
    run = tmp_path / "progress"
    obs.configure(run, "engine,supervisor")
    yield run
    obs.disarm()
    obs.REGISTRY.reset()


class TestFollower:
    def _write(self, path, text, mode="a"):
        with open(path, mode) as fh:
            fh.write(text)

    def test_incremental_tailing(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write(path, '{"kind":"a","ts":1}\n', "w")
        f = Follower(tmp_path)
        assert [e["kind"] for e in f.poll()] == ["a"]
        assert f.poll() == []
        self._write(path, '{"kind":"b","ts":2}\n')
        assert [e["kind"] for e in f.poll()] == ["b"]
        f.close()

    def test_partial_line_buffered_until_complete(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write(path, '{"kind":"a","ts":1}\n{"kind":"b",', "w")
        f = Follower(tmp_path)
        assert [e["kind"] for e in f.poll()] == ["a"]  # half line held back
        self._write(path, '"ts":2}\n')
        assert [e["kind"] for e in f.poll()] == ["b"]  # completed across polls
        f.close()

    def test_torn_interior_line_warned_and_skipped(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        self._write(path, '{"kind":"a","ts":1}\nnot json\n{"kind":"b","ts":2}\n', "w")
        f = Follower(tmp_path)
        assert [e["kind"] for e in f.poll()] == ["a", "b"]
        err = capsys.readouterr().err
        assert "skipping torn JSONL record" in err and ":2:" in err
        f.close()

    def test_missing_file_polls_empty_then_attaches(self, tmp_path):
        f = Follower(tmp_path)
        assert f.poll() == []
        self._write(tmp_path / "events.jsonl", '{"kind":"a","ts":1}\n', "w")
        assert [e["kind"] for e in f.poll()] == ["a"]
        f.close()

    def test_rotation_drains_old_generation_first(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write(path, '{"kind":"a","ts":1}\n', "w")
        f = Follower(tmp_path)
        f.poll()
        # Writer appends one more record, then rotates and starts fresh.
        self._write(path, '{"kind":"b","ts":2}\n')
        os.replace(path, tmp_path / "events.jsonl.1")
        self._write(path, '{"kind":"c","ts":3}\n', "w")
        assert [e["kind"] for e in f.poll()] == ["b", "c"]
        f.close()


class TestTrackerDeterminism:
    def _json_stream(self, run_dir):
        return "\n".join(json_lines(read_events(run_dir)))

    def _run(self, tmp_path, label, jobs):
        run = tmp_path / label
        obs.configure(run, "engine")
        try:
            list(parallel.run_tasks(_square, PAYLOADS, jobs=jobs, backoff=0))
        finally:
            obs.disarm()
            obs.REGISTRY.reset()
        return run

    def test_serial_and_parallel_streams_bit_identical(self, tmp_path):
        serial = self._json_stream(self._run(tmp_path, "serial", 1))
        pooled = self._json_stream(self._run(tmp_path, "pooled", 4))
        assert serial == pooled
        lines = [json.loads(l) for l in serial.splitlines()]
        assert [l["done"] for l in lines] == list(range(1, len(PAYLOADS) + 1))
        assert all(set(l) == {"campaign", "done", "failed", "total"} for l in lines)

    def test_cli_json_stream_bit_identical(self, tmp_path):
        runs = [self._run(tmp_path, label, jobs) for label, jobs in (("s", 1), ("p", 4))]
        outs = []
        for run in runs:
            proc = subprocess.run(
                [sys.executable, "-m", "repro.obs.progress", str(run), "--json"],
                capture_output=True,
                text=True,
                check=True,
                env=_subprocess_env(),
            )
            outs.append(proc.stdout)
        assert outs[0] == outs[1] and outs[0].strip()

    def test_supervised_campaign_uses_journal_name(self, armed, tmp_path):
        supervisor.run_campaign(
            _square,
            PAYLOADS,
            name="fig8",
            directory=tmp_path / "camp",
            jobs=2,
            watchdog=False,
            backoff=0,
        )
        lines = [json.loads(l) for l in json_lines(read_events(armed))]
        assert lines and all(l["campaign"] == "fig8" for l in lines)
        assert lines[-1]["done"] == len(PAYLOADS)

    def test_failed_tasks_counted_separately(self):
        events = [
            {"kind": "engine.start", "ts": 1.0, "tasks": 2},
            {"kind": "engine.ok", "ts": 2.0, "index": 0},
            {"kind": "engine.fail", "ts": 3.0, "index": 1},
            {"kind": "engine.done", "ts": 4.0},
        ]
        lines = [json.loads(l) for l in json_lines(events)]
        assert lines == [
            {"campaign": "campaign-1", "done": 1, "failed": 0, "total": 2},
            {"campaign": "campaign-1", "done": 1, "failed": 1, "total": 2},
        ]

    def test_two_campaigns_by_trace_stamp(self):
        events = [
            {"kind": "engine.start", "ts": 1.0, "tasks": 1, "trace": "aa"},
            {"kind": "engine.start", "ts": 1.1, "tasks": 1, "trace": "bb"},
            {"kind": "engine.ok", "ts": 2.0, "index": 0, "trace": "aa"},
            {"kind": "engine.ok", "ts": 2.1, "index": 0, "trace": "bb"},
        ]
        lines = [json.loads(l) for l in json_lines(events)]
        assert lines[0]["campaign"] == "campaign-1"
        assert lines[1]["campaign"] == "campaign-2"


class TestLiveFollow:
    def test_follow_tails_concurrent_writer(self, tmp_path):
        """The follower process streams settlements while the campaign runs."""
        run = tmp_path / "live"
        follower = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.obs.progress",
                str(run),
                "--json",
                "--follow",
                "--poll",
                "0.05",
                "--idle-timeout",
                "2.0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=_subprocess_env(),
        )
        obs.configure(run, "engine")
        try:
            list(parallel.run_tasks(_square, PAYLOADS, jobs=2, backoff=0))
        finally:
            obs.disarm()
            obs.REGISTRY.reset()
        out, err = follower.communicate(timeout=60)
        assert follower.returncode == 0, err
        lines = [json.loads(l) for l in out.splitlines()]
        assert [l["done"] for l in lines] == list(range(1, len(PAYLOADS) + 1))
