"""Functional machine tests: the full protocol of Figure 6."""

import numpy as np
import pytest

from repro.core.layout import Geometry
from repro.core.machine import Address, ECCParityMachine, PermanentFault
from repro.ecc import Chipkill36, LotEcc5, LotEcc9, Raim18EP


@pytest.fixture
def machine(small_geometry):
    return ECCParityMachine(LotEcc5(), small_geometry, seed=7)


def chip_fault(chan=0, bank=0, rows=(3, 4), lines=(0, 8), chip=1, seed=5):
    return PermanentFault(chan, bank, rows, lines, chip, seed)


class TestCleanOperation:
    def test_read_returns_data(self, machine):
        a = Address(1, 2, 4, 3)
        res = machine.read(a)
        assert res.data is not None
        assert np.array_equal(res.data, machine.golden[a])
        assert not res.detected

    def test_read_counts_one_access(self, machine):
        machine.read(Address(0, 0, 0, 0))
        assert machine.stats.app_reads == 1
        assert machine.stats.mem_reads == 1

    def test_write_then_read(self, machine):
        a = Address(2, 1, 7, 5)
        payload = np.arange(64, dtype=np.uint8)
        machine.write(a, payload)
        assert np.array_equal(machine.read(a).data, payload)

    def test_write_updates_parity(self, machine):
        """After a write, the parity group still reconstructs correctly."""
        a = Address(0, 0, 0, 0)
        machine.write(a, np.full(64, 0xAB, dtype=np.uint8))
        rebuilt = machine._reconstruct_correction(a)
        assert np.array_equal(rebuilt, machine.scheme.compute_correction(machine.data[a]))

    def test_write_costs_parity_rmw(self, machine):
        """Step E: old-line read + parity read + parity write on top of the
        data write."""
        before_r, before_w = machine.stats.mem_reads, machine.stats.mem_writes
        machine.write(Address(0, 0, 0, 0), np.zeros(64, dtype=np.uint8))
        assert machine.stats.mem_writes - before_w == 2  # data + parity line
        assert machine.stats.mem_reads - before_r == 2  # old value + parity line
        assert machine.stats.parity_updates == 1

    def test_write_validates_size(self, machine):
        with pytest.raises(ValueError):
            machine.write(Address(0, 0, 0, 0), np.zeros(32, dtype=np.uint8))

    def test_initial_parity_consistent(self, machine):
        """Freshly built parity reconstructs every line's correction bits."""
        for addr in (Address(0, 0, 0, 0), Address(3, 2, 11, 7), Address(1, 3, 6, 2)):
            rebuilt = machine._reconstruct_correction(addr)
            expected = machine.scheme.compute_correction(machine.data[addr])
            assert np.array_equal(rebuilt, expected), addr


class TestFaultCorrection:
    def test_detected_and_corrected_via_parity(self, machine):
        machine.add_permanent_fault(chip_fault())
        res = machine.read(Address(0, 0, 3, 2))
        assert res.detected and res.corrected
        assert res.used_parity_reconstruction and not res.used_ecc_line
        assert np.array_equal(res.data, machine.golden[0, 0, 3, 2])

    def test_reconstruction_costs_n_minus_1_accesses(self, machine):
        """Step C: N-1 additional accesses (parity + N-2 members)."""
        machine.add_permanent_fault(chip_fault())
        before = machine.stats.mem_reads
        machine.read(Address(0, 0, 3, 1))
        # 1 (line itself) + (N-1) reconstruction accesses
        assert machine.stats.mem_reads - before == 1 + (machine.geom.channels - 1)

    def test_error_below_threshold_retires_pages(self, machine):
        machine.add_permanent_fault(chip_fault())
        machine.read(Address(0, 0, 3, 0))
        # The page plus its N-2 parity-sharing sibling pages (the member set
        # includes the faulty page itself).
        assert machine.health.retired_page_count == machine.geom.channels - 1
        assert machine.health.is_retired(0, 0, 3)

    def test_retired_page_errors_not_recounted(self, machine):
        machine.add_permanent_fault(chip_fault())
        machine.read(Address(0, 0, 3, 0))
        count = machine.health.counter(0, 0)
        machine.read(Address(0, 0, 3, 1))  # same page, second line
        assert machine.health.counter(0, 0) == count

    def test_write_to_faulted_line_rehabilitates_it(self, machine):
        machine.add_permanent_fault(chip_fault())
        a = Address(0, 0, 3, 4)
        payload = np.full(64, 0x5C, dtype=np.uint8)
        machine.write(a, payload)
        res = machine.read(a)
        assert np.array_equal(res.data, payload) and not res.detected


class TestMaterialization:
    @pytest.fixture
    def faulted(self, small_geometry):
        """Machine with a whole-bank fault scrubbed to saturation."""
        m = ECCParityMachine(LotEcc5(), small_geometry, seed=3)
        m.add_permanent_fault(
            PermanentFault(1, 2, rows=(0, 12), lines=(0, 8), chip=0, seed=9)
        )
        m.scrub()
        return m

    def test_bank_fault_saturates_counter(self, faulted):
        assert (1, 1) in faulted.health.faulty_pairs  # bank 2 -> pair 1

    def test_reads_use_materialized_ecc(self, faulted):
        res = faulted.read(Address(1, 2, 9, 6))
        assert res.corrected and res.used_ecc_line
        assert not res.used_parity_reconstruction
        assert np.array_equal(res.data, faulted.golden[1, 2, 9, 6])

    def test_partner_bank_also_materialized(self, faulted):
        assert (1, 2) in faulted.materialized and (1, 3) in faulted.materialized

    def test_bank_excluded_from_parity(self, faulted):
        assert (1, 2) in faulted.excluded and (1, 3) in faulted.excluded

    def test_other_channels_still_parity_protected(self, faulted):
        """After exclusion, other channels' lines in the same bank still
        reconstruct through the recalculated parity."""
        addr = Address(2, 2, 5, 1)
        rebuilt = faulted._reconstruct_correction(addr)
        assert rebuilt is not None
        assert np.array_equal(rebuilt, faulted.scheme.compute_correction(faulted.data[addr]))

    def test_accumulated_fault_in_second_channel_correctable(self, faulted):
        """The paper's headline reliability property: after materialization,
        a later fault in a different channel at the same location is still
        correctable (via parity, since the first bank no longer contributes)."""
        faulted.add_permanent_fault(
            PermanentFault(3, 2, rows=(0, 12), lines=(0, 8), chip=2, seed=11)
        )
        res = faulted.read(Address(3, 2, 4, 4))
        assert res.data is not None
        assert np.array_equal(res.data, faulted.golden[3, 2, 4, 4])

    def test_write_to_faulty_bank_updates_ecc_line(self, faulted):
        a = Address(1, 2, 0, 0)
        before = faulted.stats.ecc_line_writes
        faulted.write(a, np.zeros(64, dtype=np.uint8))
        assert faulted.stats.ecc_line_writes == before + 1
        res = faulted.read(a)
        assert np.array_equal(res.data, np.zeros(64, dtype=np.uint8))

    def test_read_to_faulty_bank_reads_ecc_line(self, faulted):
        before = faulted.stats.ecc_line_reads
        faulted.read(Address(1, 3, 1, 1))
        assert faulted.stats.ecc_line_reads == before + 1

    def test_capacity_loss_recorded(self, faulted):
        assert faulted.effective_capacity_loss_rows > 0


class TestUncorrectable:
    def test_same_location_two_channels_before_scrub(self, small_geometry):
        """Two channels failing at the same relative location with no scrub
        in between defeats the parity (the paper's residual risk)."""
        m = ECCParityMachine(LotEcc5(), small_geometry, seed=1)
        # Both faults land in the same parity group members before any scrub.
        m.add_permanent_fault(PermanentFault(0, 0, (3, 4), (0, 8), 0, seed=1))
        loc = m.layout.location_of(0, 0, 3)
        other = next((c, r) for c, r in loc.members if c != 0)
        m.add_permanent_fault(PermanentFault(other[0], 0, (other[1], other[1] + 1), (0, 8), 1, seed=2))
        res = m.read(Address(0, 0, 3, 0))
        assert res.uncorrectable and res.data is None
        assert m.stats.uncorrectable >= 1


class TestScrub:
    def test_scrub_clean_memory_finds_nothing(self, machine):
        assert machine.scrub() == 0
        assert machine.stats.scrubs == 1

    def test_scrub_finds_injected_errors(self, machine):
        machine.add_permanent_fault(chip_fault(rows=(5, 6)))
        dirty = machine.scrub()
        assert dirty > 0

    def test_scrub_skips_retired_pages(self, machine):
        machine.add_permanent_fault(chip_fault(rows=(5, 6)))
        machine.scrub()
        first_counter = machine.health.counter(0, 0)
        machine.scrub()  # page now retired; counter must not climb
        assert machine.health.counter(0, 0) == first_counter


class TestOtherSchemes:
    @pytest.mark.parametrize("scheme_cls,chip", [(Chipkill36, 7), (LotEcc9, 3), (Raim18EP, 11)])
    def test_protocol_works_for_scheme(self, scheme_cls, chip):
        g = Geometry(channels=3, banks=2, rows_per_bank=6, lines_per_row=4)
        m = ECCParityMachine(scheme_cls(), g, seed=0)
        m.add_permanent_fault(PermanentFault(1, 0, (2, 3), (0, 4), chip, seed=4))
        res = m.read(Address(1, 0, 2, 1))
        assert res.data is not None
        assert np.array_equal(res.data, m.golden[1, 0, 2, 1])

    def test_two_channel_machine(self):
        """N=2: parity is a plain remote copy of correction bits."""
        g = Geometry(channels=2, banks=2, rows_per_bank=4, lines_per_row=4)
        m = ECCParityMachine(LotEcc5(), g, seed=0)
        m.add_permanent_fault(PermanentFault(0, 0, (1, 2), (0, 4), 0, seed=8))
        res = m.read(Address(0, 0, 1, 2))
        assert res.corrected and np.array_equal(res.data, m.golden[0, 0, 1, 2])


class TestDeterminism:
    def test_same_seed_same_memory(self, small_geometry):
        a = ECCParityMachine(LotEcc5(), small_geometry, seed=5)
        b = ECCParityMachine(LotEcc5(), small_geometry, seed=5)
        assert np.array_equal(a.data, b.data)
        assert np.array_equal(a.parity, b.parity)

    def test_fault_masks_deterministic(self, small_geometry):
        a = ECCParityMachine(LotEcc5(), small_geometry, seed=5)
        b = ECCParityMachine(LotEcc5(), small_geometry, seed=5)
        for m in (a, b):
            m.add_permanent_fault(chip_fault())
        assert np.array_equal(a.data, b.data)


class TestFaultValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(channel=9, bank=0, rows=(0, 1), lines=(0, 1), chip=0),
            dict(channel=0, bank=9, rows=(0, 1), lines=(0, 1), chip=0),
            dict(channel=0, bank=0, rows=(5, 5), lines=(0, 1), chip=0),
            dict(channel=0, bank=0, rows=(0, 99), lines=(0, 1), chip=0),
            dict(channel=0, bank=0, rows=(0, 1), lines=(0, 99), chip=0),
            dict(channel=0, bank=0, rows=(0, 1), lines=(0, 1), chip=77),
        ],
    )
    def test_invalid_regions_rejected(self, machine, kwargs):
        with pytest.raises(ValueError):
            machine.add_permanent_fault(PermanentFault(seed=1, **kwargs))

    def test_transient_also_validated(self, machine):
        with pytest.raises(ValueError):
            machine.add_transient_fault(
                PermanentFault(channel=0, bank=0, rows=(0, 1), lines=(0, 1), chip=99)
            )
