"""Experiment-driver tests: capacity/reliability tables and the report
helpers (cheap, no timing simulation)."""

import pytest

from repro.experiments import (
    PAPER_TABLE3,
    DiscussionEstimates,
    estimates,
    figure1_breakdown,
    figure2,
    figure8,
    figure18,
    format_percent,
    format_table,
    geomean,
    table3,
)


class TestFigure1:
    def test_four_schemes(self):
        rows = figure1_breakdown()
        assert len(rows) == 4

    def test_correction_at_least_half_for_most(self):
        """Paper: typically 50% or more of the overhead is correction bits."""
        rows = figure1_breakdown()
        at_least_half = [r for r in rows if r.correction >= r.detection]
        assert len(at_least_half) == len(rows)

    def test_lot_ecc_values(self):
        rows = {r.label: r for r in figure1_breakdown()}
        assert rows["LOT-ECC II (5 chips/rank)"].total == pytest.approx(0.406, abs=0.001)
        assert rows["LOT-ECC I (9 chips/rank)"].total == pytest.approx(0.265, abs=0.001)


class TestTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        return {r.label: r for r in table3(trials=3000, seed=1)}

    @pytest.mark.parametrize("label,expected", sorted(PAPER_TABLE3.items()))
    def test_matches_paper(self, rows, label, expected):
        assert rows[label].total == pytest.approx(expected, abs=0.002)

    def test_eol_only_for_ecc_parity_rows(self, rows):
        for label, row in rows.items():
            assert (row.eol_average is not None) == ("ECC Parity" in label)

    def test_eol_exceeds_static(self, rows):
        for row in rows.values():
            if row.eol_average is not None:
                assert row.eol_average >= row.total

    def test_eol_close_to_paper(self, rows):
        """Paper: 16.5% -> 16.7% EOL for 8-chan LOT-ECC5+EP."""
        r = rows["8 chan LOT-ECC5 + ECC Parity"]
        assert r.eol_average == pytest.approx(0.167, abs=0.004)


class TestReliabilityFigures:
    def test_figure2_monotone_decreasing(self):
        rows = figure2()
        days = [r.mtbf_days for r in rows]
        assert days == sorted(days, reverse=True)

    def test_figure8_rows(self):
        rows = figure8(trials=2000, seed=0)
        assert [r.channels for r in rows] == [2, 4, 8, 16]
        for r in rows:
            assert 0 <= r.mean_fraction < 0.02
            assert r.p999_fraction >= r.mean_fraction

    def test_figure18_grid(self):
        rows = figure18()
        assert all(set(r.probabilities) == {25, 50, 100} for r in rows)
        eight_hour = next(r for r in rows if r.window_hours == 8)
        assert eight_hour.probabilities[100] == pytest.approx(2e-4, rel=0.3)


class TestDiscussion:
    def test_estimates_in_paper_regime(self):
        e = estimates()
        assert e.hpc_stall_fraction == pytest.approx(
            DiscussionEstimates.PAPER_STALL, rel=0.5
        )
        assert e.added_ue_interval_years == pytest.approx(
            DiscussionEstimates.PAPER_ADDED_UE_YEARS, rel=0.5
        )
        assert 0.1 < (
            e.undetectable_interval_years / DiscussionEstimates.PAPER_UNDETECTABLE_YEARS
        ) < 10


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["x", 1.5], ["yy", 2.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_title(self):
        out = format_table(["h"], [["v"]], title="T")
        assert out.splitlines()[0] == "T"

    def test_format_percent(self):
        assert format_percent(0.125) == "12.5%"

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)
