"""Telemetry plane: event bus, metrics, manifests, and the summarizer.

The acceptance bar for the observability layer (mirroring the chaos
suite's bit-identity bar): a chaos-storm campaign must be fully
reconstructible from its run directory's JSONL alone — every task's
outcome, every injected fault, and the recovery that followed it.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.cpu.ecc_traffic import EccTrafficModel
from repro.cpu.llc import LLC
from repro.cpu.system import SimSystem
from repro.dram.system import MemorySystem, MemorySystemConfig
from repro.ecc import Chipkill18
from repro.experiments import parallel
from repro.faults.fit_rates import MemoryOrg
from repro.faults.montecarlo import EolCapacitySim, _eol_cell
from repro.obs import metrics
from repro.obs.manifest import load_manifest, manifest_dict, write_manifest
from repro.obs.summarize import read_events, render, summarize
from repro.util import envcfg

PAYLOADS = [(2, 400, s, 61320.0, 1 << 14) for s in range(6)]


def _subprocess_env():
    """Env for -m invocations: the package's parent dir on PYTHONPATH."""
    src = str(Path(obs.__file__).resolve().parents[2])
    extra = os.environ.get("PYTHONPATH")
    return dict(os.environ, PYTHONPATH=src + (os.pathsep + extra if extra else ""))


@pytest.fixture
def run_dir(tmp_path):
    """Arm every mode against a temp run dir; disarm and reset afterwards."""
    run = tmp_path / "obs-run"
    obs.configure(run, "all")
    yield run
    obs.disarm()
    obs.REGISTRY.reset()


class TestParseModes:
    def test_tokens(self):
        assert obs.parse_modes("engine") == {"engine"}
        assert obs.parse_modes("engine, mc") == {"engine", "mc"}
        assert obs.parse_modes(" SIM ") == {"sim"}

    @pytest.mark.parametrize("raw", ["1", "true", "on", "all", "ALL"])
    def test_all_tokens(self, raw):
        assert obs.parse_modes(raw) == set(obs.MODES)

    def test_empty_disarms(self):
        assert obs.parse_modes(None) == frozenset()
        assert obs.parse_modes("  ") == frozenset()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            obs.parse_modes("engine,telepathy")


class TestEventBus:
    def test_disarmed_emit_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs.ENV_DIR, str(tmp_path))
        obs.disarm()
        obs.emit("test.noop", x=1)
        assert not (tmp_path / obs.EVENTS_FILE).exists()
        assert not obs.enabled()

    def test_emit_stamps_reserved_fields(self, run_dir):
        obs.emit("test.ev", x=1, ts="caller-junk", pid="caller-junk")
        (rec,) = read_events(run_dir)
        assert rec["kind"] == "test.ev" and rec["x"] == 1
        assert isinstance(rec["ts"], float)
        assert isinstance(rec["pid"], int)

    def test_mode_gating(self, tmp_path):
        obs.configure(tmp_path, "mc")
        try:
            assert obs.enabled() and obs.enabled("mc")
            assert not obs.enabled("engine")
        finally:
            obs.disarm()

    def test_non_json_values_rendered_with_repr(self, run_dir):
        obs.emit("test.obj", obj=Path("/x"))
        (rec,) = read_events(run_dir)
        assert "x" in rec["obj"]

    def test_init_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs.ENV_MODES, "engine,chaos")
        monkeypatch.setenv(obs.ENV_DIR, str(tmp_path / "envrun"))
        try:
            assert obs.init_from_env() == tmp_path / "envrun"
            assert obs.enabled("chaos") and not obs.enabled("sim")
        finally:
            monkeypatch.delenv(obs.ENV_MODES)
            obs.init_from_env()
        assert not obs.enabled()

    def test_worker_config_round_trip(self, run_dir):
        cfg = obs.worker_config()
        obs.disarm()
        obs.ensure_worker(cfg)
        try:
            assert obs.run_dir() == run_dir
            assert obs.enabled("sim")
        finally:
            obs.disarm()
        assert obs.worker_config() is None
        obs.ensure_worker(None)  # no-op
        assert not obs.enabled()


class TestMetrics:
    def test_counter_gauge_timer(self):
        reg = metrics.MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(2.5)
        reg.timer("t").observe(0.5)
        reg.timer("t").observe(1.5)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 2.5
        t = snap["timers"]["t"]
        assert t["count"] == 2 and t["total_s"] == 2.0
        assert t["min_s"] == 0.5 and t["max_s"] == 1.5 and t["mean_s"] == 1.0

    def test_timer_context_manager(self):
        reg = metrics.MetricsRegistry()
        with reg.timer("t").time():
            pass
        assert reg.timer("t").count == 1

    def test_reset(self):
        reg = metrics.MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "timers": {}}


class TestManifest:
    def test_manifest_dict_contents(self):
        man = manifest_dict(extra_fact=7)
        assert man["package"]["name"] == "repro"
        assert man["extra_fact"] == 7
        assert set(man["knobs"]) == set(envcfg.KNOBS)
        for knob in man["knobs"].values():
            assert knob["source"] in ("env", "default")

    def test_write_load_merge(self, tmp_path):
        write_manifest(tmp_path, campaign="a")
        write_manifest(tmp_path, other="b")
        man = load_manifest(tmp_path)
        assert man["campaign"] == "a" and man["other"] == "b"

    def test_ensure_manifest(self, run_dir):
        assert obs.ensure_manifest() == run_dir / obs.MANIFEST_FILE
        first = load_manifest(run_dir)["captured_at"]
        obs.ensure_manifest()  # existing manifest, no extras: untouched
        assert load_manifest(run_dir)["captured_at"] == first
        obs.ensure_manifest(seeds=[1, 2])
        assert load_manifest(run_dir)["seeds"] == [1, 2]

    def test_ensure_manifest_disarmed_noop(self, tmp_path):
        obs.disarm()
        assert obs.ensure_manifest() is None


class TestEnvcfgIntrospection:
    def test_describe_covers_every_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        rows = {r["name"]: r for r in envcfg.describe()}
        assert set(rows) == set(envcfg.KNOBS)
        assert rows["REPRO_JOBS"]["current"] == "3"
        assert rows["REPRO_JOBS"]["source"] == "env"
        assert rows["REPRO_TASK_RETRIES"]["source"] == "default"

    def test_invalid_env_renders_not_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "zero")
        rows = {r["name"]: r for r in envcfg.describe()}
        assert rows["REPRO_JOBS"]["current"].startswith("INVALID")

    def test_render_plain_and_markdown(self):
        plain = envcfg.render_knobs()
        md = envcfg.render_knobs(markdown=True)
        for name in envcfg.KNOBS:
            assert name in plain and f"`{name}`" in md
        assert md.splitlines()[1].startswith("|---")

    def test_cli(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro.util.envcfg"],
            capture_output=True,
            text=True,
            check=True,
            env=_subprocess_env(),
        )
        assert "REPRO_OBS" in out.stdout and "REPRO_JOBS" in out.stdout


class TestMcEvents:
    def test_chunk_events_and_bit_identity(self, run_dir):
        org = MemoryOrg(channels=2)
        armed = EolCapacitySim(org, seed=5).run(trials=600, chunk_size=256)
        obs.disarm()
        quiet = EolCapacitySim(MemoryOrg(channels=2), seed=5).run(trials=600, chunk_size=256)
        assert (armed.fractions == quiet.fractions).all()
        chunks = [e for e in read_events(run_dir) if e["kind"] == "mc.chunk"]
        assert [c["n"] for c in chunks] == [256, 256, 88]
        assert chunks[-1]["done"] == 600
        assert chunks[-1]["running_mean"] == pytest.approx(armed.fractions.mean())


class TestSimEvents:
    def _run_sim(self):
        scheme = Chipkill18()
        mem = MemorySystem(
            MemorySystemConfig(
                channels=2,
                ranks_per_channel=1,
                chip_widths=scheme.chip_widths(),
                line_size=scheme.line_size,
            )
        )
        sys_ = SimSystem(
            mem,
            [iter([(10, a, False) for a in range(40)])],
            EccTrafficModel.for_scheme(scheme),
            llc=LLC(size_bytes=64 * 1024, line_size=scheme.line_size),
        )
        return sys_.run(0, 10_000)

    def test_sim_run_event(self, run_dir):
        self._run_sim()
        (ev,) = [e for e in read_events(run_dir) if e["kind"] == "sim.run"]
        assert ev["events_scheduled"] > 0
        assert ev["llc_misses"] > 0
        assert ev["issued_requests"] >= ev["fast_picks"] > 0
        assert 0 < ev["fast_pick_rate"] <= 1
        snap = obs.REGISTRY.snapshot()
        assert snap["counters"]["sim.runs"] == 1
        assert snap["counters"]["sim.events"] == ev["events_scheduled"]

    def test_disarmed_sim_emits_nothing(self, tmp_path):
        obs.configure(tmp_path, "engine")  # armed, but not for sim
        try:
            self._run_sim()
        finally:
            obs.disarm()
        assert [e for e in read_events(tmp_path) if e["kind"].startswith("sim.")] == []


class TestSummarizeChaosStorm:
    """Acceptance: reconstruct a chaos-storm campaign from JSONL alone."""

    @pytest.fixture(scope="class")
    def storm_summary(self, tmp_path_factory):
        run = tmp_path_factory.mktemp("storm") / "run"
        obs.configure(run, "all")
        try:
            out = list(
                parallel.run_tasks(
                    _eol_cell,
                    PAYLOADS,
                    jobs=3,
                    # The hang fires on *every* attempt (#*) so at least
                    # one of them is guaranteed to trip the deadline in a
                    # pool — a single-attempt hang could be requeued by
                    # the crash's pool break before its timeout expires.
                    # Recovery then comes from the degraded serial path,
                    # which injects no chaos.
                    chaos="crash@1,corrupt@4,hang=30@5#*",
                    timeout=2.0,
                    retries=2,
                    backoff=0,
                )
            )
        finally:
            obs.disarm()
            obs.REGISTRY.reset()
        assert len(out) == len(PAYLOADS)
        return summarize(run)

    def test_every_task_outcome_reconstructed(self, storm_summary):
        eng = storm_summary["engine"]
        assert set(eng["tasks"]) == set(range(len(PAYLOADS)))
        assert all(t["status"] == "ok" for t in eng["tasks"].values())
        assert eng["totals"]["ok"] == len(PAYLOADS)
        assert eng["totals"]["failed"] == 0

    def test_every_fault_and_recovery_reconstructed(self, storm_summary):
        fired = {(c["mode"], c["index"]) for c in storm_summary["chaos"]}
        assert fired == {("crash", 1), ("corrupt", 4), ("hang", 5)}
        assert all(c["recovered"] for c in storm_summary["chaos"])
        for c in storm_summary["chaos"]:
            assert c["recovery"]["attempt"] >= 2

    def test_recovery_mechanics_in_stream(self, storm_summary):
        kinds = storm_summary["kinds"]
        assert kinds.get("engine.rebuild", 0) >= 1  # crash and/or hang
        assert kinds.get("engine.timeout", 0) >= 1  # hang tripped the deadline
        assert kinds.get("engine.retry", 0) >= 1  # corrupt consumed a retry
        assert storm_summary["engine"]["start"]["tasks"] == len(PAYLOADS)
        assert storm_summary["engine"]["done"]["ok"] == len(PAYLOADS)

    def test_manifest_captured(self, storm_summary):
        man = storm_summary["manifest"]
        assert man["package"]["name"] == "repro"
        assert set(man["knobs"]) == set(envcfg.KNOBS)

    def test_render_and_cli(self, storm_summary):
        text = render(storm_summary)
        assert "recovered on attempt" in text
        assert "NOT RECOVERED" not in text
        out = subprocess.run(
            [sys.executable, "-m", "repro.obs.summarize", storm_summary["run_dir"], "--json"],
            capture_output=True,
            text=True,
            check=True,
            env=_subprocess_env(),
        )
        parsed = json.loads(out.stdout)
        assert parsed["engine"]["totals"]["ok"] == len(PAYLOADS)


class TestTornLines:
    """read_events skips torn lines anywhere, loudly, and follows rotation."""

    def _events_file(self, tmp_path, text):
        (tmp_path / "events.jsonl").write_text(text)
        return tmp_path

    def test_torn_trailing_line_skipped_with_warning(self, tmp_path, capsys):
        run = self._events_file(
            tmp_path,
            '{"kind":"a","ts":1}\n{"kind":"b","ts":2}\n{"kind":"c","ts":',
        )
        events = read_events(run)
        assert [e["kind"] for e in events] == ["a", "b"]
        err = capsys.readouterr().err
        assert "skipping torn JSONL record" in err
        assert ":3:" in err  # names the torn line

    def test_midfile_corruption_skipped_with_warning(self, tmp_path, capsys):
        run = self._events_file(
            tmp_path, '{"kind":"a","ts":1}\nnot json\n{"kind":"b","ts":2}\n'
        )
        events = read_events(run)
        assert [e["kind"] for e in events] == ["a", "b"]
        err = capsys.readouterr().err
        assert "skipping torn JSONL record" in err
        assert ":2:" in err  # names the corrupt interior line

    def test_clean_file_is_quiet(self, tmp_path, capsys):
        run = self._events_file(tmp_path, '{"kind":"a","ts":1}\n')
        assert len(read_events(run)) == 1
        assert capsys.readouterr().err == ""

    def test_torn_only_line_yields_empty(self, tmp_path, capsys):
        run = self._events_file(tmp_path, '{"kind":"a"')
        assert read_events(run) == []
        assert "torn JSONL record" in capsys.readouterr().err

    def test_rotated_generation_read_first(self, tmp_path):
        (tmp_path / "events.jsonl.1").write_text('{"kind":"old","ts":1}\n')
        run = self._events_file(tmp_path, '{"kind":"new","ts":2}\n')
        assert [e["kind"] for e in read_events(run)] == ["old", "new"]

    def test_cli_tolerates_torn_tail(self, tmp_path):
        self._events_file(
            tmp_path, '{"kind":"engine.start","ts":1,"tasks":1}\n{"kind":"en'
        )
        out = subprocess.run(
            [sys.executable, "-m", "repro.obs.summarize", str(tmp_path)],
            capture_output=True,
            text=True,
            check=True,
            env=_subprocess_env(),
        )
        assert "torn JSONL record" in out.stderr
        assert "events: 1" in out.stdout


class TestSupervisorSummary:
    """supervisor.* events reconstruct the durability accounting."""

    @pytest.fixture
    def paused_run(self, tmp_path):
        from repro.experiments import supervisor
        from repro.util import chaos
        from tests._supervisor_worker import square

        run = tmp_path / "run"
        state = tmp_path / "state"
        obs.configure(run, "supervisor")
        try:
            chaos.arm_io("enospc@journal.append#4")
            with pytest.raises(supervisor.CampaignPaused):
                supervisor.run_campaign(
                    square, [(i,) for i in range(4)], name="obs",
                    directory=state, jobs=1, watchdog=False,
                )
            chaos.arm_io(None)
            supervisor.run_campaign(
                square, [(i,) for i in range(4)], name="obs",
                directory=state, jobs=1, watchdog=False,
            )
        finally:
            chaos.arm_io(None)
            obs.disarm()
            obs.REGISTRY.reset()
        return run

    def test_pause_resume_reconstructed(self, paused_run):
        summary = summarize(paused_run)
        sup = summary["supervisor"]
        assert sup["campaigns"] == 2
        assert sup["pauses"] == 1
        assert sup["replayed"] == 1  # one settle survived the first run
        assert sup["settled"] == 4  # live settles across both runs
        assert sup["done"]["settled"] == 4
        assert sup["done"]["computed"] == 3
        assert sup["last_begin"]["resumed"] == 1

    def test_render_has_supervisor_section(self, paused_run):
        text = render(summarize(paused_run))
        assert "supervisor: 2 campaign(s)" in text
        assert "1 replayed from journal" in text
        assert "finished: 4 settled / 4 total (recomputed 3)" in text
        assert "1 pause(s)" in text
