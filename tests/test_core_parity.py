"""Tests for the two-stage ECC parity math (Section III-A, Equation 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parity import (
    correction_delta,
    ecc_parity,
    reconstruct_correction,
    updated_parity,
)
from repro.ecc import Chipkill36, LotEcc5, Raim18EP


@pytest.fixture(params=[LotEcc5, Chipkill36, Raim18EP], ids=lambda c: c.__name__)
def base(request):
    return request.param()


def lines(base, rng, n):
    return [rng.integers(0, 256, base.line_size, dtype=np.uint8) for _ in range(n)]


class TestEccParity:
    def test_reconstruct_any_member(self, base, rng):
        """Parity XOR other members' correction bits = missing member's bits."""
        group = lines(base, rng, 3)
        parity = ecc_parity(base, group)
        for missing in range(3):
            healthy = [l for i, l in enumerate(group) if i != missing]
            rebuilt = reconstruct_correction(base, parity, healthy)
            assert np.array_equal(rebuilt, base.compute_correction(group[missing]))

    def test_single_member_group(self, base, rng):
        """N=2 channels: the parity IS the lone member's correction bits."""
        (line,) = lines(base, rng, 1)
        assert np.array_equal(ecc_parity(base, [line]), base.compute_correction(line))

    def test_empty_group_rejected(self, base):
        with pytest.raises(ValueError):
            ecc_parity(base, [])

    def test_parity_is_commutative(self, base, rng):
        group = lines(base, rng, 4)
        assert np.array_equal(ecc_parity(base, group), ecc_parity(base, group[::-1]))

    def test_parity_size(self, base, rng):
        group = lines(base, rng, 3)
        assert ecc_parity(base, group).shape == (base.correction_bytes_per_line,)


class TestEquation1:
    def test_update_matches_rebuild(self, base, rng):
        """Eq. 1 incremental update == full recomputation of the parity."""
        group = lines(base, rng, 3)
        parity = ecc_parity(base, group)
        new_line = rng.integers(0, 256, base.line_size, dtype=np.uint8)
        updated = updated_parity(base, parity, group[1], new_line)
        group[1] = new_line
        assert np.array_equal(updated, ecc_parity(base, group))

    def test_update_is_involution(self, base, rng):
        """Writing a line back to its old value restores the old parity."""
        group = lines(base, rng, 3)
        parity = ecc_parity(base, group)
        new_line = rng.integers(0, 256, base.line_size, dtype=np.uint8)
        forward = updated_parity(base, parity, group[0], new_line)
        back = updated_parity(base, forward, new_line, group[0])
        assert np.array_equal(back, parity)

    def test_identity_write(self, base, rng):
        group = lines(base, rng, 3)
        parity = ecc_parity(base, group)
        assert np.array_equal(updated_parity(base, parity, group[0], group[0]), parity)

    def test_delta_accumulation(self, base, rng):
        """XOR-cacheline semantics: accumulated deltas apply like Eq. 1."""
        group = lines(base, rng, 3)
        parity = ecc_parity(base, group)
        new0 = rng.integers(0, 256, base.line_size, dtype=np.uint8)
        new2 = rng.integers(0, 256, base.line_size, dtype=np.uint8)
        delta = correction_delta(base, group[0], new0) ^ correction_delta(base, group[2], new2)
        applied = parity ^ delta
        group[0], group[2] = new0, new2
        assert np.array_equal(applied, ecc_parity(base, group))


@given(st.integers(0, 2**32 - 1), st.integers(2, 8))
@settings(max_examples=25, deadline=None)
def test_property_reconstruction(seed, n_members):
    rng = np.random.default_rng(seed)
    base = LotEcc5()
    group = [rng.integers(0, 256, 64, dtype=np.uint8) for _ in range(n_members)]
    parity = ecc_parity(base, group)
    missing = int(rng.integers(0, n_members))
    healthy = [l for i, l in enumerate(group) if i != missing]
    assert np.array_equal(
        reconstruct_correction(base, parity, healthy),
        base.compute_correction(group[missing]),
    )
