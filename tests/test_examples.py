"""Smoke tests: the shipped examples must run clean end to end.

Each example is executed in-process (import side effects are the point);
the slowest (full energy sweeps) are exercised with reduced arguments.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: "list[str]"):
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py", [])
    out = capsys.readouterr().out
    assert "accumulated faults across channels survived" in out
    assert "0 uncorrectable" in out


def test_fault_injection_campaign(capsys):
    run_example("fault_injection_campaign.py", ["3", "5"])
    out = capsys.readouterr().out
    assert "full-memory verification" in out


def test_scrub_interval_explorer(capsys):
    run_example("scrub_interval_explorer.py", ["10000"])
    out = capsys.readouterr().out
    assert "scrub every" in out


def test_xor_caching_demo(capsys):
    run_example("xor_caching_demo.py", [])
    out = capsys.readouterr().out
    assert "audit_parity() == 0" in out


def test_lifetime_simulation(capsys):
    run_example("lifetime_simulation.py", ["2"])
    out = capsys.readouterr().out
    assert "end of life" in out


@pytest.mark.slow
def test_capacity_planner(capsys):
    run_example("capacity_planner.py", [])
    out = capsys.readouterr().out
    assert "ECC Parity over LOT-ECC5" in out


@pytest.mark.slow
def test_reliability_report(capsys):
    run_example("reliability_report.py", ["4", "44"])
    out = capsys.readouterr().out
    assert "Capacity" in out and "Reliability" in out
