"""Event-bus concurrency: many processes, one JSONL file, zero torn lines.

The bus writes each record with a single ``os.write`` on an ``O_APPEND``
descriptor, which POSIX makes atomic per call — so workers started under
*either* start method (``fork`` inherits the parent's armed sink,
``spawn`` re-arms from the shipped config) may append to the same
``events.jsonl`` concurrently and every line must still parse.  These
tests hammer exactly that property, plus the no-op guarantee of the
disarmed sink.
"""

import json
import multiprocessing as mp

import pytest

from repro import obs
from repro.experiments import parallel
from repro.obs.summarize import read_events

#: Events per worker process; large enough that writes genuinely overlap.
EVENTS_PER_WORKER = 300
WORKERS = 4


def _blast(cfg, worker_id, barrier):
    """Child entry point: arm from *cfg*, then emit a burst of events."""
    obs.ensure_worker(cfg)
    barrier.wait(timeout=30)
    for i in range(EVENTS_PER_WORKER):
        obs.emit("test.blast", worker=worker_id, i=i, pad="x" * 64)


def _emit_disarmed(_cfg, worker_id, barrier):
    """Child that never arms: every emit must be a no-op."""
    barrier.wait(timeout=30)
    for i in range(EVENTS_PER_WORKER):
        obs.emit("test.noop", worker=worker_id, i=i)


def _obs_state(run_dir_s, modes_s):
    """Worker probe used by the engine-integration test."""
    import os

    return os.getpid(), str(obs.run_dir()), obs.enabled("engine")


def _hammer(ctx, target):
    cfg = obs.worker_config()
    barrier = ctx.Barrier(WORKERS)
    procs = [
        ctx.Process(target=target, args=(cfg, wid, barrier)) for wid in range(WORKERS)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0


@pytest.fixture
def run_dir(tmp_path):
    run = tmp_path / "run"
    obs.configure(run, "all")
    yield run
    obs.disarm()


@pytest.mark.parametrize("method", ["fork", "spawn"])
class TestConcurrentAppends:
    def test_every_line_parses_and_none_lost(self, method, run_dir):
        _hammer(mp.get_context(method), _blast)
        events = read_events(run_dir)  # warns-and-skips torn lines; count check catches loss
        assert len(events) == WORKERS * EVENTS_PER_WORKER
        by_worker = {}
        for e in events:
            assert e["kind"] == "test.blast"
            by_worker.setdefault(e["worker"], set()).add(e["i"])
        assert set(by_worker) == set(range(WORKERS))
        for seen in by_worker.values():
            assert seen == set(range(EVENTS_PER_WORKER))
        # Per-worker attribution: each worker stamped its own pid.
        pids = {e["pid"] for e in events}
        assert len(pids) == WORKERS

    def test_raw_bytes_are_newline_terminated_json(self, method, run_dir):
        _hammer(mp.get_context(method), _blast)
        raw = (run_dir / obs.EVENTS_FILE).read_bytes()
        assert raw.endswith(b"\n")
        for line in raw.rstrip(b"\n").split(b"\n"):
            json.loads(line)  # would raise if two writes interleaved


@pytest.mark.parametrize("method", ["fork", "spawn"])
def test_disarmed_children_emit_nothing(method, tmp_path):
    obs.disarm()
    run = tmp_path / "quiet"
    ctx = mp.get_context(method)
    _hammer(ctx, _emit_disarmed)
    assert not (run / obs.EVENTS_FILE).exists()
    assert read_events(run) == []


def test_engine_workers_self_arm(run_dir):
    """Pool workers of an armed parent report the parent's run dir/modes."""
    payloads = [(str(run_dir), "engine")] * 4
    out = list(parallel.run_tasks(_obs_state, payloads, jobs=2, backoff=0))
    assert len(out) == 4
    for pid, seen_dir, engine_on in out:
        assert seen_dir == str(run_dir)
        assert engine_on
