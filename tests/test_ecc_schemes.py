"""Cross-scheme codec tests (all ECCScheme implementations)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import (
    Chipkill18,
    Chipkill36,
    EccTraffic,
    LotEcc5,
    LotEcc9,
    MultiEcc,
    Raim18EP,
    Raim45,
)


def random_line(scheme, rng):
    return rng.integers(0, 256, scheme.line_size, dtype=np.uint8)


class TestGeometry:
    def test_chip_split_roundtrip(self, any_scheme, rng):
        data = random_line(any_scheme, rng)
        chips = any_scheme.split_to_chips(data)
        assert chips.shape == (any_scheme.data_chips, any_scheme.chip_bytes)
        assert np.array_equal(any_scheme.merge_from_chips(chips), data)

    def test_chip_split_batch(self, any_scheme, rng):
        batch = rng.integers(0, 256, (6, any_scheme.line_size), dtype=np.uint8)
        chips = any_scheme.split_to_chips(batch)
        assert chips.shape == (6, any_scheme.data_chips, any_scheme.chip_bytes)
        assert np.array_equal(any_scheme.merge_from_chips(chips), batch)

    def test_split_wrong_size_raises(self, any_scheme):
        with pytest.raises(ValueError):
            any_scheme.split_to_chips(np.zeros(any_scheme.line_size + 1, dtype=np.uint8))

    def test_chip_widths_length(self, any_scheme):
        assert len(any_scheme.chip_widths()) == any_scheme.chips_per_rank

    def test_payload_sizes(self, any_scheme, rng):
        data = random_line(any_scheme, rng)
        det = any_scheme.compute_detection(data)
        assert det.shape == (any_scheme.detection_bytes_per_line,)
        cor = any_scheme.compute_correction(data)
        assert cor.shape == (any_scheme.correction_bytes_per_line,)

    def test_batched_payloads_match_scalar(self, any_scheme, rng):
        batch = rng.integers(0, 256, (4, any_scheme.line_size), dtype=np.uint8)
        det = any_scheme.compute_detection(batch)
        cor = any_scheme.compute_correction(batch)
        for i in range(4):
            assert np.array_equal(det[i], any_scheme.compute_detection(batch[i]))
            assert np.array_equal(cor[i], any_scheme.compute_correction(batch[i]))


class TestDetection:
    def test_clean_line_not_flagged(self, scheme, rng):
        data = random_line(scheme, rng)
        chips, det, _ = scheme.encode_line(data)
        assert not scheme.detect_line(chips, det).error

    def test_chip_kill_detected(self, scheme, rng):
        data = random_line(scheme, rng)
        chips, det, _ = scheme.encode_line(data)
        for victim in range(scheme.data_chips):
            bad = chips.copy()
            bad[victim] ^= 0xA5
            assert scheme.detect_line(bad, det).error, f"chip {victim}"

    def test_single_bit_flip_detected(self, scheme, rng):
        data = random_line(scheme, rng)
        chips, det, _ = scheme.encode_line(data)
        bad = chips.copy()
        bad[0, 0] ^= 0x01
        assert scheme.detect_line(bad, det).error

    def test_detection_storage_corruption_detected(self, scheme, rng):
        data = random_line(scheme, rng)
        chips, det, _ = scheme.encode_line(data)
        bad_det = det.copy()
        bad_det[0] ^= 0xFF
        assert scheme.detect_line(chips, bad_det).error


class TestCorrection:
    def test_roundtrip_clean(self, scheme, rng):
        assert scheme.roundtrip_ok(random_line(scheme, rng))

    def test_chip_kill_corrected(self, scheme, rng):
        data = random_line(scheme, rng)
        chips, det, cor = scheme.encode_line(data)
        for victim in range(scheme.data_chips):
            bad = chips.copy()
            bad[victim] = rng.integers(0, 256, scheme.chip_bytes)
            res = scheme.correct_line(bad, det, cor)
            assert res.data is not None, f"chip {victim} uncorrectable"
            assert np.array_equal(res.data, data), f"chip {victim} miscorrected"
            assert res.corrected and res.detected

    def test_chip_kill_with_erasure_hint(self, scheme, rng):
        data = random_line(scheme, rng)
        chips, det, cor = scheme.encode_line(data)
        bad = chips.copy()
        bad[1] ^= 0x3C
        res = scheme.correct_line(bad, det, cor, erasures={1})
        assert res.data is not None and np.array_equal(res.data, data)

    def test_clean_line_reports_no_correction(self, scheme, rng):
        data = random_line(scheme, rng)
        chips, det, cor = scheme.encode_line(data)
        res = scheme.correct_line(chips, det, cor)
        assert res.data is not None and not res.corrected and not res.detected

    def test_correction_payload_is_pure_function(self, scheme, rng):
        data = random_line(scheme, rng)
        assert np.array_equal(scheme.compute_correction(data), scheme.compute_correction(data))


class TestOverheads:
    """Capacity numbers from the paper (Figure 1, Table III)."""

    @pytest.mark.parametrize(
        "cls,total",
        [
            (Chipkill36, 0.125),
            (Chipkill18, 0.125),
            (LotEcc9, 0.2656),
            (LotEcc5, 0.4062),
            (Raim45, 0.4062),
            (MultiEcc, 0.129),
        ],
    )
    def test_total_overhead(self, cls, total):
        assert cls().capacity_overhead == pytest.approx(total, abs=5e-4)

    def test_chipkill36_split_is_even(self):
        s = Chipkill36()
        assert s.detection_overhead == pytest.approx(s.correction_overhead)

    def test_lot5_correction_ratio(self):
        assert LotEcc5().correction_ratio == 0.25

    def test_lot9_correction_ratio(self):
        assert LotEcc9().correction_ratio == 0.125

    def test_raim18_correction_ratio_is_half(self):
        assert Raim18EP().correction_ratio == 0.5

    def test_chipkill36_correction_ratio(self):
        assert Chipkill36().correction_ratio == 0.0625

    def test_traffic_kinds(self):
        assert Chipkill36().traffic == EccTraffic.INLINE
        assert Raim45().traffic == EccTraffic.INLINE
        assert LotEcc5().traffic == EccTraffic.ECC_LINE
        assert LotEcc9().traffic == EccTraffic.ECC_LINE
        assert MultiEcc().traffic == EccTraffic.XOR_LINE

    def test_ecc_line_coverage(self):
        """Section IV-C: LOT5 -> 4 lines, LOT9 -> 8 lines per ECC line."""
        assert LotEcc5().ecc_line_coverage == 4
        assert LotEcc9().ecc_line_coverage == 8
        assert MultiEcc().ecc_line_coverage == 16


class TestLotEccSpecifics:
    def test_checksum_localizes_chip(self, rng):
        s = LotEcc5()
        data = rng.integers(0, 256, 64, dtype=np.uint8)
        chips, det, _ = s.encode_line(data)
        bad = chips.copy()
        bad[2] ^= 0x0F
        assert s.detect_line(bad, det).chip == 2

    def test_checksum_chip_failure_recoverable(self, rng):
        """All checksums garbage but data intact: GEC verifies the data."""
        s = LotEcc5()
        data = rng.integers(0, 256, 64, dtype=np.uint8)
        chips, det, cor = s.encode_line(data)
        bad_det = rng.integers(0, 256, det.shape).astype(np.uint8)
        res = s.correct_line(chips, bad_det, cor)
        assert res.data is not None and np.array_equal(res.data, data)

    def test_two_data_chips_uncorrectable(self, rng):
        s = LotEcc5()
        data = rng.integers(0, 256, 64, dtype=np.uint8)
        chips, det, cor = s.encode_line(data)
        bad = chips.copy()
        bad[0] ^= 0x11
        bad[1] ^= 0x22
        res = s.correct_line(bad, det, cor)
        assert res.data is None and res.detected

    def test_mixed_rank_widths(self):
        assert LotEcc5().chip_widths() == [16, 16, 16, 16, 8]
        assert LotEcc9().chip_widths() == [8] * 9


class TestRaimSpecifics:
    def test_dimm_kill_corrected(self, rng):
        """A whole-DIMM failure (9 chips incl. its ECC chip) is survivable."""
        s = Raim45()
        data = rng.integers(0, 256, 128, dtype=np.uint8)
        chips, det, cor = s.encode_line(data)
        bad = chips.copy()
        bad[0:8] = rng.integers(0, 256, (8, s.chip_bytes))  # DIMM 0 data chips
        bad_det = det.copy()
        bad_det[0:4] ^= 0x5A  # DIMM 0's detection bytes die too
        res = s.correct_line(bad, bad_det, cor)
        assert res.data is not None and np.array_equal(res.data, data)

    def test_two_dimms_uncorrectable(self, rng):
        s = Raim45()
        data = rng.integers(0, 256, 128, dtype=np.uint8)
        chips, det, cor = s.encode_line(data)
        bad = chips.copy()
        bad[0] ^= 1  # DIMM 0
        bad[8] ^= 1  # DIMM 1
        res = s.correct_line(bad, det, cor)
        assert res.data is None

    def test_raim18_halves(self, rng):
        s = Raim18EP()
        assert s.n_data_dimms == 2
        data = rng.integers(0, 256, 64, dtype=np.uint8)
        cor = s.compute_correction(data)
        segs = s._dimm_segments(data).reshape(2, -1)
        assert np.array_equal(cor, segs[0] ^ segs[1])


class TestMultiEccSpecifics:
    def test_group_parity_roundtrip(self, rng):
        s = MultiEcc()
        group = rng.integers(0, 256, (16, 64), dtype=np.uint8)
        dets = s.compute_detection(group)
        parity = s.group_parity(group)
        for victim in (0, 7, 15):
            damaged = group.copy()
            damaged[victim] = rng.integers(0, 256, 64)
            res = s.correct_group(damaged, dets, parity, victim)
            assert res.data is not None and np.array_equal(res.data, group[victim])

    def test_group_parity_is_xor(self, rng):
        s = MultiEcc()
        group = rng.integers(0, 256, (16, 64), dtype=np.uint8)
        assert np.array_equal(s.group_parity(group), np.bitwise_xor.reduce(group, axis=0))

    def test_corrupt_sibling_detected(self, rng):
        """Rebuild fails verification when a sibling is also corrupt."""
        s = MultiEcc()
        group = rng.integers(0, 256, (16, 64), dtype=np.uint8)
        dets = s.compute_detection(group)
        parity = s.group_parity(group)
        damaged = group.copy()
        damaged[3] = rng.integers(0, 256, 64)
        damaged[9] ^= 0x77  # second corruption poisons the reconstruction
        res = s.correct_group(damaged, dets, parity, 3)
        assert res.data is None


@given(st.integers(0, 2**32 - 1), st.integers(0, 3))
@settings(max_examples=25, deadline=None)
def test_property_chipkill36_any_chip_kill(seed, victim_mod):
    rng = np.random.default_rng(seed)
    s = Chipkill36()
    data = rng.integers(0, 256, 128, dtype=np.uint8)
    chips, det, cor = s.encode_line(data)
    victim = int(rng.integers(0, s.data_chips))
    bad = chips.copy()
    bad[victim] = rng.integers(0, 256, s.chip_bytes)
    res = s.correct_line(bad, det, cor)
    if res.data is not None:
        assert np.array_equal(res.data, data)


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_property_lot5_any_chip_kill(seed):
    rng = np.random.default_rng(seed)
    s = LotEcc5()
    data = rng.integers(0, 256, 64, dtype=np.uint8)
    chips, det, cor = s.encode_line(data)
    victim = int(rng.integers(0, 4))
    bad = chips.copy()
    bad[victim] = rng.integers(0, 256, 16)
    res = s.correct_line(bad, det, cor)
    assert res.data is not None and np.array_equal(res.data, data)
