"""Table I (processor microarchitecture) and global configuration pins."""

from repro.cpu.llc import LLC
from repro.cpu.system import SimSystem
from repro.dram.timing import DDR3_2000, DDR3Timing


class TestTable1:
    """The paper's Table I parameters, as adopted by the timing plane."""

    def test_issue_width(self):
        assert SimSystem.IPC == 2  # issue width 2

    def test_l2_latency(self):
        assert SimSystem.HIT_LATENCY == 10  # L2 latency 10 cycles

    def test_llc_size_and_assoc(self):
        llc = LLC()
        assert llc.n_sets * llc.assoc * llc.line_size == 8 << 20  # 8 MB
        assert llc.assoc == 16

    def test_line_size_default(self):
        assert LLC().line_size == 64  # L1 line size 64B

    def test_write_buffer_bounded(self):
        # Table I lists a 128-entry write buffer for the whole L2; we bound
        # posted stores per core instead - 8 x 8 cores = 64 <= 128.
        assert SimSystem.POSTED_CAP * 8 <= 128


class TestDdr3Parameters:
    """The paper's memory device: 2Gb DDR3 at 1 GHz memory clock."""

    def test_clock(self):
        assert DDR3_2000.tck_ns == 1.0

    def test_burst_is_bl8(self):
        # BL8 at DDR: 8 beats over 4 clock cycles.
        assert DDR3_2000.tburst == 4

    def test_default_instance_matches_class(self):
        assert DDR3_2000 == DDR3Timing()

    def test_refresh_parameters(self):
        assert DDR3_2000.trefi > DDR3_2000.trfc > 0
