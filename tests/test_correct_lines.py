"""``ECCScheme.correct_lines`` (batched codec) vs per-line ``correct_line``.

The vectorized overrides in the chipkill and LOT-ECC families must agree
with the base-class loop - and hence with ``correct_line`` - for every
outcome field, across clean lines, in-spec corruptions, beyond-spec
corruptions, and declared erasures.
"""

import numpy as np
import pytest

from repro.ecc.base import ECCScheme
from repro.ecc.chipkill import Chipkill18, Chipkill36
from repro.ecc.double_chipkill import DoubleChipkill40
from repro.ecc.lot_ecc import LotEcc5, LotEcc9
from repro.ecc.lot_ecc_rs import LotEcc5RS
from repro.ecc.raim import Raim18EP, Raim45

SCHEMES = [
    Chipkill36,
    Chipkill18,
    DoubleChipkill40,
    LotEcc5,
    LotEcc5RS,
    LotEcc9,
    Raim45,
    Raim18EP,
]


def _mixed_batch(scheme, rng, n=48):
    """A batch mixing clean lines, chip kills, double kills, and bit flips."""
    data = rng.integers(0, 256, (n, scheme.line_size), dtype=np.uint8)
    det = scheme.compute_detection(data)
    corr = scheme.compute_correction(data)
    chips = scheme.split_to_chips(data)
    bad = chips.copy()
    for i in range(n):
        kind = i % 4
        if kind == 0:
            continue  # clean
        if kind == 1:  # one chip replaced
            chip = int(rng.integers(scheme.data_chips))
            bad[i, chip] = rng.integers(0, 256, scheme.chip_bytes, dtype=np.uint8)
        elif kind == 2:  # two chips replaced (beyond spec for most schemes)
            for chip in rng.choice(scheme.data_chips, size=2, replace=False):
                bad[i, int(chip)] = rng.integers(0, 256, scheme.chip_bytes, dtype=np.uint8)
        else:  # a single bit flip
            chip = int(rng.integers(scheme.data_chips))
            byte = int(rng.integers(scheme.chip_bytes))
            bad[i, chip, byte] ^= np.uint8(1 << int(rng.integers(8)))
    return data, bad, det, corr


def _assert_matches_base(scheme, bad, det, corr, erasures):
    batched = scheme.correct_lines(bad, det, corr, erasures=erasures)
    reference = ECCScheme.correct_lines(scheme, bad, det, corr, erasures=erasures)
    assert np.array_equal(batched.ok, reference.ok)
    assert np.array_equal(batched.corrected, reference.corrected)
    assert np.array_equal(batched.detected, reference.detected)
    assert np.array_equal(batched.data[batched.ok], reference.data[reference.ok])
    return batched


@pytest.mark.parametrize("scheme_cls", SCHEMES, ids=lambda c: c.__name__)
@pytest.mark.parametrize("seed", [0, 17])
def test_mixed_batch_matches_per_line(scheme_cls, seed):
    scheme = scheme_cls()
    rng = np.random.default_rng(seed)
    data, bad, det, corr = _mixed_batch(scheme, rng)
    res = _assert_matches_base(scheme, bad, det, corr, None)
    # Clean lines (every 4th) must pass through untouched.
    clean = np.arange(0, len(data), 4)
    assert res.ok[clean].all()
    assert not res.detected[clean].any()
    assert np.array_equal(res.data[clean], data[clean])
    # Single-chip kills are in spec for every catalog scheme.
    killed = np.arange(1, len(data), 4)
    assert res.corrected[killed].all()
    assert np.array_equal(res.data[killed], data[killed])


@pytest.mark.parametrize("scheme_cls", SCHEMES, ids=lambda c: c.__name__)
def test_erasure_batch_matches_per_line(scheme_cls):
    # The same chip erased in every line - the shape the machine's
    # faulty-bank scrub runs produce from the health table.
    scheme = scheme_cls()
    rng = np.random.default_rng(3)
    n = 32
    data = rng.integers(0, 256, (n, scheme.line_size), dtype=np.uint8)
    det = scheme.compute_detection(data)
    corr = scheme.compute_correction(data)
    bad = scheme.split_to_chips(data).copy()
    victim = 1
    bad[:, victim] = rng.integers(0, 256, (n, scheme.chip_bytes), dtype=np.uint8)
    res = _assert_matches_base(scheme, bad, det, corr, {victim})
    assert res.ok.all()
    assert np.array_equal(res.data, data)


@pytest.mark.parametrize("scheme_cls", SCHEMES, ids=lambda c: c.__name__)
def test_erasure_plus_extra_damage_matches_per_line(scheme_cls):
    # Erased chip plus an unrelated bit flip: exercises the slow-retry path
    # of the RS batch decode and the LOT-ECC fallback cases.
    scheme = scheme_cls()
    rng = np.random.default_rng(11)
    n = 32
    data = rng.integers(0, 256, (n, scheme.line_size), dtype=np.uint8)
    det = scheme.compute_detection(data)
    corr = scheme.compute_correction(data)
    bad = scheme.split_to_chips(data).copy()
    bad[:, 0] = rng.integers(0, 256, (n, scheme.chip_bytes), dtype=np.uint8)
    flip = np.arange(0, n, 3)
    other = 2 % scheme.data_chips
    bad[flip, other, 0] ^= np.uint8(0x40)
    _assert_matches_base(scheme, bad, det, corr, {0})


def test_empty_batch():
    scheme = Chipkill36()
    bad = np.zeros((0, scheme.data_chips, scheme.chip_bytes), dtype=np.uint8)
    det = np.zeros((0, scheme.detection_bytes_per_line), dtype=np.uint8)
    corr = np.zeros((0, scheme.correction_bytes_per_line), dtype=np.uint8)
    res = scheme.correct_lines(bad, det, corr)
    assert res.data.shape == (0, scheme.line_size)
    assert res.ok.shape == (0,)
