"""Tests for repro.util: bit operations, units, RNG helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import (
    bits_to_bytes,
    bytes_to_bits,
    deinterleave_symbols,
    interleave_symbols,
    make_rng,
    popcount,
    spawn_rngs,
    xor_reduce,
)
from repro.util.units import DAYS, FIT_TO_PER_HOUR, GIB, KIB, MIB, YEARS


class TestBits:
    def test_roundtrip_simple(self):
        data = np.array([0x00, 0xFF, 0xA5, 0x3C], dtype=np.uint8)
        assert np.array_equal(bits_to_bytes(bytes_to_bits(data)), data)

    def test_bit_order_msb_first(self):
        bits = bytes_to_bits(np.array([0x80], dtype=np.uint8))
        assert bits[0] == 1 and bits[1:].sum() == 0

    def test_bits_shape(self):
        data = np.zeros((3, 4), dtype=np.uint8)
        assert bytes_to_bits(data).shape == (3, 32)

    def test_bits_to_bytes_rejects_ragged(self):
        with pytest.raises(ValueError):
            bits_to_bytes(np.zeros(7, dtype=np.uint8))

    @given(st.binary(min_size=1, max_size=64))
    def test_roundtrip_property(self, raw):
        data = np.frombuffer(raw, dtype=np.uint8)
        assert np.array_equal(bits_to_bytes(bytes_to_bits(data)), data)


class TestXorReduce:
    def test_list_input(self):
        a = np.array([1, 2, 3], dtype=np.uint8)
        b = np.array([4, 5, 6], dtype=np.uint8)
        assert np.array_equal(xor_reduce([a, b]), a ^ b)

    def test_stacked_input(self):
        stack = np.arange(12, dtype=np.uint8).reshape(3, 4)
        assert np.array_equal(xor_reduce(stack), stack[0] ^ stack[1] ^ stack[2])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            xor_reduce([])

    def test_self_inverse(self, rng):
        a = rng.integers(0, 256, 32, dtype=np.uint8)
        b = rng.integers(0, 256, 32, dtype=np.uint8)
        assert np.array_equal(xor_reduce([xor_reduce([a, b]), b]), a)


class TestPopcount:
    def test_known_values(self):
        assert popcount(np.array([0xFF], dtype=np.uint8)) == 8
        assert popcount(np.array([0x00], dtype=np.uint8)) == 0
        assert popcount(np.array([0x0F, 0xF0], dtype=np.uint8)) == 8

    @given(st.integers(0, 255))
    def test_single_byte(self, v):
        assert popcount(np.array([v], dtype=np.uint8)) == bin(v).count("1")


class TestInterleave:
    def test_roundtrip(self, rng):
        chunks = rng.integers(0, 256, (5, 8), dtype=np.uint8)
        flat = interleave_symbols(chunks)
        assert np.array_equal(deinterleave_symbols(flat, 5), chunks)

    def test_interleave_order(self):
        chunks = np.array([[1, 2], [10, 20], [100, 200]])
        assert list(interleave_symbols(chunks)) == [1, 10, 100, 2, 20, 200]

    def test_bad_length_raises(self):
        with pytest.raises(ValueError):
            deinterleave_symbols(np.arange(10), 3)


class TestUnits:
    def test_sizes(self):
        assert KIB == 1024 and MIB == KIB**2 and GIB == KIB**3

    def test_times(self):
        assert DAYS == 24.0
        assert YEARS == 365 * 24.0

    def test_fit_conversion(self):
        # 44 FIT over 7 years of 288 chips: ~0.78 expected faults.
        rate = 288 * 44 * FIT_TO_PER_HOUR * 7 * YEARS
        assert 0.7 < rate < 0.85


class TestRng:
    def test_seed_reproducible(self):
        assert make_rng(7).integers(1 << 30) == make_rng(7).integers(1 << 30)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert make_rng(g) is g

    def test_spawn_independent(self):
        a, b = spawn_rngs(42, 2)
        assert a.integers(1 << 30) != b.integers(1 << 30)

    def test_spawn_count(self):
        assert len(spawn_rngs(0, 5)) == 5
