"""Causal trace plane: spans, cross-process forests, attribution, export.

The acceptance bar for the span plane: a chaos-armed (crash + hang +
corrupt) *supervised* campaign yields one complete span forest — every
stamped engine/super/journal event resolves to the campaign root through
worker rebuilds, retries, batches, and crashed parents — with
critical-path and wall-time bucket attribution covering >= 95% of the
campaign's wall-clock, and the Chrome trace-event export validating
against the schema ``chrome://tracing`` / Perfetto load.
"""

import json
import subprocess
import sys

import pytest

from repro import obs
from repro.experiments import parallel, supervisor
from repro.faults.montecarlo import _eol_cell
from repro.obs import trace
from repro.obs.export import export_events, export_run
from repro.obs.spantree import (
    BUCKETS,
    attribute,
    build_forest,
    critical_path,
    primary_root,
    resolve_root,
    trace_summary,
)
from repro.obs.summarize import read_events, summarize

PAYLOADS = [(2, 400, s, 61320.0, 1 << 16) for s in range(6)]


def _subprocess_env():
    import os

    env = dict(os.environ)
    src = str(__import__("pathlib").Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


@pytest.fixture
def traced(tmp_path):
    """Arm the bus (all modes) and the span plane; restore on exit."""
    run = tmp_path / "traced"
    obs.configure(run, "engine,chaos,supervisor,mc,sim")
    trace.arm(True)
    yield run
    trace.adopt(None)  # drop any ambient context a test installed
    trace.arm(False)
    trace.init_from_env()
    obs.disarm()
    obs.REGISTRY.reset()


class TestSpanPrimitives:
    def test_disarmed_span_is_shared_noop(self):
        assert not trace.armed()
        s1 = trace.span("x", "compute")
        s2 = trace.span("y")
        assert s1 is s2 is trace.NOOP
        with s1:
            s1.annotate(k=1)
        assert s1.span_id is None and s1.trace_id is None

    def test_armed_without_sink_is_noop(self):
        trace.arm(True)
        try:
            assert not obs.enabled()
            assert trace.span("x") is trace.NOOP
        finally:
            trace.arm(False)
            trace.init_from_env()

    def test_span_emits_ids_window_and_fields(self, traced):
        with trace.span("unit.outer", "compute", foo=1) as outer:
            with trace.span("unit.inner", "codec") as inner:
                pass
        events = [e for e in read_events(traced) if e["kind"] == "trace.span"]
        by_name = {e["name"]: e for e in events}
        assert set(by_name) == {"unit.outer", "unit.inner"}
        o, i = by_name["unit.outer"], by_name["unit.inner"]
        assert o["span"] == outer.span_id and i["span"] == inner.span_id
        assert i["parent"] == o["span"] and o["parent"] is None
        assert i["trace"] == o["trace"] == outer.trace_id
        assert len(o["span"]) == 16 and len(o["trace"]) == 16
        assert o["t0"] <= i["t0"] <= i["t1"] <= o["t1"]
        assert o["foo"] == 1

    def test_ambient_context_restored_after_exit(self, traced):
        assert trace.ctx() is None
        with trace.span("a"):
            outer_ctx = trace.ctx()
            with trace.span("b"):
                assert trace.ctx() != outer_ctx
            assert trace.ctx() == outer_ctx
        assert trace.ctx() is None

    def test_exception_recorded_and_reraised(self, traced):
        with pytest.raises(RuntimeError):
            with trace.span("unit.bang"):
                raise RuntimeError("boom")
        (rec,) = [e for e in read_events(traced) if e["kind"] == "trace.span"]
        assert "RuntimeError" in rec["error"]

    def test_adopt_parents_across_contexts(self, traced):
        with trace.span("parent") as p:
            shipped = trace.ctx()
        # Simulate a worker process adopting the shipped context.
        trace.adopt(shipped)
        with trace.span("child") as c:
            pass
        recs = {e["name"]: e for e in read_events(traced) if e["kind"] == "trace.span"}
        assert recs["child"]["parent"] == p.span_id
        assert recs["child"]["trace"] == p.trace_id
        assert c.trace_id == p.trace_id

    def test_events_stamped_with_ambient_span(self, traced):
        with trace.span("stamping") as s:
            obs.emit("unit.probe", mode="engine", x=1)
        probe = [e for e in read_events(traced) if e["kind"] == "unit.probe"]
        assert probe and probe[0]["span"] == s.span_id
        assert probe[0]["trace"] == s.trace_id


class TestCampaignForest:
    """The tentpole acceptance: one forest through crash + hang + corrupt."""

    CHAOS = "crash@1,hang=30@2,corrupt@3"

    @pytest.fixture
    def campaign(self, traced, tmp_path):
        results = supervisor.run_campaign(
            _eol_cell,
            PAYLOADS,
            name="forest",
            directory=tmp_path / "camp",
            jobs=3,
            watchdog=False,
            chaos=self.CHAOS,
            retries=2,
            backoff=0,
            timeout=0.75,
            batch=2,  # force super-tasks so the codec spool path is exercised
        )
        return results, read_events(traced)

    def test_results_match_fault_free_serial(self, campaign):
        results, _ = campaign
        reference = list(parallel.run_tasks(_eol_cell, PAYLOADS, jobs=1))
        assert results == reference

    def test_every_stamped_event_resolves_to_campaign_root(self, campaign):
        _, events = campaign
        forest = build_forest(events)
        root = primary_root(forest)
        assert root is not None and root.name == "supervisor.campaign"
        stamped = [
            e for e in events
            if e.get("span") is not None
            and e["kind"] != "trace.span"
            and (
                e["kind"].startswith("engine.")
                or e["kind"].startswith("supervisor.")
                or e["kind"].startswith("chaos.")
            )
        ]
        assert stamped, "no stamped engine/supervisor events in the stream"
        for e in stamped:
            resolved = resolve_root(forest, e["trace"], e["span"])
            assert resolved is root, f"{e['kind']} did not resolve to campaign root"

    def test_all_span_kinds_present_and_rooted(self, campaign):
        _, events = campaign
        forest = build_forest(events)
        root = primary_root(forest)
        names = {n.name for n in root.walk()}
        # Dispatch, compute, codec, retry, and journal layers all appear
        # under the single campaign root.
        for expected in (
            "engine.campaign",
            "engine.task",
            "engine.encode",
            "engine.decode",
            "journal.append",
        ):
            assert expected in names, f"{expected} missing from forest"
        # The chaos storm forces retries: a backoff or rebuild span exists.
        assert {"engine.backoff", "engine.rebuild"} & names

    def test_crashed_parents_are_synthesized_not_lost(self, campaign):
        _, events = campaign
        forest = build_forest(events)
        root = primary_root(forest)
        all_nodes = list(root.walk())
        synthetic = [n for n in all_nodes if n.synthetic]
        # crash@1 kills a worker mid-batch: something must have been
        # orphaned, and every orphan still hangs off the campaign root.
        assert synthetic
        for n in synthetic:
            assert n.name == "(lost)"

    def test_critical_path_and_attribution_cover_wall(self, campaign):
        _, events = campaign
        forest = build_forest(events)
        root = primary_root(forest)
        path = critical_path(root)
        assert path[0] is root and len(path) >= 2
        assert all(b.t1 >= path[-1].t0 for b in path)  # chain is causal
        buckets = attribute(root)
        assert set(buckets) == set(BUCKETS)
        assert root.wall_s > 0
        coverage = sum(buckets.values()) / root.wall_s
        assert coverage >= 0.95  # acceptance bar (sums exactly by construction)
        assert buckets["compute"] > 0  # the tasks actually ran somewhere
        assert buckets["journal"] > 0  # every settlement was journaled

    def test_trace_summary_section_in_report(self, campaign, traced):
        _, events = campaign
        section = trace_summary(events)
        assert section["spans"] > 0 and section["traces"] >= 1
        assert section["root"]["name"] == "supervisor.campaign"
        assert section["coverage"] >= 0.95
        full = summarize(traced)
        assert full["trace"]["root"]["name"] == "supervisor.campaign"

    def test_crash_resume_joins_the_same_forest(self, traced, tmp_path):
        # First attempt dies mid-campaign (the supervisor process itself is
        # fine; a persistent worker crash degrades, so instead interrupt by
        # consuming only part of the stream).
        stream = supervisor.supervised_tasks(
            _eol_cell,
            PAYLOADS,
            name="resume",
            directory=tmp_path / "camp2",
            jobs=2,
            watchdog=False,
            backoff=0,
        )
        for _ in range(2):
            next(stream)
        stream.close()  # abandon mid-campaign; journal holds partial settles
        results = supervisor.run_campaign(
            _eol_cell,
            PAYLOADS,
            name="resume",
            directory=tmp_path / "camp2",
            jobs=2,
            watchdog=False,
            backoff=0,
        )
        assert results == list(parallel.run_tasks(_eol_cell, PAYLOADS, jobs=1))
        events = read_events(traced)
        roots = [
            e for e in events
            if e["kind"] == "trace.span" and e["name"] == "supervisor.campaign"
        ]
        assert len(roots) == 2
        # The resumed campaign's root parents to the first run's root: the
        # journal's begin record carried the trace context across the gap.
        assert roots[1]["trace"] == roots[0]["trace"]
        assert roots[1]["parent"] == roots[0]["span"]
        forest = build_forest(events)
        assert len(forest[roots[0]["trace"]]) == 1  # one tree, not two


class TestChromeExport:
    def _validate(self, doc):
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        assert doc["traceEvents"]
        for ev in doc["traceEvents"]:
            assert ev["ph"] in ("X", "i", "M")
            assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
            assert isinstance(ev["name"], str) and ev["name"]
            if ev["ph"] == "X":
                assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
                assert isinstance(ev["dur"], (int, float)) and ev["dur"] >= 0
                assert isinstance(ev["cat"], str)
            elif ev["ph"] == "i":
                assert ev["s"] == "p"
        json.dumps(doc)  # must be serializable as-is

    def test_export_validates_chrome_schema(self, traced):
        list(parallel.run_tasks(_eol_cell, PAYLOADS[:3], jobs=2, backoff=0))
        doc = export_run(traced)
        self._validate(doc)
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"X", "i", "M"}
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert any(e["name"] == "engine.campaign" for e in spans)

    def test_export_cli_writes_loadable_json(self, traced, tmp_path):
        with trace.span("cli.root", "compute"):
            obs.emit("cli.probe", mode="engine")
        out = tmp_path / "trace.json"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs.export", str(traced), "-o", str(out)],
            capture_output=True,
            text=True,
            env=_subprocess_env(),
        )
        assert proc.returncode == 0, proc.stderr
        self._validate(json.loads(out.read_text()))

    def test_export_without_spans_still_valid(self, tmp_path):
        run = tmp_path / "plain"
        obs.configure(run, "engine")
        try:
            obs.emit("engine.start", mode="engine", tasks=1)
        finally:
            obs.disarm()
            obs.REGISTRY.reset()
        self._validate(export_events(read_events(run)))


class TestRotation:
    def test_sink_rotates_on_line_boundary(self, tmp_path, monkeypatch):
        # Sized for exactly one rotation: the sink keeps two generations,
        # so a single cut preserves the full stream for the loss check.
        monkeypatch.setenv("REPRO_OBS_MAX_BYTES", "20000")
        run = tmp_path / "rot"
        obs.configure(run, "engine")
        try:
            for i in range(200):
                obs.emit("rot.fill", mode="engine", i=i, pad="x" * 64)
        finally:
            obs.disarm()
            obs.REGISTRY.reset()
        rotated = run / (obs.EVENTS_FILE + ".1")
        assert rotated.exists()
        # Every line in both generations parses: rotation cut on a boundary.
        for path in (rotated, run / obs.EVENTS_FILE):
            for line in path.read_text().splitlines():
                json.loads(line)
        events = read_events(run)
        kinds = {e["kind"] for e in events}
        assert "obs.rotate" in kinds
        fills = [e for e in events if e["kind"] == "rot.fill"]
        assert len(fills) == 200  # nothing lost across the rotation

    def test_spans_survive_rotation(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_MAX_BYTES", "12000")
        run = tmp_path / "rotspan"
        obs.configure(run, "engine")
        trace.arm(True)
        try:
            with trace.span("rot.root", "compute"):
                for i in range(100):
                    with trace.span("rot.leaf", "compute", i=i):
                        pass
        finally:
            trace.arm(False)
            trace.init_from_env()
            obs.disarm()
            obs.REGISTRY.reset()
        forest = build_forest(read_events(run))
        root = primary_root(forest)
        assert root.name == "rot.root"
        assert sum(1 for n in root.walk() if n.name == "rot.leaf") == 100
