"""DRAM substrate tests: timing, power model, channel scheduling, mapping."""

import heapq

import pytest

from repro.dram import (
    CHIP_POWER,
    AddressMapping,
    Channel,
    DDR3Timing,
    MemorySystem,
    MemorySystemConfig,
    MemRequest,
    RankEnergyCounters,
    RankPowerModel,
    chip_power_for_width,
)


class TestTiming:
    def test_trc_consistency(self):
        t = DDR3Timing()
        assert t.trc == t.tras + t.trp

    def test_read_latency(self):
        t = DDR3Timing()
        assert t.read_latency == t.trcd + t.tcl + t.tburst

    def test_bank_occupancy_floors_at_trc(self):
        t = DDR3Timing()
        assert t.bank_busy_read >= t.trc
        assert t.bank_busy_write >= t.trc

    def test_write_occupancy_exceeds_read(self):
        t = DDR3Timing()
        assert t.bank_busy_write > t.bank_busy_read


class TestChipPower:
    def test_known_widths(self):
        for w in (4, 8, 16):
            assert chip_power_for_width(w).width == w

    def test_unknown_width_rejected(self):
        with pytest.raises(ValueError):
            chip_power_for_width(32)

    def test_wider_chips_burn_more_burst_current(self):
        assert CHIP_POWER[16].idd4r > CHIP_POWER[4].idd4r

    def test_powerdown_below_standby(self):
        for p in CHIP_POWER.values():
            assert p.idd2p < p.idd2n < p.idd3n


class TestPowerModel:
    def make(self, widths):
        return RankPowerModel(widths, DDR3Timing(), 64)

    def test_zero_counters_zero_energy(self):
        e = self.make([8] * 9).integrate(RankEnergyCounters())
        assert e.total == 0

    def test_activate_energy_positive(self):
        e = self.make([8] * 9).integrate(RankEnergyCounters(activates=1))
        assert e.activate > 0 and e.read == 0 and e.write == 0

    def test_energy_scales_with_chip_count(self):
        c = RankEnergyCounters(activates=100, read_bursts=100)
        e36 = self.make([4] * 36).integrate(c)
        e18 = self.make([4] * 18).integrate(c)
        assert e36.dynamic == pytest.approx(2 * e18.dynamic)

    def test_lot5_rank_cheaper_than_ck36(self):
        """The paper's first-order energy claim: 5-chip ranks beat 36-chip."""
        c = RankEnergyCounters(activates=1, read_bursts=1)
        e5 = self.make([16, 16, 16, 16, 8]).integrate(c)
        e36 = self.make([4] * 36).integrate(c)
        # ck36 moves 128B vs 64B, so compare per 64B: still a big win.
        assert e5.dynamic < e36.dynamic / 2

    def test_background_states_ordered(self):
        m = self.make([8] * 9)
        act = m.integrate(RankEnergyCounters(cycles_active=1000)).background
        stby = m.integrate(RankEnergyCounters(cycles_precharge_standby=1000)).background
        pd = m.integrate(RankEnergyCounters(cycles_powerdown=1000)).background
        assert act > stby > pd > 0

    def test_write_burst_pricier_than_read(self):
        m = self.make([8] * 9)
        r = m.integrate(RankEnergyCounters(read_bursts=10)).read
        w = m.integrate(RankEnergyCounters(write_bursts=10)).write
        assert w > r

    def test_refresh_charged_on_residency(self):
        e = self.make([8] * 9).integrate(RankEnergyCounters(cycles_powerdown=10000))
        assert e.refresh > 0

    def test_breakdown_addition(self):
        m = self.make([8] * 9)
        a = m.integrate(RankEnergyCounters(activates=5))
        b = m.integrate(RankEnergyCounters(read_bursts=5))
        s = a + b
        assert s.activate == a.activate and s.read == b.read
        assert s.total == pytest.approx(a.total + b.total)


def drain(channel, last_arrival):
    """Run a channel until its queue is empty; returns completed requests."""
    done = []
    t = 0
    guard = 0
    while channel.pending and guard < 100000:
        guard += 1
        completed, nxt = channel.advance(t)
        done.extend(completed)
        t = nxt if nxt is not None else t + 1
    return done


class TestChannel:
    def test_single_read_latency(self):
        ch = Channel(ranks=1)
        t = ch.timing
        ch.enqueue(MemRequest(rank=0, bank=0, row=0, is_write=False, arrive=0))
        (req,), _ = ch.advance(0)
        assert req.issue == 0
        assert req.complete == t.trcd + t.tcl + t.tburst

    def test_same_bank_serialized(self):
        ch = Channel(ranks=1)
        for i in range(2):
            ch.enqueue(MemRequest(rank=0, bank=0, row=i, is_write=False, arrive=0))
        done = drain(ch, 0)
        assert done[1].issue - done[0].issue >= ch.timing.bank_busy_read

    def test_different_banks_pipeline(self):
        ch = Channel(ranks=1)
        for b in range(2):
            ch.enqueue(MemRequest(rank=0, bank=b, row=0, is_write=False, arrive=0))
        done = drain(ch, 0)
        gap = done[1].issue - done[0].issue
        assert gap < ch.timing.bank_busy_read  # overlapped
        assert gap >= ch.timing.trrd

    def test_tfaw_enforced(self):
        ch = Channel(ranks=1)
        for b in range(5):
            ch.enqueue(MemRequest(rank=0, bank=b, row=0, is_write=False, arrive=0))
        done = drain(ch, 0)
        issues = sorted(r.issue for r in done)
        assert issues[4] - issues[0] >= ch.timing.tfaw

    def test_data_bus_serializes_bursts(self):
        ch = Channel(ranks=2)
        for r in range(2):
            ch.enqueue(MemRequest(rank=r, bank=0, row=0, is_write=False, arrive=0))
        done = drain(ch, 0)
        ends = sorted(r.complete for r in done)
        assert ends[1] - ends[0] >= ch.timing.tburst

    def test_demand_prioritized_over_background(self):
        ch = Channel(ranks=1)
        ch.enqueue(MemRequest(rank=0, bank=0, row=0, is_write=True, arrive=0))
        ch.enqueue(MemRequest(rank=0, bank=1, row=0, is_write=False, arrive=0, demand=True))
        (first,), _ = ch.advance(0)
        assert first.demand and not first.is_write

    def test_background_reads_deferred(self):
        """ECC-state RMW reads must not outrank demand fills."""
        ch = Channel(ranks=1)
        ch.enqueue(MemRequest(rank=0, bank=0, row=0, is_write=False, arrive=0))  # bg read
        ch.enqueue(MemRequest(rank=0, bank=1, row=0, is_write=False, arrive=1, demand=True))
        (first,), _ = ch.advance(2)
        assert first.demand

    def test_write_drain_mode(self):
        ch = Channel(ranks=1)
        for i in range(ch.WRITE_DRAIN):
            ch.enqueue(MemRequest(rank=0, bank=i % 8, row=0, is_write=True, arrive=0))
        ch.enqueue(MemRequest(rank=0, bank=0, row=1, is_write=False, arrive=0, demand=True))
        (first,), _ = ch.advance(0)
        assert first.is_write  # backlog at threshold forces draining

    def test_most_pending_groups_rows(self):
        ch = Channel(ranks=1)
        ch.enqueue(MemRequest(rank=0, bank=0, row=1, is_write=False, arrive=0))
        for _ in range(3):
            ch.enqueue(MemRequest(rank=0, bank=1, row=9, is_write=False, arrive=1))
        (first,), _ = ch.advance(2)
        assert first.row == 9  # the 3-deep row wins over the older single

    def test_counters_accumulate(self):
        ch = Channel(ranks=1)
        for b in range(4):
            ch.enqueue(MemRequest(rank=0, bank=b, row=0, is_write=(b % 2 == 0), arrive=0))
        drain(ch, 0)
        c = ch.ranks[0].counters
        assert c.activates == 4 and c.read_bursts == 2 and c.write_bursts == 2

    def test_powerdown_residency_accrues(self):
        ch = Channel(ranks=1)
        ch.enqueue(MemRequest(rank=0, bank=0, row=0, is_write=False, arrive=0))
        drain(ch, 0)
        ch.finalize(10000)
        c = ch.ranks[0].counters
        assert c.cycles_powerdown > 0
        assert c.cycles_active > 0
        total = c.cycles_active + c.cycles_precharge_standby + c.cycles_powerdown
        assert total == 10000

    def test_queue_overflow_raises(self):
        ch = Channel(ranks=1)
        ch.queue = [MemRequest(0, 0, 0, False, 0)] * ch.QUEUE_DEPTH
        with pytest.raises(RuntimeError):
            ch.enqueue(MemRequest(0, 0, 0, False, 0))


class TestMapping:
    def test_pages_interleave_channels(self):
        m = AddressMapping(channels=4, ranks_per_channel=2)
        coords = [m.map_line(p * m.lines_per_page) for p in range(8)]
        assert [c.channel for c in coords] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_lines_spread_across_banks(self):
        m = AddressMapping(channels=2, ranks_per_channel=1)
        coords = [m.map_line(i) for i in range(8)]
        banks = {(c.rank, c.bank) for c in coords}
        assert len(banks) == 8

    def test_row_is_page_in_channel(self):
        m = AddressMapping(channels=2, ranks_per_channel=1)
        a = m.map_line(0)
        b = m.map_line(2 * m.lines_per_page)  # two pages later: same channel
        assert a.channel == b.channel and b.row == a.row + 1

    def test_128b_lines(self):
        m = AddressMapping(channels=2, ranks_per_channel=1, line_size=128)
        assert m.lines_per_page == 32

    def test_byte_mapping(self):
        m = AddressMapping(channels=2, ranks_per_channel=1)
        assert m.map_bytes(0) == m.map_line(0)
        assert m.map_bytes(64) == m.map_line(1)


class TestMemorySystem:
    def make(self):
        return MemorySystem(
            MemorySystemConfig(channels=2, ranks_per_channel=1, chip_widths=[8] * 9)
        )

    def test_accesses_counted_in_64b_units(self):
        mem = self.make()
        mem.enqueue(0, False, 0, None)
        assert mem.accesses_64b == 1
        mem128 = MemorySystem(
            MemorySystemConfig(channels=2, ranks_per_channel=1, chip_widths=[4] * 36, line_size=128)
        )
        mem128.enqueue(0, False, 0, None)
        assert mem128.accesses_64b == 2

    def test_energy_since_baseline(self):
        mem = self.make()
        heap_time = 0
        for i in range(50):
            ch = mem.enqueue(i * 3, False, heap_time, None)
            done, nxt = mem.advance_channel(ch, heap_time)
            heap_time += 5
        snap = mem.snapshot_counters(heap_time)
        # more work after the snapshot
        for i in range(50):
            ch = mem.enqueue(i * 7 + 1, True, heap_time, None)
            mem.advance_channel(ch, heap_time)
            heap_time += 5
        mem.finalize(heap_time + 200)
        net = mem.energy_since(snap)
        gross = mem.energy_since(None)
        assert 0 < net.total < gross.total

    def test_pending_tracks_queue(self):
        mem = self.make()
        mem.enqueue(0, False, 0, None)
        assert mem.pending() == 1
        mem.advance_channel(0, 0)
        mem.advance_channel(1, 0)
        assert mem.pending() == 0


class TestMappingPolicies:
    def test_sequential_policy_one_bank_per_page(self):
        m = AddressMapping(channels=2, ranks_per_channel=2, policy="sequential")
        coords = [m.map_line(i) for i in range(m.lines_per_page)]
        assert len({(c.rank, c.bank) for c in coords}) == 1

    def test_sequential_rotates_across_pages(self):
        m = AddressMapping(channels=2, ranks_per_channel=2, policy="sequential")
        a = m.map_line(0)
        b = m.map_line(2 * m.lines_per_page)  # next page, same channel
        assert (a.rank, a.bank) != (b.rank, b.bank)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            AddressMapping(channels=2, ranks_per_channel=1, policy="bogus")

    def test_interleave_is_default(self):
        m = AddressMapping(channels=2, ranks_per_channel=1)
        assert m.policy == "interleave"


class TestRefresh:
    def test_refresh_blocks_banks(self):
        """A request landing on a refresh deadline waits out tRFC."""
        ch = Channel(ranks=1)
        t = ch.timing
        deadline = ch.ranks[0].next_refresh
        ch.enqueue(MemRequest(rank=0, bank=0, row=0, is_write=False, arrive=deadline))
        (req,), _ = ch.advance(deadline + 1)
        assert req.issue >= deadline + t.trfc

    def test_refreshes_counted(self):
        ch = Channel(ranks=1)
        t = ch.timing
        ch.advance(3 * t.trefi + 10)
        assert ch.ranks[0].refreshes == 3

    def test_ranks_staggered(self):
        ch = Channel(ranks=4)
        deadlines = [r.next_refresh for r in ch.ranks]
        assert len(set(deadlines)) == 4

    def test_throughput_dip_is_bounded(self):
        """Refresh costs roughly tRFC per tREFI, no more."""

        def span_with(first_deadline):
            ch = Channel(ranks=1)
            ch.ranks[0].next_refresh = first_deadline
            for i in range(3000):
                ch.enqueue(MemRequest(rank=0, bank=i % 8, row=0, is_write=False, arrive=0))
            done = drain(ch, 0)
            return max(r.complete for r in done), ch.ranks[0].refreshes

        base, _ = span_with(1 << 40)  # refresh effectively disabled
        with_ref, n_ref = span_with(1000)
        assert n_ref >= 1
        t = Channel(ranks=1).timing
        overhead = with_ref - base
        assert 0 <= overhead <= (n_ref + 1) * t.trfc
